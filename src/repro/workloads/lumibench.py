"""LumiBench-substitute ray-tracing workloads (Fig. 16).

The representative LumiBench subset covers path tracing, ambient
occlusion, shadows, reflections, procedural geometry and alpha masking.
Each entry here pairs a procedural scene (see
:mod:`repro.workloads.scenes`) with the matching ray-behaviour profile;
``SHIP_SH`` additionally supports the SATO traversal order that TTA+'s
programmability enables (*SHIP_SH in the paper).  The procedural-sphere
workload (WKND_PT) lives in :mod:`repro.workloads.wknd`.
"""

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle, ray_triangle_intersect
from repro.geometry.vec import Vec3, cross, dot
from repro.kernels.ray_trace import RayTraceKernelArgs, build_rt_jobs
from repro.memsys.memory_image import AddressSpace
from repro.trees.bvh import BVH
from repro.workloads import scenes
from repro.workloads.scenes import Camera, traverse_any_sato

_EPS = 1e-3


def _normal(tri: Triangle) -> Vec3:
    n = cross(tri.v1 - tri.v0, tri.v2 - tri.v0)
    length = n.length()
    return n / length if length > 1e-12 else Vec3(0, 1, 0)


def _diffuse_dir(normal: Vec3, rng: random.Random) -> Vec3:
    while True:
        v = Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1))
        if 1e-6 < v.length_squared() <= 1.0:
            d = (normal + v.normalized())
            if d.length_squared() > 1e-9:
                return d.normalized()


def _reflect(d: Vec3, n: Vec3) -> Vec3:
    return (d - n * (2.0 * dot(d, n))).normalized()


@dataclass
class LumiWorkload:
    """One ray-tracing workload instance ready to run on any platform."""

    name: str
    kind: str
    bvh: BVH
    rays: List[Ray]
    visits_per_thread: List[List[tuple]]
    space: AddressSpace
    ray_buf: int
    frame_buf: int
    sato_visits_per_thread: Optional[List[List[tuple]]] = None
    leaf_geometry: str = "triangle"
    # The baseline op stream depends on which visit set is used: one
    # recording cache (gpu/replay.py) per sato flag.
    _stream_caches: Dict[bool, dict] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    @property
    def n_rays(self) -> int:
        return len(self.rays)

    def kernel_args(self, flavor: str = "rta",
                    sato: bool = False) -> RayTraceKernelArgs:
        visits = self._pick_visits(sato)
        jobs = [
            [build_rt_jobs(trace, result=True, query_id=tid, flavor=flavor,
                           leaf_geometry=self.leaf_geometry)
             for trace in traces]
            for tid, traces in enumerate(visits)
        ]
        return RayTraceKernelArgs(
            jobs_per_thread=jobs,
            visits_per_thread=visits,
            ray_buf=self.ray_buf,
            frame_buf=self.frame_buf,
            stream_cache=self._stream_caches.setdefault(sato, {}),
        )

    def _pick_visits(self, sato: bool) -> List[List[tuple]]:
        if not sato:
            return self.visits_per_thread
        if self.sato_visits_per_thread is None:
            raise ConfigurationError(
                f"{self.name} has no SATO variant (only shadow-ray "
                "workloads on thin geometry benefit)"
            )
        return self.sato_visits_per_thread

    def total_visits(self, sato: bool = False) -> int:
        return sum(len(t) for traces in self._pick_visits(sato)
                   for t in traces)


# -- trace generation -----------------------------------------------------------------
def _shadow_trace(bvh, origin: Vec3, light: Vec3, any_traverse) -> tuple:
    to_light = light - origin
    dist = to_light.length()
    ray = Ray(origin, to_light / dist, tmin=_EPS, tmax=dist)
    return any_traverse(bvh, ray).visits


def _trace_profile(bvh: BVH, rays: Sequence[Ray], kind: str, light: Vec3,
                   bounces: int, seed: int,
                   sato: bool = False) -> List[List[tuple]]:
    """Generate per-ray visit-trace lists for one ray-behaviour profile."""
    if sato:
        def any_traverse(b, r):
            return traverse_any_sato(b, r, ray_triangle_intersect)
    else:
        def any_traverse(b, r):
            return b.traverse(r, ray_triangle_intersect, mode="any")

    per_thread: List[List[tuple]] = []
    for rid, ray in enumerate(rays):
        rng = random.Random((seed << 20) ^ rid)
        traces: List[tuple] = []
        primary = bvh.traverse(ray, ray_triangle_intersect)
        traces.append(primary.visits)
        hit_id = primary.closest_prim
        if hit_id is None:
            per_thread.append(traces)
            continue
        hit_point = ray.point_at(primary.closest_t)
        tri = bvh.primitives[hit_id]
        normal = _normal(tri)
        if dot(normal, ray.direction) > 0:
            normal = -normal

        if kind == "sh":
            traces.append(_shadow_trace(bvh, hit_point + normal * _EPS,
                                        light, any_traverse))
        elif kind == "ao":
            for _ in range(2):
                d = _diffuse_dir(normal, rng)
                ao_ray = Ray(hit_point + normal * _EPS, d, tmax=3.0)
                traces.append(any_traverse(bvh, ao_ray).visits)
        elif kind == "pt":
            current_point, current_normal = hit_point, normal
            for _ in range(bounces):
                d = _diffuse_dir(current_normal, rng)
                bounce = Ray(current_point + current_normal * _EPS, d)
                result = bvh.traverse(bounce, ray_triangle_intersect)
                traces.append(result.visits)
                if result.closest_prim is None:
                    break
                current_point = bounce.point_at(result.closest_t)
                tri = bvh.primitives[result.closest_prim]
                current_normal = _normal(tri)
                if dot(current_normal, bounce.direction) > 0:
                    current_normal = -current_normal
        elif kind == "refl":
            d = _reflect(ray.direction, normal)
            refl = Ray(hit_point + normal * _EPS, d)
            traces.append(bvh.traverse(refl, ray_triangle_intersect).visits)
        elif kind == "alpha":
            # Alpha masking: the any-hit shader rejects the first hits, so
            # the ray re-traverses past each rejected surface.
            t_past = primary.closest_t + _EPS
            for _ in range(2):
                cont = Ray(ray.origin, ray.direction, tmin=t_past)
                result = bvh.traverse(cont, ray_triangle_intersect)
                traces.append(result.visits)
                if result.closest_prim is None:
                    break
                t_past = result.closest_t + _EPS
        else:
            raise ConfigurationError(f"unknown ray profile {kind!r}")
        per_thread.append(traces)
    return per_thread


# -- the suite --------------------------------------------------------------------
@dataclass(frozen=True)
class LumiSpec:
    name: str
    kind: str
    scene: Callable[[], List[Triangle]]
    camera: Camera
    light: Vec3
    bounces: int = 0
    sato_capable: bool = False


LUMIBENCH_SUITE: List[LumiSpec] = [
    LumiSpec("CORNELL_PT", "pt", scenes.make_cornell_scene,
             Camera(Vec3(5, 5, -12), Vec3(5, 5, 5)), Vec3(5, 9.5, 5),
             bounces=2),
    LumiSpec("SPONZA_AO", "ao",
             lambda: scenes.make_soup_scene(600),
             Camera(Vec3(0, 5, -35), Vec3(0, 0, 0)), Vec3(0, 30, 0)),
    LumiSpec("BUNNY_SH", "sh", scenes.make_shell_scene,
             Camera(Vec3(0, 3, -14), Vec3(0, 0, 0)), Vec3(8, 15, -8)),
    LumiSpec("SHIP_SH", "sh", scenes.make_thin_strips_scene,
             Camera(Vec3(0, 5, -35), Vec3(0, 0, 0)), Vec3(10, 30, -10),
             sato_capable=True),
    LumiSpec("GRID_RF", "refl",
             lambda: scenes.make_soup_scene(400, seed=7),
             Camera(Vec3(0, 0, -32), Vec3(0, 0, 0)), Vec3(0, 25, 0)),
    LumiSpec("SHELL_AM", "alpha", scenes.make_shell_scene,
             Camera(Vec3(0, 0, -16), Vec3(0, 0, 0)), Vec3(0, 12, -12)),
]


def spec_named(name: str) -> LumiSpec:
    for spec in LUMIBENCH_SUITE:
        if spec.name == name:
            return spec
    raise ConfigurationError(
        f"unknown LumiBench workload {name!r}; "
        f"available: {[s.name for s in LUMIBENCH_SUITE]}"
    )


def make_lumibench_workload(name: str, width: int = 16, height: int = 16,
                            seed: int = 0) -> LumiWorkload:
    """Instantiate one suite workload at the given resolution."""
    spec = spec_named(name)
    tris = spec.scene()
    bvh = BVH(tris, max_leaf_size=2, method="sah")
    rays = spec.camera.rays(width, height)
    visits = _trace_profile(bvh, rays, spec.kind, spec.light, spec.bounces,
                            seed)
    sato_visits = None
    if spec.sato_capable:
        sato_visits = _trace_profile(bvh, rays, spec.kind, spec.light,
                                     spec.bounces, seed, sato=True)
    space = AddressSpace()
    space.place_tree(bvh.nodes())
    ray_buf = space.alloc(32 * len(rays), align=128)
    frame_buf = space.alloc(4 * len(rays), align=128)
    return LumiWorkload(name, spec.kind, bvh, rays, visits, space,
                        ray_buf, frame_buf, sato_visits_per_thread=sato_visits)
