"""Fixed-function intersection unit pools (baseline RTA and TTA).

The baseline RTA exposes two pipelines per set — Ray-Box (13 cycles)
and Ray-Triangle (37 cycles); Table II configures 4 sets.  TTA maps its
two new operations onto the same silicon (§III-B):

* ``query_key`` runs on the *modified* Ray-Box unit (min/max network plus
  the added equality comparators — Fig. 9);
* ``point_dist`` runs through the added datapath in the Ray-Triangle
  unit (Fig. 8 (2)).

Occupancy (queued + executing ops) and per-op latency are tracked per
pool for Fig. 15.
"""

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.sim.resources import PipelinedUnit


class UnitPool:
    """N identical pipelines; ops go to the least-recently-used copy."""

    def __init__(self, name: str, latency: int, sets: int, tracer=None):
        if sets < 1:
            raise ConfigurationError(f"{name}: needs at least one set")
        self.name = name
        self.units: List[PipelinedUnit] = [
            PipelinedUnit(f"{name}[{i}]", latency=latency, strict=False)
            for i in range(sets)
        ]
        self._next = 0
        # Optional repro.obs tracer: per-op unit events for both the
        # batched (issue_drain) and legacy (issue) execution paths.
        self.trace = tracer

    def issue(self, now: float):
        units = self.units
        nxt = self._next
        unit = units[nxt]
        nxt += 1
        self._next = 0 if nxt == len(units) else nxt
        start, done = unit.issue(now)
        if self.trace is not None:
            self.trace.emit("rta", self.name, "op", start, done - start)
        return unit, start, done

    def issue_drain(self, now: float) -> float:
        """Round-robin issue with the op drained at its own done time."""
        units = self.units
        nxt = self._next
        unit = units[nxt]
        nxt += 1
        self._next = 0 if nxt == len(units) else nxt
        done = unit.issue_drain(now)
        if self.trace is not None:
            self.trace.emit("rta", self.name, "op", now, done - now)
        return done

    @property
    def ops(self) -> int:
        return sum(u.ops for u in self.units)

    @property
    def busy_cycles(self) -> float:
        return sum(u.busy_cycles for u in self.units)

    def occupancy_average(self, end: float) -> float:
        return sum(u.occupancy.average(end) for u in self.units)

    def occupancy_peak(self) -> int:
        return sum(u.occupancy.peak for u in self.units)

    def latency_mean(self) -> float:
        total = sum(u.latency_stats.total for u in self.units)
        count = sum(u.latency_stats.count for u in self.units)
        return total / count if count else 0.0


class FixedFunctionBackend:
    """Executes steps on the fixed-function pools.

    ``supports`` enumerates the step kinds this hardware accepts; a TTA
    supports the two new ops while the unmodified baseline RTA does not
    (submitting an unsupported op is a configuration error — the paper's
    point that e.g. WKND_PT's sphere test *cannot* run on TTA).
    """

    BASELINE_OPS = ("box", "tri", "xform")
    TTA_OPS = BASELINE_OPS + ("query_key", "point_dist")

    def __init__(self, sim, config: GPUConfig, tta: bool = False,
                 latency_overrides: Dict[str, int] = None):
        self.sim = sim
        self.config = config
        self.is_tta = tta
        overrides = latency_overrides or {}
        sets = config.intersection_sets

        def lat(op: str, default: int) -> int:
            return int(overrides.get(op, default))

        tracer = getattr(sim, "tracer", None)
        self.pools: Dict[str, UnitPool] = {
            "box": UnitPool("ray_box", lat("box", config.ray_box_latency),
                            sets, tracer),
            "tri": UnitPool("ray_tri", lat("tri", config.ray_tri_latency),
                            sets, tracer),
            "xform": UnitPool("xform", lat("xform", 4), sets, tracer),
        }
        if tta:
            # Query-Key shares the (modified) Ray-Box silicon but is its
            # own logical pool so Fig. 15 can report it separately.
            self.pools["query_key"] = UnitPool(
                "query_key", lat("query_key", config.query_key_latency),
                sets, tracer)
            self.pools["point_dist"] = UnitPool(
                "point_dist", lat("point_dist", config.point_dist_latency),
                sets, tracer)
        self.supports = self.TTA_OPS if tta else self.BASELINE_OPS

    def execute(self, now: float, op: str, count: int):
        """Issue ``count`` back-to-back ops; yields until the last finishes.

        Returns a generator for use inside a sim process (``yield from``).
        """
        if op not in self.pools:
            raise ConfigurationError(
                f"operation {op!r} is not supported by this "
                f"{'TTA' if self.is_tta else 'baseline RTA'}"
            )
        pool = self.pools[op]
        done = now
        completions = []
        for _ in range(count):
            unit, _start, unit_done = pool.issue(now)
            completions.append((unit, unit_done))
            done = max(done, unit_done)
        if done > now:
            yield done - now
        for unit, unit_done in completions:
            unit.complete(unit_done)

    def finish_at(self, now: float, op: str, count: int) -> float:
        """Analytic form of :meth:`execute` for the batched job driver.

        Issues ``count`` back-to-back ops at ``now`` and returns the
        completion time of the last one without touching the event queue;
        the caller schedules a single wake-up at (the ceiling of) that
        time.  Occupancy and latency samples match :meth:`execute`: ops
        enter at the request time and drain at their own ``done`` times.
        """
        pool = self.pools.get(op)
        if pool is None:
            raise ConfigurationError(
                f"operation {op!r} is not supported by this "
                f"{'TTA' if self.is_tta else 'baseline RTA'}"
            )
        if count == 1:  # the overwhelmingly common case
            return pool.issue_drain(now)
        issue = pool.issue
        done = now
        completions = []
        for _ in range(count):
            unit, _start, unit_done = issue(now)
            completions.append((unit, unit_done))
            if unit_done > done:
                done = unit_done
        for unit, unit_done in completions:
            unit.complete(unit_done)
        return done

    def snapshot(self, end: float) -> dict:
        out = {}
        for op, pool in self.pools.items():
            out[f"{op}_ops"] = pool.ops
            out[f"{op}_busy_cycles"] = pool.busy_cycles
            if pool.ops:
                # Rate metrics are only meaningful where the pool ran;
                # idle accelerators omit them so merging stays unbiased.
                out[f"{op}_occupancy_avg"] = pool.occupancy_average(end)
                out[f"{op}_occupancy_peak"] = pool.occupancy_peak()
                out[f"{op}_latency_mean"] = pool.latency_mean()
        return out
