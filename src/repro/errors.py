"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An accelerator, layout, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class LayoutError(ConfigurationError):
    """A data-layout descriptor does not match the data it is applied to."""


class ProgramError(ConfigurationError):
    """A TTA+ micro-op program is malformed or references unknown units."""
