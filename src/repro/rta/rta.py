"""The accelerator core: admission, traversal replay, shader bounces.

``RTACore`` is attached to an SM and receives work through
``submit(now, jobs)`` (the :class:`~repro.gpu.isa.AccelCall` path).  Each
job runs as its own simulation process:

1. wait for a warp-buffer ray slot,
2. for each step: fetch the node through the RTA memory scheduler,
   then execute the step's operation on the backend (fixed-function
   pools for RTA/TTA, µop programs for TTA+),
3. ``shader`` steps suspend the traversal and occupy the host SM's
   issue port — the expensive intersection-shader bounce that the
   baseline needs for procedural geometry and that TTA+ eliminates.

The submission's signal fires when all of its jobs complete, resuming
the launching warp.
"""

from typing import Iterable, List

from repro.errors import ConfigurationError
from repro.rta.mem_scheduler import RTAMemScheduler
from repro.rta.traversal import Step, TraversalJob
from repro.rta.units import FixedFunctionBackend
from repro.rta.warp_buffer import WarpBuffer
from repro.sim.stats import LatencySampler

#: Fixed cost of suspending a traversal and scheduling shader threads on
#: the SM (launch + result return), in cycles each way.
SHADER_HANDOFF_CYCLES = 40


class RTACore:
    """One accelerator instance (RTA, TTA, or TTA+ depending on backend).

    ``prefetch_depth`` models a treelet prefetcher [16]: while a node is
    being processed, the next ``prefetch_depth`` node fetches of the
    same traversal are issued ahead of time, overlapping their memory
    latency with the current intersection test (one of the
    "architectural improvements" §V-B says compose with TTA+).
    """

    def __init__(self, sm, backend, prefetch_depth: int = 0):
        self.sm = sm
        self.sim = sm.sim
        self.config = sm.config
        self.backend = backend
        self.prefetch_depth = prefetch_depth
        self.warp_buffer = WarpBuffer(self.sim,
                                      self.config.warp_buffer_warps,
                                      self.config.warp_size)
        self.mem = RTAMemScheduler(self.sim, sm.hierarchy, sm.l1,
                                   self.config.mem_scheduler_reqs_per_cycle)
        self.traversal_latency = LatencySampler()
        self.jobs_completed = 0
        self.shader_bounces = 0
        self.shader_cycles = 0.0
        self._busy_jobs = 0

    # -- submission interface (matches gpu.sm expectations) ---------------------
    def submit(self, now: float, jobs: Iterable[TraversalJob]):
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("empty accelerator submission")
        done_signal = self.sim.signal()
        state = {"remaining": len(jobs)}
        launch_at = now + self.config.rta_issue_overhead
        for job in jobs:
            self.sim.call_at(launch_at, self._start_job, job, state,
                             done_signal, jobs)
        return done_signal

    def _start_job(self, job: TraversalJob, state: dict, done_signal,
                   jobs: List[TraversalJob]) -> None:
        self.sim.spawn(self._run_job(job, state, done_signal, jobs))

    def _run_job(self, job: TraversalJob, state: dict, done_signal,
                 jobs: List[TraversalJob]):
        sim = self.sim
        begin = sim.now
        yield from self.warp_buffer.acquire()
        self.warp_buffer.record_access(writes=1)  # install ray state
        for index, step in enumerate(job.steps):
            if step.address >= 0:
                if self.prefetch_depth:
                    for ahead in job.steps[index + 1:
                                           index + 1 + self.prefetch_depth]:
                        if ahead.address >= 0:
                            self.mem.fetch(sim.now, ahead.address,
                                           ahead.size)
                ready = self.mem.fetch(sim.now, step.address, step.size)
                if ready > sim.now:
                    yield ready - sim.now
            self.warp_buffer.record_access(reads=2, writes=1)
            if step.op == "shader":
                yield from self._run_shader(step)
            else:
                yield from self.backend.execute(sim.now, step.op, step.count)
        self.warp_buffer.release()
        self.traversal_latency.sample(sim.now - begin)
        self.jobs_completed += 1
        state["remaining"] -= 1
        if state["remaining"] == 0:
            done_signal.fire([j.result for j in jobs])

    def _run_shader(self, step: Step):
        """Bounce to the SM cores for an intersection shader invocation.

        The driver batches shader invocations from many suspended rays
        into full warps, so the *issue-port* cost is amortized across the
        warp width, while the suspended ray still waits for the handoff
        plus the scalar shader execution.
        """
        sim = self.sim
        warp_size = self.config.warp_size
        insts = step.shader_insts * step.count
        self.shader_bounces += step.count
        start = self.sm.issue_port.acquire(
            sim.now + SHADER_HANDOFF_CYCLES,
            max(1.0, insts / warp_size))
        done = max(start + insts, sim.now + insts) + 2 * SHADER_HANDOFF_CYCLES
        self.shader_cycles += done - sim.now
        # Warp-batched: this ray's share of the shader warp's instructions.
        self.sm.stats.count_compute("shader", insts / warp_size, warp_size,
                                    warp_size)
        yield done - sim.now

    # -- statistics ---------------------------------------------------------------
    def snapshot(self, end: float) -> dict:
        snap = {
            "jobs_completed": self.jobs_completed,
            "traversal_latency_mean": self.traversal_latency.mean,
            "shader_bounces": self.shader_bounces,
            "shader_cycles": self.shader_cycles,
        }
        snap.update(self.warp_buffer.snapshot(end))
        snap.update(self.mem.snapshot(end))
        snap.update(self.backend.snapshot(end))
        return snap


def make_rta_factory(tta: bool = False, latency_overrides=None,
                     prefetch_depth: int = 0):
    """Factory for attaching a baseline RTA (or TTA) to every SM.

    Use with :class:`repro.gpu.GPU`::

        gpu = GPU(config, accelerator_factory=make_rta_factory(tta=True))
    """

    def factory(sm):
        backend = FixedFunctionBackend(sm.sim, sm.config, tta=tta,
                                       latency_overrides=latency_overrides)
        return RTACore(sm, backend, prefetch_depth=prefetch_depth)

    return factory
