"""Atomic lease files: how campaign workers claim points.

The whole scheduler is filesystem rendezvous — there is no coordinator
process to crash.  One lease file per in-flight point lives under
``<campaign_dir>/leases/<spec key>.json`` and the protocol is three
moves:

**Claim** — ``open(O_CREAT | O_EXCL)``: exactly one worker can create
the file, and that worker owns the point.  Everyone else moves on to
the next cell of the table (work *stealing* is the fallback, work
*spreading* is the common case — see
:func:`~repro.campaign.spec.worker_order`).

**Release** — the owner unlinks the lease after the point's result has
landed in the exec cache (or its failure record has been written).
Order matters: result first, lease second, so a crash between the two
leaves a *completed* point with a stale lease — which merely expires —
never a claimed point with no owner working on it.

**Steal** — a lease older than its TTL (or whose owner is a provably
dead local process) is up for grabs.  Stealing must itself be atomic:
the thief writes its own lease content (with a fresh random nonce) to a
temp file and ``os.replace``\\ s it over the stale lease, then *reads
the file back*; whoever's nonce survives the replace race owns the
point.  Losing the race costs a tempfile, never a double-claim.

Double *execution* (thief and a not-quite-dead owner both simulating
the same point) is possible by design and harmless: the simulator is
deterministic and cache writes are atomic, so both produce the same
bytes and one of the two identical results wins the ``os.replace``.
Expiry uses each writer's own clock plus the file mtime (whichever is
later), so multi-host stealing only assumes clocks agree to within the
TTL, not to the millisecond.
"""

import json
import os
import pathlib
import socket
import time
import uuid
from typing import Any, Dict, Optional

#: Lease sidecars end in .json; everything else in the directory is a
#: writer's temp file and can be ignored.
_SUFFIX = ".json"


class LeaseBoard:
    """One worker's view of a campaign's lease directory."""

    def __init__(self, root, worker_id: str,
                 ttl_s: float = 300.0) -> None:
        self.root = pathlib.Path(root)
        self.worker_id = worker_id
        self.ttl_s = float(ttl_s)
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self.claimed = 0
        self.stolen = 0
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths / payloads -----------------------------------------------------
    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}{_SUFFIX}"

    def _payload(self) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "host": self.host,
            "pid": self.pid,
            "nonce": uuid.uuid4().hex,
            "acquired": time.time(),
            "ttl_s": self.ttl_s,
        }

    @staticmethod
    def _read(path: pathlib.Path) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            # Mid-write or vanished lease: treat as unreadable; the
            # caller retries next pass, by which time it is either a
            # valid lease or gone.
            return None

    def _expired(self, path: pathlib.Path,
                 lease: Optional[Dict[str, Any]]) -> bool:
        if lease is None:
            # Unreadable but present: only the mtime can vouch for it.
            try:
                return time.time() - path.stat().st_mtime > self.ttl_s
            except OSError:
                return False
        ttl = float(lease.get("ttl_s", self.ttl_s))
        acquired = float(lease.get("acquired", 0.0))
        try:
            acquired = max(acquired, path.stat().st_mtime)
        except OSError:
            pass
        if time.time() - acquired > ttl:
            return True
        # A lease held by a dead process on *this* host is stealable
        # immediately — no point waiting out the TTL.
        if lease.get("host") == self.host:
            pid = lease.get("pid")
            if isinstance(pid, int) and pid > 0 and not _pid_alive(pid):
                return True
        return False

    # -- the protocol ----------------------------------------------------------
    def claim(self, key: str) -> bool:
        """Try to create the lease; True means this worker owns ``key``."""
        path = self._path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            os.write(fd, json.dumps(self._payload()).encode())
        finally:
            os.close(fd)
        self.claimed += 1
        return True

    def steal(self, key: str) -> bool:
        """Take over an expired lease; True means this worker now owns it.

        No-op (False) while the lease is live.  The replace-then-read
        sequence makes concurrent steals safe: both replaces succeed,
        but only one nonce is in the file afterwards.
        """
        path = self._path(key)
        if not path.exists():
            return False
        if not self._expired(path, self._read(path)):
            return False
        payload = self._payload()
        tmp = path.with_suffix(f".steal.{self.pid}.{payload['nonce'][:8]}")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        current = self._read(path)
        won = bool(current) and current.get("nonce") == payload["nonce"]
        if won:
            self.stolen += 1
        return won

    def acquire(self, key: str) -> bool:
        """Claim, falling back to stealing an expired lease."""
        return self.claim(key) or self.steal(key)

    def release(self, key: str) -> None:
        path = self._path(key)
        try:
            path.unlink()
        except OSError:
            pass

    def holder(self, key: str) -> Optional[Dict[str, Any]]:
        return self._read(self._path(key))

    # -- maintenance -----------------------------------------------------------
    def sweep(self) -> Dict[str, int]:
        """Count live vs expired leases (``repro campaign status``)."""
        live = expired = 0
        for path in self.root.glob(f"*{_SUFFIX}"):
            if self._expired(path, self._read(path)):
                expired += 1
            else:
                live += 1
        return {"live": live, "expired": expired}


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True
    return True
