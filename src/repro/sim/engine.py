"""Event queue and cooperative processes for cycle-resolution simulation.

The fast core runs an **integer cycle clock** over a calendar queue:

* events for the *current* cycle live in a flat run queue (``_ready``)
  consumed FIFO — ``call_at(now, ...)``, ``spawn`` and fired-``Signal``
  resumes append here and never touch a heap;
* future events hash into per-cycle buckets (``dict`` keyed by cycle),
  so scheduling into an already-occupied cycle is O(1) list append;
* a min-heap holds only the *distinct occupied cycles* — the overflow
  structure that orders bucket drains.  Dense simulations (hundreds of
  events per cycle, the accelerator steady state) amortize one heap
  push across a whole bucket instead of paying one per event.

Processes are Python generators that yield either

* a non-negative **integral** number of cycles — "suspend me that long"
  (analytic float completion times must be quantized with
  :func:`ceil_cycles` first; non-integral delays are rejected rather
  than silently accumulating float drift), or
* a :class:`Signal` — "suspend me until someone fires this signal"; the
  fired value is sent back into the generator.

The seed heap engine is preserved verbatim as
:class:`repro.sim.engine_ref.HeapSimulator` (select it with
``REPRO_SIM_CORE=legacy``); ``tests/test_engine_equivalence.py`` checks
both engines produce the same ``(time, seq)`` event order.
"""

import heapq
from math import ceil
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError

Process = Generator[Any, Any, None]

#: Slack when quantizing analytic (float) times: completion times are
#: sums of exact-by-construction rationals, so any sub-1e-9 excess over
#: an integer is float noise, not a real fraction of a cycle.
TIME_EPS = 1e-9


def ceil_cycles(delay: float) -> int:
    """Quantize an analytic (possibly fractional) wait to whole cycles.

    Returns the smallest integral cycle count >= ``delay``, treating
    values within :data:`TIME_EPS` of an integer as that integer.
    """
    if delay <= 0:
        return 0
    return int(ceil(delay - TIME_EPS))


class Signal:
    """A one-shot wake-up channel between processes.

    A process suspends on a signal by yielding it; another component wakes
    it by calling :meth:`fire`.  Multiple processes may wait on the same
    signal; all are resumed with the fired value.  Firing a signal with no
    waiters stores the value so a later waiter resumes immediately — this
    removes the race between a memory response arriving and the consumer
    reaching its ``yield``.

    Shared by both engines: the fast core parks ``_Task`` records in
    ``_waiters`` while the legacy heap engine parks raw generators; each
    engine's ``_resume_waiter`` knows its own representation.
    """

    __slots__ = ("_sim", "_waiters", "_fired", "_value")

    def __init__(self, sim):
        self._sim = sim
        self._waiters: List[Any] = []
        self._fired = False
        self._value = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        """Wake every waiter (now or as soon as they wait) with ``value``."""
        if self._fired:
            raise SimulationError("signal fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        resume = self._sim._resume_waiter
        for waiter in waiters:
            resume(waiter, value)

    def fire_at(self, time, value: Any = None) -> None:
        """Schedule :meth:`fire` to happen at absolute ``time``."""
        self._sim.call_at(time, self.fire, value)

    def _add_waiter(self, process) -> bool:
        """Register ``process``; return True if it must actually wait.

        (Legacy-engine dispatch helper; the fast core inlines this.)
        """
        if self._fired:
            return False
        self._waiters.append(process)
        return True


class _Task:
    """A spawned process, reduced to its cached ``send`` bound method."""

    __slots__ = ("send",)

    def __init__(self, process: Process):
        self.send = process.send


class Simulator:
    """Discrete-event simulator on an integer cycle clock.

    Events at equal times fire in insertion order, which makes runs
    fully deterministic (and identical, event for event, to the legacy
    heap engine's ``(time, seq)`` order).
    """

    #: The batched accelerator driver keys off this to pick its path.
    legacy_core = False

    __slots__ = ("now", "_ready", "_ri", "_buckets", "_cycle_heap",
                 "_events_processed", "guard", "tracer")

    def __init__(self) -> None:
        self.now: int = 0
        self._ready: list = []       # current-cycle events, consumed FIFO
        self._ri = 0                 # read index into _ready
        self._buckets: dict = {}     # future cycle -> [(fn, args), ...]
        self._cycle_heap: list = []  # distinct occupied future cycles
        self._events_processed = 0
        #: Optional repro.guard.Guard; set via Guard.attach().  The
        #: guard never schedules events — run() calls into it at event
        #: checkpoints and cycle advances, so an attached guard cannot
        #: change event order, the final time, or any statistic.
        self.guard = None
        #: Optional repro.obs.Tracer; set by GPU.launch.  Like the
        #: guard, purely observational: components read it once at
        #: construction and emit behind a single is-None branch.
        self.tracer = None

    # -- event interface -------------------------------------------------
    def call_at(self, time, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute integral ``time`` (>= now)."""
        if type(time) is not int:
            time = self._as_cycle(time, "event time")
        now = self.now
        if time <= now:
            if time == now:
                self._ready.append((fn, args))
                return
            raise SimulationError(
                f"cannot schedule event at {time} before now={now}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            heapq.heappush(self._cycle_heap, time)
        else:
            bucket.append((fn, args))

    def call_after(self, delay, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` (integral) cycles."""
        if type(delay) is not int:
            delay = self._as_cycle(delay, "delay")
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self.now + delay, fn, *args)

    @staticmethod
    def _as_cycle(value, what: str) -> int:
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            raise SimulationError(
                f"{what} must be a number of cycles, got {value!r}"
            ) from None
        if as_int != value:
            raise SimulationError(
                f"non-integral {what} {value!r}: the engine runs an integer "
                "cycle clock; quantize analytic times with ceil_cycles()"
            )
        return as_int

    def signal(self) -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self)

    # -- process interface -----------------------------------------------
    def spawn(self, process: Process) -> Process:
        """Start running a generator-based process at the current time."""
        self._ready.append((self._step, (_Task(process), None)))
        return process

    def _resume_waiter(self, task: "_Task", value: Any) -> None:
        self._step(task, value)

    def _step(self, task: "_Task", value: Any) -> None:
        try:
            yielded = task.send(value)
        except StopIteration:
            return
        tp = type(yielded)
        if tp is int:
            delay = yielded
        elif tp is Signal:
            if yielded._fired:
                self._ready.append((self._step, (task, yielded._value)))
            else:
                yielded._waiters.append(task)
            return
        elif tp is float:
            delay = int(yielded)
            if delay != yielded:
                raise SimulationError(
                    f"process yielded non-integral delay {yielded!r}; "
                    "quantize analytic times with ceil_cycles()"
                )
        elif isinstance(yielded, Signal):  # Signal subclass (rare)
            if yielded._fired:
                self._ready.append((self._step, (task, yielded._value)))
            else:
                yielded._waiters.append(task)
            return
        else:
            raise SimulationError(
                f"process yielded unsupported value {yielded!r}; "
                "expected a delay or a Signal"
            )
        if delay < 0:
            raise SimulationError(f"process yielded negative delay {yielded}")
        if delay == 0:
            self._ready.append((self._step, (task, None)))
            return
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(self._step, (task, None))]
            heapq.heappush(self._cycle_heap, time)
        else:
            bucket.append((self._step, (task, None)))

    # -- main loop ---------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event queue; return the final simulation time.

        ``until`` caps simulated time, ``max_events`` caps host work (a
        guard against accidental infinite simulations in tests).
        """
        if until is not None and type(until) is not int:
            until = self._as_cycle(until, "until")
        buckets = self._buckets
        cycle_heap = self._cycle_heap
        heappop = heapq.heappop
        processed = self._events_processed
        ready = self._ready
        i = self._ri
        guard = self.guard
        if guard is not None:
            cycle_cap = guard.cycle_cap
            check_at = guard.event_checkpoint(processed)
        else:
            cycle_cap = None
            check_at = None
        tracer = self.tracer
        try:
            while True:
                # Drain the current cycle FIFO; handlers may append more.
                while i < len(ready):
                    fn, args = ready[i]
                    i += 1
                    fn(*args)
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} at t={self.now}"
                        )
                    if check_at is not None and processed >= check_at:
                        # Watchdog checkpoint (may raise); piggybacks on
                        # the per-event counter so guard-off runs pay
                        # one is-None branch and nothing else.
                        self._events_processed = processed
                        check_at = guard.on_events(processed, self.now)
                if not cycle_heap:
                    break
                time = cycle_heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heappop(cycle_heap)
                self.now = time
                if cycle_cap is not None and time > cycle_cap:
                    self._events_processed = processed
                    guard.on_cycle_budget(time)
                ready = self._ready = buckets.pop(time)
                i = 0
                if tracer is not None:
                    tracer.emit("scheduler", "engine", "cycle", time, 0.0,
                                len(ready))
        finally:
            self._events_processed = processed
            if i >= len(self._ready):
                self._ready = []
                self._ri = 0
            else:
                self._ri = i
        return self.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return (len(self._ready) - self._ri
                + sum(len(b) for b in self._buckets.values()))
