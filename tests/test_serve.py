"""Tests for the serving layer (``repro.serve``).

Covers the batcher's no-loss/no-duplication contract under size vs
timeout races, deterministic loadtest percentiles under seeded
arrivals, per-platform equivalence of the serve path with the one-shot
harness, guard-triggered degradation of a poisoned batch to the legacy
engine, and the exec build cache the resident indexes ride on.
"""

import json
import pickle
import random

import pytest

from repro.errors import ConfigurationError
from repro.exec import ResultCache, build_fingerprint, build_key
from repro.harness.runner import run_btree, run_knn, run_rtree, scaled_config_for
from repro.serve import (
    Batch,
    BatchLaunch,
    BatchPolicy,
    LaunchBackend,
    LoadProfile,
    MicroBatcher,
    QueryRequest,
    SERVE_PLATFORMS,
    ServiceClock,
    build_resident_index,
    generate_arrivals,
    parse_mix,
    percentile,
    run_loadtest,
    run_qps_sweep,
    stream_signature,
)

#: Tiny construction params so every test's index builds in
#: milliseconds; big enough that batches exercise real traversal.
TINY = {
    "point": dict(n_keys=512, n_queries=64),
    "range": dict(n_rects=512, n_queries=32),
    "knn": dict(n_points=512, n_queries=32, k=4),
    "radius": dict(n_points=512, n_queries=32),
}


@pytest.fixture(scope="module")
def point_index():
    return build_resident_index("point", TINY["point"])


# -- batcher ------------------------------------------------------------------------
class TestMicroBatcher:
    @staticmethod
    def request(seq, cls="point", t=0.0):
        return QueryRequest(seq, cls, qid=seq % 8, t_arrival=t)

    def test_closes_on_size(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=3, max_wait_s=1.0))
        assert batcher.offer(self.request(0, t=0.0)) is None
        assert batcher.offer(self.request(1, t=0.1)) is None
        batch = batcher.offer(self.request(2, t=0.2))
        assert batch is not None and batch.closed_by == "size"
        assert [q.seq for q in batch.queries] == [0, 1, 2]
        assert batch.t_open == 0.0 and batch.t_close == 0.2
        assert batcher.pending("point") == 0

    def test_closes_on_timeout(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_wait_s=0.5))
        batcher.offer(self.request(0, t=1.0))
        assert batcher.deadline("point") == 1.5
        generation = batcher.generation("point")
        batch = batcher.expire("point", 1.5, generation)
        assert batch is not None and batch.closed_by == "timeout"
        assert batch.size == 1

    def test_stale_deadline_is_noop(self):
        """A timer armed for a batch that already closed on size must
        not close the *next* batch early."""
        batcher = MicroBatcher(BatchPolicy(max_batch=2, max_wait_s=0.5))
        batcher.offer(self.request(0, t=0.0))
        stale = batcher.generation("point")
        assert batcher.offer(self.request(1, t=0.1)) is not None  # size
        batcher.offer(self.request(2, t=0.2))       # new open batch
        assert batcher.expire("point", 0.5, stale) is None
        assert batcher.pending("point") == 1

    def test_per_class_isolation(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=2, max_wait_s=1.0))
        batcher.offer(self.request(0, cls="point"))
        batcher.offer(self.request(1, cls="knn"))
        batch = batcher.offer(self.request(2, cls="point"))
        assert batch.query_class == "point"
        assert batcher.pending("knn") == 1

    def test_flush_drains_every_class(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=10, max_wait_s=1.0))
        batcher.offer(self.request(0, cls="point"))
        batcher.offer(self.request(1, cls="radius"))
        flushed = batcher.flush(5.0)
        assert sorted(b.query_class for b in flushed) == ["point", "radius"]
        assert all(b.closed_by == "flush" for b in flushed)
        assert batcher.pending() == 0

    def test_no_query_lost_or_duplicated_under_races(self):
        """Randomized size/timeout interleaving: every offered query
        lands in exactly one closed batch."""
        rng = random.Random(1234)
        policy = BatchPolicy(max_batch=4, max_wait_s=0.010)
        batcher = MicroBatcher(policy)
        classes = ("point", "range", "knn")
        armed = {}      # cls -> (deadline, generation)
        closed = []
        t = 0.0
        for seq in range(2000):
            t += rng.random() * 0.004
            # Fire every armed timer whose deadline passed — including
            # stale ones (the race under test).
            for cls in classes:
                if cls in armed and armed[cls][0] <= t:
                    deadline, generation = armed.pop(cls)
                    batch = batcher.expire(cls, deadline, generation)
                    if batch is not None:
                        closed.append(batch)
            cls = rng.choice(classes)
            before_open = batcher.generation(cls) is None
            request = QueryRequest(seq, cls, qid=seq % 8, t_arrival=t)
            batch = batcher.offer(request)
            if batch is not None:
                closed.append(batch)
            elif before_open:
                armed[cls] = (batcher.deadline(cls),
                              batcher.generation(cls))
        closed.extend(batcher.flush(t))
        seqs = [q.seq for b in closed for q in b.queries]
        assert len(seqs) == 2000
        assert len(set(seqs)) == 2000        # no duplicates
        assert set(seqs) == set(range(2000))  # no losses
        assert all(b.size <= policy.max_batch for b in closed)
        # Arrival order is preserved within each class.
        for batch in closed:
            batch_seqs = [q.seq for q in batch.queries]
            assert batch_seqs == sorted(batch_seqs)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_wait_s=-1.0)


# -- load generation ----------------------------------------------------------------
class TestLoadgen:
    def test_deterministic_schedule(self):
        profile = LoadProfile(qps=500, duration_s=0.5, warmup_s=0.1,
                              seed=7)
        first = generate_arrivals(profile)
        second = generate_arrivals(profile)
        assert first == second
        assert generate_arrivals(
            LoadProfile(qps=500, duration_s=0.5, warmup_s=0.1,
                        seed=8)) != first

    def test_warmup_tagging_and_horizon(self):
        profile = LoadProfile(qps=1000, duration_s=0.2, warmup_s=0.1,
                              seed=3)
        arrivals = generate_arrivals(profile)
        assert arrivals
        assert all(a.t < profile.total_s for a in arrivals)
        assert all(a.measured == (a.t >= 0.1) for a in arrivals)
        assert any(not a.measured for a in arrivals)
        assert any(a.measured for a in arrivals)

    def test_uniform_spacing(self):
        profile = LoadProfile(qps=100, duration_s=0.1, arrival="uniform",
                              mix={"point": 1.0}, seed=0)
        arrivals = generate_arrivals(profile)
        gaps = {round(b.t - a.t, 9)
                for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {0.01}

    def test_burst_mode_lands_back_to_back(self):
        profile = LoadProfile(qps=800, duration_s=0.5, arrival="burst",
                              burst_size=4, seed=2)
        arrivals = generate_arrivals(profile)
        assert len(arrivals) % 4 == 0
        times = [a.t for a in arrivals]
        assert times[0] == times[1] == times[2] == times[3]

    def test_qids_respect_capacities(self):
        profile = LoadProfile(qps=2000, duration_s=0.2,
                              mix={"point": 1.0}, seed=5)
        arrivals = generate_arrivals(profile, capacities={"point": 16})
        assert {a.query_class for a in arrivals} == {"point"}
        assert all(0 <= a.qid < 16 for a in arrivals)

    def test_mix_weights_shape_the_stream(self):
        profile = LoadProfile(qps=4000, duration_s=0.5,
                              mix={"point": 9.0, "knn": 1.0}, seed=11)
        arrivals = generate_arrivals(profile)
        share = sum(a.query_class == "point" for a in arrivals) \
            / len(arrivals)
        assert share > 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(qps=0)
        with pytest.raises(ConfigurationError):
            LoadProfile(mix={"nope": 1.0})
        with pytest.raises(ConfigurationError):
            LoadProfile(arrival="adversarial")
        with pytest.raises(ConfigurationError):
            LoadProfile(mix={"point": 0.0})

    def test_parse_mix(self):
        assert parse_mix("point,knn") == {"point": 1.0, "knn": 1.0}
        assert parse_mix("point=4,range=1") == {"point": 4.0, "range": 1.0}
        with pytest.raises(ConfigurationError):
            parse_mix("point=heavy")
        with pytest.raises(ConfigurationError):
            parse_mix(",")


class TestLoadgenDeterminism:
    """Same seed => identical arrival stream, for every arrival process.

    The resilience fault matrix and the overload demo both lean on this:
    a chaos run is only diagnosable if replaying the seed replays the
    exact offered load.
    """

    ARRIVALS = ("poisson", "uniform", "burst")

    def _profile(self, arrival, seed):
        return LoadProfile(qps=900.0, duration_s=0.3, warmup_s=0.1,
                           arrival=arrival, burst_size=4,
                           mix={"point": 2.0, "knn": 1.0, "range": 1.0},
                           seed=seed)

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_same_seed_same_signature(self, arrival):
        first = generate_arrivals(self._profile(arrival, seed=13))
        second = generate_arrivals(self._profile(arrival, seed=13))
        assert stream_signature(first) == stream_signature(second)

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_different_seed_different_signature(self, arrival):
        first = generate_arrivals(self._profile(arrival, seed=13))
        second = generate_arrivals(self._profile(arrival, seed=14))
        assert stream_signature(first) != stream_signature(second)

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_warmup_tagging_is_part_of_the_signature(self, arrival):
        profile = self._profile(arrival, seed=13)
        arrivals = generate_arrivals(profile)
        signature = stream_signature(arrivals)
        # The signature carries (t, class, qid, measured) per arrival...
        assert all(len(entry) == 4 for entry in signature)
        # ...and the measured flag is exactly the warmup cut.
        assert all(measured == (t >= profile.warmup_s)
                   for t, _, _, measured in signature)
        assert any(not measured for *_, measured in signature)
        assert any(measured for *_, measured in signature)


# -- percentiles --------------------------------------------------------------------
class TestPercentile:
    def test_nearest_rank(self):
        samples = sorted(float(v) for v in range(1, 101))
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile([3.0], 99) == 3.0
        assert percentile([], 50) == 0.0


# -- the virtual-time loadtest ------------------------------------------------------
class _StubBackend:
    """Launch backend double: fixed cycles, no simulation."""

    def __init__(self, platform="tta", cycles=1365.0):
        self.platform = platform
        self.cycles = cycles
        self.launched = []     # list of qid tuples, in dispatch order
        self.launches = 0
        self.degraded = 0

    def launch(self, index, qids, now=0.0):
        self.launches += 1
        self.launched.append(tuple(qids))
        return BatchLaunch(self.platform, index.query_class, len(qids),
                           self.cycles, {i: True for i in range(len(qids))},
                           stats=None)


class TestLoadtest:
    PROFILE = LoadProfile(qps=2000, duration_s=0.1, warmup_s=0.02,
                          mix={"point": 1.0}, seed=9)

    def test_every_measured_arrival_is_served_once(self, point_index):
        backend = _StubBackend()
        report = run_loadtest("tta", {"point": point_index}, self.PROFILE,
                              policy=BatchPolicy(max_batch=8,
                                                 max_wait_s=1e-3),
                              backend=backend)
        arrivals = generate_arrivals(
            self.PROFILE, {"point": point_index.n_canonical})
        measured = sum(a.measured for a in arrivals)
        assert report.offered == measured
        assert report.served == measured
        assert report.rejected == 0
        launched = sum(len(qids) for qids in backend.launched)
        assert launched == len(arrivals)

    def test_latency_includes_batching_wait_and_kernel(self, point_index):
        """One query, never joined: latency = max_wait + launch cost."""
        clock = ServiceClock(core_mhz=1365.0, launch_overhead_s=1e-5)
        profile = LoadProfile(qps=50, duration_s=0.1, mix={"point": 1.0},
                              arrival="uniform", seed=0)
        backend = _StubBackend(cycles=13650.0)   # 10us at 1365 MHz
        report = run_loadtest("tta", {"point": point_index}, profile,
                              policy=BatchPolicy(max_batch=64,
                                                 max_wait_s=5e-3),
                              clock=clock, backend=backend)
        # 50 qps uniform = 20ms gaps > 5ms wait: every batch is size 1.
        assert report.mean_batch_size == 1.0
        expected_ms = (5e-3 + 1e-5 + 10e-6) * 1e3
        for latency in report.all_latencies_ms():
            assert latency == pytest.approx(expected_ms, rel=1e-9)

    def test_deterministic_report(self, point_index):
        first = run_loadtest("tta", {"point": point_index}, self.PROFILE,
                             backend=_StubBackend())
        second = run_loadtest("tta", {"point": point_index}, self.PROFILE,
                              backend=_StubBackend())
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)

    def test_deterministic_with_real_backend(self, point_index):
        """End-to-end determinism: real simulated launches included."""
        profile = LoadProfile(qps=800, duration_s=0.05, mix={"point": 1.0},
                              seed=4)
        reports = [run_loadtest("tta", {"point": point_index}, profile)
                   for _ in range(2)]
        assert reports[0].to_dict() == reports[1].to_dict()
        assert reports[0].sim_cycles > 0

    def test_admission_control_rejects_over_capacity(self, point_index):
        profile = LoadProfile(qps=5000, duration_s=0.05,
                              mix={"point": 1.0}, seed=1)
        report = run_loadtest("tta", {"point": point_index}, profile,
                              policy=BatchPolicy(max_batch=4,
                                                 max_wait_s=1e-3),
                              max_pending=8,
                              backend=_StubBackend(cycles=1e7))
        assert report.rejected > 0
        arrivals = generate_arrivals(
            profile, {"point": point_index.n_canonical})
        assert report.served + report.rejected <= len(arrivals)

    def test_sharding_uses_all_devices(self, point_index):
        backend = _StubBackend()
        report = run_loadtest("tta", {"point": point_index}, self.PROFILE,
                              policy=BatchPolicy(max_batch=8,
                                                 max_wait_s=2e-3),
                              n_shards=4, backend=backend)
        assert report.served > 0
        sizes = {len(qids) for qids in backend.launched}
        assert max(sizes) <= 2   # 8-query batches over 4 shards

    def test_serve_trace_events_emitted(self, point_index):
        from repro import obs

        tracer = obs.Tracer(capacity=100_000)
        run_loadtest("tta", {"point": point_index}, self.PROFILE,
                     backend=_StubBackend(), tracer=tracer)
        names = {e[2] for e in tracer.events()}
        assert {"enqueue", "batch", "launch", "complete"} <= names
        assert {e[0] for e in tracer.events()} == {"serve"}
        # serve events survive the Chrome exporter
        doc = obs.chrome_trace(tracer)
        assert any(ev.get("cat") == "serve"
                   for ev in doc["traceEvents"])

    def test_profile_class_without_index_rejected(self, point_index):
        profile = LoadProfile(qps=100, duration_s=0.1,
                              mix={"point": 1.0, "knn": 1.0})
        with pytest.raises(ConfigurationError):
            run_loadtest("tta", {"point": point_index}, profile)

    def test_max_batch_over_capacity_rejected(self, point_index):
        with pytest.raises(ConfigurationError):
            run_loadtest("tta", {"point": point_index}, self.PROFILE,
                         policy=BatchPolicy(
                             max_batch=point_index.capacity + 1))

    def test_qps_sweep_shape(self, point_index):
        sweep = run_qps_sweep(
            ["tta"], [100.0, 400.0], {"point": point_index},
            LoadProfile(qps=100, duration_s=0.05, mix={"point": 1.0},
                        seed=2))
        assert list(sweep["curves"]) == ["tta"]
        rows = sweep["curves"]["tta"]
        assert [row["qps"] for row in rows] == [100.0, 400.0]
        for row in rows:
            assert {"p50_ms", "p95_ms", "p99_ms"} <= set(row["latency_ms"])
            assert row["achieved_qps"] > 0


# -- per-platform equivalence with the one-shot harness -----------------------------
class TestServeEquivalence:
    @pytest.mark.parametrize("platform", SERVE_PLATFORMS)
    def test_point_serve_path_matches_one_shot(self, platform, point_index):
        """Full-canonical-stream batch through the serve backend is
        byte-identical to the one-shot harness runner: same results,
        same simulated cycles."""
        backend = LaunchBackend(platform)
        launch = backend.launch(point_index,
                                list(range(point_index.n_canonical)))
        one_shot = run_btree(point_index.workload, platform=platform)
        wl = point_index.workload
        serve_results = [launch.results[i]
                         for i in range(point_index.n_canonical)]
        assert serve_results == list(wl.golden)
        assert launch.cycles == one_shot.stats.cycles
        assert launch.engine == "fast"

    @pytest.mark.parametrize("query_class,runner", [
        ("range", run_rtree), ("knn", run_knn)])
    def test_other_classes_match_one_shot_on_tta(self, query_class, runner):
        index = build_resident_index(query_class, TINY[query_class])
        launch = LaunchBackend("tta").launch(
            index, list(range(index.n_canonical)))
        one_shot = runner(index.workload, platform="tta")
        assert launch.cycles == one_shot.stats.cycles

    def test_subset_batches_return_golden_results(self, point_index):
        """Arbitrary batch subsets (the serving case) stay correct —
        including repeat qids across batches (memoized lowering)."""
        backend = LaunchBackend("ttaplus")
        wl = point_index.workload
        for qids in ([5, 3, 60], [3, 5, 9, 11], [5, 3, 60]):
            launch = backend.launch(point_index, qids)
            for slot, qid in enumerate(qids):
                assert launch.results[slot] == wl.golden[qid]

    def test_backend_rejects_wrong_platform(self, point_index):
        with pytest.raises(ConfigurationError):
            LaunchBackend("rta").launch(point_index, [0, 1])

    def test_backend_config_matches_runner_policy(self, point_index):
        backend = LaunchBackend("tta")
        config = backend.config_for(point_index)
        expected = scaled_config_for(point_index.workload.image.size_bytes)
        assert config.l2_size == expected.l2_size
        assert config.n_sms == expected.n_sms


# -- guard degradation --------------------------------------------------------------
class TestGuardDegradation:
    @pytest.fixture(autouse=True)
    def _poison(self, monkeypatch):
        # The stall fault only arms on the fast engine; legacy retry
        # must genuinely recover (see repro/guard/faults.py).
        monkeypatch.setenv("REPRO_SIM_CORE", "fast")
        monkeypatch.setenv("REPRO_FAULTS", "stall:query=3")
        monkeypatch.setenv("REPRO_GUARD_STALL_EVENTS", "10000")
        monkeypatch.setenv("REPRO_GUARD_CHECK_EVENTS", "2000")

    def test_poisoned_batch_degrades_to_legacy(self, point_index):
        from repro.guard import Guard, GuardConfig

        backend = LaunchBackend(
            "tta", guard=Guard(GuardConfig(mode="on")))
        # Slot 3 of any >=4-query batch trips the injected stall.
        launch = backend.launch(point_index, [10, 11, 12, 13, 14])
        assert launch.engine == "legacy"
        assert "SimulationStallError" in launch.error
        assert backend.degraded == 1
        wl = point_index.workload
        for slot, qid in enumerate([10, 11, 12, 13, 14]):
            assert launch.results[slot] == wl.golden[qid]

    def test_small_batches_stay_on_fast_engine(self, point_index):
        from repro.guard import Guard, GuardConfig

        backend = LaunchBackend(
            "tta", guard=Guard(GuardConfig(mode="on")))
        launch = backend.launch(point_index, [10, 11, 12])
        assert launch.engine == "fast"
        assert backend.degraded == 0

    def test_loadtest_counts_degraded_batches(self, point_index):
        from repro.guard import Guard, GuardConfig

        profile = LoadProfile(qps=400, duration_s=0.05,
                              mix={"point": 1.0}, seed=6)
        report = run_loadtest(
            "tta", {"point": point_index}, profile,
            policy=BatchPolicy(max_batch=8, max_wait_s=20e-3),
            guard=Guard(GuardConfig(mode="on")))
        assert report.served > 0
        assert report.degraded_batches > 0
        assert report.metrics.get("serve.degraded_batches") == \
            report.degraded_batches


# -- the exec build cache -----------------------------------------------------------
class TestBuildCache:
    def test_round_trip_and_reuse(self, tmp_path):
        cache = ResultCache(tmp_path)
        built = build_resident_index("point", TINY["point"], cache=cache)
        assert not built.from_cache
        assert cache.stats()["builds"] == 1
        reloaded = build_resident_index("point", TINY["point"], cache=cache)
        assert reloaded.from_cache
        assert reloaded.workload.golden == built.workload.golden
        # The reloaded build serves identical results.
        launch = LaunchBackend("tta").launch(reloaded, [0, 1, 2, 3])
        for slot in range(4):
            assert launch.results[slot] == built.workload.golden[slot]

    def test_deep_tree_builds_survive_pickling(self, tmp_path):
        """A B-Tree big enough to blow the default recursion limit
        still round-trips (the serve presets are all deeper)."""
        cache = ResultCache(tmp_path)
        params = dict(n_keys=16384, n_queries=32)
        built = build_resident_index("point", params, cache=cache)
        assert cache.stats()["builds"] == 1
        assert build_resident_index("point", params,
                                    cache=cache).from_cache

    def test_key_excludes_platform_and_config(self):
        """Build keys fold construction params + dataset fingerprint
        only — no platform, no GPU config, no RunSpec."""
        key = build_key("btree", {"n_keys": 512, "n_queries": 64})
        assert key == build_key("btree", {"n_queries": 64, "n_keys": 512})
        assert key != build_key("btree", {"n_keys": 1024, "n_queries": 64})
        assert key != build_key("rtree", {"n_keys": 512, "n_queries": 64})
        assert len(key) == 64
        assert build_fingerprint() in json.dumps(
            {"build": build_fingerprint()})  # fingerprint is stable

    def test_corrupt_build_quarantined_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = build_key("btree", dict(TINY["point"]))
        build_resident_index("point", TINY["point"], cache=cache)
        pkl, _ = cache._build_paths(key)
        pkl.write_bytes(b"garbage")
        assert cache.get_build(key) is None
        assert (tmp_path / "corrupt" / pkl.name).exists()
        assert cache.stats()["builds"] == 0

    def test_unpicklable_build_is_soft_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put_build("ab" * 32, lambda: None) is False
        assert cache.stats()["builds"] == 0

    def test_clear_removes_builds(self, tmp_path):
        cache = ResultCache(tmp_path)
        build_resident_index("point", TINY["point"], cache=cache)
        assert cache.clear() == 1
        assert cache.stats()["builds"] == 0


# -- asyncio service ----------------------------------------------------------------
class TestServeService:
    def test_queries_batch_and_match_golden(self, point_index):
        import asyncio

        from repro.serve import ServeService

        async def main():
            service = ServeService(
                {"point": point_index}, platform="tta",
                policy=BatchPolicy(max_batch=8, max_wait_s=0.02))
            async with service:
                responses = await asyncio.gather(
                    *[service.query("point", qid=i) for i in range(12)])
            return service, responses

        service, responses = asyncio.run(main())
        wl = point_index.workload
        assert all(r.result == wl.golden[r.qid] for r in responses)
        assert all(r.engine == "fast" for r in responses)
        assert max(r.batch_size for r in responses) > 1
        assert service.stats()["queries_served"] == 12

    def test_bad_requests_rejected(self, point_index):
        import asyncio

        from repro.serve import ServeService

        async def main():
            service = ServeService({"point": point_index}, platform="tta")
            with pytest.raises(ConfigurationError):
                await service.query("point", qid=0)   # not started
            async with service:
                with pytest.raises(ConfigurationError):
                    await service.query("knn", qid=0)
                with pytest.raises(ConfigurationError):
                    await service.query("point")
                with pytest.raises(ConfigurationError):
                    await service.query("point", qid=10**6)

        asyncio.run(main())


# -- obs TimeSeries retention bound -------------------------------------------------
class TestTimeSeriesBound:
    def test_eviction_beyond_max_buckets(self):
        from repro.obs import TimeSeries

        series = TimeSeries(bucket=1.0, max_buckets=4)
        for t in range(10):
            series.add(float(t), 1.0)
        assert len(series.values) == 4
        assert series.dropped_buckets == 6
        assert min(series.values) == 6     # oldest evicted first
        assert series.as_dict()["dropped_buckets"] == 6

    def test_unbounded_when_disabled(self):
        from repro.obs import TimeSeries

        series = TimeSeries(bucket=1.0, max_buckets=None)
        for t in range(100):
            series.add(float(t), 1.0)
        assert len(series.values) == 100

    def test_old_pickles_gain_defaults(self):
        from repro.obs import DEFAULT_MAX_BUCKETS, TimeSeries

        series = pickle.loads(pickle.dumps(TimeSeries(bucket=2.0)))
        assert series.max_buckets == DEFAULT_MAX_BUCKETS
        # A pre-bound pickle payload (no max_buckets slot) restores too.
        series.__setstate__((None, {"bucket": 8.0, "values": {1: 3.0}}))
        assert series.bucket == 8.0
        assert series.max_buckets == DEFAULT_MAX_BUCKETS
        assert series.dropped_buckets == 0
