"""The µop intersection-test programs of Table III.

Every row of Table III is reproduced here as a named
:class:`UopProgram`; ``tests/test_table3.py`` checks the per-unit µop
counts against the table, and ``benchmarks/bench_table3_uops.py``
regenerates it.  Programs execute serially through the OP units — the
modular design trades the fixed-function pipelines' internal
parallelism for programmability (§III-C).
"""

from typing import Dict, List, Sequence

from repro.errors import ProgramError
from repro.core.ttaplus.uop import Uop


class UopProgram:
    """A named, ordered µop sequence (one intersection test)."""

    def __init__(self, name: str, uops: Sequence[Uop]):
        if not uops:
            raise ProgramError(f"program {name!r} has no µops")
        self.name = name
        self.uops: List[Uop] = [Uop.validate(u.unit) for u in uops]

    def __len__(self) -> int:
        return len(self.uops)

    def unit_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for uop in self.uops:
            counts[uop.unit] = counts.get(uop.unit, 0) + 1
        return counts

    def __repr__(self) -> str:
        return f"UopProgram({self.name}, {len(self.uops)} µops)"


def _prog(name: str, *unit_sequence: str) -> UopProgram:
    return UopProgram(name, [Uop(u) for u in unit_sequence])


#: Table III, row by row.  Unit mix per row matches the table's columns;
#: the serial order is the natural dataflow order of each algorithm.
PROGRAMS: Dict[str, UopProgram] = {
    # B-Tree / B*Tree / B+Tree — Inner (Query-Key): 12 µops
    # 6 MIN/MAX + 3 Vec3 CMP + 3 Vec3 OR.  Same-unit µops are grouped so
    # they execute back-to-back inside the unit (one interconnect
    # crossing per run, §III-C).
    "btree_inner": _prog(
        "btree_inner",
        "minmax", "minmax", "minmax",
        "maxmin", "maxmin", "maxmin",
        "vec3_cmp", "vec3_cmp", "vec3_cmp",
        "logical", "logical", "logical",
    ),
    # B-Tree leaf (Query-Key equality scan): 3 µops, 3 Vec3 CMP
    "btree_leaf": _prog("btree_leaf", "vec3_cmp", "vec3_cmp", "vec3_cmp"),
    # N-Body inner (Point-to-Point distance): 3 µops — SUB, DOT, CMP
    "nbody_inner": _prog("nbody_inner", "vec3_addsub", "dot", "vec3_cmp"),
    # N-Body leaf (force computation): 5 µops — 3 MUL + SQRT + R-XFORM
    # (the paper folds three multiplies into one R-XFORM where possible)
    "nbody_leaf": _prog("nbody_leaf", "mul", "mul", "mul", "sqrt", "rxform"),
    # Ray-Box (RTNN / WKND_PT / LumiBench inner): 19 µops —
    # 2 Vec3 SUB + 6 MUL + 3 RCP + 6 MIN/MAX + 1 Vec3 CMP + 1 Vec3 OR
    "raybox": _prog(
        "raybox",
        "vec3_addsub", "vec3_addsub",
        "rcp", "rcp", "rcp",
        "mul", "mul", "mul", "mul", "mul", "mul",
        "minmax", "minmax", "minmax",
        "maxmin", "maxmin", "maxmin",
        "vec3_cmp", "logical",
    ),
    # RTNN leaf (Point-to-Point distance): 5 µops —
    # 1 Vec3 SUB + 1 MUL + 1 DOT + 1 Vec3 CMP + 1 Vec3 OR
    "rtnn_leaf": _prog(
        "rtnn_leaf", "vec3_addsub", "mul", "dot", "vec3_cmp", "logical",
    ),
    # WKND_PT leaf (Ray-Sphere): 18 µops —
    # 5 Vec3 SUB + 5 MUL + 1 SQRT + 1 RCP + 3 DOT + 2 Vec3 CMP + 1 Vec3 OR
    "raysphere": _prog(
        "raysphere",
        "vec3_addsub", "vec3_addsub", "vec3_addsub", "vec3_addsub",
        "vec3_addsub",
        "dot", "dot", "dot",
        "mul", "mul", "mul", "mul", "mul",
        "sqrt", "rcp",
        "vec3_cmp", "vec3_cmp", "logical",
    ),
    # LumiBench leaf (Ray-Tri, Möller-Trumbore): 17 µops —
    # 3 Vec3 SUB + 3 MUL + 1 RCP + 2 CROSS + 4 DOT + 2 Vec3 CMP + 2 Vec3 OR
    "raytri": _prog(
        "raytri",
        "vec3_addsub", "vec3_addsub", "vec3_addsub",
        "cross", "dot", "rcp",
        "cross", "dot", "dot", "dot",
        "mul", "mul", "mul",
        "vec3_cmp", "logical", "vec3_cmp", "logical",
    ),
    # Two-level BVH crossing: a single ray transform.
    "xform": _prog("xform", "rxform"),
    # --- extensions beyond Table III (enabled by TTA+ programmability) ---
    # k-d tree kNN inner test: plane delta, plane compare, prune compare.
    "knn_inner": _prog("knn_inner", "vec3_addsub", "vec3_cmp", "vec3_cmp"),
}


def program_named(name: str) -> UopProgram:
    try:
        return PROGRAMS[name]
    except KeyError:
        raise ProgramError(
            f"no µop program named {name!r}; known programs: "
            f"{sorted(PROGRAMS)}"
        )


def register_program(program: UopProgram, replace: bool = False) -> None:
    """Install a user-defined intersection test (the ConfigI/ConfigL path)."""
    if program.name in PROGRAMS and not replace:
        raise ProgramError(f"program {program.name!r} already registered")
    PROGRAMS[program.name] = program
