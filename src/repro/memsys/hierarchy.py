"""Timing model of the L1 → L2 → DRAM hierarchy.

Completion times are computed analytically when a request arrives:
every contended stage (per-SM LDST sector throughput, shared L2 port,
DRAM channel) is an occupancy timeline, so queueing delay emerges from
arrival order without per-cycle events.  Outstanding-miss merging
(MSHR behaviour) is modelled at line granularity: a second request to a
line already in flight piggybacks on the first fill and generates no
extra DRAM traffic.
"""

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.memsys.cache import Cache
from repro.memsys.coalescer import coalesce_sectors
from repro.sim.engine import Simulator
from repro.sim.resources import ThroughputResource

if TYPE_CHECKING:
    # Import-time would close the memsys <-> gpu cycle: gpu.sm imports
    # this module for its own annotations.  GPUConfig is annotation-only
    # here, so keep the runtime import graph acyclic.
    from repro.gpu.config import GPUConfig


class MemoryHierarchy:
    """Shared L2 + DRAM; per-SM L1s are created via :meth:`make_l1`."""

    def __init__(self, sim: Simulator, config: "GPUConfig"):
        self.sim = sim
        self.config = config
        self.l2 = Cache("L2", config.l2_size, config.l2_assoc, config.line_size)
        self.l2_port = ThroughputResource(
            "l2_port", per_cycle=config.l2_bytes_per_cycle)
        self.dram = ThroughputResource(
            "dram", per_cycle=config.dram_bytes_per_cycle)
        #: line address -> completion time of the in-flight fill
        self._inflight: Dict[int, float] = {}
        self.sector_requests = 0
        self.sector_responses = 0
        self.mshr_merges = 0
        # Cached tracer (repro.obs): L2 hits and DRAM fills are traced;
        # L1 hits are not (they dominate the request stream and carry
        # no contention information).
        self.trace = getattr(sim, "tracer", None)

    def make_l1(self, sm_id: int) -> Cache:
        return Cache(f"L1[{sm_id}]", self.config.l1_size,
                     self.config.l1_assoc, self.config.line_size)

    # -- access paths -----------------------------------------------------------
    def access_sectors(self, now: float, l1: Cache,
                       sector_addrs: Iterable[int]) -> float:
        """Serve a list of sector reads; return when the *last* one is ready."""
        ready = now
        access_one = self._access_one
        served = 0
        for sector in sector_addrs:
            done = access_one(now, l1, sector)
            served += 1
            if done > ready:
                ready = done
        # Request/response conservation (repro.guard): every sector
        # request issued above produced a completion time.
        self.sector_responses += served
        return ready

    def access(self, now: float, l1: Cache,
               requests: List[Tuple[int, int]]) -> float:
        """Serve ``(addr, size)`` requests after coalescing into sectors."""
        sectors = coalesce_sectors(requests, self.config.sector_size)
        return self.access_sectors(now, l1, sectors)

    def _access_one(self, now: float, l1: Cache, sector: int) -> float:
        # Caches are probed with Cache.touch (probe + fill fused): the
        # seed code filled the probed cache on every miss branch anyway,
        # so the tag/LRU state transitions are identical.
        cfg = self.config
        self.sector_requests += 1
        if l1 is not None and l1.touch(sector):
            return now + cfg.l1_latency
        # L1 miss: the line may already be on its way (from this or any SM).
        line = sector - sector % cfg.line_size
        inflight = self._inflight.get(line)
        if inflight is not None and inflight > now:
            self.mshr_merges += 1
            return inflight
        if self.l2.touch(sector):
            done = self.l2_port.transfer(now, cfg.sector_size) \
                + cfg.l2_latency
            if self.trace is not None:
                self.trace.emit("memsys", "l2", "hit", now, done - now,
                                sector)
            return done
        # L2 miss: fetch a full line from DRAM (L2 and L1 already filled).
        l2_ready = self.l2_port.transfer(now, cfg.sector_size) + cfg.l2_latency
        done = self.dram.transfer(l2_ready, cfg.line_size) + cfg.dram_latency
        self._inflight[line] = done
        if self.trace is not None:
            self.trace.emit("memsys", "dram", "fill", now, done - now, line)
        return done

    # -- guard interface -----------------------------------------------------
    def guard_state(self) -> dict:
        return {
            "sector_requests": self.sector_requests,
            "sector_responses": self.sector_responses,
            "inflight_lines": len(self._inflight),
        }

    # -- statistics ----------------------------------------------------------
    def dram_utilization(self, end: float) -> float:
        return self.dram.utilization(end)

    def dram_bytes(self) -> float:
        return self.dram.bytes_moved

    def stats(self, end: float) -> Dict[str, float]:
        return {
            "sector_requests": self.sector_requests,
            "mshr_merges": self.mshr_merges,
            "l2_accesses": self.l2.accesses,
            "l2_hit_rate": self.l2.hit_rate,
            "dram_bytes": self.dram.bytes_moved,
            "dram_requests": self.dram.requests,
            "dram_utilization": self.dram_utilization(end),
        }
