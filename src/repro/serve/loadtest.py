"""Deterministic virtual-time loadtest: the measured serving core.

The loadtest replays an open-loop arrival schedule
(:mod:`repro.serve.loadgen`) against resident indexes on one platform
and reports latency percentiles — entirely in *virtual time*.  No real
sleeps, no real clocks: arrivals, batch deadlines, device occupancy,
and completions all live on one simulated wall-clock timeline, so a
given ``(profile, platform, policy)`` triple always produces the same
percentiles, byte for byte.

The event loop is a plain heap of ``(t, seq)``-ordered events:

* **arrival** — admission check, then offer to the
  :class:`~repro.serve.batcher.MicroBatcher`; a batch that closes on
  size dispatches immediately,
* **deadline** — generation-checked timeout closure of an open batch.

Dispatch shards a closed batch across ``n_shards`` simulated devices:
each shard runs as one kernel launch through the platform's
:class:`~repro.serve.backends.LaunchBackend` (real simulated cycles),
lands on the earliest-free device, and occupies it for
``clock.launch_seconds(cycles)``.  A query's latency is
``completion - arrival`` where completion is the max over its batch's
shard finish times — queueing delay, batching wait, and simulated
kernel time all included, which is exactly what an open-loop load test
is supposed to surface (MODEL.md §10).
"""

import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.serve.backends import LaunchBackend
from repro.serve.batcher import Batch, BatchPolicy, MicroBatcher, QueryRequest
from repro.serve.clock import DEFAULT_CLOCK, ServiceClock
from repro.serve.index import ResidentIndex
from repro.serve.loadgen import LoadProfile, generate_arrivals

#: Percentiles every report carries.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over a *sorted* sample list."""
    if not samples:
        return 0.0
    if not 0.0 < pct <= 100.0:
        raise ConfigurationError(f"percentile out of range: {pct}")
    rank = max(1, -(-len(samples) * pct // 100.0))  # ceil
    return samples[int(rank) - 1]


@dataclass
class ClassReport:
    """Latency summary for one query class."""

    query_class: str
    served: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        ordered = sorted(self.latencies_ms)
        out: Dict[str, Any] = {"served": self.served}
        for pct in REPORT_PERCENTILES:
            out[f"p{pct:g}_ms"] = percentile(ordered, pct)
        if ordered:
            out["mean_ms"] = sum(ordered) / len(ordered)
            out["max_ms"] = ordered[-1]
        return out


@dataclass
class LoadtestReport:
    """One platform × profile loadtest result."""

    platform: str
    profile: LoadProfile
    n_shards: int
    policy: BatchPolicy
    classes: Dict[str, ClassReport] = field(default_factory=dict)
    offered: int = 0              # measured-window arrivals
    served: int = 0               # measured-window completions
    rejected: int = 0
    batches: int = 0
    degraded_batches: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    sim_cycles: float = 0.0       # total simulated kernel cycles
    t_end: float = 0.0            # virtual time of the last completion
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def offered_qps(self) -> float:
        return self.offered / self.profile.duration_s

    @property
    def achieved_qps(self) -> float:
        return self.served / self.profile.duration_s

    @property
    def mean_batch_size(self) -> float:
        return (sum(self.batch_sizes) / len(self.batch_sizes)
                if self.batch_sizes else 0.0)

    def all_latencies_ms(self) -> List[float]:
        out: List[float] = []
        for report in self.classes.values():
            out.extend(report.latencies_ms)
        out.sort()
        return out

    def to_dict(self) -> Dict[str, Any]:
        ordered = self.all_latencies_ms()
        overall: Dict[str, Any] = {}
        for pct in REPORT_PERCENTILES:
            overall[f"p{pct:g}_ms"] = percentile(ordered, pct)
        return {
            "platform": self.platform,
            "qps": self.profile.qps,
            "arrival": self.profile.arrival,
            "duration_s": self.profile.duration_s,
            "warmup_s": self.profile.warmup_s,
            "seed": self.profile.seed,
            "n_shards": self.n_shards,
            "policy": {"max_batch": self.policy.max_batch,
                       "max_wait_s": self.policy.max_wait_s},
            "offered": self.offered,
            "served": self.served,
            "rejected": self.rejected,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "batches": self.batches,
            "degraded_batches": self.degraded_batches,
            "mean_batch_size": self.mean_batch_size,
            "sim_cycles": self.sim_cycles,
            "latency_ms": overall,
            "classes": {cls: report.summary()
                        for cls, report in sorted(self.classes.items())},
        }


class _Devices:
    """Earliest-free assignment over ``n`` simulated devices."""

    def __init__(self, n: int):
        self.free_at = [0.0] * n

    def assign(self, ready: float, duration: float) -> float:
        """Occupy the earliest-free device; returns the finish time."""
        slot = min(range(len(self.free_at)), key=self.free_at.__getitem__)
        start = max(ready, self.free_at[slot])
        finish = start + duration
        self.free_at[slot] = finish
        return finish


def _shard(qids: Sequence[int], n_shards: int) -> List[List[int]]:
    n = min(n_shards, len(qids))
    base, extra = divmod(len(qids), n)
    shards, at = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        shards.append(list(qids[at:at + size]))
        at += size
    return shards


def run_loadtest(platform: str,
                 indexes: Dict[str, ResidentIndex],
                 profile: LoadProfile,
                 policy: Optional[BatchPolicy] = None,
                 clock: ServiceClock = DEFAULT_CLOCK,
                 n_shards: int = 1,
                 max_pending: Optional[int] = None,
                 backend: Optional[LaunchBackend] = None,
                 guard=None,
                 tracer=None) -> LoadtestReport:
    """Replay one open-loop profile against ``indexes`` on ``platform``.

    ``indexes`` must cover every class in the profile's mix.
    ``max_pending`` is optional admission control: an arrival that finds
    that many queries still in flight is rejected (counted, not served).
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    policy = policy or BatchPolicy()
    for cls in profile.classes():
        if cls not in indexes:
            raise ConfigurationError(
                f"profile mixes query class {cls!r} but no resident "
                f"index was built for it")
        if policy.max_batch > indexes[cls].capacity:
            raise ConfigurationError(
                f"max_batch {policy.max_batch} exceeds the {cls!r} "
                f"index's buffer capacity {indexes[cls].capacity}")
    if backend is None:
        backend = LaunchBackend(platform, guard=guard)
    elif backend.platform != platform:
        raise ConfigurationError(
            f"backend is for {backend.platform!r}, loadtest for "
            f"{platform!r}")

    capacities = {cls: idx.n_canonical for cls, idx in indexes.items()}
    arrivals = generate_arrivals(profile, capacities)

    report = LoadtestReport(platform, profile, n_shards, policy)
    registry = MetricsRegistry()
    batcher = MicroBatcher(policy)
    devices = _Devices(n_shards)
    # Arrival index of every query still in flight, popped as virtual
    # time passes its completion (admission control's "pending" count).
    in_flight: List[float] = []
    degraded_before = backend.degraded

    events: List[tuple] = []
    seq = 0
    for arrival in arrivals:
        events.append((arrival.t, seq, "arrival", arrival))
        seq += 1
    heapq.heapify(events)

    def note(name: str, delta: float = 1.0) -> None:
        registry.add(name, delta)

    def emit(name: str, t: float, dur_s: float = 0.0, arg=None) -> None:
        if tracer is not None:
            tracer.emit("serve", platform, name, clock.cycles(t),
                        clock.cycles(dur_s) if dur_s else 0.0, arg)

    def dispatch(batch: Batch) -> None:
        index = indexes[batch.query_class]
        report.batches += 1
        report.batch_sizes.append(batch.size)
        note("serve.batches")
        note(f"serve.batch.{batch.closed_by}")
        registry.histogram("serve.batch_size").observe(batch.size)
        emit("batch", batch.t_close, arg={
            "class": batch.query_class, "size": batch.size,
            "closed_by": batch.closed_by})
        finishes: List[float] = []
        for shard_qids in _shard(batch.qids, n_shards):
            launch = backend.launch(index, shard_qids)
            report.sim_cycles += launch.cycles
            duration = clock.launch_seconds(launch.cycles)
            finish = devices.assign(batch.t_close, duration)
            finishes.append(finish)
            note("serve.launches")
            note("serve.sim_cycles", launch.cycles)
            emit("launch", finish - duration, duration, arg={
                "class": batch.query_class, "queries": len(shard_qids),
                "cycles": launch.cycles, "engine": launch.engine})
        t_done = max(finishes)
        report.t_end = max(report.t_end, t_done)
        emit("complete", t_done, arg={"class": batch.query_class,
                                      "size": batch.size})
        for query in batch.queries:
            heapq.heappush(in_flight, t_done)
            arrival = query.payload  # the Arrival this request wraps
            if arrival.measured:
                report.served += 1
                note("serve.queries_served")
                latency_ms = (t_done - query.t_arrival) * 1e3
                cls_report = report.classes.setdefault(
                    batch.query_class, ClassReport(batch.query_class))
                cls_report.served += 1
                cls_report.latencies_ms.append(latency_ms)
                registry.histogram("serve.latency_ms").observe(latency_ms)

    while events:
        t, _, kind, payload = heapq.heappop(events)
        while in_flight and in_flight[0] <= t:
            heapq.heappop(in_flight)
        if kind == "arrival":
            note("serve.queries_offered")
            if payload.measured:
                report.offered += 1
            if max_pending is not None and \
                    len(in_flight) + batcher.pending() >= max_pending:
                report.rejected += 1
                note("serve.queries_rejected")
                continue
            emit("enqueue", t, arg={"class": payload.query_class,
                                    "qid": payload.qid})
            request = QueryRequest(seq, payload.query_class, payload.qid,
                                   payload=payload, t_arrival=t)
            seq += 1
            had_open = batcher.generation(payload.query_class) is not None
            closed = batcher.offer(request)
            if closed is not None:
                dispatch(closed)
            elif not had_open:
                # This arrival opened a new batch: arm its timeout.
                deadline = batcher.deadline(payload.query_class)
                generation = batcher.generation(payload.query_class)
                heapq.heappush(events, (deadline, seq, "deadline",
                                        (payload.query_class, generation)))
                seq += 1
        else:  # deadline (stale ones no-op via the generation token)
            cls, generation = payload
            closed = batcher.expire(cls, t, generation)
            if closed is not None:
                dispatch(closed)

    for batch in batcher.flush(report.t_end):   # defensive; heap drains all
        dispatch(batch)

    report.degraded_batches = backend.degraded - degraded_before
    registry.set("serve.degraded_batches", report.degraded_batches)
    registry.set("serve.offered_qps", report.offered_qps)
    registry.set("serve.achieved_qps", report.achieved_qps)
    report.metrics = registry.snapshot()
    return report


def run_qps_sweep(platforms: Sequence[str],
                  qps_values: Sequence[float],
                  indexes: Dict[str, ResidentIndex],
                  profile: LoadProfile,
                  policy: Optional[BatchPolicy] = None,
                  clock: ServiceClock = DEFAULT_CLOCK,
                  n_shards: int = 1,
                  guard=None,
                  progress=None) -> Dict[str, Any]:
    """QPS-vs-latency curves: one loadtest per (platform, qps) point.

    Resident indexes are shared across every leg — the build cache's
    whole point — and each platform keeps one backend so its per-index
    scaled config is derived once.  Returns the ``repro loadtest`` JSON
    shape: ``{"curves": {platform: [point, ...]}, ...}``.
    """
    curves: Dict[str, List[Dict[str, Any]]] = {}
    for platform in platforms:
        backend = LaunchBackend(platform, guard=guard)
        rows: List[Dict[str, Any]] = []
        for qps in qps_values:
            if progress is not None:
                progress(platform, qps)
            report = run_loadtest(
                platform, indexes, replace(profile, qps=qps),
                policy=policy, clock=clock, n_shards=n_shards,
                backend=backend, guard=guard)
            rows.append(report.to_dict())
        curves[platform] = rows
    return {
        "profile": {
            "arrival": profile.arrival,
            "duration_s": profile.duration_s,
            "warmup_s": profile.warmup_s,
            "mix": dict(profile.mix),
            "seed": profile.seed,
        },
        "policy": {
            "max_batch": (policy or BatchPolicy()).max_batch,
            "max_wait_s": (policy or BatchPolicy()).max_wait_s,
        },
        "clock": {"core_mhz": clock.core_mhz,
                  "launch_overhead_s": clock.launch_overhead_s},
        "n_shards": n_shards,
        "qps_values": list(qps_values),
        "curves": curves,
    }
