"""Unit tests for geometric primitives and intersection tests."""

import math
import random

import numpy as np
import pytest

from repro.geometry import (
    AABB,
    Ray,
    Sphere,
    Triangle,
    Vec3,
    aabbs_soa,
    contains_points_batch,
    cross,
    dot,
    point_distance_below,
    point_distance_below_batch,
    points_soa,
    ray_aabb_intersect,
    ray_aabb_slab_batch,
    ray_sphere_batch,
    ray_sphere_intersect,
    ray_triangle_batch,
    ray_triangle_intersect,
    rays_soa,
    spheres_soa,
    triangles_soa,
)


class TestVec3:
    def test_arithmetic(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert a + b == Vec3(5, 7, 9)
        assert b - a == Vec3(3, 3, 3)
        assert a * 2 == Vec3(2, 4, 6)
        assert 2 * a == Vec3(2, 4, 6)
        assert b / 2 == Vec3(2, 2.5, 3)
        assert -a == Vec3(-1, -2, -3)

    def test_dot_and_cross(self):
        assert dot(Vec3(1, 2, 3), Vec3(4, 5, 6)) == 32
        assert cross(Vec3(1, 0, 0), Vec3(0, 1, 0)) == Vec3(0, 0, 1)
        # Cross product is perpendicular to both inputs.
        a, b = Vec3(1, 2, 3), Vec3(-2, 0.5, 4)
        c = cross(a, b)
        assert dot(c, a) == pytest.approx(0)
        assert dot(c, b) == pytest.approx(0)

    def test_length_and_normalize(self):
        v = Vec3(3, 4, 0)
        assert v.length() == 5
        assert v.length_squared() == 25
        assert v.normalized().length() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3().normalized()

    def test_component_access(self):
        v = Vec3(7, 8, 9)
        assert [v.component(i) for i in range(3)] == [7, 8, 9]
        with pytest.raises(IndexError):
            v.component(3)


class TestAABB:
    def test_union_and_containment(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(2, 2, 2), Vec3(3, 3, 3))
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)
        assert u.contains_point(Vec3(1.5, 1.5, 1.5))

    def test_empty_box_unions_as_identity(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert AABB.empty().is_empty()
        u = AABB.empty().union(a)
        assert u.lo == a.lo and u.hi == a.hi

    def test_surface_area_and_axis(self):
        box = AABB(Vec3(0, 0, 0), Vec3(4, 2, 1))
        assert box.surface_area() == pytest.approx(2 * (8 + 2 + 4))
        assert box.longest_axis() == 0

    def test_centroid(self):
        box = AABB(Vec3(0, 0, 0), Vec3(2, 4, 6))
        assert box.centroid() == Vec3(1, 2, 3)


class TestRayAABB:
    def test_hit_through_center(self):
        ray = Ray(Vec3(-5, 0.5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        span = ray_aabb_intersect(ray, box)
        assert span is not None
        assert span[0] == pytest.approx(5)
        assert span[1] == pytest.approx(6)

    def test_miss(self):
        ray = Ray(Vec3(-5, 5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert ray_aabb_intersect(ray, box) is None

    def test_box_behind_origin_misses(self):
        ray = Ray(Vec3(5, 0.5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert ray_aabb_intersect(ray, box) is None

    def test_axis_parallel_ray_inside_slab(self):
        # Direction has zero y/z: the reciprocal saturates, interval logic
        # must still accept a ray travelling inside the box.
        ray = Ray(Vec3(-5, 0.5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(-10, 0, 0), Vec3(10, 1, 1))
        assert ray_aabb_intersect(ray, box) is not None

    def test_tmax_clips_hit(self):
        ray = Ray(Vec3(-5, 0.5, 0.5), Vec3(1, 0, 0), tmax=2.0)
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert ray_aabb_intersect(ray, box) is None

    def test_origin_inside_box(self):
        ray = Ray(Vec3(0.5, 0.5, 0.5), Vec3(0, 1, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        span = ray_aabb_intersect(ray, box)
        assert span is not None and span[0] == pytest.approx(0.0)


class TestRayTriangle:
    def tri(self):
        return Triangle(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0), prim_id=7)

    def test_center_hit_with_barycentrics(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.25, 0.25, 5), Vec3(0, 0, -1)), self.tri())
        assert hit is not None
        assert hit.t == pytest.approx(5)
        assert hit.u == pytest.approx(0.25)
        assert hit.v == pytest.approx(0.25)

    def test_miss_outside_edge(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.9, 0.9, 5), Vec3(0, 0, -1)), self.tri())
        assert hit is None

    def test_parallel_ray_misses(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0, 0, 1), Vec3(1, 0, 0)), self.tri())
        assert hit is None

    def test_hit_behind_origin_rejected(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.25, 0.25, -5), Vec3(0, 0, -1)), self.tri())
        assert hit is None

    def test_tmax_clip(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.25, 0.25, 5), Vec3(0, 0, -1), tmax=4.0), self.tri())
        assert hit is None

    def test_barycentric_point_reconstruction(self):
        tri = Triangle(Vec3(1, 1, 0), Vec3(3, 1, 1), Vec3(1, 4, 2))
        ray = Ray(Vec3(1.5, 2.0, -5), Vec3(0.02, -0.03, 1).normalized())
        hit = ray_triangle_intersect(ray, tri)
        if hit is not None:
            p = ray.point_at(hit.t)
            q = (tri.v0 * (1 - hit.u - hit.v) + tri.v1 * hit.u + tri.v2 * hit.v)
            assert (p - q).length() < 1e-6


class TestRaySphere:
    def test_front_hit(self):
        s = Sphere(Vec3(0, 0, 0), 1.0)
        hit = ray_sphere_intersect(Ray(Vec3(0, 0, 5), Vec3(0, 0, -1)), s)
        assert hit is not None
        assert hit.t == pytest.approx(4.0)

    def test_origin_inside_returns_far_root(self):
        s = Sphere(Vec3(0, 0, 0), 1.0)
        hit = ray_sphere_intersect(Ray(Vec3(0, 0, 0), Vec3(0, 0, -1)), s)
        assert hit is not None
        assert hit.t == pytest.approx(1.0)

    def test_miss(self):
        s = Sphere(Vec3(0, 0, 0), 1.0)
        assert ray_sphere_intersect(Ray(Vec3(0, 5, 5), Vec3(0, 0, -1)), s) is None

    def test_bad_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(Vec3(), -1.0)

    def test_bounds_enclose_sphere(self):
        s = Sphere(Vec3(1, 2, 3), 0.5)
        b = s.bounds()
        assert b.lo == Vec3(0.5, 1.5, 2.5)
        assert b.hi == Vec3(1.5, 2.5, 3.5)


class TestPointDistance:
    def test_below_threshold(self):
        assert point_distance_below(Vec3(0, 0, 0), Vec3(1, 0, 0), 1.5)

    def test_at_threshold_is_not_below(self):
        assert not point_distance_below(Vec3(0, 0, 0), Vec3(1, 0, 0), 1.0)

    def test_matches_sqrt_distance(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 6, 3)
        d = math.sqrt((b - a).length_squared())
        assert point_distance_below(a, b, d + 1e-9)
        assert not point_distance_below(a, b, d - 1e-9)


# -- batch-kernel parity ------------------------------------------------------
#
# The repro.geometry.batch kernels promise *bit-identical* results to
# the scalar references on every lane — including NaN/inf operands and
# inverted (tmin > tmax) intervals.  These property-style sweeps check
# exact accept/reject agreement plus float equality of every reported
# t/u/v on accepting lanes.

def _rand_vec(rng, scale=10.0):
    return Vec3(rng.uniform(-scale, scale), rng.uniform(-scale, scale),
                rng.uniform(-scale, scale))


def _rand_rays(rng, n):
    """Generic rays plus the degenerate shapes the hardware must survive."""
    rays = []
    for i in range(n):
        origin = _rand_vec(rng, 3.0)
        direction = _rand_vec(rng, 1.0)
        if i % 4 == 1:  # axis-parallel: zero components -> saturated RCP
            direction = Vec3(0.0, direction.y, 0.0)
        tmin, tmax = 0.0, rng.uniform(5.0, 40.0)
        if i % 5 == 2:  # inverted interval: must reject everywhere
            tmin, tmax = tmax, tmin
        ray = Ray(origin, direction, tmin=tmin, tmax=tmax)
        if i % 7 == 3:  # true-inf reciprocals: 0 * inf = NaN paths
            ray.inv_direction = Vec3(float("inf"), ray.inv_direction.y,
                                     float("-inf"))
        rays.append(ray)
    return rays


def _rand_boxes(rng, n):
    boxes = []
    for i in range(n):
        a, b = _rand_vec(rng), _rand_vec(rng)
        if i % 6 == 1:  # zero-extent box (a point)
            b = a
        boxes.append(AABB(a.min_with(b), a.max_with(b)))
    return boxes


def _ray_arrays(ray):
    o = np.array((ray.origin.x, ray.origin.y, ray.origin.z))
    inv = np.array((ray.inv_direction.x, ray.inv_direction.y,
                    ray.inv_direction.z))
    d = np.array((ray.direction.x, ray.direction.y, ray.direction.z))
    return o, inv, d


class TestBatchSlabParity:
    def test_random_and_degenerate_sweep(self):
        rng = random.Random(101)
        boxes = _rand_boxes(rng, 64)
        lo, hi = aabbs_soa(boxes)
        for ray in _rand_rays(rng, 40):
            o, inv, _ = _ray_arrays(ray)
            hit, t_entry, t_exit = ray_aabb_slab_batch(
                o, inv, ray.tmin, ray.tmax, lo, hi)
            for i, box in enumerate(boxes):
                res = ray_aabb_intersect(ray, box)
                assert bool(hit[i]) == (res is not None), (ray, box)
                if res is not None:
                    assert (float(t_entry[i]), float(t_exit[i])) == res

    def test_rays_soa_elementwise_pairing(self):
        rng = random.Random(202)
        rays = _rand_rays(rng, 48)
        boxes = _rand_boxes(rng, 48)
        origin, inv, _, tmin, tmax = rays_soa(rays)
        lo, hi = aabbs_soa(boxes)
        hit, t_entry, t_exit = ray_aabb_slab_batch(origin, inv, tmin, tmax,
                                                   lo, hi)
        for i, (ray, box) in enumerate(zip(rays, boxes)):
            res = ray_aabb_intersect(ray, box)
            assert bool(hit[i]) == (res is not None)
            if res is not None:
                assert (float(t_entry[i]), float(t_exit[i])) == res

    def test_inverted_interval_rejects_everywhere(self):
        ray = Ray(Vec3(0, 0, 0), Vec3(1, 0, 0), tmin=5.0, tmax=1.0)
        box = AABB(Vec3(-100, -100, -100), Vec3(100, 100, 100))
        assert ray_aabb_intersect(ray, box) is None
        lo, hi = aabbs_soa([box])
        o, inv, _ = _ray_arrays(ray)
        hit, _, _ = ray_aabb_slab_batch(o, inv, ray.tmin, ray.tmax, lo, hi)
        assert not bool(hit[0])

    def test_inf_times_zero_nan_lanes_match_scalar(self):
        # Origin on the slab plane with a true-inf reciprocal: the plane
        # distances become 0 * inf = NaN, and the scalar min/max fold's
        # NaN behaviour (first-arg-wins) must be reproduced exactly.
        ray = Ray(Vec3(0, 0, 0), Vec3(0, 1, 0), tmax=10.0)
        ray.inv_direction = Vec3(float("inf"), 1.0, float("inf"))
        boxes = [AABB(Vec3(0, -1, 0), Vec3(0, 1, 0)),
                 AABB(Vec3(-1, -1, -1), Vec3(0, 1, 0)),
                 AABB(Vec3(0, 2, 0), Vec3(0, 3, 0))]
        lo, hi = aabbs_soa(boxes)
        o, inv, _ = _ray_arrays(ray)
        hit, t_entry, t_exit = ray_aabb_slab_batch(o, inv, ray.tmin,
                                                   ray.tmax, lo, hi)
        for i, box in enumerate(boxes):
            res = ray_aabb_intersect(ray, box)
            assert bool(hit[i]) == (res is not None)
            if res is not None:
                assert (float(t_entry[i]), float(t_exit[i])) == res


class TestBatchPointParity:
    def test_random_sweep_with_exact_threshold(self):
        rng = random.Random(303)
        query = _rand_vec(rng, 2.0)
        radius = 4.0
        points = [_rand_vec(rng, 6.0) for _ in range(200)]
        # Points at *exactly* the threshold distance: strict < must agree.
        points.append(query + Vec3(radius, 0.0, 0.0))
        points.append(query + Vec3(0.0, -radius, 0.0))
        soa = points_soa(points)
        q = np.array((query.x, query.y, query.z))
        mask = point_distance_below_batch(q, soa, radius)
        for i, p in enumerate(points):
            assert bool(mask[i]) == point_distance_below(query, p, radius)

    def test_contains_points_matches_scalar(self):
        rng = random.Random(404)
        boxes = _rand_boxes(rng, 80)
        lo, hi = aabbs_soa(boxes)
        for _ in range(20):
            p = _rand_vec(rng)
            mask = contains_points_batch(lo, hi, np.array((p.x, p.y, p.z)))
            for i, box in enumerate(boxes):
                assert bool(mask[i]) == box.contains_point(p)


class TestBatchSphereParity:
    def test_random_and_degenerate_sweep(self):
        rng = random.Random(505)
        spheres = [Sphere(_rand_vec(rng, 8.0), rng.uniform(0.05, 4.0))
                   for _ in range(64)]
        centers, radii = spheres_soa(spheres)
        for ray in _rand_rays(rng, 40):
            o, _, d = _ray_arrays(ray)
            hit, t = ray_sphere_batch(o, d, ray.tmin, ray.tmax,
                                      centers, radii)
            for i, sphere in enumerate(spheres):
                res = ray_sphere_intersect(ray, sphere)
                assert bool(hit[i]) == (res is not None), (ray, sphere)
                if res is not None:
                    assert float(t[i]) == res.t

    def test_origin_inside_far_root_selected(self):
        sphere = Sphere(Vec3(0, 0, 0), 1.0)
        ray = Ray(Vec3(0, 0, 0), Vec3(0, 0, -1))
        centers, radii = spheres_soa([sphere])
        o, _, d = _ray_arrays(ray)
        hit, t = ray_sphere_batch(o, d, ray.tmin, ray.tmax, centers, radii)
        assert bool(hit[0]) and float(t[0]) == ray_sphere_intersect(
            ray, sphere).t


class TestBatchTriangleParity:
    def test_random_and_degenerate_sweep(self):
        rng = random.Random(606)
        triangles = []
        for i in range(64):
            v0 = _rand_vec(rng, 6.0)
            if i % 8 == 1:  # degenerate (zero-area) triangle
                triangles.append(Triangle(v0, v0, v0))
            else:
                triangles.append(Triangle(v0, _rand_vec(rng, 6.0),
                                          _rand_vec(rng, 6.0)))
        v0, v1, v2 = triangles_soa(triangles)
        for ray in _rand_rays(rng, 40):
            o, _, d = _ray_arrays(ray)
            hit, t, u, v = ray_triangle_batch(o, d, ray.tmin, ray.tmax,
                                              v0, v1, v2)
            for i, tri in enumerate(triangles):
                res = ray_triangle_intersect(ray, tri)
                assert bool(hit[i]) == (res is not None), (ray, tri)
                if res is not None:
                    assert (float(t[i]), float(u[i]), float(v[i])) == \
                        (res.t, res.u, res.v)
