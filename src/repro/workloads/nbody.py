"""Barnes-Hut N-Body workloads (2D and 3D, §IV-A).

Bodies are drawn from a Plummer-like clustered distribution (as in
cosmological N-Body codes) and sorted along a Morton curve so that
adjacent threads walk similar tree paths — the warp coherence that
gives N-Body its high SIMT efficiency in Fig. 1.  The golden reference
is direct O(n^2) summation on a sample of bodies.
"""

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec3
from repro.kernels.nbody_walk import (
    NBodyKernelArgs,
    build_nbody_jobs,
    build_warp_traces,
)
from repro.memsys.memory_image import AddressSpace
from repro.rta.traversal import TraversalJob
from repro.trees.layout import TreeImage
from repro.trees.octree import BarnesHutTree, Body, make_body


def _plummer_position(rng: random.Random, dims: int, scale: float) -> Vec3:
    """Sample a Plummer-sphere radius with isotropic direction."""
    m = rng.uniform(0.05, 0.95)
    r = scale / math.sqrt(m ** (-2.0 / 3.0) - 1.0)
    if dims == 2:
        phi = rng.uniform(0, 2 * math.pi)
        return Vec3(r * math.cos(phi), r * math.sin(phi), 0.0)
    cos_t = rng.uniform(-1, 1)
    sin_t = math.sqrt(1 - cos_t * cos_t)
    phi = rng.uniform(0, 2 * math.pi)
    return Vec3(r * sin_t * math.cos(phi), r * sin_t * math.sin(phi),
                r * cos_t)


def _morton_key(p: Vec3, lo: Vec3, inv_extent: Vec3, dims: int) -> int:
    bits = 10
    scale = (1 << bits) - 1
    xi = int(max(0.0, min(1.0, (p.x - lo.x) * inv_extent.x)) * scale)
    yi = int(max(0.0, min(1.0, (p.y - lo.y) * inv_extent.y)) * scale)
    zi = (int(max(0.0, min(1.0, (p.z - lo.z) * inv_extent.z)) * scale)
          if dims == 3 else 0)
    key = 0
    for b in range(bits):
        key |= ((xi >> b) & 1) << (dims * b)
        key |= ((yi >> b) & 1) << (dims * b + 1)
        if dims == 3:
            key |= ((zi >> b) & 1) << (3 * b + 2)
    return key


@dataclass
class NBodyWorkload:
    dims: int
    tree: BarnesHutTree
    image: TreeImage
    space: AddressSpace
    body_buf: int
    accel_buf: int
    # Lowering is pure per (tree, flavor); cache it across repeated runs
    # of the same workload object (the warp traces are read-only in the
    # kernels, so sharing one list across args instances is safe).
    _warp_traces: Optional[List[tuple]] = field(
        default=None, init=False, repr=False, compare=False)
    _jobs_cache: Dict[str, tuple] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    # The baseline op stream depends on fused_post_insts: one recording
    # cache per value.
    _stream_caches: Dict[int, dict] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    def kernel_args(self, jobs: Sequence[TraversalJob] = (),
                    interactions: Sequence[int] = (),
                    fused_post_insts: int = 0) -> NBodyKernelArgs:
        if self._warp_traces is None:
            self._warp_traces = build_warp_traces(self.tree)
        return NBodyKernelArgs(
            tree=self.tree,
            body_buf=self.body_buf,
            accel_buf=self.accel_buf,
            warp_traces=self._warp_traces,
            jobs=list(jobs),
            interactions=list(interactions),
            fused_post_insts=fused_post_insts,
            stream_cache=self._stream_caches.setdefault(fused_post_insts, {}),
        )

    def jobs(self, flavor: str):
        cached = self._jobs_cache.get(flavor)
        if cached is None:
            cached = self._jobs_cache[flavor] = build_nbody_jobs(
                self.tree, flavor=flavor)
        return cached

    @property
    def n_bodies(self) -> int:
        return len(self.tree.bodies)

    def golden_sample(self, k: int = 16) -> List[Vec3]:
        """Direct-summation forces for the first k bodies."""
        return [self.tree.direct_force_on(b) for b in self.tree.bodies[:k]]


def make_nbody_workload(n_bodies: int = 2048, dims: int = 3, seed: int = 0,
                        theta: float = 0.5, n_clusters: int = 4,
                        scale: float = 5.0) -> NBodyWorkload:
    """Plummer clusters, Morton-sorted, built into a Barnes-Hut tree."""
    if dims not in (2, 3):
        raise ConfigurationError("dims must be 2 or 3")
    if n_bodies < 2:
        raise ConfigurationError("need at least two bodies")
    rng = random.Random(seed)
    centers = [
        Vec3(rng.uniform(-4, 4) * scale, rng.uniform(-4, 4) * scale,
             rng.uniform(-4, 4) * scale if dims == 3 else 0.0)
        for _ in range(n_clusters)
    ]
    positions: List[Vec3] = []
    for _ in range(n_bodies):
        center = centers[rng.randrange(n_clusters)]
        positions.append(center + _plummer_position(rng, dims, scale))

    lo = Vec3(min(p.x for p in positions), min(p.y for p in positions),
              min(p.z for p in positions))
    hi = Vec3(max(p.x for p in positions), max(p.y for p in positions),
              max(p.z for p in positions))
    extent = hi - lo
    inv = Vec3(1.0 / max(extent.x, 1e-9), 1.0 / max(extent.y, 1e-9),
               1.0 / max(extent.z, 1e-9))
    positions.sort(key=lambda p: _morton_key(p, lo, inv, dims))

    bodies: List[Body] = [
        make_body(p, rng.uniform(0.5, 2.0), i) for i, p in enumerate(positions)
    ]
    tree = BarnesHutTree(bodies, dims=dims, theta=theta,
                         softening=0.05 * scale)
    space = AddressSpace()
    image = space.place_tree(tree.nodes())
    body_buf = space.alloc(16 * n_bodies, align=128)
    accel_buf = space.alloc(12 * n_bodies, align=128)
    return NBodyWorkload(dims, tree, image, space, body_buf, accel_buf)
