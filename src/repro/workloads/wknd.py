"""WKND_PT: the procedurally generated sphere path tracer (§IV-A).

The original workload is the "Ray Tracing in One Weekend" scene — a
large ground sphere plus a field of small random spheres — path traced
with hardware ray tracing.  Spheres are *procedural geometry*: the RTA
traverses the BVH of their bounding boxes, but the Ray-Sphere test runs
in an intersection shader on the SIMT cores (the baseline), or as the
18-µop Ray-Sphere program on optimized TTA+ (*WKND_PT, Fig. 16/17).
"""

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.ray import Ray
from repro.geometry.sphere import Sphere, ray_sphere_intersect
from repro.geometry.vec import Vec3, dot
from repro.kernels.ray_trace import RayTraceKernelArgs, build_rt_jobs
from repro.memsys.memory_image import AddressSpace
from repro.trees.bvh import BVH
from repro.workloads.scenes import Camera

_EPS = 1e-3


def make_wknd_scene(n_spheres: int = 120, seed: int = 0) -> List[Sphere]:
    """Ground sphere + a field of small random spheres."""
    rng = random.Random(seed)
    spheres: List[Sphere] = [Sphere(Vec3(0, -1000, 0), 1000.0, prim_id=0)]
    for i in range(1, n_spheres):
        x = rng.uniform(-11, 11)
        z = rng.uniform(-11, 11)
        r = rng.uniform(0.18, 0.3)
        spheres.append(Sphere(Vec3(x, r, z), r, prim_id=i))
    return spheres


def _sphere_normal(sphere: Sphere, p: Vec3) -> Vec3:
    return (p - sphere.center) / sphere.radius


def _diffuse_dir(normal: Vec3, rng: random.Random) -> Vec3:
    while True:
        v = Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1))
        if 1e-6 < v.length_squared() <= 1.0:
            d = normal + v.normalized()
            if d.length_squared() > 1e-9:
                return d.normalized()


@dataclass
class WKNDWorkload:
    bvh: BVH
    rays: List[Ray]
    visits_per_thread: List[List[tuple]]
    space: AddressSpace
    ray_buf: int
    frame_buf: int
    name: str = "WKND_PT"
    leaf_geometry: str = "sphere"

    @property
    def n_rays(self) -> int:
        return len(self.rays)

    def kernel_args(self, flavor: str = "rta") -> RayTraceKernelArgs:
        jobs = [
            [build_rt_jobs(trace, result=True, query_id=tid, flavor=flavor,
                           leaf_geometry="sphere")
             for trace in traces]
            for tid, traces in enumerate(self.visits_per_thread)
        ]
        return RayTraceKernelArgs(
            jobs_per_thread=jobs,
            visits_per_thread=self.visits_per_thread,
            ray_buf=self.ray_buf,
            frame_buf=self.frame_buf,
        )

    def total_visits(self) -> int:
        return sum(len(t) for traces in self.visits_per_thread
                   for t in traces)


def make_wknd_workload(width: int = 16, height: int = 16,
                       n_spheres: int = 120, bounces: int = 2,
                       seed: int = 0) -> WKNDWorkload:
    spheres = make_wknd_scene(n_spheres, seed=seed)
    bvh = BVH(spheres, max_leaf_size=2, method="sah")
    camera = Camera(Vec3(13, 2, 3), Vec3(0, 0.5, 0), fov_deg=25)
    rays = camera.rays(width, height)

    per_thread: List[List[tuple]] = []
    for rid, ray in enumerate(rays):
        rng = random.Random((seed << 16) ^ rid)
        traces: List[tuple] = []
        current: Optional[Ray] = ray
        for _bounce in range(1 + bounces):
            result = bvh.traverse(current, ray_sphere_intersect)
            traces.append(result.visits)
            if result.closest_prim is None:
                break
            sphere = bvh.primitives[result.closest_prim]
            p = current.point_at(result.closest_t)
            n = _sphere_normal(sphere, p)
            if dot(n, current.direction) > 0:
                n = -n
            current = Ray(p + n * _EPS, _diffuse_dir(n, rng))
        per_thread.append(traces)

    space = AddressSpace()
    space.place_tree(bvh.nodes())
    ray_buf = space.alloc(32 * len(rays), align=128)
    frame_buf = space.alloc(4 * len(rays), align=128)
    return WKNDWorkload(bvh, rays, per_thread, space, ray_buf, frame_buf)
