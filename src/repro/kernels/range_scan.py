"""B+Tree range-scan kernels (extension: database range queries).

A range query descends to the first qualifying leaf (a point-lookup
TTA accelerates) and then walks the chained leaves sequentially (a
streaming scan the SIMT cores already do well).  The accelerated
version offloads only the descent, so the achievable speedup shrinks as
ranges grow — an honest negative control for the offload: TTA helps
traversal, not streaming.
"""

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.isa import AccelCall, Compute, Load
from repro.kernels import common
from repro.kernels.common import epilogue, prologue, visit_header
from repro.rta.traversal import Step, TraversalJob
from repro.trees.layout import NODE_STRIDE

#: per-key compare+append while scanning a leaf
_SCAN_PER_KEY_ALU = 3
#: leaf-chain advance (pointer load handled as a Load op)
_CHAIN_CONTROL = 3


def _descend_path(tree, lo: int):
    path = []
    node = tree.root
    while not node.is_leaf:
        path.append(node)
        idx = tree._route_index(node.keys, lo)
        node = node.children[idx]
    path.append(node)
    return path


def _scan_leaves(tree, lo: int, hi: int):
    """Leaves touched by the scan, starting at the descent target."""
    node = _descend_path(tree, lo)[-1]
    leaves = []
    while node is not None:
        leaves.append(node)
        if node.keys and node.keys[-1] > hi:
            break
        node = node.next
    return leaves


@dataclass
class RangeScanKernelArgs:
    tree: Any
    ranges: Sequence[Tuple[int, int]]
    query_buf: int
    result_buf: int
    jobs: List[TraversalJob] = field(default_factory=list)
    results: dict = field(default_factory=dict)


def range_scan_baseline_kernel(tid: int, args: RangeScanKernelArgs):
    lo, hi = args.ranges[tid]
    path = _descend_path(args.tree, lo)
    yield from prologue(args.query_buf + tid * 8, setup_alu=4)
    # Descent: the divergent part (same cost model as the B-Tree search
    # kernel: per-key compare plus branch resolution, serialized).
    for node in path[:-1]:
        yield from visit_header(node.address, NODE_STRIDE)
        # Second structure load, as in the B-Tree search kernel.
        yield Load(node.address + NODE_STRIDE // 2, NODE_STRIDE // 2,
                   common.TAG_LOAD_NODE + 1)
        scanned = 1
        for i, key in enumerate(node.keys):
            scanned = i + 1
            if lo <= key:
                break
        for k in range(scanned):
            yield Compute(6, common.TAG_INNER + k, kind="alu")
            yield Compute(2, common.TAG_INNER + k, kind="control")
        yield Compute(5, common.TAG_INNER_NEXT, kind="alu")
    # Scan: stream the chained leaves.
    for leaf in _scan_leaves(args.tree, lo, hi):
        yield Load(leaf.address, NODE_STRIDE, common.TAG_LEAF)
        yield Compute(_SCAN_PER_KEY_ALU * max(1, len(leaf.keys)),
                      common.TAG_LEAF + 1, kind="alu")
        yield Compute(_CHAIN_CONTROL, common.TAG_LEAF + 2, kind="control")
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = args.tree.range_scan(lo, hi)


def range_scan_accel_kernel(tid: int, args: RangeScanKernelArgs):
    lo, hi = args.ranges[tid]
    yield from prologue(args.query_buf + tid * 8, setup_alu=4)
    first_leaf_keys = yield AccelCall(args.jobs[tid],
                                      tag=common.TAG_SETUP + 1)
    # The scan still runs on the cores.
    for leaf in _scan_leaves(args.tree, lo, hi):
        yield Load(leaf.address, NODE_STRIDE, common.TAG_LEAF)
        yield Compute(_SCAN_PER_KEY_ALU * max(1, len(leaf.keys)),
                      common.TAG_LEAF + 1, kind="alu")
        yield Compute(_CHAIN_CONTROL, common.TAG_LEAF + 2, kind="control")
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = args.tree.range_scan(lo, hi)


def build_range_scan_jobs(tree, ranges: Sequence[Tuple[int, int]],
                          flavor: str = "tta") -> List[TraversalJob]:
    """Offload the descent-to-first-leaf as Query-Key steps."""
    if flavor not in ("tta", "ttaplus"):
        raise ConfigurationError(
            f"range scans need Query-Key support (got {flavor!r})"
        )
    jobs = []
    for qid, (lo, _hi) in enumerate(ranges):
        path = _descend_path(tree, lo)
        steps = []
        for node in path:
            if flavor == "tta":
                op = "query_key"
            else:
                op = "uop:btree_leaf" if node.is_leaf else "uop:btree_inner"
            steps.append(Step(node.address, NODE_STRIDE, op))
        jobs.append(TraversalJob(qid, steps, tuple(path[-1].keys)))
    return jobs
