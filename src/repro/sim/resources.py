"""Contended hardware resources modelled as occupancy timelines.

Requests arrive in non-decreasing simulation time (guaranteed by the
event engine), so a single ``next_free`` pointer per server suffices to
model FIFO contention exactly, without per-cycle arbitration events.
This keeps the simulator fast while staying cycle-faithful for in-order
resources, which covers every unit in the paper's RTA/TTA/TTA+ designs.

These objects sit on the simulator's hottest paths (every node fetch,
every intersection op), so they use ``__slots__`` and keep their
arithmetic inline rather than layered through helper objects.
"""

from typing import Tuple

from repro.errors import SimulationError
from repro.sim.stats import LatencySampler, OccupancyTracker


class Timeline:
    """A single server that serves one request at a time, FIFO.

    ``acquire(now, service)`` returns the cycle at which service *starts*;
    the caller adds its own latency on top.  Busy time is accumulated for
    utilization reporting.
    """

    __slots__ = ("name", "_next_free", "_busy", "requests", "_order_guard")

    def __init__(self, name: str = "timeline"):
        self.name = name
        self._next_free = 0.0
        self._busy = 0.0
        self.requests = 0
        # [guard, tolerance, latest arrival] when order checking is on
        # (REPRO_GUARD=strict), else None: a single is-None branch on
        # the hot path.
        self._order_guard = None

    def enable_order_check(self, guard, tolerance: float = 1.0 + 1e-6):
        """Verify acquisitions arrive in FIFO order (within tolerance).

        The batched driver's analytic clocks legitimately jitter within
        one engine cycle (jobs draining from the same wake bucket carry
        exact float times <= the bucket's cycle), hence the default
        one-cycle tolerance.  ``guard.order_violation`` is called with
        the offending times; it raises.
        """
        self._order_guard = [guard, tolerance, float("-inf")]

    def acquire(self, now: float, service: float) -> float:
        if service < 0:
            raise SimulationError(f"{self.name}: negative service {service}")
        og = self._order_guard
        if og is not None:
            last = og[2]
            if now < last - og[1]:
                og[0].order_violation(self.name, now, last)
            elif now > last:
                og[2] = now
        start = self._next_free
        if now > start:
            start = now
        self._next_free = start + service
        self._busy += service
        self.requests += 1
        return start

    def utilization(self, end: float) -> float:
        return min(1.0, self._busy / end) if end > 0 else 0.0

    @property
    def busy_cycles(self) -> float:
        return self._busy

    @property
    def next_free(self) -> float:
        return self._next_free


class PipelinedUnit:
    """A pipelined function unit with an initiation interval and a latency.

    Models the paper's fixed-function intersection pipelines (Ray-Box:
    II=1, 13 cycles; Ray-Triangle: II=1, 37 cycles) and the TTA+ OP units
    (Table I).  ``issue(now)`` returns ``(start, done)``: the op starts at
    the first issue slot at or after ``now`` and completes ``latency``
    cycles later.  Occupancy (items in flight, queued + executing) is
    tracked from the *request* time to completion so that Figs. 15/18 can
    report queued-plus-executing concurrency like the paper does.
    """

    __slots__ = ("name", "latency", "initiation_interval", "_next_issue",
                 "issue_requests", "occupancy", "latency_stats", "ops",
                 "busy_cycles")

    def __init__(self, name: str, latency: float,
                 initiation_interval: float = 1.0, strict: bool = True):
        if latency <= 0:
            raise SimulationError(f"{name}: latency must be positive")
        self.name = name
        self.latency = latency
        self.initiation_interval = initiation_interval
        # The issue timeline is inlined (one `_next_issue` pointer): a
        # Timeline object here costs an extra call per op on the hottest
        # loop of the whole simulator.
        self._next_issue = 0.0
        self.issue_requests = 0
        self.occupancy = OccupancyTracker(strict=strict)
        self.latency_stats = LatencySampler()
        self.ops = 0
        self.busy_cycles = 0.0

    def issue(self, now: float) -> Tuple[float, float]:
        ii = self.initiation_interval
        start = self._next_issue
        if now > start:
            start = now
        self._next_issue = start + ii
        done = start + self.latency
        self.occupancy.enter(now)
        self.ops += 1
        self.issue_requests += 1
        self.busy_cycles += ii
        self.latency_stats.sample(done - now)
        return start, done

    def complete(self, time: float) -> None:
        """Mark one op as drained from the unit at ``time``."""
        self.occupancy.exit(time)

    def issue_drain(self, now: float) -> float:
        """``issue(now)`` + ``complete(done)`` fused; returns ``done``.

        The batched driver's analytic path drains the op at its own
        completion time within the same event, so the two occupancy
        samples collapse into one :meth:`OccupancyTracker.pulse`.
        """
        ii = self.initiation_interval
        start = self._next_issue
        if now > start:
            start = now
        self._next_issue = start + ii
        done = start + self.latency
        self.occupancy.pulse(now, done)
        self.ops += 1
        self.issue_requests += 1
        self.busy_cycles += ii
        self.latency_stats.sample(done - now)
        return done

    def utilization(self, end: float) -> float:
        """Fraction of issue slots used over [0, end]."""
        return min(1.0, self.busy_cycles / end) if end > 0 else 0.0


class ThroughputResource:
    """A bandwidth-limited resource (DRAM channel, L2 port, interconnect).

    ``transfer(now, amount)`` occupies the resource for
    ``amount / per_cycle`` cycles after an optional fixed ``latency`` and
    returns the completion time.  Utilization is busy-time over total
    time, which is exactly the "DRAM bandwidth utilization" metric the
    paper plots in Figs. 1 and 13.
    """

    __slots__ = ("name", "per_cycle", "latency", "_timeline", "bytes_moved",
                 "series")

    def __init__(self, name: str, per_cycle: float, latency: float = 0.0):
        if per_cycle <= 0:
            raise SimulationError(f"{name}: throughput must be positive")
        self.name = name
        self.per_cycle = per_cycle
        self.latency = latency
        self._timeline = Timeline(f"{name}.bw")
        self.bytes_moved = 0.0
        # Optional repro.obs.TimeSeries: when attached (tracing on),
        # every transfer also lands in a cycle-bucketed bandwidth
        # series; one is-None branch otherwise.
        self.series = None

    def transfer(self, now: float, amount: float) -> float:
        if amount < 0:
            raise SimulationError(f"{self.name}: negative transfer {amount}")
        service = amount / self.per_cycle
        start = self._timeline.acquire(now, service)
        self.bytes_moved += amount
        if self.series is not None:
            self.series.add(start, amount)
        return start + service + self.latency

    def utilization(self, end: float) -> float:
        return self._timeline.utilization(end)

    @property
    def requests(self) -> int:
        return self._timeline.requests
