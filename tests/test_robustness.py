"""Robustness: edge configurations and degenerate inputs."""

import pytest

from repro.errors import SimulationStallError
from repro.gpu import GPU, AccelCall, Compute, GPUConfig, Load
from repro.guard import Guard, GuardConfig
from repro.harness.runner import run_btree, scaled_config_for
from repro.rta.rta import make_rta_factory
from repro.rta.traversal import Step, TraversalJob
from repro.workloads import make_btree_workload


class TestDegenerateKernels:
    def test_kernel_with_no_ops(self):
        def kernel(tid, args):
            return
            yield  # pragma: no cover

        stats = GPU(GPUConfig(n_sms=1)).launch(kernel, 32)
        assert stats.cycles == 0
        assert stats.total_warp_instructions == 0

    def test_single_thread_kernel(self):
        def kernel(tid, args):
            yield Compute(5, tag=0)
            yield Load(0, 4, tag=1)

        stats = GPU(GPUConfig(n_sms=1)).launch(kernel, 1)
        assert stats.simt_efficiency == pytest.approx(1 / 32)

    def test_more_threads_than_total_capacity(self):
        cfg = GPUConfig(n_sms=2, max_warps_per_sm=2)

        def kernel(tid, args):
            yield Compute(2, tag=0)

        stats = GPU(cfg).launch(kernel, 32 * 32)  # 32 warps on 4 slots
        assert stats.notes["n_warps"] == 32
        assert stats.cycles > 0

    def test_accel_call_without_accelerator_fails_loudly(self):
        def kernel(tid, args):
            yield AccelCall(TraversalJob(0, [Step(0, 64, "box")], None),
                            tag=0)

        with pytest.raises(AttributeError):
            GPU(GPUConfig(n_sms=1)).launch(kernel, 1)


class TestExtremeConfigs:
    def test_one_sm_one_warp_buffer_entryish(self):
        wl = make_btree_workload("btree", n_keys=256, n_queries=64, seed=1)
        cfg = scaled_config_for(wl.image.size_bytes).with_overrides(
            n_sms=1, warp_buffer_warps=1)
        run = run_btree(wl, "tta", config=cfg)
        assert run.cycles > 0

    def test_huge_warp_buffer(self):
        wl = make_btree_workload("btree", n_keys=256, n_queries=64, seed=1)
        cfg = scaled_config_for(wl.image.size_bytes).with_overrides(
            warp_buffer_warps=64)
        run = run_btree(wl, "tta", config=cfg)
        assert run.cycles > 0

    def test_tiny_caches(self):
        wl = make_btree_workload("btree", n_keys=512, n_queries=128, seed=2)
        cfg = GPUConfig(l1_size=512, l2_size=16 * 16 * 128)
        base = run_btree(wl, "gpu", config=cfg)
        tta = run_btree(wl, "tta", config=cfg)
        assert base.cycles > 0 and tta.cycles > 0

    def test_many_intersection_sets(self):
        wl = make_btree_workload("btree", n_keys=256, n_queries=64, seed=3)
        cfg = scaled_config_for(wl.image.size_bytes).with_overrides(
            intersection_sets=16)
        run = run_btree(wl, "ttaplus", config=cfg)
        assert run.cycles > 0

    def test_scaled_config_immutable_base(self):
        base = GPUConfig()
        scaled = scaled_config_for(1024, base=base)
        assert base.l2_size == 3 * 1024 * 1024  # untouched
        assert scaled is not base


def _launch_jobs(jobs, guard=None):
    """Run one explicit job batch through a single-SM RTA GPU."""
    out = {}

    def kernel(tid, args):
        r = yield AccelCall(jobs[tid], tag=0)
        args[tid] = r

    gpu = GPU(GPUConfig(n_sms=1), accelerator_factory=make_rta_factory())
    stats = gpu.launch(kernel, len(jobs), args=out, guard=guard)
    return stats, out


class TestAccelRobustness:
    def test_job_with_single_step(self):
        out = {}

        def kernel(tid, args):
            r = yield AccelCall(TraversalJob(tid, [Step(64 * tid, 64,
                                                        "box")], tid), tag=0)
            args[tid] = r

        gpu = GPU(GPUConfig(n_sms=1),
                  accelerator_factory=make_rta_factory())
        gpu.launch(kernel, 3, args=out)
        assert out == {0: 0, 1: 1, 2: 2}

    def test_job_with_hundreds_of_steps(self):
        steps = [Step(64 * i, 64, "box") for i in range(400)]

        def kernel(tid, args):
            yield AccelCall(TraversalJob(0, steps, "done"), tag=0)

        gpu = GPU(GPUConfig(n_sms=1),
                  accelerator_factory=make_rta_factory())
        stats = gpu.launch(kernel, 1)
        assert stats.accel_stats["node_fetches"] == 400

    def test_mixed_accel_and_pure_compute_warps(self):
        def kernel(tid, args):
            if tid % 2 == 0:
                yield AccelCall(TraversalJob(tid, [Step(0, 64, "box")],
                                             None), tag=0)
            else:
                yield Compute(100, tag=1)

        gpu = GPU(GPUConfig(n_sms=1),
                  accelerator_factory=make_rta_factory())
        stats = gpu.launch(kernel, 32)
        assert stats.warp_instructions.get("tta") == 1
        assert stats.warp_instructions.get("alu") == 100

    def test_empty_query_batch_terminates_cleanly(self):
        # An accelerator is attached but no warp ever calls it; the
        # guard's end-of-run conservation (0 launched == 0 completed)
        # must hold and nothing may linger.
        def kernel(tid, args):
            yield Compute(3, tag=0)

        gpu = GPU(GPUConfig(n_sms=1),
                  accelerator_factory=make_rta_factory())
        stats = gpu.launch(kernel, 32,
                           guard=Guard(GuardConfig(mode="strict",
                                                   check_events=1_000)))
        assert stats.accel_stats["jobs_completed"] == 0
        assert stats.cycles > 0

    def test_all_duplicate_key_jobs(self):
        # Every query traverses the identical node sequence: maximal
        # cache/warp-buffer contention on one address stream.
        steps = [Step(0, 64, "box"), Step(64, 64, "box")]
        jobs = [TraversalJob(i, list(steps), i) for i in range(64)]
        stats, out = _launch_jobs(jobs)
        assert out == {i: i for i in range(64)}
        assert stats.accel_stats["jobs_completed"] == 64

    def test_all_miss_job(self):
        # Addresses strided far beyond every cache: each fetch is a
        # fresh miss all the way to DRAM.
        jobs = [TraversalJob(i, [Step((i * 11 + s) << 20, 64, "box")
                                 for s in range(8)], i)
                for i in range(32)]
        stats, out = _launch_jobs(jobs)
        assert out == {i: i for i in range(32)}
        assert stats.accel_stats["node_fetches"] == 32 * 8
        # No reuse across fetches: only the intra-fetch second sector
        # of each 64-byte node can hit its own line.
        assert stats.l1_hit_rate <= 0.5

    def test_max_cycles_exhaustion_aborts_cleanly(self):
        # A tiny cycle budget turns a healthy run into a structured
        # abort (never a hang): SimulationStallError with a bundle.
        jobs = [TraversalJob(i, [Step(64 * s, 64, "box")
                                 for s in range(50)], i)
                for i in range(32)]
        with pytest.raises(SimulationStallError) as err:
            _launch_jobs(jobs, guard=Guard(GuardConfig(max_cycles=100)))
        assert err.value.diagnostics["reason"] == "cycle-budget"

    def test_prefetch_depth_does_not_change_results(self):
        wl = make_btree_workload("btree", n_keys=512, n_queries=128, seed=4)
        cfg = scaled_config_for(wl.image.size_bytes)
        from repro.gpu import GPU as _GPU
        from repro.kernels.btree_search import btree_accel_kernel

        outs = []
        for depth in (0, 2):
            gpu = _GPU(cfg, accelerator_factory=make_rta_factory(
                tta=True, prefetch_depth=depth))
            args = wl.kernel_args(jobs=wl.jobs("tta"))
            gpu.launch(btree_accel_kernel, wl.n_queries, args=args)
            outs.append(dict(args.results))
        assert outs[0] == outs[1]
