"""Exception types shared across the repro package.

Two families live here:

* **Configuration/usage errors** (`ConfigurationError` and friends) —
  the caller asked for something inconsistent; raised eagerly, before
  any simulation runs.
* **Guard errors** (`GuardError` and subclasses) — raised by the
  ``repro.guard`` robustness subsystem while a simulation is running
  (or when it finishes in an inconsistent state).  Every guard error
  carries a ``diagnostics`` dict: a JSON-serializable bundle describing
  the simulator state at the moment of failure (cycle, events
  processed, last-progress marker, per-core occupancy and stuck jobs,
  per-SM warp counts, memsys request/response balance).  The bundle is
  what ``repro.exec`` persists when it quarantines a failing RunSpec.

  - `SimulationStallError` — the watchdog detected a no-progress state
    (frozen progress token, undrained wake bucket, warp-buffer entry
    parked past its cycle budget, cycle budget exceeded) or the run
    went quiet with work still pending.
  - `InvariantViolation` — a conservation invariant failed: a
    `TraversalJob` completed twice (or never), memory-system requests
    do not balance responses, a warp-buffer slot leaked, or a
    unit-timeline acquisition arrived out of order (strict mode).
  - `FaultInjectionError` — the fault-injection harness itself was
    misused (unknown fault kind, fault target not found); never raised
    by a healthy simulation.

Guard errors define ``__reduce__`` so the diagnostics payload survives
pickling across the ``repro.exec`` worker-process boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An accelerator, layout, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class LayoutError(ConfigurationError):
    """A data-layout descriptor does not match the data it is applied to."""


class ProgramError(ConfigurationError):
    """A TTA+ micro-op program is malformed or references unknown units."""


class GuardError(ReproError):
    """Base class for ``repro.guard`` failures; carries a diagnostic bundle.

    ``diagnostics`` is a plain dict of JSON-serializable values (ints,
    floats, strings, lists, dicts) so it can be persisted verbatim into
    a quarantine record and shipped across process boundaries.
    """

    def __init__(self, message, diagnostics=None):
        super().__init__(message)
        self.diagnostics = dict(diagnostics) if diagnostics else {}

    def __reduce__(self):
        # Default pickling would re-call __init__ with only args[0] and
        # drop the diagnostics; hand it both explicitly.
        return (type(self), (self.args[0] if self.args else "", self.diagnostics))

    def __str__(self):
        base = super().__str__()
        reason = self.diagnostics.get("reason")
        if reason and reason not in base:
            return f"{base} [{reason}]"
        return base


class SimulationStallError(GuardError):
    """The watchdog detected a no-progress state or an exceeded budget."""


class InvariantViolation(GuardError):
    """A conservation invariant failed (lost/duplicated work, unbalanced
    memory traffic, leaked warp-buffer slot, out-of-order acquisition)."""


class FaultInjectionError(GuardError):
    """The fault-injection harness was configured or targeted incorrectly."""


class ResilienceError(ReproError):
    """Base class for ``repro.serve.resilience`` failure semantics.

    Unlike guard errors these are *expected* under overload: they are
    the serving layer refusing work it cannot finish in time, not the
    simulator detecting that it is broken.
    """


class OverloadShedError(ResilienceError):
    """A query was shed by admission control (queue/backlog watermark,
    deadline infeasibility, or an open circuit breaker).  ``reason``
    names the watermark that fired."""

    def __init__(self, message, reason="overload"):
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(ResilienceError):
    """A query's deadline expired before its batch could launch."""


class BackendLaunchError(ResilienceError):
    """A batch launch failed for a transient, retryable reason (in this
    behavioral model: the ``launch_fail`` serve-path fault injector).
    Retried with backoff; repeated failures open the circuit breaker."""
