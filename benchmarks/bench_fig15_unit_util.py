"""Fig. 15 — TTA intersection-unit concurrency (average vs peak)."""

from repro.harness import experiments


def test_fig15_unit_util(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig15_unit_util(scale), rounds=1, iterations=1)
    save_table("fig15_unit_util", table)
    for row in table.rows:
        name, unit, avg, peak = row
        # Fig. 15's observation: node processing is bursty — peak
        # concurrency far exceeds the average.
        assert peak >= 1
        assert avg < peak, f"{name}/{unit}: no burstiness"
    # RTNN repurposes the previously idle Ray-Triangle datapath for
    # distance tests: its point_dist row must show real occupancy.
    rtnn_rows = [r for r in table.rows if r[0] == "rtnn"]
    assert any(r[1] == "point_dist" and r[3] > 0 for r in rtnn_rows)
