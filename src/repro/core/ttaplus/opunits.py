"""Table I: the OP units of TTA+ with their latencies.

The paper implements one copy of each unit ("the most general
configuration") and reports per-unit utilization in Fig. 18 (top); the
``copies`` override supports the future-work exploration of wider
configurations.  µop latencies are the Agner-Fog-referenced values of
Table I.
"""

from typing import Dict

from repro.errors import ConfigurationError, ProgramError
from repro.sim.resources import PipelinedUnit
from repro.core.ttaplus.uop import UNIT_TYPES

#: Table I latencies, in cycles.
OP_UNIT_LATENCIES: Dict[str, int] = {
    "vec3_addsub": 4,   # Pipelined FP32 Vec3 +/- Vec3
    "mul": 4,           # Pipelined FP32 scalar multiply
    "rcp": 4,           # FP32 1/x (RCPSS-like)
    "cross": 5,         # Vec3 cross product
    "dot": 5,           # Vec3 dot product
    "vec3_cmp": 1,      # (a <= b) ? 1 : 0 per component
    "minmax": 1,        # MIN(a, MAX(b, c))
    "maxmin": 1,        # MAX(a, MIN(b, c))
    "logical": 1,       # AND/OR/XOR/NOT
    "sqrt": 11,         # square root
    "rxform": 4,        # ray transform matrix multiply
}


class OpUnitBank:
    """The physical OP units of one TTA+ instance."""

    def __init__(self, copies: Dict[str, int] = None,
                 latency_scale: float = 1.0):
        if latency_scale <= 0:
            raise ConfigurationError("latency scale must be positive")
        copies = copies or {}
        self.units: Dict[str, list] = {}
        for unit_type in UNIT_TYPES:
            n = copies.get(unit_type, 1)
            if n < 1:
                raise ConfigurationError(
                    f"need at least one {unit_type} unit"
                )
            latency = max(1.0, OP_UNIT_LATENCIES[unit_type] * latency_scale)
            self.units[unit_type] = [
                PipelinedUnit(f"{unit_type}[{i}]", latency=latency,
                              strict=False)
                for i in range(n)
            ]
        self._rr: Dict[str, int] = {u: 0 for u in UNIT_TYPES}

    def issue(self, unit_type: str, at: float):
        """Issue on the next copy of ``unit_type``; returns (unit, start, done)."""
        try:
            pool = self.units[unit_type]
        except KeyError:
            raise ProgramError(f"unknown OP unit type {unit_type!r}")
        idx = self._rr[unit_type]
        self._rr[unit_type] = (idx + 1) % len(pool)
        unit = pool[idx]
        start, done = unit.issue(at)
        return unit, start, done

    def snapshot(self, end: float) -> Dict[str, dict]:
        out = {}
        for unit_type, pool in self.units.items():
            out[unit_type] = {
                "ops": sum(u.ops for u in pool),
                "busy_cycles": sum(u.busy_cycles for u in pool),
                "utilization": (sum(u.busy_cycles for u in pool)
                                / (end * len(pool)) if end > 0 else 0.0),
                "occupancy_avg": sum(u.occupancy.average(end) for u in pool),
                "occupancy_peak": sum(u.occupancy.peak for u in pool),
            }
        return out
