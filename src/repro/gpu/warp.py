"""Warps: bundles of thread generators executed in SIMT lockstep."""

from typing import Any, Generator, List, Optional, Sequence

from repro.errors import SimulationError
from repro.gpu.isa import OP_TYPES

#: Exact-type set for the hot-path validity check (set membership beats
#: an isinstance chain at ~hundreds of thousands of ops per launch).
_OP_CLASSES = frozenset(OP_TYPES)


class Warp:
    """Up to ``warp_size`` thread generators plus their pending ops."""

    __slots__ = ("warp_id", "threads", "pending", "_sends")

    def __init__(self, warp_id: int, threads: Sequence[Generator]):
        self.warp_id = warp_id
        self.threads: List[Generator] = list(threads)
        self.pending: List[Optional[Any]] = [None] * len(self.threads)
        self._sends = [thread.send for thread in self.threads]

    def prime(self) -> None:
        """Advance every thread to its first op."""
        advance = self._advance
        pending = self.pending
        for tid in range(len(self.threads)):
            pending[tid] = advance(tid, None)

    def _advance(self, tid: int, value: Any):
        try:
            op = self._sends[tid](value)
        except StopIteration:
            return None
        if op.__class__ not in _OP_CLASSES and not isinstance(op, OP_TYPES):
            raise SimulationError(
                f"thread yielded {op!r}; kernels must yield ISA descriptors"
            )
        return op

    def live_groups(self):
        """Bucket live threads by tag; returns {tag: [tid, ...]}."""
        groups = {}
        for tid, op in enumerate(self.pending):
            if op is not None:
                groups.setdefault(op.tag, []).append(tid)
        return groups

    def min_group(self):
        """The next group to issue: ``(lowest_tag, [tid, ...])``.

        Single pass over the lanes (the executor only ever needs the
        minimum, so building the full ``live_groups`` dict per step is
        wasted work).  Returns ``None`` when no thread is live.
        """
        best = None
        tids = None
        for tid, op in enumerate(self.pending):
            if op is None:
                continue
            tag = op.tag
            if best is None or tag < best:
                best = tag
                tids = [tid]
            elif tag == best:
                tids.append(tid)
        if best is None:
            return None
        return best, tids

    def step(self, tids: Sequence[int], results=None) -> None:
        """Advance the given threads past their current op."""
        advance = self._advance
        pending = self.pending
        if results:
            get = results.get
            for tid in tids:
                pending[tid] = advance(tid, get(tid))
        else:
            for tid in tids:
                pending[tid] = advance(tid, None)

    @property
    def alive(self) -> bool:
        return any(op is not None for op in self.pending)
