#!/usr/bin/env python3
"""LiDAR neighbor search: RTNN-style radius queries on ray-tracing hardware.

Point-cloud processing needs, for every point, its neighbors within a
radius.  RTNN [105] maps this to the RTA by inflating points into
spheres; the leaf test must run as an intersection shader on a stock
RTA, which TTA replaces with its Point-to-Point unit and TTA+ with the
5-µop program of Table III (*RTNN).

Run:  python examples/lidar_neighbors.py
"""

from repro.harness.results import Table
from repro.harness.runner import run_rtnn, scaled_config_for
from repro.workloads import make_rtnn_workload

PLATFORM_LABELS = [
    ("gpu", "CUDA radius search (software)"),
    ("rta", "RTNN on stock RTA (shader leaves)"),
    ("tta", "RTNN on TTA (Point-to-Point leaves)"),
    ("ttaplus", "naive TTA+ port (µop Ray-Box, shader leaves)"),
    ("ttaplus_opt", "*RTNN on TTA+ (all-µop)"),
]


def main() -> None:
    wl = make_rtnn_workload(n_points=8_192, n_queries=1_024, radius=1.0,
                            seed=21)
    cfg = scaled_config_for(wl.image.size_bytes, pressure=20.0)
    avg_neighbors = sum(len(wl.golden(q)) for q in wl.queries[:64]) / 64
    print(f"cloud: {len(wl.points)} synthetic LiDAR points, "
          f"radius {wl.radius}, ~{avg_neighbors:.1f} neighbors/query")

    table = Table("Radius search platforms",
                  ["platform", "description", "cycles", "vs_rta"])
    results = {p: run_rtnn(wl, p, config=cfg) for p, _ in PLATFORM_LABELS}
    rta_cycles = results["rta"].cycles
    for platform, label in PLATFORM_LABELS:
        run = results[platform]
        table.add_row(platform, label, run.cycles, rta_cycles / run.cycles)
    print(table.format())
    print()
    print("Paper shape: RTA >> CUDA; TTA up to 1.4x over RTA; the naive")
    print("TTA+ port slows down; *RTNN recovers it (Fig. 12 bottom).")


if __name__ == "__main__":
    main()
