"""Guard configuration: modes and thresholds, parsed from the environment.

``REPRO_GUARD`` selects the mode:

* ``off``    — no guard is attached; zero overhead.
* ``watch``  — watchdog only: no-progress detection, park budgets,
  quiescence check (run must not go quiet with work pending).
* ``on``     — (default) watchdog plus end-of-run conservation
  invariants.
* ``strict`` — additionally re-checks balance invariants at every
  watchdog checkpoint ("per-epoch") and enables arrival-order checking
  on the accelerator memory-scheduler timelines.

Thresholds (all overridable via environment):

* ``REPRO_GUARD_MAX_CYCLES``   — abort if the cycle clock passes this
  (default: unlimited).
* ``REPRO_GUARD_STALL_EVENTS`` — abort after this many host events with
  no model progress (default 2,000,000).  Progress is measured by a
  token built from monotone model counters (jobs completed, traversal
  steps, warps retired, SIMT issues, memory sectors), so legitimate
  far-future time jumps are not flagged.
* ``REPRO_GUARD_CHECK_EVENTS`` — watchdog checkpoint cadence in host
  events (default 200,000).
* ``REPRO_GUARD_PARK_CYCLES``  — a job may wait in a core's admission
  queue at most this many cycles (default 5,000,000); a wake bucket
  whose cycle has already passed is flagged immediately.
"""

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

GUARD_ENV = "REPRO_GUARD"
MAX_CYCLES_ENV = "REPRO_GUARD_MAX_CYCLES"
STALL_EVENTS_ENV = "REPRO_GUARD_STALL_EVENTS"
CHECK_EVENTS_ENV = "REPRO_GUARD_CHECK_EVENTS"
PARK_CYCLES_ENV = "REPRO_GUARD_PARK_CYCLES"

MODES = ("off", "watch", "on", "strict")

DEFAULT_STALL_EVENTS = 2_000_000
DEFAULT_CHECK_EVENTS = 200_000
DEFAULT_PARK_CYCLES = 5_000_000


def guard_mode() -> str:
    """The active guard mode from ``$REPRO_GUARD`` (default ``on``)."""
    mode = os.environ.get(GUARD_ENV, "on").strip().lower() or "on"
    if mode not in MODES:
        raise ConfigurationError(
            f"{GUARD_ENV}={mode!r} is not a guard mode; expected one of {MODES}"
        )
    return mode


def _env_int(name: str, default: Optional[int]) -> Optional[int]:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name}={raw!r} is not an integer")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def env_int(name: str, default: Optional[int]) -> Optional[int]:
    """Positive-int environment knob (shared with ``repro.serve``'s
    resilience config, which follows the same conventions)."""
    return _env_int(name, default)


def env_float(name: str, default: Optional[float]) -> Optional[float]:
    """Positive-float environment knob; empty/unset -> ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{name}={raw!r} is not a number")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class GuardConfig:
    """Immutable guard thresholds; see the module docstring for semantics."""

    mode: str = "on"
    check_events: int = DEFAULT_CHECK_EVENTS
    stall_events: int = DEFAULT_STALL_EVENTS
    park_cycles: int = DEFAULT_PARK_CYCLES
    max_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(
                f"guard mode {self.mode!r} not in {MODES}"
            )
        for field in ("check_events", "stall_events", "park_cycles"):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"GuardConfig.{field} must be a positive int, got {value!r}"
                )
        if self.max_cycles is not None and self.max_cycles <= 0:
            raise ConfigurationError(
                f"GuardConfig.max_cycles must be positive, got {self.max_cycles!r}"
            )

    @property
    def checks_invariants(self) -> bool:
        return self.mode in ("on", "strict")

    @property
    def strict(self) -> bool:
        return self.mode == "strict"

    @classmethod
    def from_env(cls, **overrides) -> "GuardConfig":
        values = {
            "mode": guard_mode(),
            "check_events": _env_int(CHECK_EVENTS_ENV, DEFAULT_CHECK_EVENTS),
            "stall_events": _env_int(STALL_EVENTS_ENV, DEFAULT_STALL_EVENTS),
            "park_cycles": _env_int(PARK_CYCLES_ENV, DEFAULT_PARK_CYCLES),
            "max_cycles": _env_int(MAX_CYCLES_ENV, None),
        }
        values.update(overrides)
        return cls(**values)
