#!/usr/bin/env python3
"""Database index acceleration: B-Tree vs B*Tree vs B+Tree on TTA.

The workload the paper's introduction motivates: point queries against
a database index.  Sweeps the three index variants and two
key-vs-query regimes, printing per-platform cycles, speedups, SIMT
efficiency and DRAM utilization — the quantities behind Figs. 1/12/13.

Run:  python examples/database_index.py
"""

from repro.harness.results import Table
from repro.harness.runner import run_btree, scaled_config_for
from repro.workloads import make_btree_workload

SWEEP = [
    # (variant, n_keys, n_queries) — queries>keys favors TTA most (§V-A)
    ("btree", 4_096, 16_384),
    ("btree", 65_536, 8_192),
    ("bstar", 65_536, 8_192),
    ("bplus", 65_536, 8_192),
]


def main() -> None:
    table = Table(
        "Database index point queries: baseline GPU vs TTA vs TTA+",
        ["index", "keys", "queries", "gpu_cycles", "tta_speedup",
         "ttaplus_speedup", "simt_eff(gpu)", "dram(gpu)", "dram(tta)"],
    )
    for variant, n_keys, n_queries in SWEEP:
        wl = make_btree_workload(variant, n_keys, n_queries, seed=7)
        cfg = scaled_config_for(wl.image.size_bytes)
        base = run_btree(wl, "gpu", config=cfg)
        tta = run_btree(wl, "tta", config=cfg)
        plus = run_btree(wl, "ttaplus", config=cfg)
        table.add_row(variant, n_keys, n_queries, base.cycles,
                      tta.speedup_over(base), plus.speedup_over(base),
                      base.simt_efficiency, base.dram_utilization,
                      tta.dram_utilization)
    print(table.format())
    print()
    print("Notes: B+Tree gains least (uniform leaf depth = least")
    print("divergence to eliminate); speedups grow when queries")
    print("outnumber keys, as reported in §V-A.")


if __name__ == "__main__":
    main()
