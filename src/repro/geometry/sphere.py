"""Spheres and the Ray-Sphere test.

On a baseline RTA, spheres are *procedural geometry*: the hardware only
traverses the BVH of their bounding boxes, and the quadratic test below
runs in an intersection shader on the general-purpose cores.  TTA+ can
instead run it as a µop program (the *WKND_PT / *RTNN optimization).
"""

import math
from typing import NamedTuple, Optional

from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.vec import Vec3, dot


class SphereHit(NamedTuple):
    t: float


class Sphere:
    """A sphere primitive (center, radius)."""

    __slots__ = ("center", "radius", "prim_id")

    def __init__(self, center: Vec3, radius: float, prim_id: int = -1):
        if radius <= 0:
            raise ValueError("sphere radius must be positive")
        self.center = center
        self.radius = float(radius)
        self.prim_id = prim_id

    def bounds(self) -> AABB:
        return AABB.around_point(self.center, self.radius)

    def contains(self, p: Vec3) -> bool:
        return (p - self.center).length_squared() <= self.radius * self.radius

    def __repr__(self) -> str:
        return f"Sphere(c={self.center!r}, r={self.radius}, id={self.prim_id})"


def ray_sphere_intersect(ray: Ray, sphere: Sphere) -> Optional[SphereHit]:
    """Quadratic ray/sphere test returning the nearest hit in range.

    The µop breakdown in Table III for the WKND_PT leaf test (5 Vec3 SUBs,
    5 MULs, 1 SQRT, 1 RCP, 3 DOTs, 2 CMPs...) corresponds to this
    computation; the functional result here is what that program yields.
    """
    oc = ray.origin - sphere.center
    a = dot(ray.direction, ray.direction)
    half_b = dot(oc, ray.direction)
    c = dot(oc, oc) - sphere.radius * sphere.radius
    discriminant = half_b * half_b - a * c
    if discriminant < 0:
        return None
    sqrt_d = math.sqrt(discriminant)
    inv_a = 1.0 / a

    root = (-half_b - sqrt_d) * inv_a
    if root < ray.tmin or root > ray.tmax:
        root = (-half_b + sqrt_d) * inv_a
        if root < ray.tmin or root > ray.tmax:
            return None
    return SphereHit(t=root)
