"""Tree-quality metrics: how far has churn pushed a structure from a
fresh bulk build?

Every flavor reports the same dict shape so the obs registry, the
rebuild scheduler, and the churn curves treat them uniformly:

``sah_cost``
    Surface-area-heuristic traversal cost estimate (BVH / R-Tree;
    0.0 for the comparison trees, which have no spatial extent).
``overlap``
    Mean sibling-overlap ratio at inner nodes (R-Tree / BVH); the
    quantity quadratic splits and loose refit-skipped bounds inflate.
``fill_factor``
    Mean leaf occupancy relative to the leaf capacity.  Online inserts
    overgrow leaves (k-d, BVH) or split them half-full (B-Tree), both
    of which show up here.
``depth_skew``
    Deepest leaf depth over the ideal balanced depth.
``decay``
    The scalar the rebuild scheduler compares against its baseline:
    higher = worse.  Per-flavor definition documented on each function.
``nodes`` / ``items``
    Structure size, for normalizing costs.

All pure functions of the tree — no registry, no clock.
"""

import math
from typing import Dict

from repro.geometry.aabb import AABB

_EPS = 1e-12

#: SAH constants (relative units; only ratios matter here).
_C_TRAVERSE = 1.0
_C_INTERSECT = 1.0


def _overlap_sa(a: AABB, b: AABB) -> float:
    """Surface area of the intersection box (0 when disjoint)."""
    box = AABB(a.lo.max_with(b.lo), a.hi.min_with(b.hi))
    return box.surface_area()


def bvh_quality(bvh) -> Dict[str, float]:
    """BVH decay = the SAH cost itself: loose bounds and overgrown
    leaves both raise expected visits, which is exactly what the serve
    latency pays."""
    nodes = bvh.nodes()
    root_sa = max(bvh.root.bounds.surface_area(), _EPS)
    sah = 0.0
    overlaps = []
    leaf_counts = []
    for node in nodes:
        p_hit = node.bounds.surface_area() / root_sa
        if node.is_leaf:
            sah += p_hit * node.prim_count * _C_INTERSECT
            leaf_counts.append(node.prim_count)
        else:
            sah += p_hit * _C_TRAVERSE
            sa = node.bounds.surface_area()
            if sa > _EPS:
                overlaps.append(
                    _overlap_sa(node.left.bounds, node.right.bounds) / sa)
    n_live = len(bvh._prim_order)
    n_leaves = max(1, len(leaf_counts))
    ideal_depth = 1 + max(0, math.ceil(
        math.log2(max(1, n_live / max(1, bvh.max_leaf_size)))))
    return {
        "sah_cost": sah,
        "overlap": sum(overlaps) / max(1, len(overlaps)),
        "fill_factor": (sum(leaf_counts) / n_leaves) / max(1, bvh.max_leaf_size),
        "depth_skew": bvh.depth() / max(1, ideal_depth),
        "decay": sah,
        "nodes": float(len(nodes)),
        "items": float(n_live),
    }


def rtree_quality(tree) -> Dict[str, float]:
    """R-Tree decay = SAH-style visit cost inflated by sibling overlap —
    quadratic splits bloat overlap long before node counts move."""
    nodes = tree.nodes()
    root_sa = max(tree.root.mbr.surface_area(), _EPS)
    sah = 0.0
    overlaps = []
    fills = []
    for node in nodes:
        p_hit = node.mbr.surface_area() / root_sa
        sah += p_hit * node.width * _C_INTERSECT
        fills.append(node.width / tree.max_entries)
        if not node.is_leaf:
            sa = node.mbr.surface_area()
            if sa > _EPS:
                pair = 0.0
                kids = node.children
                for i in range(len(kids)):
                    for j in range(i + 1, len(kids)):
                        pair += _overlap_sa(kids[i].mbr, kids[j].mbr)
                overlaps.append(pair / sa)
    overlap = sum(overlaps) / max(1, len(overlaps))
    n = max(1, len(tree))
    ideal_height = 1 + max(0, math.ceil(
        math.log(max(2, n)) / math.log(max(2, tree.max_entries)))) - 1
    return {
        "sah_cost": sah,
        "overlap": overlap,
        "fill_factor": sum(fills) / max(1, len(fills)),
        "depth_skew": tree.height() / max(1, ideal_height),
        "decay": sah * (1.0 + overlap),
        "nodes": float(len(nodes)),
        "items": float(len(tree)),
    }


def btree_quality(tree) -> Dict[str, float]:
    """B-Tree decay = height over the ideal height: splits and
    underfull nodes only hurt once they add a level (fences stay exact,
    so per-node work never degrades)."""
    nodes = tree.nodes()
    fills = [tree._width(n) / tree.order for n in nodes]
    n = max(2, len(tree))
    ideal_height = max(1, math.ceil(math.log(n) / math.log(tree.order)))
    skew = tree.height() / ideal_height
    return {
        "sah_cost": 0.0,
        "overlap": 0.0,
        "fill_factor": sum(fills) / max(1, len(fills)),
        "depth_skew": skew,
        "decay": skew,
        "nodes": float(len(nodes)),
        "items": float(len(tree)),
    }


def kdtree_quality(tree) -> Dict[str, float]:
    """k-d decay = worst leaf overgrowth: online inserts append into
    fixed leaves, so the scan cost at the hottest leaf is what grows."""
    leaves = [n for n in tree.nodes() if n.is_leaf]
    counts = [len(n.point_ids) for n in leaves]
    max_occ = max(counts) if counts else 0
    n_live = max(1, tree.n_live)
    ideal_depth = 1 + max(0, math.ceil(
        math.log2(max(1, n_live / max(1, tree.max_leaf_size)))))
    return {
        "sah_cost": 0.0,
        "overlap": 0.0,
        "fill_factor": (sum(counts) / max(1, len(counts)))
        / max(1, tree.max_leaf_size),
        "depth_skew": tree.depth() / max(1, ideal_depth),
        "decay": max(1.0, max_occ / max(1, tree.max_leaf_size)),
        "nodes": float(len(tree.nodes())),
        "items": float(n_live),
    }


#: Metric keys every quality dict carries, canonical export order.
QUALITY_KEYS = ("sah_cost", "overlap", "fill_factor", "depth_skew",
                "decay", "nodes", "items")
