"""Streaming Multiprocessor: issue port, LDST unit, warp scheduling.

Scheduling is greedy-then-oldest in effect: a warp that acquires the
issue port keeps it for its whole compute block (greedy), and blocked
warps re-arbitrate in FIFO order (oldest).  Warps beyond the residency
limit (Table II: 32/SM) launch in waves as slots free up.
"""

from typing import List

from repro.gpu.config import GPUConfig
from repro.gpu.isa import AccelCall, Compute, Load, Store
from repro.gpu.warp import Warp
from repro.memsys.coalescer import coalesce_sectors
from repro.memsys.hierarchy import MemoryHierarchy
from repro.sim.engine import Simulator
from repro.sim.resources import Timeline


class SM:
    """One streaming multiprocessor with an optional attached accelerator."""

    def __init__(self, sim: Simulator, sm_id: int, config: GPUConfig,
                 hierarchy: MemoryHierarchy, stats,
                 accelerator_factory=None):
        self.sim = sim
        self.sm_id = sm_id
        self.config = config
        self.hierarchy = hierarchy
        self.stats = stats
        self.l1 = hierarchy.make_l1(sm_id)
        self.issue_port = Timeline(f"sm{sm_id}.issue")
        self.ldst = Timeline(f"sm{sm_id}.ldst")
        self.warp_queue: List[Warp] = []
        self.accelerator = (accelerator_factory(self)
                            if accelerator_factory is not None else None)
        self._done_count = 0

    # -- launch ----------------------------------------------------------------
    def add_warp(self, warp: Warp) -> None:
        self.warp_queue.append(warp)

    def start(self) -> None:
        slots = min(self.config.max_warps_per_sm, len(self.warp_queue))
        for _ in range(slots):
            self.sim.spawn(self._slot())

    def _slot(self):
        """One residency slot: runs queued warps back to back."""
        while self.warp_queue:
            warp = self.warp_queue.pop(0)
            yield from self._run_warp(warp)
            self._done_count += 1

    # -- warp execution ------------------------------------------------------
    def _run_warp(self, warp: Warp):
        sim = self.sim
        cfg = self.config
        warp.prime()
        while warp.alive:
            groups = warp.live_groups()
            tag = min(groups)
            tids = groups[tag]
            op = warp.pending[tids[0]]
            active = len(tids)
            results = {}

            if isinstance(op, Compute):
                n = max(warp.pending[t].n for t in tids)
                start = self.issue_port.acquire(sim.now, n / cfg.issue_width)
                wait = start + n / cfg.issue_width - sim.now
                if wait > 0:
                    yield wait
                self.stats.count_compute(op.kind, n, active, cfg.warp_size)

            elif isinstance(op, Load):
                start = self.issue_port.acquire(sim.now, 1)
                requests = [(warp.pending[t].addr, warp.pending[t].size)
                            for t in tids]
                sectors = coalesce_sectors(requests, cfg.sector_size)
                ldst_start = self.ldst.acquire(
                    max(sim.now, start + 1),
                    len(sectors) / cfg.ldst_sectors_per_cycle)
                ready = self.hierarchy.access_sectors(
                    ldst_start + len(sectors) / cfg.ldst_sectors_per_cycle,
                    self.l1, sectors)
                self.stats.count_mem(active, cfg.warp_size, len(sectors),
                                     hit_l1=False)
                wait = ready - sim.now
                if wait > 0:
                    yield wait  # in-order: block until the slowest lane's data

            elif isinstance(op, Store):
                start = self.issue_port.acquire(sim.now, 1)
                requests = [(warp.pending[t].addr, warp.pending[t].size)
                            for t in tids]
                sectors = coalesce_sectors(requests, cfg.sector_size)
                self.ldst.acquire(max(sim.now, start + 1),
                                  len(sectors) / cfg.ldst_sectors_per_cycle)
                # Write-through, fire-and-forget: charge DRAM bandwidth only.
                self.hierarchy.dram.transfer(sim.now, len(sectors)
                                             * cfg.sector_size)
                self.stats.count_mem(active, cfg.warp_size, len(sectors),
                                     hit_l1=False)
                wait = start + 1 - sim.now
                if wait > 0:
                    yield wait

            elif isinstance(op, AccelCall):
                start = self.issue_port.acquire(sim.now, 1)
                wait = start + 1 - sim.now
                if wait > 0:
                    yield wait
                payloads = [warp.pending[t].payload for t in tids]
                signal = self.accelerator.submit(sim.now, payloads)
                per_query = yield signal
                results = {t: per_query[i] for i, t in enumerate(tids)}
                self.stats.count_accel(active, cfg.warp_size)

            self.stats.simt_issue(active, cfg.warp_size,
                                  op.n if isinstance(op, Compute) else 1)
            warp.step(tids, results)
