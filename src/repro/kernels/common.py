"""Shared instruction-cost model for the software kernels.

The per-step instruction counts below describe what a compiled CUDA
while-loop traversal spends at each node, consistent with the paper's
measurement that offloading to the RTA eliminates ~91% of dynamic
ALU/control instructions (Fig. 20).  Tags define the static program
order used by the SIMT divergence model; kinds feed the Fig. 20
breakdown.
"""

from typing import Iterator

from repro.gpu.isa import Compute, Load, Store

# -- program-order tags (shared skeleton across kernels) -----------------------
# Gaps leave room for per-key / per-primitive scan tags: a data-dependent
# inner loop is modelled as one tagged op per iteration, so threads that
# scan different numbers of keys serialize exactly as a SIMT stack would.
TAG_SETUP = 1
TAG_LOAD_QUERY = 2
TAG_LOOP_HEAD = 10      # stack pop + empty check + node-type decode
TAG_LOAD_NODE = 11
TAG_INNER = 20          # inner-node test body (+k per scanned key)
TAG_INNER_NEXT = 36     # child select / stack pushes
TAG_LEAF = 40           # leaf-node test body (+k per scanned key/prim)
TAG_LEAF_HIT = 56       # hit bookkeeping
TAG_EPILOGUE = 90

# -- instruction budgets ------------------------------------------------------------
#: stack pop, bounds check, node-type decode, loop branch
LOOP_OVERHEAD_CONTROL = 8
#: address arithmetic for the node fetch
FETCH_ADDR_ALU = 2
#: result writeback bookkeeping
EPILOGUE_ALU = 3


def prologue(query_addr: int, setup_alu: int = 4) -> Iterator:
    """Kernel entry: thread-id math and the query load."""
    yield Compute(setup_alu, TAG_SETUP, kind="alu")
    yield Load(query_addr, 4, TAG_LOAD_QUERY)


def visit_header(node_address: int, node_size: int = 64) -> Iterator:
    """The per-iteration loop overhead plus the node fetch."""
    yield Compute(LOOP_OVERHEAD_CONTROL, TAG_LOOP_HEAD, kind="control")
    yield Compute(FETCH_ADDR_ALU, TAG_LOOP_HEAD, kind="alu")
    yield Load(node_address, node_size, TAG_LOAD_NODE)


def epilogue(result_addr: int) -> Iterator:
    """Result writeback."""
    yield Compute(EPILOGUE_ALU, TAG_EPILOGUE, kind="alu")
    yield Store(result_addr, 4, TAG_EPILOGUE)
