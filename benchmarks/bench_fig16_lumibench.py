"""Fig. 16 — ray-tracing workloads on TTA+ relative to the baseline RTA."""

import math

from repro.harness import experiments


def test_fig16_lumibench(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig16_lumibench(scale), rounds=1, iterations=1)
    save_table("fig16_lumibench", table)
    rows = {r[0]: r for r in table.rows}
    geo = rows["geomean"][1]
    # Paper: ~8% mean slowdown; we accept a modest band around it since
    # the procedural scenes are far smaller than LumiBench assets.
    assert 0.6 < geo < 1.05, f"TTA+ geomean ratio {geo} out of band"
    # Unmodified workloads individually slow down.
    for spec_name in ("CORNELL_PT", "SPONZA_AO", "BUNNY_SH"):
        assert rows[spec_name][1] < 1.05
    # *WKND_PT improves on the naive port (paper: +22%).
    wknd = rows["WKND_PT"]
    assert wknd[2] > wknd[1], "*WKND_PT did not beat the naive port"
