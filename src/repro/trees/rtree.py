"""R-Trees: spatial indexes over rectangles (Guttman [27]).

The paper's introduction names R-Trees alongside B-Trees as the index
structures motivating TTA ("web indexing, databases, data mining ...
B-Trees, B+Trees, and R-Trees are used to index data").  An R-Tree
range query is a pure AABB-overlap traversal, which maps directly onto
the (modified) Ray-Box unit — the same observation RTIndeX [34] exploits
in software.

Provided here:

* STR (Sort-Tile-Recursive) bulk loading — the standard packing
  algorithm for static spatial data;
* incremental ``insert`` with Guttman's quadratic split (exercised by
  the property tests to validate the structural invariants);
* ``range_query`` returning both results and the visit trace consumed
  by the timing models.
"""

import math
from typing import List, NamedTuple, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3

DEFAULT_MAX_ENTRIES = 9  # matches the 9-wide TTA instruction


class RectEntry(NamedTuple):
    """A data rectangle with an identifier."""

    rect: AABB
    data_id: int


def _overlaps(a: AABB, b: AABB) -> bool:
    return (a.lo.x <= b.hi.x and b.lo.x <= a.hi.x
            and a.lo.y <= b.hi.y and b.lo.y <= a.hi.y
            and a.lo.z <= b.hi.z and b.lo.z <= a.hi.z)


def _enlargement(mbr: AABB, rect: AABB) -> float:
    grown = mbr.union(rect)
    return grown.surface_area() - mbr.surface_area()


class RTreeNode:
    """Inner nodes hold child nodes; leaves hold data entries."""

    __slots__ = ("mbr", "children", "entries", "address")

    def __init__(self):
        self.mbr: AABB = AABB.empty()
        self.children: List["RTreeNode"] = []
        self.entries: List[RectEntry] = []
        self.address = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def width(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def recompute_mbr(self) -> None:
        box = AABB.empty()
        if self.is_leaf:
            for entry in self.entries:
                box = box.union(entry.rect)
        else:
            for child in self.children:
                box = box.union(child.mbr)
        self.mbr = box

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "inner"
        return f"RTreeNode({kind}, width={self.width})"


class RTreeVisit(NamedTuple):
    node: RTreeNode
    kind: str       # "inner" | "leaf"
    tests: int      # entry-overlap tests performed
    hit: bool


class RangeQueryResult(NamedTuple):
    ids: Tuple[int, ...]
    visits: Tuple[RTreeVisit, ...]


class RTree:
    """An R-Tree over :class:`RectEntry` items."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise ConfigurationError("R-Tree needs max_entries >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self.root = RTreeNode()
        self._count = 0
        #: bumped by every mutating operation; derived views (memory
        #: images, lowered jobs) key their validity on it.
        self.mutation_epoch = 0

    def __len__(self) -> int:
        return self._count

    # -- queries -----------------------------------------------------------
    def range_query(self, window: AABB) -> RangeQueryResult:
        """All data rectangles overlapping ``window``, plus the trace."""
        ids: List[int] = []
        visits: List[RTreeVisit] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                found = 0
                for entry in node.entries:
                    if _overlaps(entry.rect, window):
                        ids.append(entry.data_id)
                        found += 1
                visits.append(RTreeVisit(node, "leaf", len(node.entries),
                                         found > 0))
            else:
                pushed = 0
                for child in node.children:
                    if _overlaps(child.mbr, window):
                        stack.append(child)
                        pushed += 1
                visits.append(RTreeVisit(node, "inner", len(node.children),
                                         pushed > 0))
        return RangeQueryResult(tuple(sorted(ids)), tuple(visits))

    # -- insertion (Guttman, quadratic split) ---------------------------------
    def insert(self, rect: AABB, data_id: int) -> None:
        entry = RectEntry(rect, data_id)
        leaf, path = self._choose_leaf(rect)
        leaf.entries.append(entry)
        self._count += 1
        self._adjust(path + [leaf])
        self.mutation_epoch = getattr(self, "mutation_epoch", 0) + 1

    def _choose_leaf(self, rect: AABB) -> Tuple[RTreeNode, List[RTreeNode]]:
        node, path = self.root, []
        while not node.is_leaf:
            path.append(node)
            node = min(node.children,
                       key=lambda c: (_enlargement(c.mbr, rect),
                                      c.mbr.surface_area()))
        return node, path

    def _adjust(self, path: List[RTreeNode]) -> None:
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            node.recompute_mbr()
            if node.width > self.max_entries:
                sibling = self._split(node)
                if depth == 0:
                    new_root = RTreeNode()
                    new_root.children = [node, sibling]
                    new_root.recompute_mbr()
                    self.root = new_root
                else:
                    parent = path[depth - 1]
                    parent.children.append(sibling)
        self.root.recompute_mbr()

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split: seed with the worst pair, greedily distribute."""
        items = node.entries if node.is_leaf else node.children

        def rect_of(item):
            return item.rect if node.is_leaf else item.mbr

        # Seeds: the pair whose combined box wastes the most area.
        worst, seeds = -math.inf, (0, 1)
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                combined = rect_of(items[i]).union(rect_of(items[j]))
                waste = (combined.surface_area()
                         - rect_of(items[i]).surface_area()
                         - rect_of(items[j]).surface_area())
                if waste > worst:
                    worst, seeds = waste, (i, j)
        group_a = [items[seeds[0]]]
        group_b = [items[seeds[1]]]
        box_a, box_b = rect_of(group_a[0]), rect_of(group_b[0])
        remaining = [it for k, it in enumerate(items) if k not in seeds]
        for index, item in enumerate(remaining):
            left = len(remaining) - index  # items still unassigned
            # Force-assign when one group must absorb all the rest to
            # reach the minimum fill.
            slack_a = self.min_entries - len(group_a)
            slack_b = self.min_entries - len(group_b)
            if slack_a >= left:
                choose_a = True
            elif slack_b >= left:
                choose_a = False
            else:
                choose_a = (_enlargement(box_a, rect_of(item))
                            <= _enlargement(box_b, rect_of(item)))
            if choose_a:
                group_a.append(item)
                box_a = box_a.union(rect_of(item))
            else:
                group_b.append(item)
                box_b = box_b.union(rect_of(item))
        sibling = RTreeNode()
        if node.is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # -- deletion (Guttman CondenseTree) --------------------------------------
    def delete(self, data_id: int, rect: AABB = None) -> None:
        """Remove one data rectangle, condensing underfull nodes.

        ``rect`` (when known) guides the leaf search along overlapping
        MBRs; without it the search degenerates to a full scan.  Nodes
        that drop below the minimum fill are dissolved and their
        surviving entries reinserted from the top — Guttman's
        CondenseTree, the piece that keeps churned R-Trees within the
        structural invariants the property tests assert.
        """
        path: List[RTreeNode] = []
        leaf = self._find_leaf(self.root, data_id, rect, path)
        if leaf is None:
            raise KeyError(f"data_id {data_id} not in R-Tree")
        leaf.entries = [e for e in leaf.entries if e.data_id != data_id]
        self._count -= 1
        orphans: List[RectEntry] = []
        chain = path + [leaf]
        for depth in range(len(chain) - 1, 0, -1):
            node, parent = chain[depth], chain[depth - 1]
            if node.width < self.min_entries:
                parent.children.remove(node)
                self._collect_entries(node, orphans)
            else:
                node.recompute_mbr()
        self.root.recompute_mbr()
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        for entry in orphans:
            # ``insert`` re-increments the count; the orphan was never
            # logically removed.
            self._count -= 1
            self.insert(entry.rect, entry.data_id)
        self.mutation_epoch = getattr(self, "mutation_epoch", 0) + 1

    def _find_leaf(self, node: RTreeNode, data_id: int, rect,
                   path: List[RTreeNode]):
        """DFS for the leaf holding ``data_id``; fills ``path`` with its
        ancestors (root first)."""
        if node.is_leaf:
            if any(e.data_id == data_id for e in node.entries):
                return node
            return None
        path.append(node)
        for child in node.children:
            if rect is None or _overlaps(child.mbr, rect):
                found = self._find_leaf(child, data_id, rect, path)
                if found is not None:
                    return found
        path.pop()
        return None

    def _collect_entries(self, node: RTreeNode,
                         out: List[RectEntry]) -> None:
        if node.is_leaf:
            out.extend(node.entries)
        else:
            for child in node.children:
                self._collect_entries(child, out)

    def entries_in_order(self) -> List[RectEntry]:
        """Every live data entry (leaf scan, BFS order)."""
        out: List[RectEntry] = []
        for node in self.nodes():
            if node.is_leaf:
                out.extend(node.entries)
        return out

    # -- STR bulk loading ---------------------------------------------------------
    @classmethod
    def bulk_load(cls, entries: Sequence[RectEntry],
                  max_entries: int = DEFAULT_MAX_ENTRIES) -> "RTree":
        """Sort-Tile-Recursive packing: near-full, low-overlap nodes."""
        tree = cls(max_entries)
        if not entries:
            return tree
        level_items: List = list(entries)
        is_leaf_level = True
        while True:
            nodes = cls._str_pack(level_items, max_entries, is_leaf_level)
            if len(nodes) == 1:
                tree.root = nodes[0]
                break
            level_items = nodes
            is_leaf_level = False
        tree._count = len(entries)
        return tree

    @staticmethod
    def _str_pack(items: List, max_entries: int,
                  is_leaf: bool) -> List[RTreeNode]:
        def center_x(item):
            rect = item.rect if is_leaf else item.mbr
            return rect.centroid().x

        def center_y(item):
            rect = item.rect if is_leaf else item.mbr
            return rect.centroid().y

        n = len(items)
        n_nodes = math.ceil(n / max_entries)
        n_slices = max(1, math.ceil(math.sqrt(n_nodes)))
        slice_size = math.ceil(n / n_slices)
        min_fill = max(2, max_entries // 3)
        items = sorted(items, key=center_x)
        nodes: List[RTreeNode] = []
        for s in range(0, n, slice_size):
            column = sorted(items[s:s + slice_size], key=center_y)
            chunks = [column[t:t + max_entries]
                      for t in range(0, len(column), max_entries)]
            if len(chunks) > 1 and len(chunks[-1]) < min_fill:
                # Rebalance the tail so no node is underfull.
                need = min_fill - len(chunks[-1])
                chunks[-1] = chunks[-2][-need:] + chunks[-1]
                chunks[-2] = chunks[-2][:-need]
            for chunk in chunks:
                node = RTreeNode()
                if is_leaf:
                    node.entries = list(chunk)
                else:
                    node.children = list(chunk)
                node.recompute_mbr()
                nodes.append(node)
        # A short final column can still leave one underfull node: fold
        # it into its predecessor or steal enough items to reach fill.
        if len(nodes) > 1:
            last, prev = nodes[-1], nodes[-2]

            def items_of(node):
                return node.entries if is_leaf else node.children

            if len(items_of(last)) < min_fill:
                if len(items_of(prev)) + len(items_of(last)) <= max_entries:
                    items_of(prev).extend(items_of(last))
                    nodes.pop()
                    prev.recompute_mbr()
                else:
                    need = min_fill - len(items_of(last))
                    moved = items_of(prev)[-need:]
                    del items_of(prev)[-need:]
                    items_of(last)[:0] = moved
                    prev.recompute_mbr()
                    last.recompute_mbr()
        return nodes

    # -- structure access --------------------------------------------------------
    def nodes(self) -> List[RTreeNode]:
        out, frontier = [], [self.root]
        while frontier:
            node = frontier.pop(0)
            out.append(node)
            frontier.extend(node.children)
        return out

    def height(self) -> int:
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural violation."""
        ids: List[int] = []
        depths = set()
        self._check(self.root, 1, depths, ids, is_root=True)
        assert len(depths) <= 1, f"leaves at depths {depths}"
        assert len(ids) == self._count
        assert len(set(ids)) == len(ids), "duplicate data ids"

    def _check(self, node: RTreeNode, depth: int, depths: set,
               ids: List[int], is_root: bool) -> None:
        assert node.width <= self.max_entries, "overfull node"
        if not is_root and self._count > self.max_entries:
            assert node.width >= self.min_entries, "underfull node"
        if node.is_leaf:
            depths.add(depth)
            for entry in node.entries:
                assert node.mbr.contains_box(entry.rect), "MBR violation"
                ids.append(entry.data_id)
        else:
            for child in node.children:
                assert node.mbr.contains_box(child.mbr), "MBR violation"
                self._check(child, depth + 1, depths, ids, is_root=False)


def make_rect(x0: float, y0: float, x1: float, y1: float) -> AABB:
    """A 2D rectangle embedded at z=0 (spatial indexes are planar here)."""
    return AABB(Vec3(min(x0, x1), min(y0, y1), 0.0),
                Vec3(max(x0, x1), max(y0, y1), 0.0))
