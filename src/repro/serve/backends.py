"""Per-platform batch launch backends for the serving layer.

A :class:`LaunchBackend` turns one closed batch of same-class queries
into one simulated kernel launch on its platform (baseline ``gpu``,
``tta``, ``ttaplus``, or — radius only — stock ``rta``), using the same
kernels, job lowering, and scaled GPU configuration as the one-shot
harness runners, so a query's functional result and the cycle model it
is timed under are *identical* to the batch-experiment path
(``tests/test_serve.py`` asserts byte-identical results).

**Degradation** (the ``repro.guard`` contract, serving edition): a
launch that aborts with a :class:`~repro.errors.GuardError` — the
watchdog detected a stall or an invariant broke on the fast engine —
is retried once on the legacy reference engine
(``REPRO_SIM_CORE=legacy``), exactly like exec-service quarantine.  The
batch still completes and the response records ``engine="legacy"``;
the service counts it under ``serve.degraded_batches``.  One poisoned
batch can therefore never wedge the serving loop.
"""

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, GuardError
from repro.gpu import GPU
from repro.gpu.config import GPUConfig
from repro.serve.index import ResidentIndex


@dataclass
class BatchLaunch:
    """One completed batch launch: timing plus per-slot results."""

    platform: str
    query_class: str
    n_queries: int
    cycles: float
    #: batch-local slot -> functional result (slot i is the i-th query
    #: of the batch, in submission order).
    results: Dict[int, Any]
    stats: Any
    engine: str = "fast"
    error: Optional[str] = None
    notes: Dict[str, Any] = field(default_factory=dict)


def _accelerator_factory(platform: str):
    from repro.core.ttaplus import make_ttaplus_factory
    from repro.rta.rta import make_rta_factory

    if platform == "gpu":
        return None
    if platform == "rta":
        return make_rta_factory(tta=False)
    if platform == "tta":
        return make_rta_factory(tta=True)
    if platform in ("ttaplus", "ttaplus_opt"):
        return make_ttaplus_factory()
    raise ConfigurationError(f"no serve backend for platform {platform!r}")


class LaunchBackend:
    """Launches batches for one platform over resident indexes."""

    def __init__(self, platform: str,
                 config: Optional[GPUConfig] = None,
                 guard=None, max_verify: int = 0):
        self.platform = platform
        self.guard = guard
        #: Verify up to this many queries per batch against the golden
        #: reference (0 = trust the kernels' functional model, which the
        #: equivalence tests oracle).
        self.max_verify = max_verify
        self._factory = _accelerator_factory(platform)
        self._explicit_config = config
        self._configs: Dict[int, GPUConfig] = {}
        self.launches = 0
        self.degraded = 0

    # -- config ----------------------------------------------------------------
    def config_for(self, index: ResidentIndex) -> GPUConfig:
        """The same scaled-cache policy the one-shot runners default to,
        derived once per resident index (the tree footprint is fixed
        for the index's lifetime)."""
        if self._explicit_config is not None:
            return self._explicit_config
        config = self._configs.get(id(index))
        if config is None:
            from repro.harness.runner import scaled_config_for

            config = scaled_config_for(index.workload.image.size_bytes)
            self._configs[id(index)] = config
        return config

    # -- launching ---------------------------------------------------------------
    def launch(self, index: ResidentIndex,
               qids: Sequence[int]) -> BatchLaunch:
        """Launch one batch of canonical query ids."""
        if self.platform not in index.spec.platforms:
            raise ConfigurationError(
                f"query class {index.query_class!r} cannot serve on "
                f"{self.platform!r} (valid: {index.spec.platforms})"
            )
        payloads = [index.payload(qid) for qid in qids]
        if self.platform == "gpu":
            jobs_builder = lambda: []                       # noqa: E731
            kernel = index.spec.baseline_kernel
        else:
            jobs_builder = lambda: index.batch_jobs(        # noqa: E731
                qids, self.platform)
            kernel = index.spec.accel_kernel
        launch = self._run(index, kernel, payloads, jobs_builder)
        if self.max_verify:
            self._verify(index, qids, launch.results)
        return launch

    def launch_payloads(self, index: ResidentIndex,
                        payloads: Sequence[Any]) -> BatchLaunch:
        """Launch one batch of raw (ad-hoc) query payloads."""
        if self.platform == "gpu":
            jobs_builder = lambda: []                       # noqa: E731
            kernel = index.spec.baseline_kernel
        else:
            jobs_builder = lambda: index.spec.build_jobs(   # noqa: E731
                index.workload, payloads, self.platform)
            kernel = index.spec.accel_kernel
        return self._run(index, kernel, payloads, jobs_builder)

    def _run(self, index: ResidentIndex, kernel, payloads,
             jobs_builder) -> BatchLaunch:
        """One guarded launch; retried on the legacy engine if the fast
        engine trips the guard.

        ``jobs_builder`` is called per attempt: a kernel launch consumes
        nothing from the args, but a guard abort can leave a partially
        filled results dict, so every attempt gets pristine args.
        """
        if not payloads:
            raise ConfigurationError("cannot launch an empty batch")
        config = self.config_for(index)
        self.launches += 1
        args = index.batch_args(payloads, jobs_builder())
        gpu = GPU(config, accelerator_factory=self._factory)
        try:
            stats = gpu.launch(kernel, len(payloads), args=args,
                               guard=self.guard)
            engine, error = "fast", None
        except GuardError as exc:
            self.degraded += 1
            error = f"{type(exc).__name__}: {exc}"
            args = index.batch_args(payloads, jobs_builder())
            stats = self._legacy_retry(kernel, len(payloads), args, config)
            engine = "legacy"
        return BatchLaunch(self.platform, index.query_class, len(payloads),
                           stats.cycles, dict(args.results), stats,
                           engine=engine, error=error)

    def _legacy_retry(self, kernel, n_threads: int, args, config):
        """Second opinion from the reference engine (immune to the
        fast-path fault seams — see ``repro.guard.faults``)."""
        from repro.sim import CORE_ENV

        previous = os.environ.get(CORE_ENV)
        os.environ[CORE_ENV] = "legacy"
        try:
            gpu = GPU(config, accelerator_factory=self._factory)
            return gpu.launch(kernel, n_threads, args=args, guard=self.guard)
        finally:
            if previous is None:
                os.environ.pop(CORE_ENV, None)
            else:
                os.environ[CORE_ENV] = previous

    # -- verification -------------------------------------------------------------
    def _verify(self, index: ResidentIndex, qids: Sequence[int],
                results: Dict[int, Any]) -> None:
        """Spot-check batch results against the workload's golden
        reference (same checks as the one-shot runners, sampled)."""
        wl = index.workload
        step = max(1, len(qids) // self.max_verify)
        for slot in range(0, len(qids), step):
            qid = qids[slot]
            got = results[slot]
            if index.query_class == "point":
                assert got == wl.golden[qid], (
                    f"point query {qid}: got {got}, "
                    f"expected {wl.golden[qid]}")
            elif index.query_class == "range":
                assert tuple(sorted(got)) == wl.golden(wl.windows[qid]), (
                    f"range query {qid}: result mismatch")
            elif index.query_class == "radius":
                assert tuple(sorted(got)) == wl.golden(wl.queries[qid]), (
                    f"radius query {qid}: neighbour set mismatch")
            else:  # knn: distance multiset (ties may order differently)
                q = wl.queries[qid]
                pts = wl.tree.points
                got_d = sorted((pts[i] - q).length_squared() for i in got)
                exp_d = sorted((pts[i] - q).length_squared()
                               for i in wl.golden(q))
                assert all(abs(a - b) < 1e-9
                           for a, b in zip(got_d, exp_d)) \
                    and len(got_d) == len(exp_d), (
                        f"knn query {qid}: distance mismatch")
