"""Tests for ``repro.mutation``: mutable resident indexes.

Covers the seeded write stream, per-flavor mutators (refit and rebuild
equivalence against a fresh-build oracle, on every serving platform),
the rebuild-vs-refit scheduler, epoch-swapped installs through
``MutableResidentIndex``, the staleness contracts (exec build cache,
BVH SoA views, backend config cache), loadtest integration
(determinism, decay-and-recovery, read-only transparency), and the
campaign churn axis.
"""

import copy
import json
import random

import pytest

from repro.errors import ConfigurationError
from repro.exec import ResultCache, build_key
from repro.mutation import (
    CHURN_KINDS,
    MutableResidentIndex,
    MutationConfig,
    QUALITY_KEYS,
    RebuildPolicy,
    WRITE_OPS,
    WriteProfile,
    apply_churn,
    make_mutator,
    parse_churn,
    parse_rebuild_policy,
    parse_write_mix,
    refresh_workload_image,
)
from repro.mutation.scheduler import (
    rebuild_cycles,
    refit_cycles,
    write_cycles,
)
from repro.mutation.stream import (
    DEFAULT_OP_RATE,
    generate_write_events,
    write_stream_signature,
)
from repro.serve import (
    LaunchBackend,
    LoadProfile,
    build_resident_index,
    run_loadtest,
    run_qps_sweep,
)

#: Tiny construction params: builds in milliseconds, real traversal.
TINY = {
    "point": dict(n_keys=512, n_queries=64),
    "range": dict(n_rects=512, n_queries=32),
    "knn": dict(n_points=512, n_queries=32, k=4),
    "radius": dict(n_points=512, n_queries=32),
}

PLATFORMS = ("gpu", "tta", "ttaplus")


def tiny_index(query_class, seed=0):
    params = dict(TINY[query_class])
    params["seed"] = seed
    return build_resident_index(query_class, params)


def churn(mutator, n, seed=0, ops=WRITE_OPS):
    """Apply ``n`` seeded writes cycling through ``ops``."""
    rng = random.Random(seed)
    for i in range(n):
        mutator.apply(ops[i % len(ops)], rng)


def functional_results(query_class, workload):
    """Exact query results straight off the live tree (no simulator)."""
    if query_class == "point":
        return [workload.tree.search(q).found for q in workload.queries]
    if query_class == "range":
        return [tuple(sorted(workload.tree.range_query(w).ids))
                for w in workload.windows]
    if query_class == "knn":
        return [tuple(sorted(workload.tree.knn(q, workload.k).ids))
                for q in workload.queries]
    return [tuple(sorted(workload.trace(q).hits))
            for q in workload.queries]


def oracle_results(query_class, workload, mutator):
    """The same queries answered by a *fresh bulk build* over the
    mutator's live set — the ground truth mutated trees must match."""
    fresh = mutator.fresh_tree()
    if query_class == "point":
        return [fresh.search(q).found for q in workload.queries]
    if query_class == "range":
        return [tuple(sorted(fresh.range_query(w).ids))
                for w in workload.windows]
    if query_class == "knn":
        out = []
        for q in workload.queries:
            got = fresh.knn(q, workload.k)
            out.append(tuple(sorted(
                round((fresh.points[i] - q).length_squared(), 9)
                for i in got.ids)))
        return out
    from repro.kernels.radius_search import radius_query
    return [tuple(sorted(radius_query(fresh, q, workload.radius).hits))
            for q in workload.queries]


def mutated_results_for_oracle(query_class, workload):
    """``functional_results`` in the oracle's comparison domain (knn
    compares distance multisets: equidistant neighbours may differ)."""
    if query_class != "knn":
        return functional_results(query_class, workload)
    out = []
    for q in workload.queries:
        got = workload.tree.knn(q, workload.k)
        out.append(tuple(sorted(
            round((workload.tree.points[i] - q).length_squared(), 9)
            for i in got.ids)))
    return out


# -- write stream -------------------------------------------------------------------
class TestWriteStream:
    PROFILE = LoadProfile(qps=500, duration_s=0.2, warmup_s=0.05,
                          mix={"point": 1.0}, seed=3)

    def test_parse_write_mix(self):
        mix = parse_write_mix("insert=120,delete=60,update=20")
        assert mix == {"insert": 120.0, "delete": 60.0, "update": 20.0}
        assert parse_write_mix("insert") == {"insert": DEFAULT_OP_RATE}

    @pytest.mark.parametrize("text", [
        "", "zorp=1", "insert=oops", "insert=-5", "insert=1,insert=2",
    ])
    def test_parse_write_mix_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_write_mix(text)

    def test_parse_churn(self):
        mix, n = parse_churn("insert=2,delete=1@256")
        assert mix == {"insert": 2.0, "delete": 1.0} and n == 256

    @pytest.mark.parametrize("text", [
        "insert=1", "insert=1@", "@64", "insert=1@zero", "insert=1@-4",
        "insert=1@0",
    ])
    def test_parse_churn_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_churn(text)

    def test_same_seed_same_stream(self):
        write = WriteProfile(mix={"insert": 200.0, "delete": 100.0}, seed=7)
        first = generate_write_events(self.PROFILE, write, ["point"])
        second = generate_write_events(self.PROFILE, write, ["point"])
        assert first == second
        assert write_stream_signature(first) == \
            write_stream_signature(second)
        assert first, "stream should be non-empty at 300 writes/sec"

    def test_different_seed_different_stream(self):
        base = dict(mix={"insert": 200.0, "delete": 100.0})
        first = generate_write_events(
            self.PROFILE, WriteProfile(seed=1, **base), ["point"])
        second = generate_write_events(
            self.PROFILE, WriteProfile(seed=2, **base), ["point"])
        assert write_stream_signature(first) != \
            write_stream_signature(second)

    def test_warmup_writes_are_tagged_unmeasured(self):
        write = WriteProfile(mix={"insert": 400.0}, seed=0)
        events = generate_write_events(self.PROFILE, write, ["point"])
        warm = [e for e in events if not e.measured]
        assert warm and all(e.t < self.PROFILE.warmup_s for e in warm)
        horizon = self.PROFILE.warmup_s + self.PROFILE.duration_s
        assert all(e.t < horizon for e in events)

    def test_ops_follow_mix_rates(self):
        profile = LoadProfile(qps=100, duration_s=4.0, warmup_s=0.0,
                              mix={"point": 1.0}, seed=0)
        write = WriteProfile(mix={"insert": 300.0, "delete": 100.0}, seed=5)
        events = generate_write_events(profile, write, ["point"])
        inserts = sum(e.op == "insert" for e in events)
        deletes = sum(e.op == "delete" for e in events)
        assert inserts / max(deletes, 1) == pytest.approx(3.0, rel=0.25)


# -- scheduler ----------------------------------------------------------------------
class TestScheduler:
    def test_parse_rebuild_policy(self):
        assert parse_rebuild_policy("never").mode == "never"
        assert parse_rebuild_policy("always").mode == "always"
        p = parse_rebuild_policy("writes:96")
        assert p.mode == "writes" and p.write_threshold == 96
        q = parse_rebuild_policy("quality:1.8")
        assert q.mode == "quality" and q.quality_threshold == 1.8
        # A bare mode takes the dataclass default threshold.
        assert parse_rebuild_policy("writes").write_threshold == \
            RebuildPolicy.write_threshold

    @pytest.mark.parametrize("text", [
        "sometimes", "writes:zero", "writes:0", "quality:-1",
        "quality:oops", "never:3",
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_rebuild_policy(text)

    def test_wants_rebuild_modes(self):
        assert not RebuildPolicy(mode="never").wants_rebuild(10**6, 99.0)
        assert RebuildPolicy(mode="always").wants_rebuild(0, 1.0)
        by_writes = RebuildPolicy(mode="writes", write_threshold=100)
        assert not by_writes.wants_rebuild(99, 99.0)
        assert by_writes.wants_rebuild(100, 1.0)
        by_quality = RebuildPolicy(mode="quality", quality_threshold=1.5)
        assert not by_quality.wants_rebuild(10**6, 1.49)
        assert by_quality.wants_rebuild(0, 1.51)

    def test_describe_round_trips(self):
        for text in ("never", "always", "writes:256", "quality:1.5"):
            assert parse_rebuild_policy(text).describe() == text

    def test_cost_model_scales(self):
        assert write_cycles(3) == 3 * write_cycles(1)
        assert refit_cycles(10) == 10 * refit_cycles(1)
        assert rebuild_cycles(4096) > rebuild_cycles(512) > 0
        assert refit_cycles(100) < rebuild_cycles(100)


# -- per-flavor mutators ------------------------------------------------------------
class TestMutators:
    @pytest.mark.parametrize("query_class", sorted(TINY))
    def test_writes_preserve_exactness(self, query_class):
        """Conservative maintenance decays quality, never correctness:
        after heavy mixed churn — before any refit — the live tree
        still answers every canonical query exactly like the golden
        oracle the mutator maintains."""
        index = tiny_index(query_class)
        mutator = make_mutator(query_class, index.workload)
        churn(mutator, 300, seed=1)
        wl = index.workload
        if query_class == "point":
            assert [wl.tree.search(q).found for q in wl.queries] == wl.golden
        elif query_class == "range":
            for w in wl.windows:
                assert tuple(sorted(wl.tree.range_query(w).ids)) == \
                    wl.golden(w)
        elif query_class == "radius":
            for q in wl.queries:
                assert tuple(sorted(wl.trace(q).hits)) == wl.golden(q)

    @pytest.mark.parametrize("query_class", sorted(TINY))
    @pytest.mark.parametrize("maintenance", ["refit", "rebuild"])
    def test_equivalence_with_fresh_build_oracle(self, query_class,
                                                 maintenance):
        """Tentpole acceptance: after churn + refit (and after a full
        rebuild) the mutated tree answers every canonical query exactly
        like a fresh bulk build over the same live set."""
        index = tiny_index(query_class)
        mutator = make_mutator(query_class, index.workload)
        churn(mutator, 200, seed=2)
        if maintenance == "refit":
            mutator.refit()
        else:
            mutator.rebuild()
        got = mutated_results_for_oracle(query_class, index.workload)
        expected = oracle_results(query_class, index.workload, mutator)
        assert got == expected

    @pytest.mark.parametrize("query_class", sorted(TINY))
    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_mutated_index_serves_exactly_per_platform(self, query_class,
                                                       platform):
        """Launch the full canonical stream on the mutated index on
        every platform; the backend verifies every result against the
        (mutator-maintained) golden oracle."""
        index = tiny_index(query_class)
        mutator = make_mutator(query_class, index.workload)
        churn(mutator, 120, seed=3)
        mutator.refit()
        refresh_workload_image(query_class, index.workload)
        index._lowered.clear()
        index.mutation_epoch = getattr(index, "mutation_epoch", 0) + 1
        backend = LaunchBackend(platform, max_verify=10**9)
        qids = list(range(index.n_canonical))
        launch = backend.launch(index, qids, now=0.0)
        assert not launch.failed
        assert len(launch.results) == len(qids)

    @pytest.mark.parametrize("query_class", sorted(TINY))
    def test_delete_everything_down_to_floor(self, query_class):
        """A delete-only storm degrades to inserts at the floor rather
        than emptying the tree; the index stays serviceable."""
        index = tiny_index(query_class)
        mutator = make_mutator(query_class, index.workload)
        rng = random.Random(0)
        ops = [mutator.apply("delete", rng)[0] for _ in range(2000)]
        assert mutator.live_size >= 1
        assert "insert" in ops, "floor should degrade deletes to inserts"
        mutator.refit()
        got = mutated_results_for_oracle(query_class, index.workload)
        assert got == oracle_results(query_class, index.workload, mutator)

    def test_rtree_delete_soak_keeps_invariants(self):
        """Satellite: R-Tree CondenseTree + reinsertion under a long
        interleaved soak — structural invariants and golden equality
        checked throughout."""
        index = tiny_index("range")
        wl = index.workload
        mutator = make_mutator("range", wl)
        rng = random.Random(11)
        for step in range(400):
            mutator.apply(("delete", "insert", "delete", "update")[step % 4],
                          rng)
            if step % 50 == 49:
                wl.tree.check_invariants()
                for w in wl.windows[:8]:
                    assert tuple(sorted(wl.tree.range_query(w).ids)) == \
                        wl.golden(w)
        assert len(wl.tree) == mutator.live_size
        assert len(wl.entries) == mutator.live_size

    def test_kdtree_churn_tracks_live_set(self):
        index = tiny_index("knn")
        wl = index.workload
        mutator = make_mutator("knn", wl)
        churn(mutator, 150, seed=4)
        assert wl.tree.n_live == mutator.live_size
        mutator.rebuild()
        assert sorted(wl.tree.live_point_ids()) == \
            sorted(mutator.pool.items())
        for q in wl.queries[:8]:
            ids = wl.tree.knn(q, wl.k).ids
            assert tuple(sorted(ids)) == tuple(sorted(
                wl.tree.brute_force_knn(q, wl.k)))

    @pytest.mark.parametrize("query_class", sorted(TINY))
    def test_quality_keys_complete_and_finite(self, query_class):
        index = tiny_index(query_class)
        mutator = make_mutator(query_class, index.workload)
        q = mutator.quality()
        assert set(q) == set(QUALITY_KEYS)
        for key, value in q.items():
            assert value == value and value >= 0, (key, value)
        assert q["decay"] > 0

    def test_quality_decays_under_churn_and_recovers_on_rebuild(self):
        index = tiny_index("range")
        mutator = make_mutator("range", index.workload)
        base = mutator.quality()["decay"]
        churn(mutator, 400, seed=5)
        decayed = mutator.quality()["decay"]
        assert decayed > base
        mutator.rebuild()
        rebuilt = mutator.quality()["decay"]
        assert rebuilt < decayed
        assert rebuilt == pytest.approx(base, rel=0.35)

    def test_deterministic_mutation(self):
        results = []
        for _ in range(2):
            index = tiny_index("point")
            mutator = make_mutator("point", index.workload)
            churn(mutator, 100, seed=6)
            results.append((sorted(index.workload.tree.nodes()[0].keys),
                            list(index.workload.golden)))
        assert results[0] == results[1]

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            make_mutator("cubes", object())


# -- MutableResidentIndex -----------------------------------------------------------
class TestMutableResidentIndex:
    def make(self, query_class="point", **kw):
        index = tiny_index(query_class)
        return index, MutableResidentIndex(index, **kw)

    def event(self, t, op="insert", seq=0, cls="point"):
        from repro.mutation.stream import WriteEvent
        return WriteEvent(t=t, query_class=cls, op=op, seq=seq,
                          measured=True)

    def test_apply_counts_and_charges(self):
        _, mut = self.make(refit_threshold=10**6)
        rng = random.Random(0)
        cycles = sum(mut.apply(self.event(i * 1e-4, seq=i), rng)
                     for i in range(10))
        assert mut.writes == 10 and cycles > 0
        assert sum(mut.writes_by_op.values()) == 10

    def test_refit_fires_at_threshold(self):
        _, mut = self.make(refit_threshold=8,
                           policy=RebuildPolicy(mode="never"))
        rng = random.Random(0)
        for i in range(24):
            mut.apply(self.event(i * 1e-4, seq=i), rng)
        assert mut.refits == 3 and mut.rebuilds == 0
        kinds = [e["kind"] for e in mut.maintenance_events]
        assert kinds == ["refit"] * 3

    def test_rebuild_scheduled_then_installed_with_epoch_swap(self):
        index, mut = self.make(
            refit_threshold=4,
            policy=RebuildPolicy(mode="writes", write_threshold=4))
        rng = random.Random(0)
        epoch_before = getattr(index, "mutation_epoch", 0)
        for i in range(4):
            mut.apply(self.event(i * 1e-4, seq=i), rng)
        assert mut._rebuild_ready_at is not None
        assert mut.rebuilds == 0, "old tree keeps serving until ready"
        # Interim writes are the log the swap must not lose.
        for i in range(4, 7):
            mut.apply(self.event(4e-4 + i * 1e-5, seq=i), rng)
        mut.ensure_ready(mut._rebuild_ready_at + 1.0)
        assert mut.rebuilds == 1 and mut.epoch == 1
        installed = [e for e in mut.maintenance_events
                     if e["kind"] == "rebuild_installed"]
        assert installed and installed[0]["log_replayed"] == 3.0
        assert index.mutation_epoch > epoch_before
        # Post-install the tree is equivalent to a fresh build.
        got = mutated_results_for_oracle("point", index.workload)
        assert got == oracle_results("point", index.workload, mut.mutator)

    def test_refresh_clears_derived_caches(self):
        index, mut = self.make(refit_threshold=10**6)
        wl = index.workload
        jobs_before = wl.jobs("tta")
        assert wl._jobs_cache
        index._lowered[("tta", 0)] = ([], True)
        rng = random.Random(0)
        mut.apply(self.event(0.0), rng)
        mut.ensure_ready(1e-3)
        assert not wl._jobs_cache or wl.jobs("tta") is not jobs_before
        assert not index._lowered
        assert wl.mutation_epoch >= 1

    def test_counters_shape(self):
        _, mut = self.make()
        counters = mut.counters()
        assert {"writes", "by_op", "refits", "rebuilds", "epoch",
                "live_items", "decay_ratio"} <= set(counters)

    def test_refit_threshold_validated(self):
        index = tiny_index("point")
        with pytest.raises(ConfigurationError):
            MutableResidentIndex(index, refit_threshold=0)


# -- staleness contracts ------------------------------------------------------------
class TestStalenessContracts:
    def test_build_cache_never_persists_mutated_workload(self, tmp_path):
        """Satellite: a mutated index must never poison the on-disk
        build cache; ``put_build`` refuses any nonzero epoch."""
        cache = ResultCache(tmp_path)
        params = dict(TINY["point"], seed=0)
        index = build_resident_index("point", params, cache=cache)
        key = build_key("btree", params)
        assert cache.get_build(key) is not None, "pristine build cached"
        mutator = make_mutator("point", index.workload)
        churn(mutator, 40, seed=0)
        refresh_workload_image("point", index.workload)
        assert index.workload.mutation_epoch >= 1
        assert cache.put_build(key, index.workload) is False
        # The cached pristine build is still the pristine one.
        cached = cache.get_build(key)
        assert getattr(cached, "mutation_epoch", 0) == 0
        assert len(cached.tree) == len(index.workload.tree) - \
            (mutator.live_size - len(cached.tree))

    def test_bvh_soa_refreshes_after_mutation(self):
        """Satellite regression: ``soa()`` must re-pack after any
        structural mutation, not serve the stale arrays."""
        index = tiny_index("radius")
        bvh = index.workload.bvh
        stale = bvh.soa()
        mutator = make_mutator("radius", index.workload)
        rng = random.Random(0)
        mutator.apply("insert", rng)
        fresh = bvh.soa()
        assert fresh is not stale
        assert len(fresh.nodes) == len(bvh.nodes())
        assert bvh.soa() is fresh, "epoch-stable soa stays memoized"

    def test_backend_config_tracks_mutation_epoch(self):
        index = tiny_index("point")
        backend = LaunchBackend("tta")
        first = backend.config_for(index)
        assert backend.config_for(index) is first
        mutator = make_mutator("point", index.workload)
        churn(mutator, 30, seed=0)
        refresh_workload_image("point", index.workload)
        index.mutation_epoch = getattr(index, "mutation_epoch", 0) + 1
        second = backend.config_for(index)
        assert second is not first


# -- loadtest integration -----------------------------------------------------------
class TestLoadtestMutation:
    PROFILE = LoadProfile(qps=600, duration_s=0.25, warmup_s=0.05,
                          mix={"point": 1.0}, seed=9)
    MUTATION = MutationConfig(
        write=WriteProfile(mix={"insert": 200.0, "delete": 100.0}, seed=9),
        policy=RebuildPolicy(mode="writes", write_threshold=48),
        refit_threshold=16)

    def run(self, mutation=None, seed=0):
        indexes = {"point": tiny_index("point", seed=seed)}
        return run_loadtest("tta", indexes, self.PROFILE,
                            mutation=mutation)

    def test_deterministic_report_fingerprint(self):
        first = self.run(mutation=self.MUTATION)
        second = self.run(mutation=self.MUTATION)
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)

    def test_read_only_run_is_transparent(self):
        """Satellite acceptance: without a write stream the report is
        byte-identical to the pre-mutation serving stack — no mutation
        keys anywhere."""
        report = self.run(mutation=None)
        d = report.to_dict()
        assert "mutation" not in d
        assert not any(name.startswith("mutation.")
                       for name in report.metrics.names())

    def test_mutation_summary_shape_and_decay_recovery(self):
        report = self.run(mutation=self.MUTATION)
        m = report.to_dict()["mutation"]
        assert m["writes_applied"] > 0
        assert m["rebuild_policy"] == "writes:48"
        point = m["per_class"]["point"]
        assert point["writes"] > 0
        assert point["refits"] + point["rebuilds"] > 0
        assert point["rebuilds"] >= 1, "threshold 48 must trigger"
        kinds = [e["kind"] for e in point["maintenance"]]
        assert "rebuild_installed" in kinds
        # Post-rebuild the decayed ratio recovers toward 1.
        assert point["decay_ratio"] == pytest.approx(1.0, abs=0.2)
        curve = m["churn_curve"]
        assert len(curve) >= 4
        assert sum(b["writes"] for b in curve) == m["writes_applied"]
        assert any(b["served"] > 0 for b in curve)

    def test_writes_cost_cycles_on_the_serving_devices(self):
        quiet = self.run(mutation=None)
        churned = self.run(mutation=self.MUTATION)
        assert churned.sim_cycles > quiet.sim_cycles

    def test_mutation_metrics_registered(self):
        report = self.run(mutation=self.MUTATION)
        names = set(report.metrics.names())
        assert report.metrics.get("mutation.writes") > 0
        assert "mutation.point.sah_cost" in names
        assert "mutation.point.decay_ratio" in names

    def test_qps_sweep_legs_start_pristine(self):
        """With mutation, every (platform, qps) leg deep-copies the
        indexes: the same leg re-run alone gives identical results."""
        indexes = {"point": tiny_index("point")}
        sweep = run_qps_sweep(["tta"], [400.0, 800.0], indexes,
                              self.PROFILE, mutation=self.MUTATION)
        alone = run_qps_sweep(["tta"], [800.0],
                              {"point": tiny_index("point")},
                              self.PROFILE, mutation=self.MUTATION)
        row_swept = sweep["curves"]["tta"][1]
        row_alone = alone["curves"]["tta"][0]
        assert row_swept["mutation"] == row_alone["mutation"]
        assert row_swept["latency_ms"] == row_alone["latency_ms"]
        assert sweep["mutation"]["rebuild_policy"] == "writes:48"
        # The originals were never mutated.
        assert getattr(indexes["point"].workload, "mutation_epoch", 0) == 0

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_all_platforms_survive_mixed_traffic(self, platform):
        indexes = {"point": tiny_index("point")}
        report = run_loadtest(platform, indexes, self.PROFILE,
                              mutation=self.MUTATION)
        assert report.served > 0
        assert report.to_dict()["mutation"]["writes_applied"] > 0


# -- campaign churn axis / apply_churn ----------------------------------------------
class TestChurnAxis:
    def test_apply_churn_pre_decays_a_build(self):
        index = tiny_index("range")
        mutator = apply_churn(index.workload, "range",
                              "insert=2,delete=1@120", seed=3)
        assert index.workload.mutation_epoch == 1
        assert mutator.live_size == len(index.workload.tree)
        for w in index.workload.windows[:8]:
            assert tuple(sorted(index.workload.tree.range_query(w).ids)) \
                == index.workload.golden(w)

    @pytest.mark.parametrize("kind", sorted(CHURN_KINDS))
    def test_factories_accept_churn(self, kind):
        from repro.harness.runner import build_workload
        params = {
            "btree": dict(n_keys=256, n_queries=32),
            "rtree": dict(n_rects=256, n_queries=16),
            "knn": dict(n_points=256, n_queries=16, k=4),
            "rtnn": dict(n_points=256, n_queries=16),
        }[kind]
        wl = build_workload(kind, dict(params, seed=0,
                                       churn="insert=3,delete=2@64"))
        assert wl.mutation_epoch == 1

    def test_campaign_validates_churn_axis(self):
        from repro.campaign import CampaignSpec
        spec = CampaignSpec(
            name="churny",
            workloads=[{"kind": "btree",
                        "params": {"n_keys": 256, "n_queries": 32},
                        "churn": [None, "insert=2,delete=1@64"]}],
            platforms=["tta"])
        points = spec.expand()
        assert len(points) == 2
        churns = sorted(str(p.axes["params"]["churn"]) for p in points)
        assert churns == ["None", "insert=2,delete=1@64"]
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="bad",
                         workloads=[{"kind": "nbody", "churn": "insert=1@8"}],
                         platforms=["tta"])
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="bad",
                         workloads=[{"kind": "btree", "churn": "oops"}],
                         platforms=["tta"])

    def test_mutation_config_validation(self):
        with pytest.raises(ConfigurationError):
            WriteProfile(mix={})
        with pytest.raises(ConfigurationError):
            WriteProfile(mix={"zorp": 1.0})
        with pytest.raises(ConfigurationError):
            RebuildPolicy(mode="sometimes")
