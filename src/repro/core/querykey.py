"""The 9-wide Query-Key comparison built on the Ray-Box min/max network.

This module implements Figs. 8-9 of the paper *literally*: the only
primitives used are the MINMAX/MAXMIN operations the Ray-Box unit
already has (Table I: ``MIN(a, MAX(b, c))`` / ``MAX(a, MIN(b, c))``,
degradable to 2-input min/max) and the equality comparators TTA adds —
three to detect a key match (Fig. 9 (3)) and three to produce the child
offset 0/1/2 (Fig. 9 (4)).  One min/max pair covers three keys, and the
unit has three such pairs (the x/y/z slab lanes), so a single issue
resolves a 9-wide node, which is why the paper evaluates 9-wide
B-Trees.

Correctness against Algorithm 1's scalar loop is a property test
(``tests/test_querykey.py``).
"""

import math
from typing import NamedTuple, Optional, Sequence

from repro.errors import ConfigurationError

_PAD = math.inf  # slot filler for nodes with fewer than 9 keys


def _minmax(a: float, b: float, c: float) -> float:
    """Table I MINMAX unit: MIN(a, MAX(b, c))."""
    return min(a, max(b, c))


def _maxmin(a: float, b: float, c: float) -> float:
    """Table I MAXMIN unit: MAX(a, MIN(b, c))."""
    return max(a, min(b, c))


def _eq(a: float, b: float) -> bool:
    """The equality comparator TTA adds after the min/max stages."""
    return a == b


class QueryKeyResult(NamedTuple):
    """Output of one Query-Key instruction (Algorithm 1's outputs).

    ``found`` — the query matched a key in this node.
    ``child`` — index of the child to descend into (None when the query
    exceeds every key: traversal continues with the next key group or,
    at the last group, terminates unsuccessfully).
    """

    found: bool
    child: Optional[int]


class QueryKeyComparator:
    """Functional model of the modified Ray-Box intersection unit."""

    GROUP = 3    # keys per min/max pair
    LANES = 3    # min/max pairs per unit (the x/y/z slab lanes)
    WIDTH = GROUP * LANES

    def compare_group(self, query: float, k1: float, k2: float,
                      k3: float) -> QueryKeyResult:
        """Compare the query against one sorted key triple.

        The (k1, k2, k3) triple must be ascending — B-Tree nodes store
        sorted keys, just as AABB slabs store ordered plane pairs.
        """
        if not (k1 <= k2 <= k3):
            raise ConfigurationError("key group must be sorted ascending")
        # Fig. 9 (2): route query and keys through the min/max sequences.
        # Table I's MAXMIN degrades to a 2-input max: MAXMIN(q, k, k) =
        # max(q, min(k, k)) = max(q, k); comparing the result with k by
        # equality answers "query <= k" using existing silicon.
        le_k1 = _eq(_maxmin(query, k1, k1), k1)
        le_k2 = _eq(_maxmin(query, k2, k2), k2)
        le_k3 = _eq(_maxmin(query, k3, k3), k3)
        # Fig. 9 (3): three equality checks for Found.
        found = _eq(query, k1) or _eq(query, k2) or _eq(query, k3)
        # Fig. 9 (4): one-hot child select -> offset 0/1/2.
        if le_k1:
            child = 0
        elif le_k2:
            child = 1
        elif le_k3:
            child = 2
        else:
            child = None  # query beyond this group
        return QueryKeyResult(found, child)

    def compare(self, query: float,
                keys: Sequence[float]) -> QueryKeyResult:
        """One Query-Key instruction over up to 9 sorted keys.

        Nodes with fewer keys pad unused slots; a padded slot can be
        selected as the route (query below the pad sentinel) but is
        reported as ``child=None`` because no child exists there.
        """
        n = len(keys)
        if n == 0 or n > self.WIDTH:
            raise ConfigurationError(
                f"Query-Key instruction handles 1..{self.WIDTH} keys, "
                f"got {n}"
            )
        if any(keys[i] > keys[i + 1] for i in range(n - 1)):
            raise ConfigurationError("node keys must be sorted")
        padded = list(keys) + [_PAD] * (self.WIDTH - n)
        found = False
        for lane in range(self.LANES):
            group = padded[lane * self.GROUP:(lane + 1) * self.GROUP]
            result = self.compare_group(query, *group)
            found = found or (result.found and not math.isinf(query))
            if result.child is not None:
                child = lane * self.GROUP + result.child
                if child >= n:
                    return QueryKeyResult(found, None)  # routed into padding
                return QueryKeyResult(found, child)
        return QueryKeyResult(found, None)

    def reference(self, query: float,
                  keys: Sequence[float]) -> QueryKeyResult:
        """Algorithm 1 verbatim (the scalar loop) — the golden model."""
        found = False
        for i, key in enumerate(keys):
            if key == query:
                return QueryKeyResult(True, i)
            if query < key:
                return QueryKeyResult(False, i)
        return QueryKeyResult(False, None)
