"""The RTA's dedicated hardware memory scheduler.

Advantage (3) in §II-C of the paper: the scheduler only handles node
requests, issues one memory request per cycle, and coalesces duplicate
node fetches across concurrent traversals.  Tracking many more
concurrent traversals than the SIMT cores can (128 rays vs. one blocked
load per warp) is what nearly doubles DRAM utilization.
"""

from typing import Dict

from repro.memsys.cache import Cache
from repro.memsys.hierarchy import MemoryHierarchy
from repro.sim.engine import Simulator
from repro.sim.resources import Timeline


class RTAMemScheduler:
    """Issues node fetches at a fixed rate with duplicate merging."""

    def __init__(self, sim: Simulator, hierarchy: MemoryHierarchy,
                 l1: Cache, reqs_per_cycle: float = 1.0):
        self.sim = sim
        self.hierarchy = hierarchy
        self.l1 = l1
        self.issue = Timeline("rta.memsched")
        self.service = 1.0 / reqs_per_cycle
        self._sector = hierarchy.config.sector_size
        #: node address -> completion time of the in-flight fetch
        self._inflight: Dict[int, float] = {}
        self.fetches = 0
        self.coalesced = 0

    def fetch(self, now: float, address: int, size: int) -> float:
        """Fetch a node; returns the (analytic) completion time."""
        inflight = self._inflight.get(address)
        if inflight is not None and inflight > now:
            self.coalesced += 1
            return inflight
        start = self.issue.acquire(now, self.service)
        sector = self._sector
        base = address - (address % sector)
        done = self.hierarchy.access_sectors(start + self.service, self.l1,
                                             range(base, address + size,
                                                   sector))
        self._inflight[address] = done
        self.fetches += 1
        return done

    def snapshot(self, end: float) -> dict:
        return {
            "node_fetches": self.fetches,
            "node_fetches_coalesced": self.coalesced,
            "memsched_util": self.issue.utilization(end),
        }
