"""repro.obs: tracer transparency, metrics registry, exporters, CLI.

The load-bearing property is *transparency*: attaching the tracer must
not perturb the simulation.  Every statistic a traced run reports must
equal, stat for stat, the same run with tracing off — the tracer only
observes, it never schedules or reorders.
"""

import json

import pytest

from repro import obs
from repro.harness.runner import run_btree, scaled_config_for
from repro.workloads import make_btree_workload


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    """No pinned tracer or trace env leaks into (or out of) any test."""
    for var in (obs.TRACE_ENV, obs.TRACE_RATE_ENV,
                obs.TRACE_CATEGORIES_ENV, obs.TRACE_EVENTS_ENV):
        monkeypatch.delenv(var, raising=False)
    obs.reset()
    yield
    obs.reset()


def _small_run(platform="tta"):
    wl = make_btree_workload("btree", n_keys=256, n_queries=128, seed=11)
    cfg = scaled_config_for(wl.image.size_bytes)
    return run_btree(wl, platform, config=cfg)


def _stat_fingerprint(run):
    stats = run.stats
    return (
        float(stats.cycles),
        stats.simt_efficiency,
        stats.warp_instructions.as_dict(),
        stats.thread_instructions.as_dict(),
        stats.memory,
        stats.l1_hit_rate,
        stats.accel_stats.get("jobs_completed"),
        stats.accel_stats.get("node_fetches"),
    )


class TestTracerCore:
    def test_emit_and_events(self):
        tracer = obs.Tracer(capacity=16)
        tracer.emit("sm", "sm0", "load", 10.0, 4.0, 32)
        tracer.emit("rta", "ray_box", "op", 12.0)
        assert len(tracer) == 2
        assert tracer.events()[0] == ("sm", "sm0", "load", 10.0, 4.0, 32)
        assert tracer.events_seen == tracer.events_kept == 2

    def test_sampling_rate(self):
        tracer = obs.Tracer(capacity=1000, rate=4)
        for i in range(100):
            tracer.emit("sm", "sm0", "x", float(i))
        assert tracer.events_seen == 100
        assert tracer.events_kept == 25

    def test_category_filter(self):
        tracer = obs.Tracer(capacity=100, categories=("memsys",))
        tracer.emit("sm", "sm0", "x", 0.0)
        tracer.emit("memsys", "dram", "fill", 1.0)
        assert [e[0] for e in tracer.events()] == ["memsys"]

    def test_ring_evicts_oldest(self):
        tracer = obs.Tracer(capacity=8)
        for i in range(20):
            tracer.emit("sm", "sm0", "x", float(i))
        assert len(tracer) == 8
        assert tracer.events_dropped == 12
        assert tracer.events()[0][3] == 12.0  # oldest 12 evicted

    def test_launch_offsets_concatenate(self):
        tracer = obs.Tracer()
        tracer.begin_launch("a")
        tracer.emit("sm", "sm0", "x", 5.0)
        tracer.end_launch(100.0)
        tracer.begin_launch("b")
        tracer.emit("sm", "sm0", "x", 5.0)
        tracer.end_launch(50.0)
        stamps = [e[3] for e in tracer.events() if e[2] == "x"]
        assert stamps == [5.0, 105.0]
        assert tracer.launches == [("a", 100.0), ("b", 50.0)]

    def test_last_active_unit_skips_scheduler(self):
        tracer = obs.Tracer()
        tracer.emit("rta", "rta3", "node_fetch", 1.0)
        tracer.emit("scheduler", "engine", "cycle", 2.0)
        assert tracer.last_active_unit() == "rta:rta3"

    def test_last_active_unit_scheduler_fallback(self):
        tracer = obs.Tracer()
        assert tracer.last_active_unit() is None
        tracer.emit("scheduler", "engine", "cycle", 2.0)
        assert tracer.last_active_unit() == "scheduler:engine"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            obs.Tracer(capacity=0)
        with pytest.raises(ValueError):
            obs.Tracer(rate=0)


class TestTransparency:
    """Tracing on must be stat-for-stat identical to tracing off."""

    @pytest.mark.parametrize("platform", ["gpu", "tta", "ttaplus"])
    def test_stats_identical_with_tracing(self, platform):
        baseline = _stat_fingerprint(_small_run(platform))
        tracer = obs.enable()
        try:
            traced = _stat_fingerprint(_small_run(platform))
        finally:
            obs.reset()
        assert traced == baseline
        assert len(tracer) > 0  # the tracer actually recorded the run

    def test_sampled_tracing_also_transparent(self):
        baseline = _stat_fingerprint(_small_run("tta"))
        obs.enable(rate=16)
        try:
            traced = _stat_fingerprint(_small_run("tta"))
        finally:
            obs.reset()
        assert traced == baseline


class TestEnvControls:
    def test_off_by_default(self):
        assert obs.active_tracer() is None
        run = _small_run("gpu")
        # Metrics are built regardless of tracing; only events need it.
        assert run.metrics.get("sim.cycles") == float(run.stats.cycles)

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", ""])
    def test_falsy_values_stay_off(self, value, monkeypatch):
        monkeypatch.setenv(obs.TRACE_ENV, value)
        assert obs.active_tracer() is None

    def test_env_enables_and_configures(self, monkeypatch):
        monkeypatch.setenv(obs.TRACE_ENV, "1")
        monkeypatch.setenv(obs.TRACE_RATE_ENV, "8")
        monkeypatch.setenv(obs.TRACE_EVENTS_ENV, "4096")
        monkeypatch.setenv(obs.TRACE_CATEGORIES_ENV, "sm,memsys")
        tracer = obs.active_tracer()
        assert tracer is not None
        assert tracer.rate == 8
        assert tracer.capacity == 4096
        assert tracer.categories == frozenset(("sm", "memsys"))
        # Unchanged env: back-to-back launches share one ring.
        assert obs.active_tracer() is tracer

    def test_env_run_collects_events(self, monkeypatch):
        monkeypatch.setenv(obs.TRACE_ENV, "on")
        _small_run("tta")
        tracer = obs.active_tracer()
        assert len(tracer) > 0
        cats = {e[0] for e in tracer.events()}
        assert {"scheduler", "sm", "rta", "memsys"} <= cats

    def test_install_pin_beats_env(self, monkeypatch):
        pinned = obs.install(obs.Tracer())
        monkeypatch.setenv(obs.TRACE_ENV, "1")
        assert obs.active_tracer() is pinned


class TestMetrics:
    def test_snapshot_matches_raw_stats(self):
        run = _small_run("tta")
        stats = run.stats
        m = run.metrics
        assert m.get("sim.cycles") == float(stats.cycles)
        assert m.get("sim.simt_efficiency") == stats.simt_efficiency
        assert m.get("sim.warp_instructions") == \
            stats.total_warp_instructions
        assert m.get("memsys.dram.utilization") == \
            stats.memory["dram_utilization"]
        assert m.get("memsys.dram.bytes") == stats.memory["dram_bytes"]
        assert m.get("memsys.l2.hit_rate") == stats.memory["l2_hit_rate"]
        assert m.get("memsys.l1.hit_rate") == stats.l1_hit_rate

    def test_unit_pool_metrics_namespaced(self):
        # B-Tree traversal exercises the TTA's query-key unit.
        m = _small_run("tta").metrics
        assert m.get("rta.unit.query_key.ops") > 0
        assert m.get("rta.unit.query_key.busy_cycles") > 0
        group = m.group("rta.unit.query_key")
        assert set(group) >= {"ops", "busy_cycles", "occupancy_avg",
                              "occupancy_peak", "latency_mean"}

    def test_ttaplus_op_util_group(self):
        m = _small_run("ttaplus").metrics
        group = m.group("ttaplus.op_util")
        assert group  # TTA+ always reports its OP-unit utilizations
        for value in group.values():
            assert 0.0 <= value <= 1.0

    def test_dram_bandwidth_series_under_tracing(self):
        obs.enable()
        try:
            run = _small_run("tta")
        finally:
            obs.reset()
        series = run.metrics.series("memsys.dram.bandwidth_series")
        assert series is not None
        assert series.total() == run.stats.memory["dram_bytes"]

    def test_no_series_when_tracing_off(self):
        run = _small_run("tta")
        assert run.metrics.series("memsys.dram.bandwidth_series") is None

    def test_metric_accessor_default(self):
        run = _small_run("gpu")
        assert run.metric("no.such.metric", default=-1.0) == -1.0

    def test_snapshot_round_trips_as_dict(self):
        m = _small_run("tta").metrics
        doc = json.loads(json.dumps(m.as_dict(), default=str))
        assert doc["scalars"]["sim.cycles"] == m.get("sim.cycles")


class TestExport:
    def _traced_run(self):
        tracer = obs.enable()
        try:
            _small_run("tta")
        finally:
            obs.reset()
        return tracer

    def test_chrome_trace_has_four_track_categories(self):
        doc = obs.chrome_trace(self._traced_run())
        procs = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert {"scheduler", "sm", "rta", "memsys"} <= procs
        cats = {e["cat"] for e in doc["traceEvents"] if "cat" in e}
        assert len(cats) >= 4

    def test_chrome_trace_event_shape(self):
        doc = obs.chrome_trace(self._traced_run())
        events = [e for e in doc["traceEvents"] if e.get("ph") in "Xi"]
        assert events
        for event in events:
            assert {"name", "cat", "pid", "tid", "ts"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] > 0

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = obs.write_chrome_trace(tmp_path / "t" / "trace.json",
                                      self._traced_run())
        doc = json.loads(path.read_text())
        assert doc["otherData"]["tool"] == "repro.obs"
        assert doc["otherData"]["launches"]

    def test_summaries_render(self):
        tracer = self._traced_run()
        text = obs.summarize_trace(tracer)
        assert "event(s) buffered" in text and "launch" in text
        run = _small_run("tta")
        mtext = obs.summarize_metrics(run.metrics)
        assert "sim.cycles" in mtext

    def test_write_metrics_json(self, tmp_path):
        run = _small_run("gpu")
        path = obs.write_metrics_json(tmp_path / "m.json",
                                      {"point": run.metrics.as_dict()})
        doc = json.loads(path.read_text())
        assert doc["point"]["scalars"]["sim.cycles"] == run.stats.cycles

    def test_dump_diagnostics_honors_obs_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.OBS_DIR_ENV, str(tmp_path / "dumps"))
        tracer = obs.Tracer()
        tracer.emit("rta", "rta0", "node_fetch", 1.0)
        path = obs.dump_diagnostics({"reason": "test"}, tracer)
        assert path is not None
        assert json.loads(open(path).read())["reason"] == "test"
        traces = list((tmp_path / "dumps").glob("trace-test-*.json"))
        assert len(traces) == 1

    def test_dump_diagnostics_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(obs.OBS_DIR_ENV, raising=False)
        assert obs.dump_diagnostics({"reason": "test"}) is None


class TestCacheSidecar:
    def _spec_and_result(self):
        from repro.exec import make_spec
        from repro.harness.runner import execute_spec
        spec = make_spec("btree", {"n_keys": 256, "n_queries": 64}, "tta")
        return spec, execute_spec(spec)

    def test_put_writes_metrics_sidecar(self, tmp_path):
        from repro.exec import ResultCache
        spec, result = self._spec_and_result()
        cache = ResultCache(tmp_path)
        cache.put(spec, result, seconds=0.1)
        doc = json.loads(cache.metrics_path(spec.key).read_text())
        assert doc["label"] == spec.label
        assert doc["metrics"]["scalars"]["memsys.dram.utilization"] == \
            result.metrics.get("memsys.dram.utilization")

    def test_quarantine_sweeps_sidecar(self, tmp_path):
        from repro.exec import ResultCache
        spec, result = self._spec_and_result()
        cache = ResultCache(tmp_path)
        cache.put(spec, result)
        cache.quarantine(spec.key)
        assert not cache.metrics_path(spec.key).exists()

    def test_metricless_result_writes_no_sidecar(self, tmp_path):
        from repro.exec import ResultCache
        spec, _ = self._spec_and_result()
        cache = ResultCache(tmp_path)
        cache.put(spec, {"no": "stats"})
        assert not cache.metrics_path(spec.key).exists()


class TestGuardIntegration:
    def _abort(self, max_cycles=300):
        from repro.errors import SimulationStallError
        from repro.gpu import GPU
        from repro.guard import Guard, GuardConfig
        from repro.kernels.btree_search import btree_accel_kernel
        from repro.rta.rta import make_rta_factory

        wl = make_btree_workload("btree", n_keys=2048, n_queries=256,
                                 seed=3)
        cfg = scaled_config_for(wl.image.size_bytes)
        gpu = GPU(cfg, accelerator_factory=make_rta_factory(tta=True))
        with pytest.raises(SimulationStallError) as err:
            gpu.launch(btree_accel_kernel, wl.n_queries,
                       args=wl.kernel_args(),
                       guard=Guard(GuardConfig(mode="on",
                                               max_cycles=max_cycles)))
        return err.value

    def test_bundle_embeds_flight_recorder_tail(self):
        obs.enable()
        try:
            exc = self._abort()
        finally:
            obs.reset()
        bundle = exc.diagnostics
        assert bundle["last_active_unit"]
        tail = bundle["trace_tail"]
        assert 0 < len(tail) <= 64
        assert all(len(event) == 6 for event in tail)
        assert "last active unit:" in str(exc)

    def test_bundle_without_tracer_has_no_tail(self):
        exc = self._abort()
        assert "trace_tail" not in exc.diagnostics
        assert "last active unit" not in str(exc)

    def test_abort_dumps_to_obs_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.OBS_DIR_ENV, str(tmp_path))
        obs.enable()
        try:
            exc = self._abort()
        finally:
            obs.reset()
        assert exc.diagnostics["dumped_to"]
        bundles = list(tmp_path.glob("guard-cycle-budget-*.json"))
        traces = list(tmp_path.glob("trace-cycle-budget-*.json"))
        assert len(bundles) == 1 and len(traces) == 1
        doc = json.loads(bundles[0].read_text())
        assert doc["reason"] == "cycle-budget"
        assert doc["trace_tail"]


class TestCLI:
    @pytest.fixture(autouse=True)
    def _hermetic_exec(self, tmp_path, monkeypatch):
        import repro.exec as exec_mod
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        exec_mod.reset()
        yield
        exec_mod.reset()

    @staticmethod
    def _tiny_experiment(scale=None):
        # Routed through the exec service like the real figures, so the
        # manifest (and therefore metrics_report) sees the point.
        from repro.exec import get_service, make_spec
        from repro.harness.results import Table
        spec = make_spec("btree", {"n_keys": 256, "n_queries": 128}, "tta")
        run = get_service().run(spec)
        table = Table("tiny", ["workload", "cycles"])
        table.add_row("btree", run.cycles)
        return table

    def test_trace_command_writes_perfetto_trace(self, tmp_path,
                                                 monkeypatch, capsys):
        from repro import __main__ as cli
        monkeypatch.setitem(cli.EXPERIMENTS, "tiny", self._tiny_experiment)
        out = tmp_path / "trace.json"
        assert cli.main(["trace", "tiny", "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        cats = {e["cat"] for e in doc["traceEvents"] if "cat" in e}
        assert {"scheduler", "sm", "rta", "memsys"} <= cats
        printed = capsys.readouterr().out
        assert "perfetto" in printed and "event(s) buffered" in printed
        assert obs.active_tracer() is None  # CLI unpins on the way out

    def test_trace_command_sampling_options(self, tmp_path, monkeypatch,
                                            capsys):
        from repro import __main__ as cli
        monkeypatch.setitem(cli.EXPERIMENTS, "tiny", self._tiny_experiment)
        out = tmp_path / "trace.json"
        assert cli.main(["trace", "tiny", "-o", str(out), "--rate", "16",
                         "--categories", "memsys"]) == 0
        doc = json.loads(out.read_text())
        cats = {e["cat"] for e in doc["traceEvents"] if "cat" in e}
        # Launch markers land on the scheduler track regardless of the
        # category filter; the model categories must be filtered out.
        assert cats <= {"memsys", "scheduler"}
        assert "sm" not in cats and "rta" not in cats
        assert doc["otherData"]["sampling_rate"] == 16

    def test_trace_unknown_experiment(self, capsys):
        from repro import __main__ as cli
        assert cli.main(["trace", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_trace_flag(self, tmp_path, monkeypatch, capsys):
        from repro import __main__ as cli
        monkeypatch.setitem(cli.EXPERIMENTS, "tiny", self._tiny_experiment)
        out = tmp_path / "run-trace.json"
        assert cli.main(["run", "tiny", "--scale", "smoke",
                         "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["otherData"]["events_kept"] > 0
        assert "--trace forces --jobs 1 --no-cache" in \
            capsys.readouterr().err

    def test_run_metrics_out(self, tmp_path, monkeypatch):
        from repro import __main__ as cli
        monkeypatch.setitem(cli.EXPERIMENTS, "tiny", self._tiny_experiment)
        out = tmp_path / "metrics.json"
        assert cli.main(["run", "tiny", "--scale", "smoke", "--no-cache",
                         "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc  # one entry per executed point
        snapshot = next(iter(doc.values()))
        assert "sim.cycles" in snapshot["scalars"]

    def test_run_profile_out(self, tmp_path, monkeypatch, capsys):
        import pstats
        from repro import __main__ as cli
        monkeypatch.setitem(cli.EXPERIMENTS, "tiny", self._tiny_experiment)
        assert cli.main(["run", "tiny", "--scale", "smoke", "--no-cache",
                         "--json-dir", str(tmp_path),
                         "--profile-out", "prof.pstats"]) == 0
        dump = tmp_path / "prof.pstats"
        assert dump.exists()
        pstats.Stats(str(dump))  # loadable
        out = capsys.readouterr().out
        assert "pstats dump written" in out
        assert "cumulative" not in out  # top-25 print suppressed
