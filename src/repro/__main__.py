"""Command-line experiment runner: ``python -m repro``.

Examples::

    python -m repro list
    python -m repro run fig12 --jobs 4
    python -m repro run fig12 fig13 --scale large --csv-dir results/
    python -m repro run all --scale smoke --no-cache
    python -m repro run fig13 --metrics-out results/fig13.metrics.json
    python -m repro trace fig12 --scale smoke -o trace.json
    python -m repro sweep btree --param n_keys=4096,16384 --jobs 4
    python -m repro campaign run table.json --workers 4
    python -m repro campaign worker --join ~/.cache/repro/campaigns/ab-12
    python -m repro campaign status ~/.cache/repro/campaigns/ab-12
    python -m repro bench BENCH_core.json /tmp/candidate.json --check
    python -m repro loadtest --platform gpu,tta,ttaplus --qps 500,2000
    python -m repro serve --platform tta --input queries.jsonl
    python -m repro cache stats
    python -m repro cache prune --stale-leases
    python -m repro cache clear

``run`` and ``sweep`` route every simulation point through the
execution service (:mod:`repro.exec`): with ``--jobs N`` independent
points fan out over a worker-process pool, and completed points are
memoized in a content-addressed on-disk cache (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``) so re-running a figure or resuming an interrupted
sweep only executes the missing points.  Each command prints a manifest
line (``[exec] total=.. executed=.. cached=..``) accounting for every
point.
"""

import argparse
import itertools
import os
import pathlib
import sys
import time

from repro.harness import experiments

EXPERIMENTS = {
    "fig01": experiments.fig01_motivation,
    "fig06": experiments.fig06_roofline,
    "fig12": experiments.fig12_speedup,
    "fig13": experiments.fig13_dram,
    "fig14": experiments.fig14_sensitivity,
    "fig15": experiments.fig15_unit_util,
    "fig16": experiments.fig16_lumibench,
    "fig17": experiments.fig17_limit_study,
    "fig18": experiments.fig18_opunits,
    "fig19": experiments.fig19_energy,
    "fig20": experiments.fig20_instructions,
    "nbody_fusion": experiments.nbody_fusion,
}

from repro.campaign.spec import KIND_PLATFORMS

#: Platforms accepted by each sweepable workload family's runner —
#: shared with the campaign expansion layer so ``sweep`` and
#: ``campaign`` can never disagree about axis validity.
SWEEP_PLATFORMS = KIND_PLATFORMS


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="run up to N simulation points in parallel "
                             "worker processes (default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-point timeout in seconds (parallel runs)")
    parser.add_argument("--guard", default=None,
                        choices=("off", "watch", "on", "strict"),
                        help="simulation guard mode (default: $REPRO_GUARD "
                             "or on); exported to worker processes")
    parser.add_argument("--max-cycles", type=int, default=None, metavar="N",
                        help="abort any simulation whose clock passes N "
                             "cycles (SimulationStallError with a "
                             "diagnostic bundle)")


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--csv-dir", type=pathlib.Path, default=None,
                        help="also write each table as CSV into this "
                             "directory")
    parser.add_argument("--json-dir", type=pathlib.Path, default=None,
                        help="also write each table as full-precision JSON "
                             "into this directory")
    parser.add_argument("--json", action="store_true",
                        help="print each table as JSON instead of the "
                             "formatted text")


#: ``repro --help`` epilog: the subcommands, grouped by what they are
#: for (argparse's flat listing hides the structure once there are
#: seven of them).
_COMMAND_GROUPS = """\
command groups:
  experiments (one-shot figure reproduction):
    list                list available experiments
    run                 run one or more experiments
    sweep               custom parameter sweep over one workload family
    trace               run one experiment with the cycle tracer on

  campaigns (factorial run tables, repro.campaign):
    campaign run        expand and drain a run table with N local workers
    campaign worker     join an existing campaign from this (or any) host
    campaign status     progress probe over a campaign directory
    campaign expand     print the expanded run table without running it
    bench               diff two BENCH_*.json files; --check gates CI

  serving (resident indexes, repro.serve):
    serve               answer JSON-lines queries over warm indexes
    loadtest            open-loop load generation -> QPS vs latency curves

  maintenance:
    cache               inspect, prune, or clear the on-disk caches
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures on the behavioral "
                    "TTA/TTA+ simulator.",
        epilog=_COMMAND_GROUPS,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment names (or 'all')")
    run.add_argument("--scale",
                     default=os.environ.get("REPRO_SCALE", "small"),
                     choices=sorted(experiments.SCALES),
                     help="workload scale (default: $REPRO_SCALE or small)")
    run.add_argument("--plot", action="store_true",
                     help="render ASCII bar charts after each table")
    run.add_argument("--profile", action="store_true",
                     help="run each experiment under cProfile and print "
                          "the top-25 cumulative-time entries (profiles "
                          "this process: use with --jobs 1)")
    run.add_argument("--profile-out", type=pathlib.Path, default=None,
                     metavar="PATH",
                     help="write the cProfile data as a pstats dump to "
                          "PATH instead of printing the top-25 (a bare "
                          "filename lands beside --json-dir output; "
                          "implies --profile)")
    run.add_argument("--trace", type=pathlib.Path, default=None,
                     metavar="PATH",
                     help="record a cycle-domain event trace and write "
                          "it to PATH as Chrome/Perfetto trace JSON "
                          "(forces --jobs 1 and --no-cache so every "
                          "point simulates in this process)")
    run.add_argument("--metrics-out", type=pathlib.Path, default=None,
                     metavar="PATH",
                     help="write every point's repro.obs metrics "
                          "snapshot (label -> metrics) as JSON to PATH")
    _add_output_options(run)
    _add_exec_options(run)

    trace = sub.add_parser(
        "trace",
        help="run one experiment with the cycle tracer on and export a "
             "Chrome/Perfetto trace")
    trace.add_argument("experiment", help="experiment name")
    trace.add_argument("--scale",
                       default=os.environ.get("REPRO_SCALE", "smoke"),
                       choices=sorted(experiments.SCALES),
                       help="workload scale (default: $REPRO_SCALE or "
                            "smoke; traces grow with scale)")
    trace.add_argument("--out", "-o", type=pathlib.Path,
                       default=pathlib.Path("trace.json"), metavar="PATH",
                       help="trace output path (default: trace.json)")
    trace.add_argument("--rate", type=int, default=1, metavar="N",
                       help="keep every Nth event (default 1 = all)")
    trace.add_argument("--events", type=int, default=None, metavar="N",
                       help="ring capacity in events (default: "
                            "$REPRO_TRACE_EVENTS or 1,000,000)")
    trace.add_argument("--categories", default=None, metavar="C1,C2,...",
                       help="categories to keep (scheduler,sm,rta,memsys; "
                            "default: all)")
    trace.add_argument("--metrics-out", type=pathlib.Path, default=None,
                       metavar="PATH",
                       help="also write the points' metrics snapshots "
                            "as JSON to PATH")
    trace.add_argument("--guard", default=None,
                       choices=("off", "watch", "on", "strict"),
                       help="simulation guard mode (default: $REPRO_GUARD "
                            "or on)")
    trace.add_argument("--max-cycles", type=int, default=None, metavar="N",
                       help="abort any simulation whose clock passes N "
                            "cycles")

    sweep = sub.add_parser(
        "sweep",
        help="run a custom parameter sweep over one workload family")
    sweep.add_argument("kind", choices=sorted(SWEEP_PLATFORMS),
                       help="workload family")
    sweep.add_argument("--platforms", default=None, metavar="P1,P2,...",
                       help="platforms to sweep (default: all valid for "
                            "the family)")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="KEY=V1[,V2,...]",
                       help="workload parameter values; repeat for the "
                            "cartesian product (e.g. --param "
                            "n_keys=4096,16384 --param n_queries=1024)")
    _add_output_options(sweep)
    _add_exec_options(sweep)

    def _add_serve_options(p, default_scale="smoke"):
        p.add_argument("--scale", default=default_scale,
                       choices=("smoke", "small", "large"),
                       help="resident-index construction scale "
                            f"(default: {default_scale})")
        p.add_argument("--mix", default="point,range,knn,radius",
                       metavar="CLS[=W],...",
                       help="query classes to serve, with optional "
                            "weights (default: all four, equal)")
        p.add_argument("--max-batch", type=int, default=32, metavar="N",
                       help="close a batch at N queries (default: 32)")
        p.add_argument("--max-wait-ms", type=float, default=2.0,
                       metavar="MS",
                       help="close a batch MS after its first query "
                            "(default: 2.0)")
        p.add_argument("--no-cache", action="store_true",
                       help="do not read or write the on-disk build cache")
        p.add_argument("--guard", default=None,
                       choices=("off", "watch", "on", "strict"),
                       help="simulation guard mode (default: $REPRO_GUARD "
                            "or on)")
        p.add_argument("--max-cycles", type=int, default=None, metavar="N",
                       help="abort any launch whose clock passes N cycles")
        p.add_argument("--resilience", default=None,
                       choices=("off", "shed", "degrade", "strict"),
                       help="serving failure-semantics policy (default: "
                            "$REPRO_RESILIENCE or off)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="per-query latency budget under --resilience "
                            "(default: $REPRO_RESILIENCE_DEADLINE_MS "
                            "or 50)")

    serve = sub.add_parser(
        "serve",
        help="serve JSON-lines queries over resident indexes")
    serve.add_argument("--platform", default="tta",
                       choices=("gpu", "rta", "tta", "ttaplus"),
                       help="platform to serve on (default: tta)")
    serve.add_argument("--input", "-i", type=pathlib.Path, default=None,
                       metavar="PATH",
                       help="JSON-lines query file (default: stdin); each "
                            "line is {\"class\": ..., \"qid\": N} or "
                            "{\"class\": ..., \"payload\": ...}")
    serve.add_argument("--out", "-o", type=pathlib.Path, default=None,
                       metavar="PATH",
                       help="write JSON-lines responses to PATH "
                            "(default: stdout)")
    _add_serve_options(serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="open-loop loadtest: QPS-vs-latency curves per platform")
    loadtest.add_argument("--platform", default="gpu,tta,ttaplus",
                          metavar="P1,P2,...",
                          help="platforms to sweep (default: "
                               "gpu,tta,ttaplus)")
    loadtest.add_argument("--qps", default="500,1000,2000",
                          metavar="Q1,Q2,...",
                          help="offered load points (default: "
                               "500,1000,2000)")
    loadtest.add_argument("--duration", type=float, default=1.0,
                          metavar="SEC",
                          help="measurement window in virtual seconds "
                               "(default: 1.0)")
    loadtest.add_argument("--warmup", type=float, default=0.1, metavar="SEC",
                          help="unmeasured lead-in at the same rate "
                               "(default: 0.1)")
    loadtest.add_argument("--arrival", default="poisson",
                          choices=("poisson", "uniform", "burst"),
                          help="arrival process (default: poisson)")
    loadtest.add_argument("--burst-size", type=int, default=8, metavar="N",
                          help="queries per burst in burst mode "
                               "(default: 8)")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="arrival-schedule seed (default: 0)")
    loadtest.add_argument("--shards", type=int, default=1, metavar="N",
                          help="simulated devices a batch shards across "
                               "(default: 1)")
    loadtest.add_argument("--write-mix", default=None,
                          metavar="OP=RATE,...",
                          help="interleave a write stream: per-op rates in "
                               "writes/sec, e.g. insert=120,delete=60 "
                               "(ops: insert, delete, update; default: "
                               "read-only)")
    loadtest.add_argument("--rebuild-policy", default="writes:256",
                          metavar="MODE",
                          help="rebuild-vs-refit policy under --write-mix: "
                               "never | always | writes:N | quality:X "
                               "(default: writes:256)")
    loadtest.add_argument("--refit-threshold", type=int, default=64,
                          metavar="N",
                          help="writes between maintenance decisions "
                               "under --write-mix (default: 64)")
    loadtest.add_argument("--out", "-o", type=pathlib.Path, default=None,
                          metavar="PATH",
                          help="write the full QPS-vs-latency curves as "
                               "JSON to PATH")
    loadtest.add_argument("--json", action="store_true",
                          help="print the curves JSON to stdout instead "
                               "of the summary table")
    _add_serve_options(loadtest)

    campaign = sub.add_parser(
        "campaign",
        help="factorial run tables over the work-stealing scheduler")
    csub = campaign.add_subparsers(dest="campaign_cmd", required=True)

    crun = csub.add_parser(
        "run", help="expand a run-table JSON and drain it with N local "
                    "worker processes (resumable; re-runs are free)")
    crun.add_argument("table", type=pathlib.Path,
                      help="campaign document (JSON run table)")
    crun.add_argument("--workers", "-w", type=int, default=1, metavar="N",
                      help="local worker processes (default: 1); workers "
                           "on other hosts may join the same directory")
    crun.add_argument("--dir", type=pathlib.Path, default=None,
                      metavar="DIR",
                      help="campaign directory (default: "
                           "<cache>/campaigns/<name>-<id>)")
    crun.add_argument("--json", action="store_true",
                      help="print the finalized manifest as JSON")
    crun.add_argument("--quiet", action="store_true",
                      help="suppress per-point progress lines")
    crun.add_argument("--guard", default=None,
                      choices=("off", "watch", "on", "strict"),
                      help="simulation guard mode for all points")

    cworker = csub.add_parser(
        "worker", help="join an existing campaign as one extra worker "
                       "(run this on any host sharing the cache fs)")
    cworker.add_argument("--join", type=pathlib.Path, required=True,
                         metavar="DIR", help="campaign directory to drain")
    cworker.add_argument("--id", default=None, metavar="ID",
                         help="worker id (default: w<pid>)")
    cworker.add_argument("--max-points", type=int, default=None, metavar="N",
                         help="stop after resolving N points (partial)")
    cworker.add_argument("--max-wait", type=float, default=None,
                         metavar="SEC",
                         help="give up after SEC without progress")
    cworker.add_argument("--quiet", action="store_true",
                         help="suppress per-point progress lines")

    cstatus = csub.add_parser(
        "status", help="progress probe over a campaign directory")
    cstatus.add_argument("dir", type=pathlib.Path)
    cstatus.add_argument("--json", action="store_true")

    cexpand = csub.add_parser(
        "expand", help="print the expanded run table without running it")
    cexpand.add_argument("table", type=pathlib.Path)
    cexpand.add_argument("--json", action="store_true")

    bench = sub.add_parser(
        "bench", help="diff two BENCH_*.json files with noise-aware "
                      "thresholds; --check exits non-zero on regression")
    bench.add_argument("baseline", type=pathlib.Path)
    bench.add_argument("candidate", type=pathlib.Path)
    bench.add_argument("--check", action="store_true",
                       help="exit 1 when any gated leaf regressed")
    bench.add_argument("--threshold", type=float, default=10.0,
                       metavar="PCT",
                       help="base regression gate in percent (default: 10)")
    bench.add_argument("--noise-factor", type=float, default=3.0,
                       metavar="F",
                       help="widen each leaf's gate to F x its baseline "
                            "rep-to-rep cv%% (default: 3)")
    bench.add_argument("--json", action="store_true",
                       help="print the full diff as JSON")

    cache = sub.add_parser(
        "cache", help="inspect, prune, or clear the on-disk caches")
    cache.add_argument("action", choices=("stats", "prune", "clear"))
    cache.add_argument("--stale-leases", action="store_true",
                       help="with prune: also remove expired campaign "
                            "lease files (crashed workers' claims)")
    return parser


DESCRIPTIONS = {
    "fig01": "SIMT efficiency and DRAM bandwidth utilization (motivation)",
    "fig06": "roofline placement of tree-traversal workloads",
    "fig12": "speedups of TTA/TTA+ over the baselines",
    "fig13": "DRAM bandwidth utilization per platform",
    "fig14": "TTA sensitivity: warp buffer size, intersection latency",
    "fig15": "TTA intersection-unit concurrency (avg/peak)",
    "fig16": "LumiBench + WKND_PT on TTA+ vs baseline RTA",
    "fig17": "WKND_PT limit study (perfect RT / perfect memory)",
    "fig18": "TTA+ OP-unit utilization and intersection latency",
    "fig19": "energy normalized to the baseline GPU",
    "fig20": "dynamic instruction breakdown (91% eliminated)",
    "nbody_fusion": "N-Body kernel-fusion optimization (§V-A)",
}


def cmd_list() -> int:
    for name in sorted(EXPERIMENTS):
        print(f"{name:14s} {DESCRIPTIONS.get(name, '')}")
    return 0


def _apply_guard_options(args) -> None:
    """Export ``--guard``/``--max-cycles`` as the guard env vars, so
    both this process and any forked workers pick them up."""
    from repro.guard import GUARD_ENV, MAX_CYCLES_ENV

    guard = getattr(args, "guard", None)
    if guard is not None:
        os.environ[GUARD_ENV] = guard
    max_cycles = getattr(args, "max_cycles", None)
    if max_cycles is not None:
        os.environ[MAX_CYCLES_ENV] = str(max_cycles)


def _apply_resilience_options(args) -> None:
    """Export ``--resilience``/``--deadline-ms`` as the resilience env
    vars (same pattern as the guard options)."""
    from repro.serve.resilience import DEADLINE_MS_ENV, RESILIENCE_ENV

    mode = getattr(args, "resilience", None)
    if mode is not None:
        os.environ[RESILIENCE_ENV] = mode
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is not None:
        os.environ[DEADLINE_MS_ENV] = str(deadline_ms)


def _validate_serve_args(args):
    """Friendly up-front validation of serve/loadtest options; returns
    an error message, or None when the options are sound."""
    from repro.errors import ConfigurationError
    from repro.serve import QUERY_CLASSES, parse_mix

    if getattr(args, "max_batch", 1) < 1:
        return f"--max-batch must be >= 1, got {args.max_batch}"
    if getattr(args, "max_wait_ms", 0.0) < 0:
        return f"--max-wait-ms cannot be negative, got {args.max_wait_ms:g}"
    shards = getattr(args, "shards", None)
    if shards is not None and shards < 1:
        return f"--shards must be >= 1, got {shards}"
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is not None and deadline_ms <= 0:
        return f"--deadline-ms must be positive, got {deadline_ms:g}"
    duration = getattr(args, "duration", None)
    if duration is not None and duration <= 0:
        return f"--duration must be positive, got {duration:g}"
    warmup = getattr(args, "warmup", None)
    if warmup is not None and warmup < 0:
        return f"--warmup cannot be negative, got {warmup:g}"
    burst = getattr(args, "burst_size", None)
    if burst is not None and burst < 1:
        return f"--burst-size must be >= 1, got {burst}"
    try:
        mix = parse_mix(args.mix)
    except ConfigurationError as exc:
        return f"bad --mix {args.mix!r}: {exc}"
    unknown = sorted(set(mix) - set(QUERY_CLASSES))
    if unknown:
        return (f"unknown query class(es) in --mix: {', '.join(unknown)} "
                f"(valid: {', '.join(QUERY_CLASSES)})")
    negative = sorted(cls for cls, w in mix.items() if w < 0)
    if negative:
        return (f"--mix weight(s) cannot be negative: "
                f"{', '.join(negative)}")
    if sum(mix.values()) <= 0:
        return f"--mix weights sum to zero: {args.mix!r}"
    write_mix = getattr(args, "write_mix", None)
    if write_mix is not None:
        from repro.mutation.stream import parse_write_mix

        try:
            parse_write_mix(write_mix)
        except ConfigurationError as exc:
            return f"bad --write-mix {write_mix!r}: {exc}"
    rebuild_policy = getattr(args, "rebuild_policy", None)
    if rebuild_policy is not None:
        from repro.mutation.scheduler import parse_rebuild_policy

        try:
            parse_rebuild_policy(rebuild_policy)
        except ConfigurationError as exc:
            return f"bad --rebuild-policy {rebuild_policy!r}: {exc}"
    refit_threshold = getattr(args, "refit_threshold", None)
    if refit_threshold is not None and refit_threshold < 1:
        return f"--refit-threshold must be >= 1, got {refit_threshold}"
    return None


def _configure_service(jobs: int, no_cache: bool, timeout):
    from repro import exec as exec_mod

    return exec_mod.configure(jobs=jobs, cache_enabled=not no_cache,
                              timeout=timeout, progress=jobs > 1)


def _emit_table(name: str, table, *, json_out: bool, csv_dir, json_dir,
                plot: bool = False) -> None:
    print(table.to_json() if json_out else table.format())
    if plot:
        from repro.harness.plots import auto_plots
        for chart in auto_plots(name, table):
            print(chart)
            print()
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        (csv_dir / f"{name}.csv").write_text(table.to_csv())
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
        (json_dir / f"{name}.json").write_text(table.to_json())


def _pin_tracer(rate: int = None, events: int = None, categories=None):
    """Build and pin a tracer; explicit arguments beat the env knobs."""
    from repro import obs

    if rate is None:
        rate = int(os.environ.get(obs.TRACE_RATE_ENV, "1") or "1")
    if events is None:
        events = int(os.environ.get(obs.TRACE_EVENTS_ENV, "0") or 0) \
            or obs.DEFAULT_CAPACITY
    if isinstance(categories, str):
        categories = [c.strip() for c in categories.split(",") if c.strip()]
    return obs.enable(capacity=events, rate=rate,
                      categories=categories or None)


def _profile_path(profile_out: pathlib.Path, name: str, many: bool,
                  json_dir) -> pathlib.Path:
    """Where one experiment's pstats dump goes.

    A bare filename lands beside the ``--json-dir`` output when that is
    set; with several experiments each gets ``<stem>-<name><suffix>``
    so the dumps don't overwrite each other.
    """
    if json_dir is not None and profile_out.parent == pathlib.Path("."):
        profile_out = pathlib.Path(json_dir) / profile_out
    if many:
        profile_out = profile_out.with_name(
            f"{profile_out.stem}-{name}{profile_out.suffix or '.pstats'}")
    return profile_out


def _hotspot_summary(profiler, limit: int = 10) -> str:
    """Compact top-``limit`` cumulative-time hotspot list for stderr.

    The full ``print_stats(25)`` table (bare ``--profile``) and the
    pstats dump (``--profile-out``) both bury the answer to "where did
    the time go?"; this is the ten-line version that always lands on
    stderr, safely out of any ``--json`` pipeline.
    """
    import pstats
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    lines = [f"[profile] top {limit} hotspots by cumulative time "
             f"(total {stats.total_tt:.2f}s):"]
    for func in stats.fcn_list[:limit]:
        filename, lineno, name = func
        _cc, ncalls, selftime, cumtime, _callers = stats.stats[func]
        where = name if filename.startswith("~") else \
            f"{name} ({pathlib.Path(filename).name}:{lineno})"
        lines.append(f"[profile]   {cumtime:9.3f}s cum  {selftime:8.3f}s "
                     f"self  {ncalls:>9} calls  {where}")
    return "\n".join(lines)


def cmd_run(names, scale: str, csv_dir, plot: bool = False,
            jobs: int = 1, no_cache: bool = False, timeout=None,
            json_dir=None, json_out: bool = False,
            profile: bool = False, profile_out=None,
            trace=None, metrics_out=None) -> int:
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    profile = profile or profile_out is not None
    tracer = None
    if trace is not None:
        # Cached or pooled points never emit events into this process's
        # ring, so a traced run is forced serial and cache-free.
        if jobs > 1 or not no_cache:
            print("[obs] --trace forces --jobs 1 --no-cache",
                  file=sys.stderr)
        jobs, no_cache = 1, True
        tracer = _pin_tracer()
    service = _configure_service(jobs, no_cache, timeout)
    metrics_report = {}
    try:
        for name in names:
            started = time.time()
            if profile:
                import cProfile
                profiler = cProfile.Profile()
                profiler.enable()
                table = service.run_figure(EXPERIMENTS[name], scale)
                profiler.disable()
            else:
                table = service.run_figure(EXPERIMENTS[name], scale)
            _emit_table(name, table, json_out=json_out, csv_dir=csv_dir,
                        json_dir=json_dir, plot=plot)
            if metrics_out is not None:
                # run_figure resets the manifest, so fold each figure's
                # report in as it completes.
                metrics_report.update(service.metrics_report())
            # With --json, stdout must stay parseable
            # (repro run fig --json | jq): route the manifest/timing
            # chatter to stderr.
            chatter = sys.stderr if json_out else sys.stdout
            if profile:
                print(_hotspot_summary(profiler), file=sys.stderr)
            if profile and profile_out is not None:
                path = _profile_path(profile_out, name, len(names) > 1,
                                     json_dir)
                path.parent.mkdir(parents=True, exist_ok=True)
                profiler.dump_stats(path)
                print(f"[profile] pstats dump written to {path} "
                      f"(inspect with python -m pstats)", file=chatter)
            elif profile:
                import io
                import pstats
                stream = io.StringIO()
                pstats.Stats(profiler, stream=stream) \
                    .sort_stats("cumulative").print_stats(25)
                print(stream.getvalue(), file=chatter)
            print(service.manifest.summary(), file=chatter)
            print(f"[{name}: {time.time() - started:.1f}s at scale={scale}]",
                  file=chatter)
            print(file=chatter)
        if metrics_out is not None:
            from repro import obs
            path = obs.write_metrics_json(metrics_out, metrics_report)
            print(f"[obs] metrics for {len(metrics_report)} point(s) "
                  f"written to {path}", file=sys.stderr)
        if tracer is not None:
            from repro import obs
            path = obs.write_chrome_trace(trace, tracer)
            print(obs.summarize_trace(tracer), file=sys.stderr)
            print(f"[obs] trace written to {path} — open it at "
                  f"https://ui.perfetto.dev (or chrome://tracing)",
                  file=sys.stderr)
    finally:
        if tracer is not None:
            from repro import obs
            obs.reset()
    return 0


def cmd_trace(name: str, scale: str, out, rate: int, events,
              categories, metrics_out=None) -> int:
    """``repro trace <experiment>``: serial, cache-free, tracer pinned."""
    if name not in EXPERIMENTS:
        print(f"unknown experiment: {name}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    from repro import obs

    tracer = _pin_tracer(rate=rate, events=events, categories=categories)
    service = _configure_service(1, True, None)
    try:
        started = time.time()
        table = service.run_figure(EXPERIMENTS[name], scale)
        print(table.format())
        print(service.manifest.summary())
        path = obs.write_chrome_trace(out, tracer)
        print(obs.summarize_trace(tracer))
        if metrics_out is not None:
            mpath = obs.write_metrics_json(metrics_out,
                                           service.metrics_report())
            print(f"[obs] metrics written to {mpath}")
        print(f"[{name}: {time.time() - started:.1f}s at scale={scale}]")
        print(f"[obs] trace written to {path} — open it at "
              f"https://ui.perfetto.dev (or chrome://tracing)")
    finally:
        obs.reset()
    return 0


def _parse_param(text: str):
    """``key=v1,v2`` → (key, [typed values])."""
    if "=" not in text:
        raise SystemExit(f"bad --param {text!r}: expected KEY=V1[,V2,...]")
    key, _, raw = text.partition("=")

    def typed(token: str):
        lowered = token.lower()
        if lowered in ("true", "false"):
            return lowered == "true"
        for cast in (int, float):
            try:
                return cast(token)
            except ValueError:
                continue
        return token

    values = [typed(tok) for tok in raw.split(",") if tok != ""]
    if not values:
        raise SystemExit(f"bad --param {text!r}: no values")
    return key.strip(), values


def cmd_sweep(kind: str, platforms, params, csv_dir=None, json_dir=None,
              json_out: bool = False, jobs: int = 1, no_cache: bool = False,
              timeout=None) -> int:
    from repro.exec import make_spec
    from repro.harness.results import Table

    valid = SWEEP_PLATFORMS[kind]
    if platforms:
        chosen = [p.strip() for p in platforms.split(",") if p.strip()]
        bad = [p for p in chosen if p not in valid]
        if bad:
            print(f"invalid platform(s) for {kind}: {', '.join(bad)} "
                  f"(valid: {', '.join(valid)})", file=sys.stderr)
            return 2
    else:
        chosen = list(valid)

    grid = {}
    for item in params:
        key, values = _parse_param(item)
        grid[key] = values
    keys = sorted(grid)
    combos = [dict(zip(keys, values))
              for values in itertools.product(*(grid[k] for k in keys))] \
        if keys else [{}]

    service = _configure_service(jobs, no_cache, timeout)
    specs = [make_spec(kind, combo, platform,
                       config=experiments.default_config_policy(kind))
             for combo in combos for platform in chosen]
    service.run_many(specs)

    table = Table(
        f"sweep — {kind} × {len(combos)} point(s) × "
        f"{len(chosen)} platform(s)",
        ["params", "platform", "cycles", "simt_eff", "dram_util",
         "energy_mj"],
    )
    failures = 0
    for spec in specs:
        record = service.manifest.records.get(spec.key)
        if record is not None and record.status == "failed":
            failures += 1
            print(f"[exec] FAILED {spec.label}: {record.error}",
                  file=sys.stderr)
            continue
        run = service.run(spec)
        label = ",".join(f"{k}={v}" for k, v in
                         sorted(spec.workload.items())) or "(defaults)"
        table.add_row(label, spec.platform, run.cycles,
                      run.simt_efficiency, run.dram_utilization,
                      run.energy.total_mj)
    _emit_table(f"sweep_{kind}", table, json_out=json_out, csv_dir=csv_dir,
                json_dir=json_dir)
    print(service.manifest.summary())
    return 1 if failures else 0


def cmd_cache(action: str, stale_leases: bool = False) -> int:
    from repro.exec import ResultCache

    cache = ResultCache()
    if action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats['root']} (format {stats['format']})")
        print(f"entries:    {stats['entries']}")
        print(f"builds:     {stats['builds']} (resident-index workloads)")
        print(f"size:       {stats['bytes'] / 1e6:.2f} MB")
        print(f"corrupt:    {stats['corrupt']} (quarantined)")
        print(f"campaigns:  {stats['campaigns']} "
              f"(leases: {stats['leases']}, "
              f"stale: {stats['stale_leases']})")
        print(f"quarantine: {stats['quarantine']} guard bundles")
    elif action == "prune":
        bundles = cache.prune_quarantine()
        line = f"pruned {bundles} quarantine/corrupt file(s)"
        if stale_leases:
            leases = cache.prune_stale_leases()
            line += f", {leases} stale campaign lease(s)"
        print(f"{line} from {cache.base}")
    else:
        removed = cache.clear()
        print(f"removed {removed} cached entries (runs + builds) "
              f"from {cache.base}")
    return 0


# -- campaigns -------------------------------------------------------------------
def cmd_campaign(args) -> int:
    import json

    from repro.campaign import (
        CampaignSpec,
        campaign_dir_for,
        run_campaign,
        run_worker,
        status,
    )
    from repro.errors import ConfigurationError

    try:
        if args.campaign_cmd == "run":
            spec = CampaignSpec.from_file(args.table)
            manifest = run_campaign(spec, workers=args.workers,
                                    directory=args.dir, quiet=args.quiet)
            if args.json:
                print(json.dumps(manifest, indent=1, default=str))
            else:
                totals, inv = manifest["totals"], manifest["invocation"]
                print(f"[campaign] {spec.slug}: {totals['points']} points "
                      f"in {manifest['wall_seconds']:.2f}s on "
                      f"{manifest['n_workers']} worker(s)")
                print(f"[campaign] this run: executed={inv['executed']} "
                      f"cached={inv['cached']} skipped={inv['skipped']} "
                      f"failed={inv['failed']} "
                      f"quarantined={inv['quarantined']} "
                      f"stolen={inv['stolen']}")
                print(f"[campaign] cumulative: executed={totals['executed']} "
                      f"cached={totals['cached']} "
                      f"failed={totals['failed']} "
                      f"quarantined={totals['quarantined']} "
                      f"unresolved={totals['unresolved']}")
                print(f"[campaign] result fingerprint "
                      f"{manifest['result_fingerprint'][:16]}  "
                      f"manifest {manifest['directory']}/manifest.json")
            bad = manifest["totals"]["failed"] \
                + manifest["totals"]["unresolved"]
            return 1 if bad else 0
        if args.campaign_cmd == "worker":
            report = run_worker(args.join, worker_id=args.id,
                                max_points=args.max_points,
                                max_wait_s=args.max_wait, quiet=args.quiet)
            print(f"[campaign] worker {report.worker_id}: "
                  f"executed={report.executed} cached={report.cached} "
                  f"skipped={report.skipped} failed={report.failed} "
                  f"quarantined={report.quarantined} "
                  f"stolen={report.stolen}"
                  f"{' (partial)' if report.partial else ''}")
            return 1 if report.errors and not report.resolved else 0
        if args.campaign_cmd == "status":
            doc = status(args.dir)
            if args.json:
                print(json.dumps(doc, indent=1, default=str))
            else:
                print(f"[campaign] {doc['campaign']} ({doc['slug']}): "
                      f"{doc['resolved']}/{doc['points']} resolved, "
                      f"{doc['unresolved']} open; statuses "
                      f"{doc['statuses']}; leases {doc['leases']}; "
                      f"manifest "
                      f"{'yes' if doc['manifest_written'] else 'no'}")
            return 0
        # expand
        spec = CampaignSpec.from_file(args.table)
        points = spec.expand()
        if args.json:
            print(json.dumps(
                [{"key": p.key, "label": p.label, "axes": p.axes}
                 for p in points], indent=1, default=str))
        else:
            for point in points:
                print(f"{point.key[:16]}  {point.label}")
            print(f"[campaign] {spec.slug}: {len(points)} points "
                  f"(dir {campaign_dir_for(spec)})")
        return 0
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_bench(args) -> int:
    import json

    from repro.campaign import check, compare_files

    try:
        diff = compare_files(args.baseline, args.candidate,
                             threshold_pct=args.threshold,
                             noise_factor=args.noise_factor)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.to_dict(), indent=1, default=str))
    else:
        print(diff.summary())
    if args.check:
        code, verdict = check(diff)
        print(verdict)
        return code
    return 0


# -- serving ---------------------------------------------------------------------
def _build_indexes(mix_text: str, scale: str, no_cache: bool):
    """Resident indexes for every class in a CLI mix string, routed
    through the exec build cache; returns ``(indexes, mix)``."""
    from repro.exec import ResultCache
    from repro.serve import SERVE_SCALES, build_resident_index, parse_mix

    mix = parse_mix(mix_text)
    cache = None if no_cache else ResultCache()
    indexes = {}
    for cls in sorted(mix):
        if mix[cls] <= 0:
            continue
        started = time.time()
        indexes[cls] = build_resident_index(cls, SERVE_SCALES[scale][cls],
                                            cache=cache)
        how = "cached" if indexes[cls].from_cache else "built"
        print(f"[serve] {cls}: {indexes[cls].spec.kind} index {how} in "
              f"{time.time() - started:.2f}s "
              f"(capacity {indexes[cls].capacity})", file=sys.stderr)
    return indexes, mix


def _serve_policy(args):
    from repro.serve import BatchPolicy

    return BatchPolicy(max_batch=args.max_batch,
                       max_wait_s=args.max_wait_ms / 1e3)


def cmd_serve(args) -> int:
    """``repro serve``: answer JSON-lines queries over warm indexes."""
    import asyncio
    import json

    from repro.serve import ServeService

    error = _validate_serve_args(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    indexes, _ = _build_indexes(args.mix, args.scale, args.no_cache)
    service = ServeService(indexes, platform=args.platform,
                           policy=_serve_policy(args))

    if args.input is not None:
        lines = args.input.read_text().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    requests = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
            cls = record["class"]
        except (ValueError, KeyError, TypeError):
            print(f"[serve] bad query on line {lineno}: {line!r}",
                  file=sys.stderr)
            return 2
        requests.append((cls, record.get("qid"), record.get("payload")))

    async def run():
        async with service:
            return await asyncio.gather(
                *[service.query(cls, qid=qid, payload=payload)
                  for cls, qid, payload in requests],
                return_exceptions=True)

    responses = asyncio.run(run())
    sink = args.out.open("w") if args.out is not None else sys.stdout
    failures = 0
    try:
        for (cls, qid, _), response in zip(requests, responses):
            if isinstance(response, BaseException):
                failures += 1
                record = {"class": cls, "qid": qid,
                          "error": f"{type(response).__name__}: {response}"}
            else:
                record = {
                    "class": response.query_class,
                    "qid": response.qid,
                    "result": _json_safe(response.result),
                    "batch_size": response.batch_size,
                    "sim_us": round(response.sim_seconds * 1e6, 3),
                    "engine": response.engine,
                }
            print(json.dumps(record), file=sink)
    finally:
        if args.out is not None:
            sink.close()
    stats = service.stats()
    print(f"[serve] {stats['queries_served']} queries in "
          f"{stats['batches_served']} batches on {args.platform} "
          f"({stats['degraded_batches']} degraded)", file=sys.stderr)
    res = stats["resilience"]
    if res["mode"] != "off":
        print(f"[serve] resilience={res['mode']}: "
              f"{res['queries_shed']} shed, "
              f"{res['queries_expired']} expired, "
              f"{res['queries_failed']} failed, "
              f"{res['retries']} retries", file=sys.stderr)
    if res["degraded_reasons"]:
        detail = ", ".join(f"{reason}={count}" for reason, count
                           in res["degraded_reasons"].items())
        print(f"[serve] degraded batches by reason: {detail}",
              file=sys.stderr)
    return 1 if failures else 0


def _json_safe(value):
    """Query results are ints/bools/tuples of ints — flatten tuples."""
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return value


def cmd_loadtest(args) -> int:
    """``repro loadtest``: QPS-vs-latency curves per platform."""
    import json

    from repro.harness.results import Table
    from repro.serve import LoadProfile, run_qps_sweep

    platforms = [p.strip() for p in args.platform.split(",") if p.strip()]
    valid = ("gpu", "rta", "tta", "ttaplus")
    bad = [p for p in platforms if p not in valid]
    if bad:
        print(f"invalid platform(s): {', '.join(bad)} "
              f"(valid: {', '.join(valid)})", file=sys.stderr)
        return 2
    try:
        qps_values = [float(q) for q in args.qps.split(",") if q.strip()]
    except ValueError:
        print(f"bad --qps {args.qps!r}: expected Q1[,Q2,...]",
              file=sys.stderr)
        return 2
    if not qps_values:
        print("--qps needs at least one load point", file=sys.stderr)
        return 2
    nonpositive = [q for q in qps_values if q <= 0]
    if nonpositive:
        print(f"--qps load points must be positive, got "
              f"{', '.join(f'{q:g}' for q in nonpositive)}",
              file=sys.stderr)
        return 2
    error = _validate_serve_args(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2

    indexes, mix = _build_indexes(args.mix, args.scale, args.no_cache)
    profile = LoadProfile(qps=qps_values[0], duration_s=args.duration,
                          warmup_s=args.warmup, mix=mix,
                          arrival=args.arrival, burst_size=args.burst_size,
                          seed=args.seed)
    mutation = None
    if args.write_mix is not None:
        from repro.mutation import MutationConfig, WriteProfile
        from repro.mutation.scheduler import parse_rebuild_policy
        from repro.mutation.stream import parse_write_mix

        mutation = MutationConfig(
            write=WriteProfile(mix=parse_write_mix(args.write_mix),
                               seed=args.seed),
            policy=parse_rebuild_policy(args.rebuild_policy),
            refit_threshold=args.refit_threshold)

    def progress(platform, qps):
        print(f"[loadtest] {platform} @ {qps:g} qps ...", file=sys.stderr)

    started = time.time()
    sweep = run_qps_sweep(platforms, qps_values, indexes, profile,
                          policy=_serve_policy(args), n_shards=args.shards,
                          progress=progress, mutation=mutation)

    resilient = sweep["resilience_mode"] != "off"
    if args.json:
        print(json.dumps(sweep, indent=2, sort_keys=True))
    else:
        table = Table(
            f"loadtest — {args.arrival} arrivals, "
            f"{args.duration:g}s window, scale={args.scale}, "
            f"resilience={sweep['resilience_mode']}",
            ["platform", "qps", "achieved", "goodput", "p50_ms", "p95_ms",
             "p99_ms", "batch", "shed", "degraded"],
        )
        for platform in platforms:
            for row in sweep["curves"][platform]:
                table.add_row(platform, row["qps"], row["achieved_qps"],
                              row["slo"]["goodput_qps"],
                              row["latency_ms"]["p50_ms"],
                              row["latency_ms"]["p95_ms"],
                              row["latency_ms"]["p99_ms"],
                              row["mean_batch_size"],
                              row["resilience"]["shed"],
                              row["degraded_batches"])
        print(table.format())
    if mutation is not None:
        for platform in platforms:
            for row in sweep["curves"][platform]:
                m = row.get("mutation")
                if not m:
                    continue
                decays = [b["decay_ratio"] for b in m["churn_curve"]
                          if b.get("decay_ratio") is not None]
                span = (f", decay peak {max(decays):.3f} "
                        f"final {decays[-1]:.3f}") if decays else ""
                detail = "; ".join(
                    f"{cls}: {c['writes']}w/{c['refits']}rf/"
                    f"{c['rebuilds']}rb"
                    for cls, c in sorted(m["per_class"].items()))
                print(f"[mutation] {platform} @ {row['qps']:g}qps — "
                      f"{detail}{span}", file=sys.stderr)
    if resilient:
        for platform in platforms:
            for row in sweep["curves"][platform]:
                slo = row["slo"]
                print(f"[slo] {platform} @ {row['qps']:g}qps: "
                      f"goodput {slo['goodput_qps']:.0f}/s, "
                      f"shed {slo['shed_fraction']:.1%}, "
                      f"failed {slo['error_fraction']:.1%}, "
                      f"p99(admitted) {slo['p99_admitted_ms']:.2f}ms",
                      file=sys.stderr)
    for platform in platforms:
        reasons: dict = {}
        for row in sweep["curves"][platform]:
            for reason, count in row["resilience"][
                    "degraded_reasons"].items():
                reasons[reason] = reasons.get(reason, 0) + count
        if reasons:
            detail = ", ".join(f"{reason}={count}" for reason, count
                               in sorted(reasons.items()))
            print(f"[loadtest] {platform} degraded batches by reason: "
                  f"{detail}", file=sys.stderr)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(sweep, indent=2, sort_keys=True))
        print(f"[loadtest] curves written to {args.out}", file=sys.stderr)
    print(f"[loadtest] {len(platforms)} platform(s) x "
          f"{len(qps_values)} load point(s) in {time.time() - started:.1f}s",
          file=sys.stderr)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    _apply_guard_options(args)
    if args.command in ("serve", "loadtest"):
        # Validate before exporting any resilience env vars: a rejected
        # invocation must not leave a bad (or any) setting behind for
        # whatever reads the environment next.
        error = _validate_serve_args(args)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
    _apply_resilience_options(args)
    if args.command == "sweep":
        return cmd_sweep(args.kind, args.platforms, args.param,
                         csv_dir=args.csv_dir, json_dir=args.json_dir,
                         json_out=args.json, jobs=args.jobs,
                         no_cache=args.no_cache, timeout=args.timeout)
    if args.command == "cache":
        return cmd_cache(args.action, stale_leases=args.stale_leases)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "loadtest":
        return cmd_loadtest(args)
    if args.command == "trace":
        return cmd_trace(args.experiment, args.scale, args.out,
                         rate=args.rate, events=args.events,
                         categories=args.categories,
                         metrics_out=args.metrics_out)
    return cmd_run(args.experiments, args.scale, args.csv_dir,
                   plot=getattr(args, "plot", False), jobs=args.jobs,
                   no_cache=args.no_cache, timeout=args.timeout,
                   json_dir=args.json_dir, json_out=args.json,
                   profile=getattr(args, "profile", False),
                   profile_out=getattr(args, "profile_out", None),
                   trace=getattr(args, "trace", None),
                   metrics_out=getattr(args, "metrics_out", None))


if __name__ == "__main__":
    sys.exit(main())
