"""Failure semantics for the serving layer: ``repro.resilience``.

The loadtest and the asyncio facade answer "how fast"; this module
answers "what happens when traffic exceeds capacity".  Overload is the
common case for a shared accelerator (RTNN-style asymmetric neighbor
loads, clustering bursts), so the serving stack needs explicit
semantics for the work it *refuses*, not just the work it serves:

* **Deadlines** — every admitted query carries an absolute deadline on
  the service timeline; a query is shed at admission when the current
  device backlog plus its class's EWMA *service* time
  (:class:`EwmaEstimator`) cannot fit the class's deadline budget
  (the budget scales with priority, so bulk classes give up their
  slack first), and a query whose deadline passes while it waits in an
  open batch is expired at dispatch.  Feeding the estimator pure
  service time — never queue wait — keeps admission self-correcting:
  shedding drains the backlog, which re-opens admission, instead of a
  congested latency estimate locking the class out for good.
* **Admission control / load shedding** — queue-depth and cycle-budget
  (device backlog) watermarks, scaled by per-class priority
  (:data:`DEFAULT_PRIORITIES`): point lookups ride out overload that
  sheds bulk range scans first.
* **Circuit breaker + bounded retry** (:class:`CircuitBreaker`) —
  transient launch failures retry with exponential backoff; repeated
  failures open the breaker so doomed batches fail (or degrade to the
  legacy engine) immediately instead of burning device time.
* **Hedged re-dispatch** — a launch stranded on a dead device shard is
  re-issued on a healthy one after ``hedge_timeout_s``.
* **Result integrity** (:func:`check_batch_integrity`) — every query
  must come back with exactly one well-formed result; a corrupt batch
  is retried and counted, never silently returned.

Policy selection: ``REPRO_RESILIENCE`` = ``off`` (default; the serving
path is stat-for-stat identical to the pre-resilience stack) | ``shed``
(admission control + deadlines) | ``degrade`` (shed + legacy-engine
degradation on breaker exhaustion + hedged re-dispatch) | ``strict``
(degrade + per-batch integrity verification; integrity *detection*
stays on in every mode, strict escalates a repeat offender to an
:class:`~repro.errors.InvariantViolation`).

Every mechanism is provable under the ``$REPRO_FAULTS`` serve-path
injectors (``repro.guard.faults.SERVE_KINDS``); MODEL.md §12 has the
operator-facing story.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.guard.config import env_float, env_int

import os

RESILIENCE_ENV = "REPRO_RESILIENCE"
MAX_QUEUE_ENV = "REPRO_RESILIENCE_MAX_QUEUE"
DEADLINE_MS_ENV = "REPRO_RESILIENCE_DEADLINE_MS"
BACKLOG_MS_ENV = "REPRO_RESILIENCE_BACKLOG_MS"

MODES = ("off", "shed", "degrade", "strict")

#: Admission priority per query class: 0 sheds last, larger sheds
#: sooner.  Point lookups are the latency-critical tier; bulk range and
#: radius scans are the first to go when watermarks trip.
DEFAULT_PRIORITIES: Mapping[str, int] = {
    "point": 0, "knn": 1, "range": 2, "radius": 2,
}

#: Fraction of each watermark available to a priority tier: tier 0
#: sheds only at 100% of the watermark, tier 2 already at 50%.
PRIORITY_SHARES = (1.0, 0.75, 0.5)

DEFAULT_MAX_QUEUE = 256
DEFAULT_DEADLINE_MS = 50.0
DEFAULT_BACKLOG_MS = 250.0


def resilience_mode() -> str:
    """Active policy from ``$REPRO_RESILIENCE`` (default ``off``)."""
    mode = os.environ.get(RESILIENCE_ENV, "off").strip().lower() or "off"
    if mode not in MODES:
        raise ConfigurationError(
            f"{RESILIENCE_ENV}={mode!r} is not a resilience policy; "
            f"expected one of {MODES}")
    return mode


@dataclass(frozen=True)
class ResilienceConfig:
    """Immutable failure-semantics knobs; module docstring has the map."""

    mode: str = "off"
    #: Queue-depth watermark: in-flight + batched queries.
    max_queue: int = DEFAULT_MAX_QUEUE
    #: Per-query latency budget (admission -> completion), ms; None
    #: disables deadline semantics (queries wait forever).
    deadline_ms: Optional[float] = DEFAULT_DEADLINE_MS
    #: Cycle-budget watermark: mean per-device backlog, ms of service
    #: time already committed but not yet executed.
    backlog_ms: float = DEFAULT_BACKLOG_MS
    #: EWMA smoothing for per-class service-time estimates.
    ewma_alpha: float = 0.2
    #: Bounded retry around backend launches.
    max_retries: int = 2
    backoff_base_s: float = 1e-4
    #: Circuit breaker: consecutive failures to open, and how long an
    #: open breaker rejects before probing half-open.
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.05
    #: Hedged re-dispatch: how long after a shard goes dark the launch
    #: is re-issued elsewhere.
    hedge_timeout_s: float = 2e-3
    priorities: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITIES))

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(
                f"resilience mode {self.mode!r} not in {MODES}")
        if self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {self.deadline_ms}")
        for name in ("backlog_ms", "ewma_alpha", "backoff_base_s",
                     "breaker_cooldown_s", "hedge_timeout_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"ResilienceConfig.{name} must be positive, "
                    f"got {getattr(self, name)!r}")
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.max_retries < 0 or self.breaker_threshold < 1:
            raise ConfigurationError(
                f"max_retries must be >= 0 and breaker_threshold >= 1 "
                f"(got {self.max_retries}, {self.breaker_threshold})")

    # -- capability flags --------------------------------------------------
    @property
    def active(self) -> bool:
        return self.mode != "off"

    @property
    def sheds(self) -> bool:
        """Admission control + deadline semantics are on."""
        return self.mode in ("shed", "degrade", "strict")

    @property
    def degrades(self) -> bool:
        """Exhausted retries / open breaker fall back to the legacy
        engine instead of failing the batch."""
        return self.mode in ("degrade", "strict")

    @property
    def hedges(self) -> bool:
        """Launches stranded on a dead shard re-dispatch elsewhere."""
        return self.mode in ("degrade", "strict")

    @property
    def strict(self) -> bool:
        return self.mode == "strict"

    # -- per-class watermarks ----------------------------------------------
    def priority(self, query_class: str) -> int:
        return self.priorities.get(query_class, 1)

    def _share(self, query_class: str) -> float:
        tier = min(self.priority(query_class), len(PRIORITY_SHARES) - 1)
        return PRIORITY_SHARES[tier]

    def queue_limit(self, query_class: str) -> int:
        """Queue depth at which this class starts shedding."""
        return max(1, int(self.max_queue * self._share(query_class)))

    def backlog_limit_s(self, query_class: str) -> float:
        """Mean device backlog (seconds) at which this class sheds."""
        return self.backlog_ms / 1e3 * self._share(query_class)

    @property
    def deadline_s(self) -> Optional[float]:
        return None if self.deadline_ms is None else self.deadline_ms / 1e3

    def deadline_budget_s(self, query_class: str) -> Optional[float]:
        """Admission-time latency budget for this class: the deadline
        scaled by priority share.  The *completion* deadline stays the
        full ``deadline_s`` for every class; shrinking only the
        admission budget makes bulk classes surrender queue headroom
        to the latency-critical tier before anyone misses for real."""
        if self.deadline_ms is None:
            return None
        return self.deadline_ms / 1e3 * self._share(query_class)

    def backoff_s(self, attempt: int) -> float:
        """Virtual-time backoff before retry ``attempt`` (1-based):
        exponential, deterministic (no jitter — reproducibility wins)."""
        return self.backoff_base_s * (2.0 ** (attempt - 1))

    @classmethod
    def from_env(cls, **overrides) -> "ResilienceConfig":
        values: Dict[str, Any] = {
            "mode": resilience_mode(),
            "max_queue": env_int(MAX_QUEUE_ENV, DEFAULT_MAX_QUEUE),
            "deadline_ms": env_float(DEADLINE_MS_ENV, DEFAULT_DEADLINE_MS),
            "backlog_ms": env_float(BACKLOG_MS_ENV, DEFAULT_BACKLOG_MS),
        }
        values.update(overrides)
        return cls(**values)


#: Module-default config: parsed lazily so tests that monkeypatch the
#: environment see their changes.
def default_config() -> ResilienceConfig:
    return ResilienceConfig.from_env()


class EwmaEstimator:
    """Exponentially weighted moving average of a class's service time.

    ``value`` is None until the first observation — admission checks
    skip the deadline-feasibility test until the service has seen at
    least one completion for the class (cold starts admit optimistically
    rather than shedding blind).

    Feed this *pure service time* (launch occupancy), never end-to-end
    sojourn: a sojourn estimate saturates above the deadline under
    overload and — since a fully-shedding class never completes another
    query — can never recover, wedging admission permanently.  Service
    time stays stable under load, so feasibility tracks the *live*
    backlog and re-opens as shedding drains it.
    """

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float = 0.2):
        if not 0 < alpha <= 1:
            raise ConfigurationError(
                f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: Optional[float] = None
        self.samples = 0

    def observe(self, sample: float) -> float:
        self.samples += 1
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value


#: Circuit-breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Virtual-time circuit breaker around one backend's launches.

    Classic three-state machine: CLOSED counts consecutive failures and
    opens at ``threshold``; OPEN rejects every attempt until
    ``cooldown_s`` has passed; then HALF_OPEN admits a single probe —
    success closes the breaker, failure re-opens it for another full
    cooldown.  All times are caller-supplied (the loadtest feeds virtual
    time, the asyncio facade feeds ``time.monotonic()``), so the state
    machine itself is pure and deterministic.
    """

    __slots__ = ("threshold", "cooldown_s", "failures", "opened_at",
                 "opens", "_probing")

    def __init__(self, threshold: int = 3, cooldown_s: float = 0.05):
        if threshold < 1 or cooldown_s <= 0:
            raise ConfigurationError(
                f"breaker threshold must be >= 1 and cooldown positive "
                f"(got {threshold}, {cooldown_s})")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.failures = 0             # consecutive, in CLOSED
        self.opened_at: Optional[float] = None
        self.opens = 0                # lifetime open transitions
        self._probing = False

    def state(self, now: float) -> str:
        if self.opened_at is None:
            return CLOSED
        if now - self.opened_at >= self.cooldown_s:
            return HALF_OPEN
        return OPEN

    def allow(self, now: float) -> bool:
        """May a launch be attempted now?  In HALF_OPEN only the first
        caller gets through (the probe); the rest stay rejected until
        the probe reports back."""
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self, now: float) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when this call *opens* the
        breaker (closed -> open, or a failed half-open probe)."""
        if self.opened_at is not None:
            # Failed probe (or failure racing the open window): re-open
            # from now.
            self.opened_at = now
            self._probing = False
            self.opens += 1
            return True
        self.failures += 1
        if self.failures >= self.threshold:
            self.opened_at = now
            self.opens += 1
            return True
        return False


def check_batch_integrity(results: Dict[int, Any],
                          n_queries: int) -> Optional[str]:
    """The serving edition of the guard's conservation invariants:
    every query slot must have exactly one well-formed result.

    Returns a human-readable violation reason, or None when the batch
    is sound.  Cheap (one pass, no golden data), so it runs on every
    launch in every mode — corruption is *detected* unconditionally;
    what happens next (retry, fail, raise) is policy.
    """
    from repro.guard.faults import is_corrupt_result

    missing = [slot for slot in range(n_queries) if slot not in results]
    if missing:
        return (f"batch result conservation: {len(missing)} of "
                f"{n_queries} slots missing (first: {missing[0]})")
    for slot in range(n_queries):
        if is_corrupt_result(results[slot]):
            return f"garbled result in slot {slot}"
    return None


def slo_summary(offered: int, served: int, shed: int, failed: int,
                deadline_misses: int, duration_s: float,
                p99_admitted_ms: float) -> Dict[str, Any]:
    """The SLO block of a loadtest report.

    Accounting invariant (asserted by the fault-matrix tests): every
    measured query lands in exactly one of served / shed / failed, so
    ``admitted = served + failed`` and ``offered = admitted + shed``.
    Goodput counts only completions that made their deadline.
    """
    admitted = served + failed
    good = served - deadline_misses
    return {
        "offered": offered,
        "admitted": admitted,
        "served": served,
        "shed": shed,
        "failed": failed,
        "deadline_misses": deadline_misses,
        "goodput_qps": good / duration_s if duration_s > 0 else 0.0,
        "shed_fraction": shed / offered if offered else 0.0,
        "error_fraction": failed / offered if offered else 0.0,
        "p99_admitted_ms": p99_admitted_ms,
        "accounted": admitted + shed == offered,
    }
