"""repro.mutation — mutable resident indexes under mixed read/write load.

The serving layer (:mod:`repro.serve`) holds each tree warm and
immutable; this package makes them *mutable under live traffic*:

* :mod:`repro.mutation.stream` — seeded deterministic write streams
  (``--write-mix``), one virtual timeline with the read load;
* :mod:`repro.mutation.mutators` — per-flavor online mutation drivers
  that keep the workload's golden oracle consistent with the tree;
* :mod:`repro.mutation.quality` — SAH cost, overlap, fill factor and
  depth skew: how far churn has pushed a tree from a fresh build;
* :mod:`repro.mutation.scheduler` — the rebuild-vs-refit policy and the
  cycle-domain cost model for writes, refits, and rebuilds;
* :mod:`repro.mutation.mutable_index` — epoch-swapped installs, memory
  image refresh, and the staleness contract with the exec caches.

Semantics live in MODEL.md §14.  Entry point: ``repro loadtest
--write-mix``; campaigns pre-churn builds via the ``churn`` axis.
"""

from repro.mutation.mutable_index import (
    MutableResidentIndex,
    MutationConfig,
    refresh_workload_image,
)
from repro.mutation.mutators import (
    BTreeMutator,
    BVHMutator,
    KDTreeMutator,
    Mutator,
    RTreeMutator,
    make_mutator,
)
from repro.mutation.quality import (
    QUALITY_KEYS,
    btree_quality,
    bvh_quality,
    kdtree_quality,
    rtree_quality,
)
from repro.mutation.scheduler import (
    REBUILD_MODES,
    RebuildPolicy,
    parse_rebuild_policy,
    rebuild_cycles,
    refit_cycles,
    write_cycles,
)
from repro.mutation.stream import (
    WRITE_OPS,
    WriteEvent,
    WriteProfile,
    generate_write_events,
    parse_churn,
    parse_write_mix,
    write_stream_signature,
)


def apply_churn(workload, query_class: str, churn: str, seed: int = 0):
    """Pre-churn a freshly built workload (the campaign ``churn`` axis).

    ``churn`` is ``<mix>@<writes>`` (see :func:`parse_churn`); writes
    are drawn by mix weight from one seeded rng, applied through the
    flavor's mutator, then the tree is refit and the memory image
    refreshed so the workload is launch-ready.  Returns the mutator
    (tests use its live set and oracle builders).
    """
    import random

    mix, n_writes = parse_churn(churn)
    ops = [op for op in WRITE_OPS if mix.get(op, 0) > 0]
    weights = [mix[op] for op in ops]
    rng = random.Random(seed)
    mutator = make_mutator(query_class, workload)
    for _ in range(n_writes):
        op = rng.choices(ops, weights=weights)[0]
        mutator.apply(op, rng)
    mutator.refit()
    refresh_workload_image(query_class, workload)
    return mutator


#: workload kind (exec KINDS member) -> serve query class, for the
#: campaign churn axis validation and application.
CHURN_KINDS = {
    "btree": "point",
    "rtree": "range",
    "knn": "knn",
    "rtnn": "radius",
}
