"""Tests for tree serialization into flat memory images."""

import pytest

from repro.errors import LayoutError
from repro.trees import BTree, TreeImage


def build_tree(n=500):
    return BTree.bulk_load(list(range(n)))


class TestTreeImage:
    def test_addresses_are_stride_aligned_and_unique(self):
        tree = build_tree()
        image = TreeImage(tree.nodes())
        addrs = [image.address_of(n) for n in tree.nodes()]
        assert len(set(addrs)) == len(addrs)
        for a in addrs:
            assert a % image.node_stride == 0

    def test_round_trip_node_lookup(self):
        tree = build_tree()
        image = TreeImage(tree.nodes())
        for node in tree.nodes():
            assert image.node_at(image.address_of(node)) is node

    def test_base_offset_applied(self):
        tree = build_tree(100)
        image = TreeImage(tree.nodes(), base=4096)
        assert image.address_of(tree.root) == 4096
        assert image.end == 4096 + len(tree.nodes()) * 64

    def test_unaligned_base_rejected(self):
        tree = build_tree(10)
        with pytest.raises(LayoutError):
            TreeImage(tree.nodes(), base=100)

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            TreeImage([])

    def test_unknown_node_rejected(self):
        tree = build_tree(10)
        image = TreeImage(tree.nodes())
        other = build_tree(10)
        with pytest.raises(LayoutError):
            image.address_of(other.root)
        with pytest.raises(LayoutError):
            image.node_at(10**9)

    def test_first_child_address_contiguity(self):
        # BFS order puts all children of one node contiguously, which is
        # what the paper's child-offset encoding requires.
        tree = build_tree(2000)
        image = TreeImage(tree.nodes())
        for node in tree.nodes():
            if node.children:
                base = image.first_child_address(node)
                for i, child in enumerate(node.children):
                    assert image.address_of(child) == base + i * image.node_stride

    def test_node_address_attribute_set(self):
        tree = build_tree(50)
        image = TreeImage(tree.nodes())
        for node in tree.nodes():
            assert node.address == image.address_of(node)
