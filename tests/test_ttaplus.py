"""Tests for the TTA+ modular design: programs, crossbar, backend."""

import pytest

from repro.core.ttaplus import (
    OP_UNIT_LATENCIES,
    OpUnitBank,
    PROGRAMS,
    TTAPlusBackend,
    UopProgram,
    make_ttaplus_factory,
    program_named,
)
from repro.core.ttaplus.dest_table import OpDestTable
from repro.core.ttaplus.interconnect import Crossbar
from repro.core.ttaplus.uop import UNIT_TYPES, Uop
from repro.errors import ConfigurationError, ProgramError
from repro.gpu import GPU, AccelCall, GPUConfig
from repro.rta import Step, TraversalJob
from repro.sim import Simulator

CFG = GPUConfig(n_sms=1)

# Table III: benchmark -> (program, total µops, unit histogram)
TABLE3 = {
    "btree_inner": (12, {"minmax": 3, "maxmin": 3, "vec3_cmp": 3,
                         "logical": 3}),
    "btree_leaf": (3, {"vec3_cmp": 3}),
    "nbody_inner": (3, {"vec3_addsub": 1, "dot": 1, "vec3_cmp": 1}),
    "nbody_leaf": (5, {"mul": 3, "sqrt": 1, "rxform": 1}),
    "raybox": (19, {"vec3_addsub": 2, "mul": 6, "rcp": 3, "minmax": 3,
                    "maxmin": 3, "vec3_cmp": 1, "logical": 1}),
    "rtnn_leaf": (5, {"vec3_addsub": 1, "mul": 1, "dot": 1, "vec3_cmp": 1,
                      "logical": 1}),
    "raysphere": (18, {"vec3_addsub": 5, "mul": 5, "sqrt": 1, "rcp": 1,
                       "dot": 3, "vec3_cmp": 2, "logical": 1}),
    "raytri": (17, {"vec3_addsub": 3, "mul": 3, "rcp": 1, "cross": 2,
                    "dot": 4, "vec3_cmp": 2, "logical": 2}),
}


class TestPrograms:
    @pytest.mark.parametrize("name", sorted(TABLE3))
    def test_table3_uop_counts(self, name):
        total, histogram = TABLE3[name]
        program = program_named(name)
        assert len(program) == total
        assert program.unit_counts() == histogram

    def test_unknown_program(self):
        with pytest.raises(ProgramError):
            program_named("warp_drive")

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            UopProgram("empty", [])

    def test_bad_unit_rejected(self):
        with pytest.raises(ProgramError):
            UopProgram("bad", [Uop("fma")])

    def test_table1_latencies(self):
        assert OP_UNIT_LATENCIES["sqrt"] == 11
        assert OP_UNIT_LATENCIES["minmax"] == 1
        assert OP_UNIT_LATENCIES["cross"] == 5
        assert set(OP_UNIT_LATENCIES) == set(UNIT_TYPES)


class TestOpUnitBank:
    def test_one_copy_default(self):
        bank = OpUnitBank()
        for unit_type in UNIT_TYPES:
            assert len(bank.units[unit_type]) == 1

    def test_structural_hazard_serializes(self):
        bank = OpUnitBank()
        _, s1, d1 = bank.issue("sqrt", 0)
        _, s2, d2 = bank.issue("sqrt", 0)
        assert s2 == s1 + 1  # II=1 pipelined
        assert d2 == d1 + 1

    def test_extra_copies_parallelize(self):
        bank = OpUnitBank(copies={"sqrt": 2})
        _, s1, _ = bank.issue("sqrt", 0)
        _, s2, _ = bank.issue("sqrt", 0)
        assert s1 == s2 == 0

    def test_bad_copies_rejected(self):
        with pytest.raises(ConfigurationError):
            OpUnitBank(copies={"mul": 0})

    def test_unknown_unit(self):
        with pytest.raises(ProgramError):
            OpUnitBank().issue("alien", 0)


class TestCrossbar:
    def test_hop_latency_applied(self):
        xbar = Crossbar(hop_latency=2)
        assert xbar.route(0, "mul") == 3  # 1 cycle port + 2 hop

    def test_port_contention_queues(self):
        xbar = Crossbar(hop_latency=0)
        t1 = xbar.route(0, "mul")
        t2 = xbar.route(0, "mul")
        assert t2 == t1 + 1

    def test_different_ports_parallel(self):
        xbar = Crossbar(hop_latency=0)
        t1 = xbar.route(0, "mul")
        t2 = xbar.route(0, "dot")
        assert t1 == t2

    def test_perfect_mode_is_free(self):
        xbar = Crossbar(perfect=True)
        assert xbar.route(0, "mul") == 0
        assert xbar.route(0, "mul") == 0

    def test_unknown_port(self):
        with pytest.raises(ConfigurationError):
            Crossbar().route(0, "alien")

    def test_stats(self):
        xbar = Crossbar()
        xbar.route(0, "mul")
        snap = xbar.snapshot(100)
        assert snap["icnt_transfers"] == 1
        assert snap["icnt_bytes"] == 120


class TestDestTable:
    def test_routing_follows_program(self):
        table = OpDestTable()
        table.load_program("raybox", program_named("raybox"))
        prog = program_named("raybox")
        assert table.first_unit("raybox") == prog.uops[0].unit
        for pc in range(len(prog) - 1):
            assert table.next_port("raybox", pc) == prog.uops[pc + 1].unit
        assert table.next_port("raybox", len(prog) - 1) == "writeback"

    def test_unconfigured_node_type(self):
        table = OpDestTable()
        with pytest.raises(ConfigurationError):
            table.first_unit("mystery")
        with pytest.raises(ConfigurationError):
            table.next_port("mystery", 0)


class TestBackend:
    def run_steps(self, steps, result="ok", n_jobs=1, **factory_kw):
        jobs = [TraversalJob(i, steps, result) for i in range(n_jobs)]
        out = {}

        def kernel(tid, args):
            r = yield AccelCall(jobs[tid], tag=1)
            args[tid] = r

        gpu = GPU(CFG, accelerator_factory=make_ttaplus_factory(**factory_kw))
        stats = gpu.launch(kernel, n_jobs, args=out)
        return stats, out

    def test_runs_raybox_program(self):
        stats, out = self.run_steps([Step(0x1000, 64, "uop:raybox")])
        assert out[0] == "ok"
        acc = stats.accel_stats
        assert acc["uop_tests_run"] == 1
        assert acc["op_mul_ops"] == 6
        assert acc["op_rcp_ops"] == 3

    def test_raybox_latency_multiples_of_fixed_function(self):
        # Fig. 18: the µop Ray-Box costs several times the 13-cycle
        # fixed-function unit (the paper measures ~10x under load; an
        # unloaded chain with same-unit run forwarding lands lower).
        stats, _ = self.run_steps([Step(0x1000, 64, "uop:raybox")])
        latency = stats.accel_stats["test_raybox_latency_mean"]
        assert 3 * 13 <= latency <= 20 * 13

    def test_raybox_latency_grows_under_load(self):
        one, _ = self.run_steps([Step(0x1000, 64, "uop:raybox")] * 4,
                                n_jobs=1)
        many, _ = self.run_steps([Step(0x1000, 64, "uop:raybox")] * 4,
                                 n_jobs=128)
        assert many.accel_stats["test_raybox_latency_mean"] > \
            one.accel_stats["test_raybox_latency_mean"]

    def test_short_program_much_faster(self):
        stats, _ = self.run_steps([Step(0x1000, 64, "uop:btree_leaf")])
        assert stats.accel_stats["test_btree_leaf_latency_mean"] < \
            stats.accel_stats.get("test_raybox_latency_mean", 1e9)

    def test_fixed_function_step_rejected(self):
        with pytest.raises(ConfigurationError):
            self.run_steps([Step(0x1000, 64, "box")])

    def test_perfect_icnt_reduces_latency(self):
        base, _ = self.run_steps([Step(0x1000, 64, "uop:raybox")])
        fast, _ = self.run_steps([Step(0x1000, 64, "uop:raybox")],
                                 perfect_icnt=True)
        assert fast.accel_stats["test_raybox_latency_mean"] < \
            base.accel_stats["test_raybox_latency_mean"]

    def test_perfect_node_fetch_shortens_run(self):
        steps = [Step(0x1000 + i * 64, 64, "uop:raybox") for i in range(8)]
        base, _ = self.run_steps(steps, n_jobs=32)
        fast, _ = self.run_steps(steps, n_jobs=32, perfect_node_fetch=True)
        assert fast.cycles < base.cycles

    def test_unit_contention_across_jobs(self):
        steps = [Step(0x1000, 64, "uop:nbody_leaf")]
        one, _ = self.run_steps(steps, n_jobs=1)
        many, _ = self.run_steps(steps, n_jobs=64)
        # One SQRT unit: 64 concurrent tests queue on it.
        assert many.accel_stats["test_nbody_leaf_latency_mean"] > \
            one.accel_stats["test_nbody_leaf_latency_mean"]

    def test_count_chains_tests(self):
        stats, _ = self.run_steps([Step(0x1000, 64, "uop:rtnn_leaf",
                                        count=4)])
        assert stats.accel_stats["uop_tests_run"] == 4

    def test_snapshot_reports_unit_utilization(self):
        stats, _ = self.run_steps([Step(0x1000, 64, "uop:raytri")])
        acc = stats.accel_stats
        assert acc["op_cross_ops"] == 2
        assert 0 <= acc["op_cross_util"] <= 1

    def test_shader_step_still_supported(self):
        steps = [Step(0x1000, 64, "uop:raybox"),
                 Step(0x1040, 64, "shader", count=1, shader_insts=30)]
        stats, _ = self.run_steps(steps)
        assert stats.accel_stats["shader_bounces"] == 1


class TestBackendDirect:
    @staticmethod
    def _run_chain(backend, op, count=1):
        sim = backend.sim
        elapsed = {}

        def proc():
            start = sim.now
            yield from backend.execute(sim.now, op, count)
            elapsed["t"] = sim.now - start

        sim.spawn(proc())
        sim.run()
        return elapsed["t"]

    def test_execute_is_serial_chain(self):
        backend = TTAPlusBackend(Simulator(), CFG)
        total = self._run_chain(backend, "uop:nbody_inner")
        # SUB(4) + DOT(5) + CMP(1) + 4 crossbar hand-offs >= 20 cycles.
        assert total >= 20

    def test_latency_scale(self):
        slow_backend = TTAPlusBackend(Simulator(), CFG, latency_scale=10.0)
        fast_backend = TTAPlusBackend(Simulator(), CFG, latency_scale=1.0)
        slow = self._run_chain(slow_backend, "uop:nbody_inner")
        fast = self._run_chain(fast_backend, "uop:nbody_inner")
        assert slow > fast
