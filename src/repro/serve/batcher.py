"""Micro-batching: coalescing single queries into accelerator launches.

The serving layer's core trade-off is the one RTNN measures: big
batches amortize launch overhead and fill the accelerator's warp
buffers (throughput), small batches bound how long the first query of a
batch waits for the last (latency).  :class:`BatchPolicy` is the knob
set; :class:`MicroBatcher` is the mechanism — a per-class
**timeout-or-size** coalescer in *virtual time*:

* a batch **closes on size** the instant its ``max_batch``-th query
  arrives, and
* a batch **closes on timeout** ``max_wait_s`` after its *first* query
  arrived, whichever comes first.

The batcher is deliberately time-source-agnostic: callers feed it
arrivals stamped with their own clock (the virtual-time loadtest loop,
or the asyncio service's wall clock) and ask for the pending deadline.
Deadlines are generation-counted so a stale timer firing after its
batch already closed on size is a no-op — the size/timeout race can
drop or double-serve nothing (``tests/test_serve.py`` hammers this).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BatchPolicy:
    """Timeout-or-size micro-batching knobs."""

    max_batch: int = 32
    max_wait_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ConfigurationError(
                f"max_wait_s cannot be negative, got {self.max_wait_s}")


@dataclass(frozen=True)
class QueryRequest:
    """One enqueued query, stamped with its arrival time."""

    seq: int                    # global submission order (unique)
    query_class: str
    qid: Optional[int]          # canonical-stream index, or None
    payload: Any = None         # raw payload when qid is None
    t_arrival: float = 0.0      # seconds, caller's time domain
    #: Absolute completion deadline on the caller's timeline (None =
    #: no deadline; set by resilience-aware admission, carried through
    #: the batcher so dispatch can expire queries that waited too long).
    deadline: Optional[float] = None


@dataclass
class Batch:
    """One closed batch, ready to launch."""

    query_class: str
    queries: List[QueryRequest]
    t_open: float               # first query's arrival
    t_close: float              # when the batch closed (size or timeout)
    closed_by: str              # "size" | "timeout" | "flush"

    @property
    def size(self) -> int:
        return len(self.queries)

    @property
    def qids(self) -> List[int]:
        return [q.qid for q in self.queries]


@dataclass
class _OpenBatch:
    queries: List[QueryRequest] = field(default_factory=list)
    t_open: float = 0.0
    generation: int = 0


class MicroBatcher:
    """Per-class timeout-or-size coalescer (virtual-time, reusable)."""

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._open: Dict[str, _OpenBatch] = {}
        self._generation = 0

    # -- feeding ------------------------------------------------------------------
    def offer(self, query: QueryRequest) -> Optional[Batch]:
        """Enqueue one query; returns the batch it closed, if any.

        A query that opens a new batch makes :meth:`deadline` non-None
        for its class — the caller must arrange for :meth:`expire` at
        that time (or later).
        """
        cls = query.query_class
        open_batch = self._open.get(cls)
        if open_batch is None or not open_batch.queries:
            self._generation += 1
            open_batch = self._open[cls] = _OpenBatch(
                t_open=query.t_arrival, generation=self._generation)
        open_batch.queries.append(query)
        if len(open_batch.queries) >= self.policy.max_batch:
            return self._close(cls, query.t_arrival, "size")
        return None

    # -- deadlines ----------------------------------------------------------------
    def deadline(self, query_class: str) -> Optional[float]:
        """When the class's open batch times out (None if none open)."""
        open_batch = self._open.get(query_class)
        if open_batch is None or not open_batch.queries:
            return None
        return open_batch.t_open + self.policy.max_wait_s

    def generation(self, query_class: str) -> Optional[int]:
        """Token identifying the currently open batch; timers compare
        it at fire time so stale deadlines are no-ops."""
        open_batch = self._open.get(query_class)
        if open_batch is None or not open_batch.queries:
            return None
        return open_batch.generation

    def expire(self, query_class: str, now: float,
               generation: Optional[int] = None) -> Optional[Batch]:
        """Close the open batch because its wait timed out.

        ``generation`` (from :meth:`generation` at scheduling time)
        guards the size/timeout race: if the batch the timer was set for
        already closed on size — and a new one may have opened since —
        the timer is stale and nothing happens.
        """
        open_batch = self._open.get(query_class)
        if open_batch is None or not open_batch.queries:
            return None
        if generation is not None and open_batch.generation != generation:
            return None
        return self._close(query_class, now, "timeout")

    def flush(self, now: float) -> List[Batch]:
        """Close every open batch (service drain / shutdown)."""
        out = []
        for cls in sorted(self._open):
            if self._open[cls].queries:
                out.append(self._close(cls, now, "flush"))
        return out

    def pending(self, query_class: Optional[str] = None) -> int:
        if query_class is not None:
            open_batch = self._open.get(query_class)
            return len(open_batch.queries) if open_batch else 0
        return sum(len(b.queries) for b in self._open.values())

    # -- internals ----------------------------------------------------------------
    def _close(self, cls: str, now: float, why: str) -> Batch:
        open_batch = self._open.pop(cls)
        return Batch(cls, open_batch.queries, open_batch.t_open, now, why)
