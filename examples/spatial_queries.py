#!/usr/bin/env python3
"""Spatial indexing beyond the paper: R-Tree ranges and k-d tree kNN.

The paper's introduction motivates TTA with database and spatial
indexing at large; this example runs two structures the paper does not
evaluate — R-Tree range queries over clustered map data and k-nearest-
neighbor search over a LiDAR-like cloud — on the same accelerators,
demonstrating that the Query-Key and Point-to-Point operations cover
them without further hardware changes.

Run:  python examples/spatial_queries.py
"""

from repro.harness.results import Table
from repro.harness.runner import (
    run_knn,
    run_rtree,
    scaled_config_for,
)
from repro.workloads import make_knn_workload, make_rtree_workload


def main() -> None:
    table = Table(
        "Spatial queries on TTA / TTA+ (speedup over baseline GPU)",
        ["workload", "queries", "gpu_cycles", "tta", "ttaplus",
         "simt_eff(gpu)"],
    )

    rtree = make_rtree_workload(n_rects=8192, n_queries=1024, seed=7)
    mean_hits = sum(len(rtree.golden(w)) for w in rtree.windows[:64]) / 64
    cfg = scaled_config_for(rtree.image.size_bytes)
    base = run_rtree(rtree, "gpu", config=cfg)
    tta = run_rtree(rtree, "tta", config=cfg)
    plus = run_rtree(rtree, "ttaplus", config=cfg)
    table.add_row("rtree-range", rtree.n_queries, base.cycles,
                  tta.speedup_over(base), plus.speedup_over(base),
                  base.simt_efficiency)
    print(f"R-Tree: {len(rtree.entries)} rects, height "
          f"{rtree.tree.height()}, ~{mean_hits:.1f} results/window")

    knn = make_knn_workload(n_points=8192, n_queries=1024, k=8, seed=8)
    cfg = scaled_config_for(knn.image.size_bytes)
    base = run_knn(knn, "gpu", config=cfg)
    tta = run_knn(knn, "tta", config=cfg)
    plus = run_knn(knn, "ttaplus", config=cfg)
    table.add_row("kdtree-knn8", knn.n_queries, base.cycles,
                  tta.speedup_over(base), plus.speedup_over(base),
                  base.simt_efficiency)
    print(f"k-d tree: {len(knn.tree.points)} points, depth "
          f"{knn.tree.depth()}")
    print()
    print(table.format())


if __name__ == "__main__":
    main()
