#!/usr/bin/env python3
"""Serving-layer smoke benchmark → ``BENCH_serve.json``.

Runs the bounded open-loop loadtest (``repro.serve.loadtest``) at a few
offered-load points per platform and records baseline QPS and latency
percentiles.  Two kinds of numbers come out:

* **Virtual-time results** (``achieved_qps``, ``p50_ms``/``p99_ms``,
  ``mean_batch_size``, ``sim_cycles``) — deterministic for a given
  seed/profile/scheduler fingerprint; drift here means the *model*
  changed, not the machine.
* **Host wall time** (``wall_s``, min over ``--reps``) — how long the
  loadtest itself takes to simulate; this tracks simulator throughput
  on the serving path the way BENCH_core tracks the one-shot path.

Non-gating: CI runs this in the informational perf-smoke job and
uploads the JSON as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --out BENCH_serve.json --scale smoke --reps 2 \
        --platforms gpu,tta,ttaplus --qps 1000,4000
"""

import argparse
import json
import pathlib
import platform as platform_mod
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(_ROOT / "src"))

from repro import __version__  # noqa: E402
from repro.serve import (  # noqa: E402
    BatchPolicy,
    LaunchBackend,
    LoadProfile,
    ResilienceConfig,
    SERVE_SCALES,
    build_resident_index,
    run_loadtest,
)
from repro.sim import scheduler_fingerprint  # noqa: E402

DEFAULT_PLATFORMS = "gpu,tta,ttaplus"
DEFAULT_QPS = "1000,4000"


def bench(scale: str, platforms, qps_values, duration: float,
          warmup: float, seed: int, reps: int) -> dict:
    indexes = {}
    build_s = {}
    for cls in ("point", "range", "knn", "radius"):
        started = time.perf_counter()
        indexes[cls] = build_resident_index(cls, SERVE_SCALES[scale][cls])
        build_s[cls] = time.perf_counter() - started
    profile = LoadProfile(qps=qps_values[0], duration_s=duration,
                          warmup_s=warmup, seed=seed)
    policy = BatchPolicy(max_batch=32, max_wait_s=2e-3)

    points = {}
    for platform in platforms:
        backend = LaunchBackend(platform)
        rows = []
        for qps in qps_values:
            from dataclasses import replace
            leg = replace(profile, qps=qps)
            walls, report = [], None
            for _ in range(reps):
                started = time.perf_counter()
                report = run_loadtest(platform, indexes, leg,
                                      policy=policy, backend=backend)
                walls.append(time.perf_counter() - started)
            doc = report.to_dict()
            rows.append({
                "qps": qps,
                "offered_qps": doc["offered_qps"],
                "achieved_qps": doc["achieved_qps"],
                "p50_ms": doc["latency_ms"]["p50_ms"],
                "p95_ms": doc["latency_ms"]["p95_ms"],
                "p99_ms": doc["latency_ms"]["p99_ms"],
                "served": doc["served"],
                "batches": doc["batches"],
                "mean_batch_size": doc["mean_batch_size"],
                "degraded_batches": doc["degraded_batches"],
                "sim_cycles": doc["sim_cycles"],
                "wall_s": min(walls),
                "wall_reps": walls,
            })
            print(f"{platform:8s} @ {qps:7g} qps: achieved "
                  f"{rows[-1]['achieved_qps']:8.0f}, p50 "
                  f"{rows[-1]['p50_ms']:.3f}ms, p99 "
                  f"{rows[-1]['p99_ms']:.3f}ms, wall "
                  f"{rows[-1]['wall_s']:.2f}s", file=sys.stderr)
        points[platform] = rows

    # Overload point: 2x capacity, resilience off vs shed.  Achieved
    # QPS from the sweep is not capacity (unsaturated batches run
    # 2-deep; at saturation they fill to max_batch and per-query cost
    # collapses), so capacity is derived from one *full* batch per
    # class: mix-weighted per-query service time at max_batch depth.
    # The leg duration is scaled so the event count stays bounded at
    # any capacity.  Virtual-time deterministic; the interesting deltas
    # are goodput, shed fraction, and the p99-of-admitted that stays
    # bounded under shed while off queues without limit.
    from repro.serve import ServiceClock
    clock = ServiceClock()
    mix = dict(profile.mix)
    mix_total = sum(mix.values())
    overload = {}
    overload_queries = 24_000      # offered-event budget per leg
    for platform in platforms:
        probe = LaunchBackend(platform)
        per_query_s = 0.0
        for cls, weight in mix.items():
            index = indexes[cls]
            qids = [i % index.capacity for i in range(policy.max_batch)]
            launch = probe.launch(index, qids)
            per_query_s += (weight / mix_total) \
                * clock.launch_seconds(launch.cycles) / policy.max_batch
        capacity = 1.0 / per_query_s
        overload_qps = 2.0 * capacity
        leg_duration = min(duration, overload_queries / overload_qps)
        leg = LoadProfile(qps=overload_qps, duration_s=leg_duration,
                          warmup_s=0.2 * leg_duration, seed=seed, mix=mix)
        modes = {}
        for mode in ("off", "shed"):
            resilience = ResilienceConfig(mode=mode)
            backend = LaunchBackend(platform, resilience=resilience)
            report = run_loadtest(platform, indexes, leg, policy=policy,
                                  backend=backend, resilience=resilience)
            slo = report.slo()
            modes[mode] = {
                "offered_qps": report.offered_qps,
                "achieved_qps": report.achieved_qps,
                "goodput_qps": slo["goodput_qps"],
                "shed_fraction": slo["shed_fraction"],
                "error_fraction": slo["error_fraction"],
                "p99_admitted_ms": slo["p99_admitted_ms"],
                "deadline_misses": report.deadline_misses,
            }
            print(f"{platform:8s} overload 2x ({mode:4s}): goodput "
                  f"{modes[mode]['goodput_qps']:8.0f}/s, shed "
                  f"{100 * modes[mode]['shed_fraction']:5.1f}%, "
                  f"p99(admitted) {modes[mode]['p99_admitted_ms']:.3f}ms",
                  file=sys.stderr)
        modes["capacity_qps"] = capacity
        modes["overload_duration_s"] = leg_duration
        overload[platform] = modes
    return {
        "overload": overload,
        "build_seconds": build_s,
        "profile": {"duration_s": duration, "warmup_s": warmup,
                    "seed": seed, "arrival": profile.arrival,
                    "mix": dict(profile.mix)},
        "policy": {"max_batch": policy.max_batch,
                   "max_wait_s": policy.max_wait_s},
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_serve.json"))
    parser.add_argument("--scale", default="smoke",
                        choices=sorted(SERVE_SCALES))
    parser.add_argument("--platforms", default=DEFAULT_PLATFORMS)
    parser.add_argument("--qps", default=DEFAULT_QPS)
    parser.add_argument("--duration", type=float, default=0.25)
    parser.add_argument("--warmup", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=2)
    args = parser.parse_args(argv)

    platforms = [p.strip() for p in args.platforms.split(",") if p.strip()]
    qps_values = [float(q) for q in args.qps.split(",") if q.strip()]
    doc = {
        "schema": 1,
        "generated_unix": time.time(),
        "package_version": __version__,
        "scheduler_fingerprint": scheduler_fingerprint(),
        "python": platform_mod.python_version(),
        "platform": platform_mod.platform(),
        "scale": args.scale,
        "reps": args.reps,
    }
    doc.update(bench(args.scale, platforms, qps_values, args.duration,
                     args.warmup, args.seed, args.reps))
    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(f"[bench_serve] written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
