"""Platform runners: execute one workload on one hardware design point.

Platforms:

=============  =====================================================
``gpu``        baseline GPU, traversal on the SIMT cores (no accel)
``rta``        unmodified RTA (ray workloads / RTNN only)
``tta``        the fixed-function extension (Query-Key, Point-to-Point)
``ttaplus``    the modular µop design (naive port)
``ttaplus_opt``TTA+ with the programmability-enabled optimization
               (*RTNN leaf offload, *WKND_PT Ray-Sphere, *SHIP_SH SATO)
=============  =====================================================

Every run *verifies functional results against the workload's golden
reference* before returning timing — a run that computes wrong answers
never produces a data point.
"""

from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, Optional

from repro.core.ttaplus import make_ttaplus_factory
from repro.energy.model import EnergyBreakdown, energy_report
from repro.errors import ConfigurationError
from repro.gpu import GPU, GPUConfig, KernelStats
from repro.gpu.config import DEFAULT_CONFIG
from repro.kernels.btree_search import (
    btree_accel_kernel,
    btree_baseline_kernel,
)
from repro.kernels.nbody_walk import nbody_accel_kernel, nbody_baseline_kernel
from repro.kernels.radius_search import (
    radius_accel_kernel,
    radius_baseline_kernel,
)
from repro.kernels.ray_trace import rt_accel_kernel, rt_baseline_kernel
from repro.obs import EMPTY_METRICS
from repro.rta.rta import make_rta_factory
from repro.workloads.btree_workload import BTreeWorkload, verify_results
from repro.workloads.lumibench import LumiWorkload
from repro.workloads.nbody import NBodyWorkload
from repro.workloads.rtnn import RTNNWorkload
from repro.workloads.wknd import WKNDWorkload


@dataclass
class RunResult:
    """One (workload, platform) data point."""

    workload: str
    platform: str
    stats: KernelStats
    energy: EnergyBreakdown
    notes: Dict[str, Any] = dc_field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.stats.cycles

    @property
    def simt_efficiency(self) -> float:
        return self.stats.simt_efficiency

    @property
    def dram_utilization(self) -> float:
        return self.stats.dram_utilization

    @property
    def metrics(self):
        """The launch's :class:`repro.obs.MetricsSnapshot`.

        Results unpickled from a cache entry written before the metrics
        registry existed fall back to the shared empty snapshot.
        """
        snapshot = getattr(self.stats, "metrics", None)
        return snapshot if snapshot is not None else EMPTY_METRICS

    def metric(self, name: str, default: float = 0.0) -> float:
        """One scalar from the metrics registry (``repro.obs``)."""
        return self.metrics.get(name, default)

    def speedup_over(self, baseline: "RunResult") -> float:
        return baseline.cycles / self.cycles if self.cycles else 0.0


def scaled_config_for(data_bytes: int,
                      base: GPUConfig = DEFAULT_CONFIG,
                      pressure: float = 10.0) -> GPUConfig:
    """Shrink caches so a scaled workload pressures them like the paper's.

    The paper's largest trees (4M keys, ~32MB) exceed the 3MB L2 by
    ~10x; ``pressure`` sets the target data:L2 ratio for the scaled
    workload.  Sizes are clamped to valid cache geometries.
    """
    if data_bytes <= 0:
        raise ConfigurationError("data_bytes must be positive")
    line = base.line_size
    l2_floor = 16 * base.l2_assoc * line          # 16 sets minimum
    l2_size = max(l2_floor, int(data_bytes / pressure))
    l2_size = min(l2_size, base.l2_size)
    # Round to a whole number of sets.
    set_bytes = base.l2_assoc * line
    l2_size = (l2_size // set_bytes) * set_bytes
    l1_size = max(4 * line, min(base.l1_size, l2_size // 4))
    l1_size = (l1_size // line) * line
    return base.with_overrides(l1_size=l1_size, l2_size=l2_size)


# -- B-Tree family -------------------------------------------------------------------
def run_btree(workload: BTreeWorkload, platform: str,
              config: Optional[GPUConfig] = None,
              verify: bool = True,
              tta_latency_overrides: Optional[Dict[str, int]] = None
              ) -> RunResult:
    """``tta_latency_overrides`` adjusts fixed-function intersection
    latencies on the ``tta`` platform (Fig. 14's sensitivity knob)."""
    config = config if config is not None else scaled_config_for(
        workload.image.size_bytes)
    name = f"{workload.variant}/{workload.n_queries}q"
    if tta_latency_overrides and platform != "tta":
        raise ConfigurationError(
            "tta_latency_overrides only applies to the tta platform"
        )
    if platform == "gpu":
        gpu = GPU(config)
        args = workload.kernel_args()
        stats = gpu.launch(btree_baseline_kernel, workload.n_queries,
                           args=args)
    elif platform in ("tta", "ttaplus"):
        factory = (make_rta_factory(
                       tta=True, latency_overrides=tta_latency_overrides)
                   if platform == "tta" else make_ttaplus_factory())
        gpu = GPU(config, accelerator_factory=factory)
        args = workload.kernel_args(jobs=workload.jobs(platform))
        stats = gpu.launch(btree_accel_kernel, workload.n_queries, args=args)
    else:
        raise ConfigurationError(
            f"B-Tree runs on gpu/tta/ttaplus, not {platform!r}"
        )
    if verify:
        verify_results(workload, args.results)
    return RunResult(name, platform, stats, energy_report(stats, config))


# -- N-Body ---------------------------------------------------------------------------
def run_nbody(workload: NBodyWorkload, platform: str,
              config: Optional[GPUConfig] = None,
              fused_post_insts: int = 0, verify: bool = True) -> RunResult:
    config = config if config is not None else scaled_config_for(
        workload.image.size_bytes)
    name = f"nbody{workload.dims}d/{workload.n_bodies}"
    if platform == "gpu":
        gpu = GPU(config)
        args = workload.kernel_args(fused_post_insts=fused_post_insts)
        stats = gpu.launch(nbody_baseline_kernel, workload.n_bodies,
                           args=args)
    elif platform in ("tta", "ttaplus"):
        factory = (make_rta_factory(tta=True) if platform == "tta"
                   else make_ttaplus_factory())
        gpu = GPU(config, accelerator_factory=factory)
        jobs, interactions = workload.jobs(platform)
        args = workload.kernel_args(jobs=jobs, interactions=interactions,
                                    fused_post_insts=fused_post_insts)
        stats = gpu.launch(nbody_accel_kernel, workload.n_bodies, args=args)
    else:
        raise ConfigurationError(
            f"N-Body runs on gpu/tta/ttaplus, not {platform!r}"
        )
    if verify:
        _verify_nbody(workload, args.results)
    return RunResult(name, platform, stats, energy_report(stats, config),
                     notes={"fused_post_insts": fused_post_insts})


def _verify_nbody(workload: NBodyWorkload, results: Dict[int, Any]) -> None:
    assert len(results) == workload.n_bodies
    for tid in range(0, workload.n_bodies, max(1, workload.n_bodies // 16)):
        expected = workload.tree.force_on(workload.tree.bodies[tid])
        got = results[tid]
        assert (got - expected.acceleration).length() < 1e-9, (
            f"body {tid}: force mismatch"
        )


# -- RTNN radius search ------------------------------------------------------------
_RTNN_PLATFORMS = ("gpu", "rta", "tta", "ttaplus", "ttaplus_opt")


def run_rtnn(workload: RTNNWorkload, platform: str,
             config: Optional[GPUConfig] = None,
             verify: bool = True) -> RunResult:
    config = config if config is not None else scaled_config_for(
        workload.image.size_bytes)
    name = f"rtnn/{len(workload.points)}pts"
    if platform not in _RTNN_PLATFORMS:
        raise ConfigurationError(
            f"RTNN platform must be one of {_RTNN_PLATFORMS}"
        )
    if platform == "gpu":
        gpu = GPU(config)
        args = workload.kernel_args()
        stats = gpu.launch(radius_baseline_kernel, workload.n_queries,
                           args=args)
    else:
        factory = {
            "rta": make_rta_factory(tta=False),
            "tta": make_rta_factory(tta=True),
            "ttaplus": make_ttaplus_factory(),
            "ttaplus_opt": make_ttaplus_factory(),
        }[platform]
        gpu = GPU(config, accelerator_factory=factory)
        args = workload.kernel_args(jobs=workload.jobs(platform))
        stats = gpu.launch(radius_accel_kernel, workload.n_queries,
                           args=args)
    if verify:
        _verify_rtnn(workload, args.results)
    return RunResult(name, platform, stats, energy_report(stats, config))


def _verify_rtnn(workload: RTNNWorkload, results: Dict[int, Any]) -> None:
    assert len(results) == workload.n_queries
    step = max(1, workload.n_queries // 8)
    for tid in range(0, workload.n_queries, step):
        expected = workload.golden(workload.queries[tid])
        assert tuple(sorted(results[tid])) == expected, (
            f"query {tid}: neighbor set mismatch"
        )


# -- R-Tree range queries (spatial-index extension) -----------------------------------
def run_rtree(workload, platform: str,
              config: Optional[GPUConfig] = None,
              verify: bool = True) -> RunResult:
    from repro.kernels.rtree_query import (
        rtree_accel_kernel,
        rtree_baseline_kernel,
    )

    config = config if config is not None else scaled_config_for(
        workload.image.size_bytes)
    name = f"rtree/{workload.n_queries}q"
    if platform == "gpu":
        gpu = GPU(config)
        args = workload.kernel_args()
        stats = gpu.launch(rtree_baseline_kernel, workload.n_queries,
                           args=args)
    elif platform in ("tta", "ttaplus"):
        factory = (make_rta_factory(tta=True) if platform == "tta"
                   else make_ttaplus_factory())
        gpu = GPU(config, accelerator_factory=factory)
        args = workload.kernel_args(jobs=workload.jobs(platform))
        stats = gpu.launch(rtree_accel_kernel, workload.n_queries, args=args)
    else:
        raise ConfigurationError(
            f"R-Tree runs on gpu/tta/ttaplus, not {platform!r}"
        )
    if verify:
        step = max(1, workload.n_queries // 8)
        for tid in range(0, workload.n_queries, step):
            expected = workload.golden(workload.windows[tid])
            assert tuple(sorted(args.results[tid])) == expected, (
                f"query {tid}: range-query result mismatch"
            )
    return RunResult(name, platform, stats, energy_report(stats, config))


# -- kNN search (k-d tree extension) ---------------------------------------------------
def run_knn(workload, platform: str,
            config: Optional[GPUConfig] = None,
            verify: bool = True) -> RunResult:
    from repro.kernels.knn_search import knn_accel_kernel, knn_baseline_kernel

    config = config if config is not None else scaled_config_for(
        workload.image.size_bytes)
    name = f"knn{workload.k}/{workload.n_queries}q"
    if platform == "gpu":
        gpu = GPU(config)
        args = workload.kernel_args()
        stats = gpu.launch(knn_baseline_kernel, workload.n_queries,
                           args=args)
    elif platform in ("tta", "ttaplus"):
        factory = (make_rta_factory(tta=True) if platform == "tta"
                   else make_ttaplus_factory())
        gpu = GPU(config, accelerator_factory=factory)
        args = workload.kernel_args(jobs=workload.jobs(platform))
        stats = gpu.launch(knn_accel_kernel, workload.n_queries, args=args)
    else:
        raise ConfigurationError(
            f"kNN runs on gpu/tta/ttaplus, not {platform!r}"
        )
    if verify:
        step = max(1, workload.n_queries // 8)
        for tid in range(0, workload.n_queries, step):
            got = args.results[tid]
            expected = workload.golden(workload.queries[tid])
            # Distance ties may order differently; compare distances.
            q = workload.queries[tid]
            pts = workload.tree.points
            got_d = sorted((pts[i] - q).length_squared() for i in got)
            exp_d = sorted((pts[i] - q).length_squared() for i in expected)
            assert all(abs(a - b) < 1e-9 for a, b in zip(got_d, exp_d)), (
                f"query {tid}: kNN distances mismatch"
            )
    return RunResult(name, platform, stats, energy_report(stats, config))


# -- ray tracing (LumiBench + WKND) ---------------------------------------------------
def run_lumibench(workload: LumiWorkload, platform: str,
                  config: Optional[GPUConfig] = None) -> RunResult:
    config = config if config is not None else DEFAULT_CONFIG
    sato = False
    if platform == "gpu":
        gpu = GPU(config)
        args = workload.kernel_args(flavor="rta")  # visits reused
        stats = gpu.launch(rt_baseline_kernel, workload.n_rays, args=args)
        return RunResult(workload.name, platform, stats,
                         energy_report(stats, config))
    if platform == "rta":
        factory, flavor = make_rta_factory(tta=False), "rta"
    elif platform == "ttaplus":
        factory, flavor = make_ttaplus_factory(), "ttaplus"
    elif platform == "ttaplus_opt":
        factory, flavor = make_ttaplus_factory(), "ttaplus"
        sato = True
    else:
        raise ConfigurationError(
            f"LumiBench runs on gpu/rta/ttaplus/ttaplus_opt, not {platform!r}"
        )
    gpu = GPU(config, accelerator_factory=factory)
    args = workload.kernel_args(flavor=flavor, sato=sato)
    stats = gpu.launch(rt_accel_kernel, workload.n_rays, args=args)
    return RunResult(workload.name + ("*" if sato else ""), platform, stats,
                     energy_report(stats, config))


def run_wknd(workload: WKNDWorkload, platform: str,
             config: Optional[GPUConfig] = None,
             perfect_node_fetch: bool = False,
             perfect_mem: bool = False) -> RunResult:
    """WKND_PT: sphere geometry; platform selects the leaf-test path.

    ``perfect_node_fetch`` / ``perfect_mem`` implement the Fig. 17 limit
    study (Perf. RT and Perf. Mem).
    """
    config = config if config is not None else DEFAULT_CONFIG
    if perfect_mem:
        config = config.with_overrides(
            l1_latency=0, l2_latency=0, dram_latency=0,
            dram_bytes_per_cycle=1e9, l2_bytes_per_cycle=1e9)
    if platform == "rta":
        factory, flavor = make_rta_factory(tta=False), "rta"
    elif platform == "ttaplus":
        factory = make_ttaplus_factory(perfect_node_fetch=perfect_node_fetch)
        flavor = "ttaplus"
    elif platform == "ttaplus_opt":
        factory = make_ttaplus_factory(perfect_node_fetch=perfect_node_fetch)
        flavor = "ttaplus_opt"
    else:
        raise ConfigurationError(
            f"WKND_PT runs on rta/ttaplus/ttaplus_opt, not {platform!r}"
        )
    gpu = GPU(config, accelerator_factory=factory)
    args = workload.kernel_args(flavor=flavor)
    stats = gpu.launch(rt_accel_kernel, workload.n_rays, args=args)
    name = "*WKND_PT" if platform == "ttaplus_opt" else "WKND_PT"
    return RunResult(name, platform, stats, energy_report(stats, config),
                     notes={"perfect_node_fetch": perfect_node_fetch,
                            "perfect_mem": perfect_mem})


# -- spec execution (repro.exec worker entry point) -----------------------------------
#
# The execution service ships :class:`repro.exec.spec.RunSpec` objects
# — pure data — to worker processes; this section turns a spec back
# into (workload, config, runner call).  Workload construction is
# memoized per process so a worker executing several points of the same
# sweep builds each tree once, mirroring the old in-process cache in
# ``harness.experiments``.

def _workload_factories() -> Dict[str, Any]:
    from repro.workloads import (
        make_btree_workload,
        make_knn_workload,
        make_lumibench_workload,
        make_nbody_workload,
        make_rtnn_workload,
        make_rtree_workload,
        make_wknd_workload,
    )

    return {
        "btree": make_btree_workload,
        "nbody": make_nbody_workload,
        "rtnn": make_rtnn_workload,
        "wknd": make_wknd_workload,
        "lumi": make_lumibench_workload,
        "rtree": make_rtree_workload,
        "knn": make_knn_workload,
    }


_SPEC_RUNNERS: Dict[str, Any] = {}
_WORKLOAD_CACHE: Dict[Any, Any] = {}


def build_workload(kind: str, params: Dict[str, Any]):
    """Construct (or reuse) the workload a spec describes."""
    factories = _workload_factories()
    if kind not in factories:
        raise ConfigurationError(
            f"no workload factory for kind {kind!r}; "
            f"known: {sorted(factories)}"
        )
    key = (kind, tuple(sorted(params.items())))
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = factories[kind](**params)
    return _WORKLOAD_CACHE[key]


def clear_workload_cache() -> None:
    _WORKLOAD_CACHE.clear()


def resolve_config(policy: Optional[Dict[str, Any]],
                   workload) -> Optional[GPUConfig]:
    """Turn a spec's config *policy* into a concrete :class:`GPUConfig`.

    ``None`` defers to the runner's own default (the scaled policy for
    the CUDA workloads, ``DEFAULT_CONFIG`` for ray tracing).  Policies
    are resolved here — next to the built workload — because the scaled
    policy depends on the workload's memory footprint.
    """
    if policy is None:
        return None
    policy = dict(policy)
    name = policy.pop("policy", "scaled")
    overrides = policy.pop("overrides", None) or {}
    if name == "scaled":
        pressure = policy.pop("pressure", 10.0)
        config = scaled_config_for(workload.image.size_bytes,
                                   pressure=pressure)
    elif name == "default":
        config = DEFAULT_CONFIG
    else:
        raise ConfigurationError(
            f"unknown config policy {name!r} (scaled/default)"
        )
    if policy:
        raise ConfigurationError(
            f"unrecognized config policy fields: {sorted(policy)}"
        )
    return config.with_overrides(**overrides) if overrides else config


def execute_spec(spec) -> RunResult:
    """Execute one :class:`repro.exec.spec.RunSpec` end to end.

    This is the function worker processes run.  Verification against
    golden references happens inside the ``run_*`` runner exactly as on
    the serial path — a parallel run can never return an unverified
    data point.
    """
    if not _SPEC_RUNNERS:
        _SPEC_RUNNERS.update({
            "btree": run_btree,
            "nbody": run_nbody,
            "rtnn": run_rtnn,
            "wknd": run_wknd,
            "lumi": run_lumibench,
            "rtree": run_rtree,
            "knn": run_knn,
        })
    workload = build_workload(spec.kind, spec.workload)
    config = resolve_config(spec.config, workload)
    return _SPEC_RUNNERS[spec.kind](workload, spec.platform, config=config,
                                    **spec.run_kwargs)
