"""The seed heap engine, preserved as a reference implementation.

This is the original ``(time, seq, fn, args)`` heapq scheduler the
repository shipped with, byte-for-byte in behaviour: float-tolerant
times, one heap push/pop per event, generator processes resumed through
``isinstance`` dispatch.  It exists for two reasons:

* ``benchmarks/bench_perf_core.py`` measures the fast core *against* it
  on the same workloads (select it with ``REPRO_SIM_CORE=legacy``);
* ``tests/test_engine_equivalence.py`` checks that the calendar-queue
  engine preserves its ``(time, seq)`` event ordering exactly.

It shares :class:`~repro.sim.engine.Signal` with the fast core — the
signal parks whatever waiter record its simulator hands it and calls
back through ``_resume_waiter``, which here resumes a raw generator.
"""

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Process, Signal


class HeapSimulator:
    """The seed discrete-event simulator (float-friendly heap scheduler)."""

    #: Routes RTACore submissions through the original per-job generators.
    legacy_core = True

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = []
        self._seq = 0
        self._events_processed = 0
        #: Optional repro.guard.Guard (same hook contract as the fast
        #: core): purely observational, never schedules events.
        self.guard = None
        #: Optional repro.obs.Tracer (same contract as the fast core).
        self.tracer = None

    # -- event interface -------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def call_after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self.now + delay, fn, *args)

    def signal(self) -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self)

    # -- process interface -----------------------------------------------
    def spawn(self, process: Process) -> Process:
        """Start running a generator-based process at the current time."""
        self.call_at(self.now, self._resume, process, None)
        return process

    def _resume_waiter(self, process: Process, value: Any) -> None:
        self._resume(process, value)

    def _resume(self, process: Process, value: Any) -> None:
        try:
            yielded = process.send(value)
        except StopIteration:
            return
        self._dispatch(process, yielded)

    def _dispatch(self, process: Process, yielded: Any) -> None:
        if isinstance(yielded, Signal):
            if not yielded._add_waiter(process):
                # Already fired: resume immediately (same cycle).
                self.call_at(self.now, self._resume, process, yielded.value)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process yielded negative delay {yielded}")
            self.call_after(yielded, self._resume, process, None)
        else:
            raise SimulationError(
                f"process yielded unsupported value {yielded!r}; "
                "expected a delay or a Signal"
            )

    # -- main loop ---------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Drain the event queue; return the final simulation time."""
        guard = self.guard
        if guard is not None:
            cycle_cap = guard.cycle_cap
            check_at = guard.event_checkpoint(self._events_processed)
        else:
            cycle_cap = None
            check_at = None
        tracer = self.tracer
        last_traced = None
        while self._queue:
            time, _seq, fn, args = self._queue[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = time
            if tracer is not None and time != last_traced:
                last_traced = time
                tracer.emit("scheduler", "engine", "cycle", time, 0.0, None)
            if cycle_cap is not None and time > cycle_cap:
                guard.on_cycle_budget(time)
            fn(*args)
            self._events_processed += 1
            if max_events is not None and self._events_processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}"
                )
            if check_at is not None and self._events_processed >= check_at:
                check_at = guard.on_events(self._events_processed, self.now)
        return self.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)
