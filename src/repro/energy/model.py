"""End-to-end energy accounting (Fig. 19's three buckets).

* **Compute Core** — dynamic instruction energy on the SIMT cores,
  SM static energy over the run, and memory-system energy for all DRAM
  traffic (from either the cores or the accelerator, as in the paper).
* **Warp Buffer** — per-access SRAM energy for ray/node state reads and
  writes in the accelerator.
* **Intersection** — busy-cycle energy of the Ray-Box/Ray-Triangle
  pipelines or the TTA+ OP units, plus crossbar transfer energy.
"""

from dataclasses import dataclass

from repro.energy import power as P
from repro.gpu.config import GPUConfig
from repro.gpu.device import KernelStats


@dataclass
class EnergyBreakdown:
    """Energy in millijoules per Fig. 19 bucket."""

    compute_core_mj: float
    warp_buffer_mj: float
    intersection_mj: float

    @property
    def total_mj(self) -> float:
        return self.compute_core_mj + self.warp_buffer_mj + \
            self.intersection_mj

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict:
        scale = baseline.total_mj
        return {
            "compute_core": self.compute_core_mj / scale,
            "warp_buffer": self.warp_buffer_mj / scale,
            "intersection": self.intersection_mj / scale,
            "total": self.total_mj / scale,
        }

    def __repr__(self) -> str:
        return (
            f"EnergyBreakdown(core={self.compute_core_mj:.3f}mJ, "
            f"wb={self.warp_buffer_mj:.3f}mJ, "
            f"isect={self.intersection_mj:.3f}mJ, "
            f"total={self.total_mj:.3f}mJ)"
        )


_FIXED_UNITS = ("box", "tri", "xform", "query_key", "point_dist")
_OP_UNITS = ("vec3_addsub", "mul", "rcp", "cross", "dot", "vec3_cmp",
             "minmax", "maxmin", "logical", "sqrt", "rxform")


def energy_report(stats: KernelStats, config: GPUConfig) -> EnergyBreakdown:
    """Account a kernel launch's energy from its activity statistics."""
    # -- compute core ---------------------------------------------------------
    warp_insts = stats.total_warp_instructions
    core_dyn = warp_insts * P.CORE_DYN_NJ_PER_WARP_INST
    static = stats.cycles * config.n_sms * P.CORE_STATIC_NJ_PER_SM_CYCLE
    dram = stats.memory.get("dram_bytes", 0.0) * P.DRAM_NJ_PER_BYTE
    compute_core = core_dyn + static + dram

    acc = stats.accel_stats or {}

    # -- warp buffer ------------------------------------------------------------
    warp_buffer = (acc.get("warp_buffer_reads", 0) * P.WARP_BUFFER_READ_NJ
                   + acc.get("warp_buffer_writes", 0) * P.WARP_BUFFER_WRITE_NJ)

    # -- intersection units -------------------------------------------------------
    intersection = 0.0
    for unit in _FIXED_UNITS:
        busy = acc.get(f"{unit}_busy_cycles", 0.0)
        intersection += busy * P.unit_energy_per_busy_cycle_nj(unit)
    for unit in _OP_UNITS:
        busy = acc.get(f"op_{unit}_busy_cycles", 0.0)
        intersection += busy * P.unit_energy_per_busy_cycle_nj(unit)
    intersection += acc.get("icnt_transfers", 0) * P.ICNT_NJ_PER_TRANSFER

    # Fixed-function pipelines occupy their full depth per op, not just
    # the issue slot: charge latency cycles per op.
    for unit, depth in (("box", config.ray_box_latency),
                        ("tri", config.ray_tri_latency),
                        ("query_key", config.query_key_latency),
                        ("point_dist", config.point_dist_latency)):
        ops = acc.get(f"{unit}_ops", 0)
        intersection += ops * (depth - 1) * \
            P.unit_energy_per_busy_cycle_nj(unit) * 0.1  # pipeline shell

    nj_to_mj = 1e-6
    return EnergyBreakdown(compute_core * nj_to_mj,
                           warp_buffer * nj_to_mj,
                           intersection * nj_to_mj)
