"""Unit and property tests for the k-d tree and kNN search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec3
from repro.trees.kdtree import KDTree


def random_points(n, seed=0, span=50.0, dims=3):
    rng = random.Random(seed)
    return [Vec3(rng.uniform(-span, span), rng.uniform(-span, span),
                 rng.uniform(-span, span) if dims == 3 else 0.0)
            for _ in range(n)]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            KDTree([])

    def test_bad_params(self):
        pts = random_points(8)
        with pytest.raises(ConfigurationError):
            KDTree(pts, dims=4)
        with pytest.raises(ConfigurationError):
            KDTree(pts, max_leaf_size=0)

    def test_all_points_in_leaves(self):
        pts = random_points(500, seed=1)
        tree = KDTree(pts, max_leaf_size=4)
        ids = []
        for node in tree.nodes():
            if node.is_leaf:
                assert len(node.points) <= 4
                ids.extend(node.point_ids)
        assert sorted(ids) == list(range(500))

    def test_balanced_depth(self):
        tree = KDTree(random_points(4096, seed=2), max_leaf_size=8)
        # Median splits: depth ~ log2(4096/8) + 1 = 10; allow slack.
        assert tree.depth() <= 14

    def test_split_separates_points(self):
        tree = KDTree(random_points(200, seed=3), max_leaf_size=2)

        def check(node):
            if node.is_leaf:
                return
            for leaf_pt in _leaf_points(node.left):
                assert leaf_pt.component(node.axis) <= node.split + 1e-12
            for leaf_pt in _leaf_points(node.right):
                assert leaf_pt.component(node.axis) >= node.split - 1e-12
            check(node.left)
            check(node.right)

        def _leaf_points(node):
            if node.is_leaf:
                return list(node.points)
            return _leaf_points(node.left) + _leaf_points(node.right)

        check(tree.root)


class TestKNN:
    def test_matches_brute_force(self):
        pts = random_points(600, seed=4)
        tree = KDTree(pts)
        for q in random_points(30, seed=5):
            got = tree.knn(q, 5).ids
            expected = tree.brute_force_knn(q, 5)
            got_d = sorted((pts[i] - q).length_squared() for i in got)
            exp_d = sorted((pts[i] - q).length_squared() for i in expected)
            assert got_d == pytest.approx(exp_d)

    def test_k_equals_one_finds_self(self):
        pts = random_points(100, seed=6)
        tree = KDTree(pts)
        result = tree.knn(pts[17], 1)
        assert result.ids == (17,)
        assert result.distances[0] == 0.0

    def test_distances_sorted_ascending(self):
        pts = random_points(300, seed=7)
        tree = KDTree(pts)
        result = tree.knn(Vec3(0, 0, 0), 10)
        assert list(result.distances) == sorted(result.distances)

    def test_pruning_reduces_visits(self):
        pts = random_points(2000, seed=8)
        tree = KDTree(pts)
        result = tree.knn(pts[0], 4)
        n_leaves = sum(1 for n in tree.nodes() if n.is_leaf)
        visited_leaves = sum(1 for v in result.visits if v.kind == "leaf")
        assert visited_leaves < n_leaves / 2, "pruning ineffective"

    def test_bad_k(self):
        tree = KDTree(random_points(10))
        with pytest.raises(ConfigurationError):
            tree.knn(Vec3(), 0)

    def test_k_larger_than_tree_returns_all(self):
        pts = random_points(6, seed=9)
        tree = KDTree(pts)
        result = tree.knn(Vec3(), 10)
        assert sorted(result.ids) == list(range(6))


class TestRunnerIntegration:
    def test_knn_platforms_end_to_end(self):
        from repro.harness.runner import run_knn, scaled_config_for
        from repro.workloads import make_knn_workload

        wl = make_knn_workload(n_points=1024, n_queries=128, k=4, seed=10)
        cfg = scaled_config_for(wl.image.size_bytes)
        base = run_knn(wl, "gpu", config=cfg)
        tta = run_knn(wl, "tta", config=cfg)
        tp = run_knn(wl, "ttaplus", config=cfg)
        assert tta.speedup_over(base) > 1.0
        assert tp.speedup_over(base) > 0.8

    def test_bad_platform(self):
        from repro.harness.runner import run_knn
        from repro.workloads import make_knn_workload
        wl = make_knn_workload(n_points=64, n_queries=8, k=2)
        with pytest.raises(ConfigurationError):
            run_knn(wl, "rta")


@given(st.integers(min_value=2, max_value=300),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_property_knn_equals_brute_force(n, k, seed):
    pts = random_points(n, seed=seed)
    tree = KDTree(pts, max_leaf_size=4)
    q = pts[seed % n]
    k = min(k, n)
    got = tree.knn(q, k).ids
    expected = tree.brute_force_knn(q, k)
    got_d = sorted((pts[i] - q).length_squared() for i in got)
    exp_d = sorted((pts[i] - q).length_squared() for i in expected)
    assert got_d == pytest.approx(exp_d)
