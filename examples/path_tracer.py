#!/usr/bin/env python3
"""A small sphere path tracer (WKND_PT) rendered through the simulator.

Renders the procedurally generated sphere scene to a PPM image using
the functional side of the library, then times the same frame's
traversals on the baseline RTA, the naive TTA+ port, and the optimized
*WKND_PT configuration (µop Ray-Sphere instead of intersection
shaders) — the Fig. 16/17 experiment, with an actual picture.

Run:  python examples/path_tracer.py   (writes wknd.ppm)
"""

import math
import random

from repro.geometry.ray import Ray
from repro.geometry.sphere import ray_sphere_intersect
from repro.geometry.vec import Vec3, dot
from repro.gpu.config import GPUConfig
from repro.harness.runner import run_wknd
from repro.trees.bvh import BVH
from repro.workloads.scenes import Camera
from repro.workloads.wknd import make_wknd_scene, make_wknd_workload

WIDTH, HEIGHT = 96, 64
SAMPLES = 2
MAX_DEPTH = 3


def sky(direction: Vec3) -> Vec3:
    t = 0.5 * (direction.y + 1.0)
    return Vec3(1, 1, 1) * (1 - t) + Vec3(0.5, 0.7, 1.0) * t


def trace(bvh: BVH, ray: Ray, rng: random.Random, depth: int) -> Vec3:
    if depth >= MAX_DEPTH:
        return Vec3()
    result = bvh.traverse(ray, ray_sphere_intersect)
    if result.closest_prim is None:
        return sky(ray.direction)
    sphere = bvh.primitives[result.closest_prim]
    p = ray.point_at(result.closest_t)
    n = (p - sphere.center) / sphere.radius
    if dot(n, ray.direction) > 0:
        n = -n
    while True:
        v = Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1))
        if 1e-6 < v.length_squared() <= 1.0:
            break
    bounce_dir = (n + v.normalized())
    if bounce_dir.length_squared() < 1e-9:
        bounce_dir = n
    bounce = Ray(p + n * 1e-3, bounce_dir.normalized())
    albedo = 0.5 + 0.35 * math.sin(sphere.prim_id * 12.9898)
    color = trace(bvh, bounce, rng, depth + 1)
    return color * albedo


def render() -> None:
    spheres = make_wknd_scene(120, seed=0)
    bvh = BVH(spheres, max_leaf_size=2, method="sah")
    camera = Camera(Vec3(13, 2, 3), Vec3(0, 0.5, 0), fov_deg=25)
    rays = camera.rays(WIDTH, HEIGHT)
    rng = random.Random(0)
    rows = []
    for y in range(HEIGHT):
        row = []
        for x in range(WIDTH):
            ray = rays[y * WIDTH + x]
            color = Vec3()
            for _ in range(SAMPLES):
                color = color + trace(bvh, ray, rng, 0)
            color = color / SAMPLES
            row.append(tuple(int(255 * min(1.0, math.sqrt(max(0.0, c))))
                             for c in color))
        rows.append(row)
    with open("wknd.ppm", "w") as f:
        f.write(f"P3\n{WIDTH} {HEIGHT}\n255\n")
        for row in rows:
            f.write(" ".join(f"{r} {g} {b}" for r, g, b in row) + "\n")
    print(f"wrote wknd.ppm ({WIDTH}x{HEIGHT}, {SAMPLES} spp)")


def time_hardware() -> None:
    cfg = GPUConfig().with_overrides(l1_size=512, l2_size=4096, l2_assoc=8)
    wl = make_wknd_workload(width=16, height=16, n_spheres=420, bounces=2)
    rta = run_wknd(wl, "rta", config=cfg)
    naive = run_wknd(wl, "ttaplus", config=cfg)
    opt = run_wknd(wl, "ttaplus_opt", config=cfg)
    print(f"baseline RTA (intersection shaders): {rta.cycles:9.0f} cycles")
    print(f"naive TTA+ port                    : {naive.cycles:9.0f} cycles "
          f"({rta.cycles / naive.cycles:.2f}x)")
    print(f"*WKND_PT (µop Ray-Sphere)          : {opt.cycles:9.0f} cycles "
          f"({rta.cycles / opt.cycles:.2f}x, "
          f"{naive.cycles / opt.cycles:.2f}x over naive)")


if __name__ == "__main__":
    render()
    time_hardware()
