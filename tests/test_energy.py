"""Tests for the area and energy models (Table IV, §V-C, Fig. 19)."""

import pytest

from repro.energy import (
    baseline_rta_area_um2,
    tta_area_report,
    ttaplus_area_report,
)
from repro.energy.area import tta_ray_box_overhead_pct
from repro.energy.model import EnergyBreakdown, energy_report
from repro.energy.power import (
    UNIT_POWER_MW,
    unit_energy_per_busy_cycle_nj,
)
from repro.gpu.config import GPUConfig
from repro.harness.runner import run_btree, scaled_config_for
from repro.workloads import make_btree_workload


class TestArea:
    def test_baseline_total_matches_table4(self):
        assert baseline_rta_area_um2() == pytest.approx(602078.1)

    def test_ttaplus_without_sqrt_is_smaller(self):
        report = ttaplus_area_report(with_sqrt=False)
        assert report.total_um2 == pytest.approx(536949.1, rel=1e-4)
        assert report.vs_baseline_pct == pytest.approx(-10.8, abs=0.1)

    def test_ttaplus_with_sqrt_matches_table4(self):
        report = ttaplus_area_report(with_sqrt=True)
        assert report.total_um2 == pytest.approx(821316.3, rel=1e-4)
        assert report.vs_baseline_pct == pytest.approx(36.4, abs=0.1)

    def test_tta_ray_box_delta(self):
        # §V-C1: 0.2708 -> 0.2756 mm^2, a 1.8% increase of that unit.
        assert tta_ray_box_overhead_pct() == pytest.approx(1.8, abs=0.05)

    def test_tta_total_overhead_below_one_percent(self):
        report = tta_area_report()
        assert 0 < report.vs_baseline_pct < 1.0

    def test_report_row_lookup(self):
        report = ttaplus_area_report()
        assert report.row("sqrt") == pytest.approx(284367.2)
        with pytest.raises(KeyError):
            report.row("flux_capacitor")


class TestPower:
    def test_query_key_power_matches_paper(self):
        # §V-C1: 259.4 mW -> 261.1 mW (+0.7%).
        assert UNIT_POWER_MW["box"] == pytest.approx(259.4)
        increase = (UNIT_POWER_MW["query_key"] - UNIT_POWER_MW["box"]) \
            / UNIT_POWER_MW["box"]
        assert increase == pytest.approx(0.007, abs=0.002)

    def test_energy_per_cycle_positive_for_all_units(self):
        for unit in UNIT_POWER_MW:
            assert unit_energy_per_busy_cycle_nj(unit) > 0

    def test_sqrt_is_the_most_power_hungry_op_unit(self):
        op_units = ("vec3_addsub", "mul", "rcp", "cross", "dot", "vec3_cmp",
                    "minmax", "maxmin", "logical", "sqrt", "rxform")
        assert max(op_units, key=UNIT_POWER_MW.get) == "sqrt"


class TestEnergyModel:
    def _runs(self):
        wl = make_btree_workload("btree", n_keys=2048, n_queries=2048,
                                 seed=1)
        cfg = scaled_config_for(wl.image.size_bytes)
        return (run_btree(wl, "gpu", config=cfg),
                run_btree(wl, "tta", config=cfg), cfg)

    def test_breakdown_components_positive(self):
        base, tta, cfg = self._runs()
        assert base.energy.compute_core_mj > 0
        assert base.energy.warp_buffer_mj == 0  # no accelerator used
        assert tta.energy.warp_buffer_mj > 0
        assert tta.energy.intersection_mj > 0

    def test_tta_saves_energy_like_fig19(self):
        base, tta, cfg = self._runs()
        saving = 1.0 - tta.energy.total_mj / base.energy.total_mj
        # Paper: 15-62% less energy for B-Tree queries.
        assert 0.10 < saving < 0.80

    def test_normalization_sums(self):
        base, tta, cfg = self._runs()
        norm = tta.energy.normalized_to(base.energy)
        assert norm["total"] == pytest.approx(
            norm["compute_core"] + norm["warp_buffer"]
            + norm["intersection"])
        base_norm = base.energy.normalized_to(base.energy)
        assert base_norm["total"] == pytest.approx(1.0)

    def test_zero_stats_zero_energy(self):
        from repro.gpu.device import KernelStats
        report = energy_report(KernelStats(), GPUConfig())
        assert report.total_mj == 0
