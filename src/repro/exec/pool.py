"""Worker-pool machinery: parallel map with timeout, retry, fallback.

This module is deliberately generic — it maps a *picklable top-level
function* over a list of payloads and returns one :class:`Outcome` per
payload — so the policy layer (:mod:`repro.exec.service`) and the tests
can drive it with arbitrary functions, not just simulation specs.

Semantics:

* every payload is attempted up to ``1 + retries`` times;
* a payload whose attempt runs longer than ``timeout`` seconds (measured
  from dispatch) is abandoned: the worker pool is torn down — the only
  way to stop a stuck task under ``ProcessPoolExecutor`` — rebuilt, and
  the remaining payloads are resubmitted.  Siblings lose in-flight work
  but not attempts;
* a broken pool (worker killed by the OOM killer, interpreter crash) is
  rebuilt the same way and the in-flight payload charged one attempt;
* pool rebuilds are **rate-limited**: each ``map()`` call tolerates at
  most ``max_restarts`` restarts, with exponential backoff between
  consecutive ones (a reliably-crashing worker must not hot-loop the
  fork path).  When the budget is exhausted, the remaining payloads are
  drained one at a time through **one-shot isolation workers** (a fresh
  single-payload process each) with a warning: a payload that crashes
  the interpreter takes down only its private worker — and thereby
  identifies itself, where concurrent attribution is ambiguous — so the
  sweep always completes and the parent is never at risk.  Payloads
  already known to *hang* (a timeout storm) are failed outright rather
  than re-run;
* an exception carrying a ``diagnostics`` attribute (the guard errors
  of :mod:`repro.errors`) is treated as a *deterministic* model failure
  and not retried — re-simulating a stall reproduces the stall; its
  type and payload ride back on :attr:`Outcome.failure` so the policy
  layer can quarantine the spec;
* :func:`run_serial` provides the exact same contract in-process for
  environments where ``multiprocessing`` is unavailable or undesirable.
"""

import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

#: How often the dispatch loop wakes up to police timeouts (seconds).
_POLL_SECONDS = 0.05

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass
class Outcome:
    """Result of driving one payload to completion (or giving up)."""

    index: int
    status: str = STATUS_OK
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    #: Structured failure metadata: ``{"type": exception class name,
    #: "diagnostics": dict or None}`` — present when the final attempt
    #: raised, so policy layers can classify without parsing tracebacks.
    failure: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def _failure_info(exc: BaseException) -> dict:
    """Classifiable failure metadata (duck-typed: any exception with a
    dict-like ``diagnostics`` attribute gets it shipped along)."""
    diagnostics = getattr(exc, "diagnostics", None)
    if diagnostics is not None and not isinstance(diagnostics, dict):
        diagnostics = None
    return {"type": type(exc).__name__, "diagnostics": diagnostics}


def _deterministic(exc: BaseException) -> bool:
    """Failures carrying diagnostics are model verdicts, not flakiness;
    retrying them re-simulates the same stall."""
    return getattr(exc, "diagnostics", None) is not None


def _one_shot_child(fn, payload, conn) -> None:
    """Entry point of a one-shot isolation worker: run one payload,
    ship the verdict back over ``conn``, exit.  A crash here (segfault,
    ``os._exit``) simply closes the pipe — the parent reads EOF and
    fails the payload with the worker's exit code."""
    try:
        value = fn(payload)
    except BaseException as exc:  # noqa: BLE001 — verdicts cross a pipe
        conn.send(("error", traceback.format_exc(limit=8),
                   _failure_info(exc)))
    else:
        conn.send(("ok", value, None))
    finally:
        conn.close()


def run_serial(fn: Callable[[Any], Any], items: Sequence[Any],
               retries: int = 0,
               progress: Optional[Callable[[Outcome], None]] = None
               ) -> List[Outcome]:
    """In-process reference implementation of the pool contract."""
    outcomes: List[Outcome] = []
    for index, item in enumerate(items):
        attempts = 0
        started = time.monotonic()
        while True:
            attempts += 1
            try:
                value = fn(item)
            except Exception as exc:
                if attempts <= retries and not _deterministic(exc):
                    continue
                outcome = Outcome(index, STATUS_ERROR, None,
                                  traceback.format_exc(limit=8), attempts,
                                  time.monotonic() - started,
                                  failure=_failure_info(exc))
            else:
                outcome = Outcome(index, STATUS_OK, value, None, attempts,
                                  time.monotonic() - started)
            break
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return outcomes


class ParallelRunner:
    """``ProcessPoolExecutor`` wrapper implementing the pool contract.

    Construction eagerly creates the executor so that environments where
    process pools cannot exist (no ``/dev/shm``, seccomp'd sandboxes)
    fail *here*, letting the caller degrade to :func:`run_serial`.
    """

    def __init__(self, jobs: int, timeout: Optional[float] = None,
                 retries: int = 1, mp_context: Optional[str] = "fork",
                 max_restarts: int = 5, backoff_base: float = 0.5,
                 backoff_cap: float = 30.0):
        if jobs < 2:
            raise ValueError("ParallelRunner needs at least 2 jobs; "
                             "use run_serial for jobs=1")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = max(0, retries)
        #: Pool rebuilds allowed per map() call before falling back to
        #: serial execution of the remaining payloads.
        self.max_restarts = max(0, max_restarts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._ctx = self._resolve_context(mp_context)
        self._executor = self._make_executor()

    @staticmethod
    def _resolve_context(name: Optional[str]):
        import multiprocessing
        if name is None:
            return None
        try:
            return multiprocessing.get_context(name)
        except ValueError:
            # Platform without this start method (e.g. no fork on
            # Windows): let the executor pick its default.
            return None

    def _make_executor(self) -> ProcessPoolExecutor:
        executor = ProcessPoolExecutor(max_workers=self.jobs,
                                       mp_context=self._ctx)
        # Fail eagerly if workers cannot be spawned at all: submit a
        # no-op and wait for it, so the caller's serial fallback fires.
        probe = executor.submit(_probe)
        probe.result(timeout=60)
        return executor

    def _hard_restart(self) -> None:
        """Tear down the executor (killing workers) and build a new one."""
        executor, self._executor = self._executor, None
        try:
            executor.shutdown(wait=False, cancel_futures=True)
            # shutdown() does not stop tasks already running; terminate
            # the worker processes so a wedged simulation cannot pin a
            # CPU (private attribute, guarded — worst case the hung
            # worker dies with the parent).
            for proc in list(getattr(executor, "_processes", {}).values()):
                proc.terminate()
        except Exception:
            pass
        self._executor = self._make_executor()

    # -- the map ----------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            progress: Optional[Callable[[Outcome], None]] = None
            ) -> List[Outcome]:
        items = list(items)
        outcomes: List[Outcome] = [None] * len(items)  # type: ignore
        attempts = [0] * len(items)
        first_dispatch = [0.0] * len(items)
        restarts = 0

        def submit(index: int, charge: bool = True):
            if charge:
                attempts[index] += 1
            if not first_dispatch[index]:
                first_dispatch[index] = time.monotonic()
            future = self._executor.submit(fn, items[index])
            # Second slot: when the payload was first observed *running*
            # (None while queued) — the per-run timeout clock.
            pending[future] = [index, None]

        def try_restart() -> bool:
            """Rebuild the pool within the per-map budget, backing off
            exponentially after the first restart; False when the
            budget is spent (caller falls back to serial)."""
            nonlocal restarts
            restarts += 1
            if restarts > self.max_restarts:
                return False
            if restarts > 1:
                delay = min(self.backoff_cap,
                            self.backoff_base * (2 ** (restarts - 2)))
                if delay > 0:
                    time.sleep(delay)
            try:
                self._hard_restart()
            except Exception:
                return False
            return True

        def finish(index: int, status: str, value=None, error=None,
                   failure=None) -> None:
            outcomes[index] = Outcome(
                index, status, value, error, attempts[index],
                time.monotonic() - first_dispatch[index], failure=failure)
            if progress is not None:
                progress(outcomes[index])

        def serial_remainder(indexes, why: str) -> None:
            """Restart budget exhausted: drain the remaining payloads
            one at a time, each in a fresh one-shot worker process, so
            the sweep still completes.  Isolation doubles as
            attribution — whichever payload has been killing pool
            workers now kills only its private interpreter and is
            failed by name, while innocent siblings complete."""
            if not indexes:
                return
            print(f"[exec] worker pool restart limit "
                  f"({self.max_restarts}) reached after {why}; running "
                  f"{len(indexes)} remaining payload(s) in one-shot "
                  f"isolation workers", file=sys.stderr)
            for index in indexes:
                attempts[index] += 1
                recv, send = self._ctx.Pipe(duplex=False)
                proc = self._ctx.Process(
                    target=_one_shot_child, args=(fn, items[index], send))
                proc.start()
                send.close()
                message = None
                timed_out = False
                # poll() returns on data or on EOF (the child died
                # without sending); with timeout=None it waits forever,
                # matching the pool path's "no timeout" contract.
                if recv.poll(self.timeout):
                    try:
                        message = recv.recv()
                    except EOFError:
                        message = None
                else:
                    timed_out = True
                recv.close()
                if proc.is_alive():
                    proc.terminate()
                proc.join()
                if timed_out:
                    finish(index, STATUS_TIMEOUT,
                           error=f"run exceeded {self.timeout:.1f}s "
                                 "timeout in a one-shot isolation "
                                 "worker (pool restart limit reached)")
                elif message is None:
                    finish(index, STATUS_ERROR,
                           error="payload crashed its one-shot "
                                 f"isolation worker (exit code "
                                 f"{proc.exitcode}; pool restart limit "
                                 f"{self.max_restarts} reached)")
                elif message[0] == "ok":
                    finish(index, STATUS_OK, value=message[1])
                else:
                    finish(index, STATUS_ERROR, error=message[1],
                           failure=message[2])

        pending = {}
        for index in range(len(items)):
            submit(index)

        while pending:
            done, _ = wait(pending, timeout=_POLL_SECONDS,
                           return_when=FIRST_COMPLETED)
            for future in done:
                entry = pending.pop(future, None)
                if entry is None:
                    # Evicted by a recover/restart earlier in this very
                    # batch; its payload was already resubmitted.
                    continue
                index = entry[0]
                try:
                    value = future.result()
                except BrokenProcessPool:
                    # Rebuild the pool and resubmit every in-flight
                    # payload; the siblings did not fail on their own
                    # merits, so no attempt is charged to them.
                    survivors = [i for f, (i, _) in pending.items()
                                 if f is not future]
                    pending.clear()
                    if try_restart():
                        for i in survivors:
                            submit(i, charge=False)
                        if attempts[index] <= self.retries:
                            submit(index)
                        else:
                            finish(index, STATUS_ERROR,
                                   error="worker process pool broke")
                    else:
                        # Which concurrent payload killed the worker is
                        # ambiguous (every pending future raises the
                        # same BrokenProcessPool) — let the one-shot
                        # isolation workers sort the guilty from the
                        # innocent.
                        serial_remainder([index] + survivors,
                                         "a broken pool")
                except Exception as exc:
                    if attempts[index] <= self.retries \
                            and not _deterministic(exc):
                        submit(index)
                    else:
                        finish(index, STATUS_ERROR,
                               error=traceback.format_exc(limit=8),
                               failure=_failure_info(exc))
                else:
                    finish(index, STATUS_OK, value=value)

            if self.timeout is None or not pending:
                continue
            now = time.monotonic()
            expired = []
            for future, entry in pending.items():
                if entry[1] is None:
                    if future.running():
                        entry[1] = now
                elif now - entry[1] > self.timeout:
                    expired.append((future, entry[0]))
            if not expired:
                continue
            # Any expired task forces a pool restart; resubmit the
            # survivors (no attempt charged) and retry or fail the
            # expired ones.
            expired_futures = {future for future, _ in expired}
            survivor_indexes = [index for future, (index, _) in
                                pending.items()
                                if future not in expired_futures]
            pending.clear()
            if try_restart():
                for index in survivor_indexes:
                    submit(index, charge=False)
                for _, index in expired:
                    if attempts[index] <= self.retries:
                        submit(index)
                    else:
                        finish(index, STATUS_TIMEOUT,
                               error=f"run exceeded {self.timeout:.1f}s "
                                     f"timeout ({attempts[index]} "
                                     "attempt(s))")
            else:
                # Expired payloads are known to hang; fail them rather
                # than hanging the parent, and drain the rest serially.
                for _, index in expired:
                    finish(index, STATUS_TIMEOUT,
                           error=f"run exceeded {self.timeout:.1f}s "
                                 f"timeout ({attempts[index]} attempt(s); "
                                 "restart limit reached)")
                serial_remainder(survivor_indexes, "a timeout storm")
        return outcomes

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _probe() -> bool:
    return True
