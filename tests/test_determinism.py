"""Determinism: identical inputs must produce identical simulations.

The event engine breaks time ties by insertion order and every random
choice is seeded, so two runs of the same configuration must agree to
the cycle — a property the figure benchmarks rely on.
"""

from repro.harness.runner import (
    run_btree,
    run_nbody,
    run_rtnn,
    run_wknd,
    scaled_config_for,
)
from repro.gpu.config import GPUConfig
from repro.workloads import (
    make_btree_workload,
    make_nbody_workload,
    make_rtnn_workload,
    make_wknd_workload,
)


def test_btree_runs_are_cycle_identical():
    results = []
    for _ in range(2):
        wl = make_btree_workload("btree", n_keys=1024, n_queries=512, seed=3)
        cfg = scaled_config_for(wl.image.size_bytes)
        run = run_btree(wl, "tta", config=cfg)
        results.append((run.cycles, run.stats.total_warp_instructions,
                        run.stats.memory["dram_bytes"]))
    assert results[0] == results[1]


def test_workload_generation_is_seeded():
    a = make_btree_workload("btree", n_keys=512, n_queries=128, seed=9)
    b = make_btree_workload("btree", n_keys=512, n_queries=128, seed=9)
    c = make_btree_workload("btree", n_keys=512, n_queries=128, seed=10)
    assert a.queries == b.queries
    assert a.queries != c.queries
    assert a.golden == b.golden


def test_nbody_runs_are_cycle_identical():
    results = []
    for _ in range(2):
        wl = make_nbody_workload(n_bodies=128, dims=2, seed=4, theta=0.7)
        cfg = scaled_config_for(wl.image.size_bytes)
        run = run_nbody(wl, "ttaplus", config=cfg)
        results.append(run.cycles)
    assert results[0] == results[1]


def test_rtnn_runs_are_cycle_identical():
    results = []
    for _ in range(2):
        wl = make_rtnn_workload(n_points=512, n_queries=64, seed=5)
        cfg = scaled_config_for(wl.image.size_bytes)
        run = run_rtnn(wl, "rta", config=cfg)
        results.append(run.cycles)
    assert results[0] == results[1]


def test_wknd_runs_are_cycle_identical():
    cfg = GPUConfig(n_sms=2)
    results = []
    for _ in range(2):
        wl = make_wknd_workload(width=6, height=6, n_spheres=60, bounces=1)
        run = run_wknd(wl, "ttaplus_opt", config=cfg)
        results.append(run.cycles)
    assert results[0] == results[1]


def test_energy_model_is_pure():
    wl = make_btree_workload("btree", n_keys=512, n_queries=128, seed=6)
    cfg = scaled_config_for(wl.image.size_bytes)
    run = run_btree(wl, "tta", config=cfg)
    from repro.energy.model import energy_report
    a = energy_report(run.stats, cfg)
    b = energy_report(run.stats, cfg)
    assert a.total_mj == b.total_mj
