"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.resources import PipelinedUnit, ThroughputResource, Timeline
from repro.sim.stats import Counter, LatencySampler, OccupancyTracker


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_at(5, order.append, "b")
        sim.call_at(1, order.append, "a")
        sim.call_at(9, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 9

    def test_equal_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in range(10):
            sim.call_at(3, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.call_at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5, lambda: None)

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.call_at(100, fired.append, 1)
        sim.run(until=50)
        assert fired == []
        assert sim.now == 50

    def test_process_delays(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield 10
            times.append(sim.now)
            yield 5
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0, 10, 15]

    def test_process_waits_on_signal(self):
        sim = Simulator()
        got = []
        sig = sim.signal()

        def waiter():
            value = yield sig
            got.append((sim.now, value))

        sim.spawn(waiter())
        sig.fire_at(42, "payload")
        sim.run()
        assert got == [(42, "payload")]

    def test_signal_fired_before_wait_resumes_immediately(self):
        sim = Simulator()
        got = []
        sig = sim.signal()
        sig.fire("early")

        def waiter():
            yield 7
            value = yield sig
            got.append((sim.now, value))

        sim.spawn(waiter())
        sim.run()
        assert got == [(7, "early")]

    def test_signal_cannot_fire_twice(self):
        sim = Simulator()
        sig = sim.signal()
        sig.fire()
        with pytest.raises(SimulationError):
            sig.fire()

    def test_multiple_waiters_all_resume(self):
        sim = Simulator()
        woken = []
        sig = sim.signal()

        def waiter(tag):
            yield sig
            woken.append(tag)

        for tag in range(4):
            sim.spawn(waiter(tag))
        sig.fire_at(3)
        sim.run()
        assert sorted(woken) == [0, 1, 2, 3]

    def test_process_yielding_garbage_raises(self):
        sim = Simulator()

        def bad():
            yield "nonsense"

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield 1

        sim.spawn(forever())
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestTimeline:
    def test_serves_fifo_back_to_back(self):
        tl = Timeline()
        assert tl.acquire(0, 4) == 0
        assert tl.acquire(0, 4) == 4
        assert tl.acquire(2, 4) == 8

    def test_idle_gap_not_counted_busy(self):
        tl = Timeline()
        tl.acquire(0, 2)
        tl.acquire(10, 2)
        assert tl.busy_cycles == 4
        assert tl.utilization(20) == pytest.approx(0.2)

    def test_negative_service_rejected(self):
        tl = Timeline()
        with pytest.raises(SimulationError):
            tl.acquire(0, -1)


class TestPipelinedUnit:
    def test_latency_and_initiation_interval(self):
        unit = PipelinedUnit("raybox", latency=13)
        start0, done0 = unit.issue(0)
        start1, done1 = unit.issue(0)
        assert (start0, done0) == (0, 13)
        assert (start1, done1) == (1, 14)  # II=1: next slot, full latency

    def test_occupancy_counts_queued_plus_executing(self):
        unit = PipelinedUnit("raytri", latency=37)
        for _ in range(5):
            unit.issue(0)
        assert unit.occupancy.peak == 5
        for t in (37, 38, 39, 40, 41):
            unit.complete(t)
        assert unit.occupancy.current == 0

    def test_utilization_is_issue_slot_fraction(self):
        unit = PipelinedUnit("u", latency=4)
        unit.issue(0)
        unit.issue(1)
        assert unit.utilization(10) == pytest.approx(0.2)

    def test_zero_latency_rejected(self):
        with pytest.raises(SimulationError):
            PipelinedUnit("bad", latency=0)


class TestThroughputResource:
    def test_transfer_time_scales_with_amount(self):
        dram = ThroughputResource("dram", per_cycle=32, latency=100)
        done = dram.transfer(0, 64)
        assert done == pytest.approx(102)

    def test_contention_serializes(self):
        dram = ThroughputResource("dram", per_cycle=32)
        first = dram.transfer(0, 320)   # 10 cycles of bus time
        second = dram.transfer(0, 32)   # queued behind it
        assert first == pytest.approx(10)
        assert second == pytest.approx(11)

    def test_utilization(self):
        dram = ThroughputResource("dram", per_cycle=32)
        dram.transfer(0, 320)
        assert dram.utilization(20) == pytest.approx(0.5)
        assert dram.bytes_moved == 320


class TestStats:
    def test_counter_merge_and_total(self):
        a, b = Counter(), Counter()
        a.add("alu", 3)
        b.add("alu", 2)
        b.add("mem")
        a.merge(b)
        assert a.get("alu") == 5
        assert a.total() == 6
        assert a.total(["mem"]) == 1

    def test_occupancy_average_and_peak(self):
        occ = OccupancyTracker()
        occ.enter(0)
        occ.enter(0)
        occ.exit(10)
        occ.exit(10)
        # 2 items in flight for 10 cycles out of 20 -> average 1.0
        assert occ.average(20) == pytest.approx(1.0)
        assert occ.peak == 2
        assert occ.entries == 2

    def test_occupancy_rejects_time_travel(self):
        occ = OccupancyTracker()
        occ.enter(5)
        with pytest.raises(ValueError):
            occ.enter(3)

    def test_occupancy_rejects_negative(self):
        occ = OccupancyTracker()
        with pytest.raises(ValueError):
            occ.exit(0)

    def test_latency_sampler(self):
        lat = LatencySampler()
        for v in (10, 20, 30):
            lat.sample(v)
        assert lat.mean == pytest.approx(20)
        assert (lat.min, lat.max, lat.count) == (10, 30, 3)
