"""Table III — µop counts per intersection test, regenerated from the
registered programs (the same objects the TTA+ timing model executes)."""

from repro.core.ttaplus.programs import PROGRAMS
from repro.harness.results import Table

# (program, paper total, paper per-unit histogram)
PAPER_TABLE3 = {
    "btree_inner": (12, {"minmax": 3, "maxmin": 3, "vec3_cmp": 3,
                         "logical": 3}),
    "btree_leaf": (3, {"vec3_cmp": 3}),
    "nbody_inner": (3, {"vec3_addsub": 1, "dot": 1, "vec3_cmp": 1}),
    "nbody_leaf": (5, {"mul": 3, "sqrt": 1, "rxform": 1}),
    "raybox": (19, {"vec3_addsub": 2, "mul": 6, "rcp": 3, "minmax": 3,
                    "maxmin": 3, "vec3_cmp": 1, "logical": 1}),
    "rtnn_leaf": (5, {"vec3_addsub": 1, "mul": 1, "dot": 1, "vec3_cmp": 1,
                      "logical": 1}),
    "raysphere": (18, {"vec3_addsub": 5, "mul": 5, "sqrt": 1, "rcp": 1,
                       "dot": 3, "vec3_cmp": 2, "logical": 1}),
    "raytri": (17, {"vec3_addsub": 3, "mul": 3, "rcp": 1, "cross": 2,
                    "dot": 4, "vec3_cmp": 2, "logical": 2}),
}


def test_table3_uops(benchmark, save_table):
    def build():
        table = Table(
            "Table III — µops per intersection test",
            ["program", "total(model)", "total(paper)", "unit_histogram"],
        )
        for name, (total, histogram) in sorted(PAPER_TABLE3.items()):
            program = PROGRAMS[name]
            table.add_row(name, len(program), total,
                          str(program.unit_counts()))
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("table3_uops", table)
    for name, (total, histogram) in PAPER_TABLE3.items():
        program = PROGRAMS[name]
        assert len(program) == total, f"{name}: µop count"
        assert program.unit_counts() == histogram, f"{name}: unit mix"
