"""repro — behavioral reproduction of "Generalizing Ray Tracing
Accelerators for Tree Traversals on GPUs" (MICRO 2024).

Public entry points:

* :mod:`repro.core` — the TTA/TTA+ programming model and hardware models.
* :mod:`repro.workloads` — workload generators with golden references.
* :mod:`repro.harness` — per-figure experiments and platform runners.
* ``python -m repro`` — command-line experiment runner.
"""

__version__ = "1.6.0"

__all__ = ["__version__"]
