"""Core intersection tests used by the traversal engines.

``ray_aabb_intersect`` is the slab test exactly as the baseline Ray-Box
unit computes it (per-axis plane distances, then a min/max reduction —
see Fig. 5 left and Fig. 9 (1) of the paper).  ``point_distance_below``
is Algorithm 2: the Point-to-Point distance test TTA adds to the
Ray-Triangle unit.
"""

from typing import Optional, Tuple

from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.vec import Vec3, dot


def ray_aabb_intersect(ray: Ray, box: AABB) -> Optional[Tuple[float, float]]:
    """Slab test. Returns the clipped (t_entry, t_exit) or None on miss.

    The arithmetic mirrors the hardware datapath: subtract, multiply by
    the cached reciprocal direction, then fold the six plane distances
    through min/max trees against the ray interval.
    """
    tx1 = (box.lo.x - ray.origin.x) * ray.inv_direction.x
    tx2 = (box.hi.x - ray.origin.x) * ray.inv_direction.x
    ty1 = (box.lo.y - ray.origin.y) * ray.inv_direction.y
    ty2 = (box.hi.y - ray.origin.y) * ray.inv_direction.y
    tz1 = (box.lo.z - ray.origin.z) * ray.inv_direction.z
    tz2 = (box.hi.z - ray.origin.z) * ray.inv_direction.z

    t_entry = max(
        min(tx1, tx2),
        min(ty1, ty2),
        min(tz1, tz2),
        ray.tmin,
    )
    t_exit = min(
        max(tx1, tx2),
        max(ty1, ty2),
        max(tz1, tz2),
        ray.tmax,
    )
    if t_entry <= t_exit:
        return t_entry, t_exit
    return None


def point_distance_below(point_a: Vec3, point_b: Vec3, threshold: float) -> bool:
    """Algorithm 2: is ``|b - a| < threshold``, computed without sqrt.

    The hardware path is: vector subtract, dot(dis, dis), threshold^2,
    compare — which is exactly the sequence below.
    """
    dis = point_b - point_a
    dis2 = dot(dis, dis)
    threshold2 = threshold * threshold
    return dis2 < threshold2


def point_distance_squared(point_a: Vec3, point_b: Vec3) -> float:
    """Squared Euclidean distance (shared by radius search and N-Body)."""
    dis = point_b - point_a
    return dot(dis, dis)
