"""repro.campaign — factorial run tables over a work-stealing scheduler.

The sweep engine on top of :mod:`repro.exec`:

* :class:`~repro.campaign.spec.CampaignSpec` — a declarative factorial
  run table (workload × platform × config × rep, with axis
  constraints) that expands deterministically into content-addressed
  :class:`~repro.exec.spec.RunSpec` points;
* :class:`~repro.campaign.leases.LeaseBoard` — the atomic lease-file
  protocol through which any number of worker processes (local or on
  other hosts sharing the cache filesystem) claim, release, and steal
  points;
* :class:`~repro.campaign.worker.CampaignWorker` /
  :func:`~repro.campaign.worker.run_worker` — the drain loop;
* :func:`~repro.campaign.orchestrator.run_campaign` — local fan-out +
  manifest finalization;
* :mod:`~repro.campaign.bench` — the ``repro bench`` BENCH_*.json
  regression differ that gates CI.

Interrupted campaigns are resumable for free: completion state *is* the
exec cache plus the per-point record files, so re-running a campaign
only executes the missing points, and a second full run executes none.
"""

from repro.campaign.bench import (
    BenchDiff,
    Delta,
    check,
    compare,
    compare_files,
    load_bench,
)
from repro.campaign.leases import LeaseBoard
from repro.campaign.orchestrator import (
    CAMPAIGNS_SUBDIR,
    campaign_dir_for,
    finalize,
    init_campaign,
    result_fingerprint,
    run_campaign,
    status,
)
from repro.campaign.spec import (
    DEFAULT_LEASE_TTL_S,
    KIND_PLATFORMS,
    CampaignPoint,
    CampaignSpec,
    worker_order,
)
from repro.campaign.worker import (
    CAMPAIGN_FILE,
    MANIFEST_FILE,
    CampaignWorker,
    WorkerReport,
    run_worker,
)

__all__ = [
    "BenchDiff",
    "CAMPAIGNS_SUBDIR",
    "CAMPAIGN_FILE",
    "CampaignPoint",
    "CampaignSpec",
    "CampaignWorker",
    "DEFAULT_LEASE_TTL_S",
    "Delta",
    "KIND_PLATFORMS",
    "LeaseBoard",
    "MANIFEST_FILE",
    "WorkerReport",
    "campaign_dir_for",
    "check",
    "compare",
    "compare_files",
    "finalize",
    "init_campaign",
    "load_bench",
    "result_fingerprint",
    "run_campaign",
    "run_worker",
    "status",
    "worker_order",
]
