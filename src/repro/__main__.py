"""Command-line experiment runner: ``python -m repro``.

Examples::

    python -m repro list
    python -m repro run fig12 --jobs 4
    python -m repro run fig12 fig13 --scale large --csv-dir results/
    python -m repro run all --scale smoke --no-cache
    python -m repro sweep btree --param n_keys=4096,16384 --jobs 4
    python -m repro cache stats
    python -m repro cache clear

``run`` and ``sweep`` route every simulation point through the
execution service (:mod:`repro.exec`): with ``--jobs N`` independent
points fan out over a worker-process pool, and completed points are
memoized in a content-addressed on-disk cache (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``) so re-running a figure or resuming an interrupted
sweep only executes the missing points.  Each command prints a manifest
line (``[exec] total=.. executed=.. cached=..``) accounting for every
point.
"""

import argparse
import itertools
import os
import pathlib
import sys
import time

from repro.harness import experiments

EXPERIMENTS = {
    "fig01": experiments.fig01_motivation,
    "fig06": experiments.fig06_roofline,
    "fig12": experiments.fig12_speedup,
    "fig13": experiments.fig13_dram,
    "fig14": experiments.fig14_sensitivity,
    "fig15": experiments.fig15_unit_util,
    "fig16": experiments.fig16_lumibench,
    "fig17": experiments.fig17_limit_study,
    "fig18": experiments.fig18_opunits,
    "fig19": experiments.fig19_energy,
    "fig20": experiments.fig20_instructions,
    "nbody_fusion": experiments.nbody_fusion,
}

#: Platforms accepted by each sweepable workload family's runner.
SWEEP_PLATFORMS = {
    "btree": ("gpu", "tta", "ttaplus"),
    "nbody": ("gpu", "tta", "ttaplus"),
    "rtnn": ("gpu", "rta", "tta", "ttaplus", "ttaplus_opt"),
    "rtree": ("gpu", "tta", "ttaplus"),
    "knn": ("gpu", "tta", "ttaplus"),
    "wknd": ("rta", "ttaplus", "ttaplus_opt"),
    "lumi": ("gpu", "rta", "ttaplus", "ttaplus_opt"),
}


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="run up to N simulation points in parallel "
                             "worker processes (default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-point timeout in seconds (parallel runs)")
    parser.add_argument("--guard", default=None,
                        choices=("off", "watch", "on", "strict"),
                        help="simulation guard mode (default: $REPRO_GUARD "
                             "or on); exported to worker processes")
    parser.add_argument("--max-cycles", type=int, default=None, metavar="N",
                        help="abort any simulation whose clock passes N "
                             "cycles (SimulationStallError with a "
                             "diagnostic bundle)")


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--csv-dir", type=pathlib.Path, default=None,
                        help="also write each table as CSV into this "
                             "directory")
    parser.add_argument("--json-dir", type=pathlib.Path, default=None,
                        help="also write each table as full-precision JSON "
                             "into this directory")
    parser.add_argument("--json", action="store_true",
                        help="print each table as JSON instead of the "
                             "formatted text")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures on the behavioral "
                    "TTA/TTA+ simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment names (or 'all')")
    run.add_argument("--scale",
                     default=os.environ.get("REPRO_SCALE", "small"),
                     choices=sorted(experiments.SCALES),
                     help="workload scale (default: $REPRO_SCALE or small)")
    run.add_argument("--plot", action="store_true",
                     help="render ASCII bar charts after each table")
    run.add_argument("--profile", action="store_true",
                     help="run each experiment under cProfile and print "
                          "the top-25 cumulative-time entries (profiles "
                          "this process: use with --jobs 1)")
    _add_output_options(run)
    _add_exec_options(run)

    sweep = sub.add_parser(
        "sweep",
        help="run a custom parameter sweep over one workload family")
    sweep.add_argument("kind", choices=sorted(SWEEP_PLATFORMS),
                       help="workload family")
    sweep.add_argument("--platforms", default=None, metavar="P1,P2,...",
                       help="platforms to sweep (default: all valid for "
                            "the family)")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="KEY=V1[,V2,...]",
                       help="workload parameter values; repeat for the "
                            "cartesian product (e.g. --param "
                            "n_keys=4096,16384 --param n_queries=1024)")
    _add_output_options(sweep)
    _add_exec_options(sweep)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache")
    cache.add_argument("action", choices=("stats", "clear"))
    return parser


DESCRIPTIONS = {
    "fig01": "SIMT efficiency and DRAM bandwidth utilization (motivation)",
    "fig06": "roofline placement of tree-traversal workloads",
    "fig12": "speedups of TTA/TTA+ over the baselines",
    "fig13": "DRAM bandwidth utilization per platform",
    "fig14": "TTA sensitivity: warp buffer size, intersection latency",
    "fig15": "TTA intersection-unit concurrency (avg/peak)",
    "fig16": "LumiBench + WKND_PT on TTA+ vs baseline RTA",
    "fig17": "WKND_PT limit study (perfect RT / perfect memory)",
    "fig18": "TTA+ OP-unit utilization and intersection latency",
    "fig19": "energy normalized to the baseline GPU",
    "fig20": "dynamic instruction breakdown (91% eliminated)",
    "nbody_fusion": "N-Body kernel-fusion optimization (§V-A)",
}


def cmd_list() -> int:
    for name in sorted(EXPERIMENTS):
        print(f"{name:14s} {DESCRIPTIONS.get(name, '')}")
    return 0


def _apply_guard_options(args) -> None:
    """Export ``--guard``/``--max-cycles`` as the guard env vars, so
    both this process and any forked workers pick them up."""
    from repro.guard import GUARD_ENV, MAX_CYCLES_ENV

    guard = getattr(args, "guard", None)
    if guard is not None:
        os.environ[GUARD_ENV] = guard
    max_cycles = getattr(args, "max_cycles", None)
    if max_cycles is not None:
        os.environ[MAX_CYCLES_ENV] = str(max_cycles)


def _configure_service(jobs: int, no_cache: bool, timeout):
    from repro import exec as exec_mod

    return exec_mod.configure(jobs=jobs, cache_enabled=not no_cache,
                              timeout=timeout, progress=jobs > 1)


def _emit_table(name: str, table, *, json_out: bool, csv_dir, json_dir,
                plot: bool = False) -> None:
    print(table.to_json() if json_out else table.format())
    if plot:
        from repro.harness.plots import auto_plots
        for chart in auto_plots(name, table):
            print(chart)
            print()
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        (csv_dir / f"{name}.csv").write_text(table.to_csv())
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
        (json_dir / f"{name}.json").write_text(table.to_json())


def cmd_run(names, scale: str, csv_dir, plot: bool = False,
            jobs: int = 1, no_cache: bool = False, timeout=None,
            json_dir=None, json_out: bool = False,
            profile: bool = False) -> int:
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    service = _configure_service(jobs, no_cache, timeout)
    for name in names:
        started = time.time()
        if profile:
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
            table = service.run_figure(EXPERIMENTS[name], scale)
            profiler.disable()
        else:
            table = service.run_figure(EXPERIMENTS[name], scale)
        _emit_table(name, table, json_out=json_out, csv_dir=csv_dir,
                    json_dir=json_dir, plot=plot)
        # With --json, stdout must stay parseable (repro run fig --json | jq):
        # route the manifest/timing chatter to stderr.
        chatter = sys.stderr if json_out else sys.stdout
        if profile:
            import io
            import pstats
            stream = io.StringIO()
            pstats.Stats(profiler, stream=stream) \
                .sort_stats("cumulative").print_stats(25)
            print(stream.getvalue(), file=chatter)
        print(service.manifest.summary(), file=chatter)
        print(f"[{name}: {time.time() - started:.1f}s at scale={scale}]",
              file=chatter)
        print(file=chatter)
    return 0


def _parse_param(text: str):
    """``key=v1,v2`` → (key, [typed values])."""
    if "=" not in text:
        raise SystemExit(f"bad --param {text!r}: expected KEY=V1[,V2,...]")
    key, _, raw = text.partition("=")

    def typed(token: str):
        lowered = token.lower()
        if lowered in ("true", "false"):
            return lowered == "true"
        for cast in (int, float):
            try:
                return cast(token)
            except ValueError:
                continue
        return token

    values = [typed(tok) for tok in raw.split(",") if tok != ""]
    if not values:
        raise SystemExit(f"bad --param {text!r}: no values")
    return key.strip(), values


def cmd_sweep(kind: str, platforms, params, csv_dir=None, json_dir=None,
              json_out: bool = False, jobs: int = 1, no_cache: bool = False,
              timeout=None) -> int:
    from repro.exec import make_spec
    from repro.harness.results import Table

    valid = SWEEP_PLATFORMS[kind]
    if platforms:
        chosen = [p.strip() for p in platforms.split(",") if p.strip()]
        bad = [p for p in chosen if p not in valid]
        if bad:
            print(f"invalid platform(s) for {kind}: {', '.join(bad)} "
                  f"(valid: {', '.join(valid)})", file=sys.stderr)
            return 2
    else:
        chosen = list(valid)

    grid = {}
    for item in params:
        key, values = _parse_param(item)
        grid[key] = values
    keys = sorted(grid)
    combos = [dict(zip(keys, values))
              for values in itertools.product(*(grid[k] for k in keys))] \
        if keys else [{}]

    service = _configure_service(jobs, no_cache, timeout)
    specs = [make_spec(kind, combo, platform,
                       config=experiments.default_config_policy(kind))
             for combo in combos for platform in chosen]
    service.run_many(specs)

    table = Table(
        f"sweep — {kind} × {len(combos)} point(s) × "
        f"{len(chosen)} platform(s)",
        ["params", "platform", "cycles", "simt_eff", "dram_util",
         "energy_mj"],
    )
    failures = 0
    for spec in specs:
        record = service.manifest.records.get(spec.key)
        if record is not None and record.status == "failed":
            failures += 1
            print(f"[exec] FAILED {spec.label}: {record.error}",
                  file=sys.stderr)
            continue
        run = service.run(spec)
        label = ",".join(f"{k}={v}" for k, v in
                         sorted(spec.workload.items())) or "(defaults)"
        table.add_row(label, spec.platform, run.cycles,
                      run.simt_efficiency, run.dram_utilization,
                      run.energy.total_mj)
    _emit_table(f"sweep_{kind}", table, json_out=json_out, csv_dir=csv_dir,
                json_dir=json_dir)
    print(service.manifest.summary())
    return 1 if failures else 0


def cmd_cache(action: str) -> int:
    from repro.exec import ResultCache

    cache = ResultCache()
    if action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats['root']} (format {stats['format']})")
        print(f"entries:    {stats['entries']}")
        print(f"size:       {stats['bytes'] / 1e6:.2f} MB")
        print(f"corrupt:    {stats['corrupt']} (quarantined)")
    else:
        removed = cache.clear()
        print(f"removed {removed} cached run(s) from {cache.base}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    _apply_guard_options(args)
    if args.command == "sweep":
        return cmd_sweep(args.kind, args.platforms, args.param,
                         csv_dir=args.csv_dir, json_dir=args.json_dir,
                         json_out=args.json, jobs=args.jobs,
                         no_cache=args.no_cache, timeout=args.timeout)
    if args.command == "cache":
        return cmd_cache(args.action)
    return cmd_run(args.experiments, args.scale, args.csv_dir,
                   plot=getattr(args, "plot", False), jobs=args.jobs,
                   no_cache=args.no_cache, timeout=args.timeout,
                   json_dir=args.json_dir, json_out=args.json,
                   profile=getattr(args, "profile", False))


if __name__ == "__main__":
    sys.exit(main())
