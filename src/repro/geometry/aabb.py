"""Axis-aligned bounding boxes, the BVH node primitive."""

from repro.geometry.vec import Vec3


class AABB:
    """Axis-aligned bounding box with inclusive bounds."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Vec3, hi: Vec3):
        self.lo = lo
        self.hi = hi

    @staticmethod
    def empty() -> "AABB":
        inf = float("inf")
        return AABB(Vec3(inf, inf, inf), Vec3(-inf, -inf, -inf))

    @staticmethod
    def around_point(p: Vec3, radius: float) -> "AABB":
        r = Vec3(radius, radius, radius)
        return AABB(p - r, p + r)

    def union(self, other: "AABB") -> "AABB":
        return AABB(self.lo.min_with(other.lo), self.hi.max_with(other.hi))

    def expand_point(self, p: Vec3) -> "AABB":
        return AABB(self.lo.min_with(p), self.hi.max_with(p))

    def contains_point(self, p: Vec3) -> bool:
        return (
            self.lo.x <= p.x <= self.hi.x
            and self.lo.y <= p.y <= self.hi.y
            and self.lo.z <= p.z <= self.hi.z
        )

    def contains_box(self, other: "AABB") -> bool:
        return (
            self.lo.x <= other.lo.x
            and self.lo.y <= other.lo.y
            and self.lo.z <= other.lo.z
            and self.hi.x >= other.hi.x
            and self.hi.y >= other.hi.y
            and self.hi.z >= other.hi.z
        )

    def centroid(self) -> Vec3:
        return (self.lo + self.hi) * 0.5

    def extent(self) -> Vec3:
        return self.hi - self.lo

    def longest_axis(self) -> int:
        e = self.extent()
        if e.x >= e.y and e.x >= e.z:
            return 0
        if e.y >= e.z:
            return 1
        return 2

    def surface_area(self) -> float:
        e = self.extent()
        if e.x < 0 or e.y < 0 or e.z < 0:
            return 0.0
        return 2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)

    def is_empty(self) -> bool:
        return self.lo.x > self.hi.x

    def __repr__(self) -> str:
        return f"AABB({self.lo!r}, {self.hi!r})"
