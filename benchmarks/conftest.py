"""Shared fixtures for the figure/table benchmarks.

Each benchmark regenerates one paper figure or table at the scale given
by ``REPRO_SCALE`` (smoke/small/large, default "small"), prints the
resulting table next to the paper's reported values, and appends it to
``benchmarks/results/`` as CSV for EXPERIMENTS.md.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, table):
        print()
        print(table.format())
        (RESULTS_DIR / f"{name}.csv").write_text(table.to_csv())
        return table

    return _save


@pytest.fixture(autouse=True, scope="session")
def _shared_run_cache():
    """Workload runs are cached across benches within one session."""
    from repro.harness import experiments
    yield
    experiments.clear_cache()
