"""Ray-tracing kernels: software traversal, RTA traceRay, TTA+ ports.

One thread traces one primary ray (plus any secondary rays its workload
profile prescribes) and then runs a shading block on the SIMT cores.
``build_rt_jobs`` lowers functional BVH visit traces into accelerator
steps for the three hardware design points; procedural (sphere)
geometry routes leaf tests to an intersection shader on the baseline
RTA and naive TTA+, and to the µop Ray-Sphere program on optimized
TTA+ (*WKND_PT).
"""

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.errors import ConfigurationError
from repro.gpu.isa import AccelCall, Compute
from repro.gpu.replay import launch_replayable, value_independent
from repro.kernels import common
from repro.kernels.common import epilogue, prologue
from repro.rta.traversal import Step, TraversalJob
from repro.trees.layout import NODE_STRIDE

#: scalarized slab test on the cores
_BOX_TEST_ALU = 14
#: scalarized Möller-Trumbore per primitive on the cores
_TRI_TEST_ALU = 28
#: one ray-sphere intersection-shader invocation
SPHERE_SHADER_INSTS = 70
#: shading block after a traversal completes (material + accumulate)
SHADE_ALU = 24


@dataclass
class RayTraceKernelArgs:
    """One launch: per-thread lists of traversal jobs (primary + bounces)."""

    jobs_per_thread: List[List[TraversalJob]]
    visits_per_thread: List[List[Any]] = field(default_factory=list)
    ray_buf: int = 0
    frame_buf: int = 0
    shade_insts: int = SHADE_ALU
    results: dict = field(default_factory=dict)
    #: workload-owned recording cache for gpu/replay.py
    stream_cache: dict = None


@launch_replayable
@value_independent
def rt_baseline_kernel(tid: int, args: RayTraceKernelArgs):
    """Software while-while BVH traversal on the SIMT cores (no RTA)."""
    yield from prologue(args.ray_buf + tid * 32, setup_alu=8)
    for bounce, visits in enumerate(args.visits_per_thread[tid]):
        base_tag = common.TAG_LOOP_HEAD + bounce * 100
        for visit in visits:
            yield Compute(common.LOOP_OVERHEAD_CONTROL, base_tag,
                          kind="control")
            yield from _load_at(visit.node.address, base_tag + 1)
            if visit.kind == "inner":
                yield Compute(_BOX_TEST_ALU, base_tag + 2, kind="alu")
                yield Compute(3, base_tag + 3, kind="control")
            else:
                yield Compute(_TRI_TEST_ALU * visit.tests, base_tag + 4,
                              kind="alu")
                yield Compute(2, base_tag + 5, kind="control")
        yield Compute(args.shade_insts, base_tag + 90, kind="alu")
    yield from epilogue(args.frame_buf + tid * 4)
    args.results[tid] = True


def _load_at(address: int, tag: int):
    yield Compute(common.FETCH_ADDR_ALU, tag, kind="alu")
    from repro.gpu.isa import Load
    yield Load(address, NODE_STRIDE, tag)


@launch_replayable
def rt_accel_kernel(tid: int, args: RayTraceKernelArgs):
    """traceRay per bounce, shading on the cores in between."""
    yield from prologue(args.ray_buf + tid * 32, setup_alu=8)
    result = None
    for bounce, job in enumerate(args.jobs_per_thread[tid]):
        result = yield AccelCall(job, tag=common.TAG_SETUP + 1 + bounce * 10)
        yield Compute(args.shade_insts, common.TAG_SETUP + 2 + bounce * 10,
                      kind="alu")
    yield from epilogue(args.frame_buf + tid * 4)
    args.results[tid] = result


_FLAVORS = ("rta", "ttaplus", "ttaplus_opt")


def build_rt_jobs(visits: Sequence, result: Any, query_id: int,
                  flavor: str = "rta", leaf_geometry: str = "triangle",
                  xforms: int = 0) -> TraversalJob:
    """Lower one ray's visit trace into a traversal job.

    ``leaf_geometry`` is "triangle" (fixed-function / µop Ray-Tri) or
    "sphere" (procedural: shader on rta/ttaplus, µop Ray-Sphere on
    ttaplus_opt).  ``xforms`` charges TLAS->BLAS ray transforms.
    """
    if flavor not in _FLAVORS:
        raise ConfigurationError(f"unknown ray-tracing flavor {flavor!r}")
    if leaf_geometry not in ("triangle", "sphere"):
        raise ConfigurationError(f"unknown geometry {leaf_geometry!r}")
    plus = flavor.startswith("ttaplus")
    inner_op = "uop:raybox" if plus else "box"
    xform_op = "uop:xform" if plus else "xform"
    steps: List[Step] = [Step(-1, 0, xform_op) for _ in range(xforms)]
    for visit in visits:
        if visit.kind == "inner":
            steps.append(Step(visit.node.address, NODE_STRIDE, inner_op))
        elif leaf_geometry == "triangle":
            leaf_op = "uop:raytri" if plus else "tri"
            steps.append(Step(visit.node.address, NODE_STRIDE, leaf_op,
                              count=visit.tests))
        elif flavor == "ttaplus_opt":
            steps.append(Step(visit.node.address, NODE_STRIDE,
                              "uop:raysphere", count=visit.tests))
        else:  # sphere geometry without the optimization: shader bounce
            steps.append(Step(visit.node.address, NODE_STRIDE, "shader",
                              count=visit.tests,
                              shader_insts=SPHERE_SHADER_INSTS))
    return TraversalJob(query_id, steps, result)
