"""Experiment harness: one entry point per paper figure/table.

``repro.harness.experiments`` exposes ``fig01`` ... ``fig20`` and
``table1``/``table3``/``table4`` functions; each runs the relevant
workloads on the relevant platforms at a configurable scale and returns
a :class:`~repro.harness.results.Table` shaped like the paper's figure,
with the paper's reported values alongside for comparison.
"""

from repro.harness.results import Table, geomean
from repro.harness.runner import (
    RunResult,
    run_btree,
    run_knn,
    run_lumibench,
    run_nbody,
    run_rtnn,
    run_rtree,
    run_wknd,
    scaled_config_for,
)

__all__ = [
    "Table",
    "geomean",
    "RunResult",
    "run_btree",
    "run_nbody",
    "run_rtnn",
    "run_rtree",
    "run_knn",
    "run_wknd",
    "run_lumibench",
    "scaled_config_for",
]
