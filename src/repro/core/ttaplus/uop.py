"""Micro-operations: the unit of programmability in TTA+.

A µop names the OP unit it executes on; a program is an ordered list of
µops executed *serially* — each hand-off crosses the interconnect to
the next unit's input port, carrying the ray/node data and intermediate
values (the paper sizes the crossbar at 120B for exactly this payload:
64B node + 32B ray + 24B intermediates).
"""

from typing import NamedTuple

from repro.errors import ProgramError

#: OP unit type names (Table I rows)
UNIT_TYPES = (
    "vec3_addsub",
    "mul",
    "rcp",
    "cross",
    "dot",
    "vec3_cmp",
    "minmax",
    "maxmin",
    "logical",
    "sqrt",
    "rxform",
)


class Uop(NamedTuple):
    """One micro-operation: execute on ``unit``."""

    unit: str

    @staticmethod
    def validate(unit: str) -> "Uop":
        if unit not in UNIT_TYPES:
            raise ProgramError(f"unknown OP unit type {unit!r}")
        return Uop(unit)
