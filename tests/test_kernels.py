"""Tests for the software kernels and job builders."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import GPU, GPUConfig
from repro.kernels.btree_search import build_btree_jobs, btree_baseline_kernel
from repro.kernels.nbody_walk import build_nbody_jobs, build_warp_traces
from repro.kernels.radius_search import build_radius_jobs, radius_query
from repro.kernels.ray_trace import build_rt_jobs
from repro.workloads import (
    make_btree_workload,
    make_nbody_workload,
    make_rtnn_workload,
)

CFG = GPUConfig(n_sms=2)


class TestBTreeKernel:
    def test_baseline_kernel_produces_correct_results(self):
        wl = make_btree_workload("btree", n_keys=512, n_queries=128, seed=5)
        args = wl.kernel_args()
        GPU(CFG).launch(btree_baseline_kernel, wl.n_queries, args=args)
        assert [args.results[i] for i in range(128)] == wl.golden

    def test_jobs_follow_search_paths(self):
        wl = make_btree_workload("btree", n_keys=512, n_queries=32, seed=6)
        jobs = build_btree_jobs(wl.tree, wl.queries, flavor="tta")
        for qid, job in enumerate(jobs):
            trace = wl.tree.search(wl.queries[qid])
            assert len(job.steps) == len(trace.path)
            assert job.result == trace.found
            for step, node in zip(job.steps, trace.path):
                assert step.address == node.address
                assert step.op == "query_key"

    def test_ttaplus_jobs_distinguish_leaf(self):
        wl = make_btree_workload("bplus", n_keys=512, n_queries=16, seed=7)
        jobs = build_btree_jobs(wl.tree, wl.queries, flavor="ttaplus")
        for job in jobs:
            assert job.steps[-1].op == "uop:btree_leaf"
            for step in job.steps[:-1]:
                assert step.op == "uop:btree_inner"

    def test_rta_flavor_rejected(self):
        wl = make_btree_workload("btree", n_keys=64, n_queries=4)
        with pytest.raises(ConfigurationError):
            build_btree_jobs(wl.tree, wl.queries, flavor="rta")


class TestNBodyKernel:
    def test_warp_traces_are_union_walks(self):
        wl = make_nbody_workload(n_bodies=128, dims=2, seed=8)
        traces = build_warp_traces(wl.tree, warp_size=32)
        assert len(traces) == 4
        # The union walk must visit at least as many nodes as any lane.
        for w, trace in enumerate(traces):
            union_nodes = {id(e.node) for e in trace}
            for body in wl.tree.bodies[w * 32:(w + 1) * 32]:
                lane_nodes = {id(e.node)
                              for e in wl.tree.force_on(body).visits}
                assert lane_nodes <= union_nodes

    def test_tta_jobs_report_interactions(self):
        wl = make_nbody_workload(n_bodies=64, dims=3, seed=9)
        jobs, interactions = build_nbody_jobs(wl.tree, flavor="tta")
        assert len(jobs) == len(interactions) == 64
        for job, n in zip(jobs, interactions):
            assert n > 0
            assert all(s.op in ("point_dist",) for s in job.steps)

    def test_ttaplus_jobs_use_uops(self):
        wl = make_nbody_workload(n_bodies=64, dims=3, seed=9)
        jobs, interactions = build_nbody_jobs(wl.tree, flavor="ttaplus")
        assert interactions == []
        ops = {s.op for job in jobs for s in job.steps}
        assert ops == {"uop:nbody_inner", "uop:nbody_leaf"}

    def test_bad_flavor_rejected(self):
        wl = make_nbody_workload(n_bodies=16, dims=2)
        with pytest.raises(ConfigurationError):
            build_nbody_jobs(wl.tree, flavor="rta")


class TestRadiusKernel:
    def test_radius_query_matches_brute_force(self):
        wl = make_rtnn_workload(n_points=512, n_queries=32, radius=1.5,
                                seed=10)
        for q in wl.queries[:16]:
            trace = radius_query(wl.bvh, q, wl.radius)
            assert trace.hits == wl.golden(q)

    def test_flavors_differ_only_in_ops(self):
        wl = make_rtnn_workload(n_points=256, n_queries=8, seed=11)
        by_flavor = {f: build_radius_jobs(wl.bvh, wl.queries, wl.radius,
                                          flavor=f)
                     for f in ("rta", "tta", "ttaplus", "ttaplus_opt")}
        for qid in range(8):
            lengths = {len(by_flavor[f][qid].steps) for f in by_flavor}
            assert len(lengths) == 1, "same traversal, same step count"
            assert by_flavor["rta"][qid].result == \
                by_flavor["ttaplus_opt"][qid].result
        assert any(s.op == "shader" for s in by_flavor["rta"][0].steps)
        assert any(s.op == "point_dist" for s in by_flavor["tta"][0].steps)
        assert any(s.op == "uop:rtnn_leaf"
                   for s in by_flavor["ttaplus_opt"][0].steps)

    def test_unknown_flavor(self):
        wl = make_rtnn_workload(n_points=64, n_queries=2)
        with pytest.raises(ConfigurationError):
            build_radius_jobs(wl.bvh, wl.queries, wl.radius, flavor="x")


class TestRayTraceJobs:
    def visits(self):
        from repro.workloads import make_wknd_workload
        wl = make_wknd_workload(width=4, height=4, n_spheres=40, bounces=1)
        for traces in wl.visits_per_thread:
            if any(v.kind == "leaf" for v in traces[0]):
                return traces[0]
        raise AssertionError("no ray reached a leaf")

    def test_sphere_geometry_shader_on_rta(self):
        job = build_rt_jobs(self.visits(), True, 0, flavor="rta",
                            leaf_geometry="sphere")
        leaf_ops = {s.op for s in job.steps if s.op != "box"}
        assert leaf_ops <= {"shader"}

    def test_sphere_geometry_uop_on_opt(self):
        job = build_rt_jobs(self.visits(), True, 0, flavor="ttaplus_opt",
                            leaf_geometry="sphere")
        assert any(s.op == "uop:raysphere" for s in job.steps)
        assert not any(s.op == "shader" for s in job.steps)

    def test_xforms_prepended(self):
        job = build_rt_jobs(self.visits(), True, 0, flavor="ttaplus",
                            leaf_geometry="sphere", xforms=2)
        assert [s.op for s in job.steps[:2]] == ["uop:xform", "uop:xform"]

    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            build_rt_jobs([], True, 0, flavor="warp9")
        with pytest.raises(ConfigurationError):
            build_rt_jobs([], True, 0, leaf_geometry="torus")
