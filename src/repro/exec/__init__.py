"""repro.exec — parallel experiment execution with a persistent cache.

Public surface:

* :class:`~repro.exec.spec.RunSpec` / :func:`~repro.exec.spec.make_spec`
  — declarative, content-addressable description of one simulation run;
* :class:`~repro.exec.cache.ResultCache` — on-disk memo of completed
  runs, keyed by spec SHA-256;
* :class:`~repro.exec.service.ExecutionService` — memo + cache + worker
  pool; executes figure point sets with ``--jobs N`` parallelism and a
  structured :class:`~repro.exec.service.RunManifest`;
* :func:`get_service` / :func:`configure` — the process-global service
  instance the harness routes every figure point through.

The default (unconfigured) service is serial and memory-only, which
preserves the historical behavior of calling figure functions directly
from tests and benchmarks; the CLI calls :func:`configure` to switch on
the disk cache and the worker pool.
"""

from typing import Optional

from repro.exec.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    build_fingerprint,
    build_key,
    default_cache_dir,
)
from repro.exec.pool import Outcome, ParallelRunner, run_serial
from repro.exec.service import (
    ExecutionService,
    RunManifest,
    RunRecord,
    StubResult,
)
from repro.exec.spec import KINDS, RunSpec, code_fingerprint, make_spec

__all__ = [
    "CACHE_DIR_ENV",
    "ExecutionService",
    "KINDS",
    "Outcome",
    "ParallelRunner",
    "ResultCache",
    "RunManifest",
    "RunRecord",
    "RunSpec",
    "StubResult",
    "build_fingerprint",
    "build_key",
    "code_fingerprint",
    "configure",
    "default_cache_dir",
    "get_service",
    "make_spec",
    "reset",
    "run_serial",
]

_service: Optional[ExecutionService] = None


def get_service() -> ExecutionService:
    """The process-global execution service (serial/memory-only default)."""
    global _service
    if _service is None:
        _service = ExecutionService()
    return _service


def configure(jobs: int = 1, cache_enabled: bool = True,
              cache_dir=None, timeout: Optional[float] = None,
              retries: int = 1, progress: bool = False) -> ExecutionService:
    """Install a freshly configured global service and return it."""
    global _service
    cache = ResultCache(cache_dir) if cache_enabled else None
    _service = ExecutionService(jobs=jobs, cache=cache, timeout=timeout,
                                retries=retries, progress=progress)
    return _service


def reset() -> None:
    """Drop the global service (next :func:`get_service` builds a default)."""
    global _service
    _service = None
