"""Fig. 14 — TTA sensitivity to warp-buffer size and intersection latency."""

from repro.harness import experiments


def test_fig14_sensitivity(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig14_sensitivity(scale), rounds=1, iterations=1)
    save_table("fig14_sensitivity", table)
    for variant in ("btree", "bstar", "bplus"):
        warp_rows = [r for r in table.rows
                     if r[0] == variant and r[1] == "warp_buffer"]
        by_warps = {r[2]: r[3] for r in warp_rows}
        # More warp-buffer entries -> more concurrency -> faster, with
        # saturation (paper: at 8 warps).
        assert by_warps[4] > by_warps[1], f"{variant}: no warp-buffer gain"
        assert by_warps[16] >= by_warps[8] * 0.85, \
            f"{variant}: regression past saturation"
        lat_rows = {r[2]: r[3] for r in table.rows
                    if r[0] == variant and r[1] == "isect_latency"}
        # Intersection latency is a second-order knob: even 10x latency
        # keeps a healthy speedup (paper: 2.25x/2.45x at 10x).
        assert lat_rows["10x(130cy)"] > 1.0, f"{variant}: 10x latency broke TTA"
        ratio = lat_rows["minmax-only(3cy)"] / lat_rows["10x(130cy)"]
        assert ratio < 2.5, f"{variant}: latency dominates, unlike Fig. 14"
