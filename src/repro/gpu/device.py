"""The whole GPU: SMs + memory hierarchy + kernel launch interface."""

import math
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import ConfigurationError
from repro.gpu.config import DEFAULT_CONFIG, GPUConfig
from repro.gpu.replay import (
    launch_replay_enabled,
    record_launch,
    replay_launch,
    warp_trace,
)
from repro.gpu.sm import SM
from repro.gpu.warp import Warp
from repro.guard import Guard
from repro.memsys.hierarchy import MemoryHierarchy
from repro.obs import EMPTY_METRICS, TimeSeries, active_tracer, build_metrics
from repro.sim import make_simulator
from repro.sim.stats import Counter

KernelFn = Callable[[int, Any], Generator]


class KernelStats:
    """Everything a kernel launch produces besides functional results.

    * ``warp_instructions`` — issued warp-level instructions by class
      ("alu", "control", "sfu", "mem", "tta"); Fig. 20's breakdown.
    * ``simt_efficiency`` — mean active-lane fraction per issued
      instruction; Fig. 1's left metric.
    * ``dram_utilization`` — DRAM busy fraction; Fig. 1/13's metric.
    """

    def __init__(self) -> None:
        self.cycles = 0.0
        self.warp_instructions = Counter()
        self.thread_instructions = Counter()
        self._simt_issues = 0
        self._simt_active = 0.0
        self.mem_sectors = 0
        self.accel_stats: Dict[str, Any] = {}
        self.memory: Dict[str, float] = {}
        self.l1_hit_rate = 0.0
        self.notes: Dict[str, Any] = {}
        #: repro.obs metrics snapshot, filled after the launch; the
        #: shared empty placeholder until then.
        self.metrics = EMPTY_METRICS

    # -- recording hooks used by SM -------------------------------------------
    def count_compute(self, kind: str, n: int, active: int, warp_size: int):
        self.warp_instructions.add(kind, n)
        self.thread_instructions.add(kind, n * active)

    def count_mem(self, active: int, warp_size: int, sectors: int,
                  hit_l1: bool):
        self.warp_instructions.add("mem", 1)
        self.thread_instructions.add("mem", active)
        self.mem_sectors += sectors

    def count_accel(self, active: int, warp_size: int):
        self.warp_instructions.add("tta", 1)
        self.thread_instructions.add("tta", active)

    def simt_issue(self, active: int, warp_size: int, n: int):
        self._simt_issues += n
        self._simt_active += (active / warp_size) * n

    # -- derived metrics ---------------------------------------------------------
    @property
    def simt_efficiency(self) -> float:
        if self._simt_issues == 0:
            return 1.0
        return self._simt_active / self._simt_issues

    @property
    def total_warp_instructions(self) -> float:
        return self.warp_instructions.total()

    @property
    def dram_utilization(self) -> float:
        return self.memory.get("dram_utilization", 0.0)

    def instruction_breakdown(self) -> Dict[str, float]:
        return self.warp_instructions.as_dict()

    def __repr__(self) -> str:
        return (
            f"KernelStats(cycles={self.cycles:.0f}, "
            f"insts={self.total_warp_instructions:.0f}, "
            f"simt_eff={self.simt_efficiency:.2f}, "
            f"dram_util={self.dram_utilization:.2f})"
        )


class GPU:
    """A fresh simulated GPU per launch (cold caches, zeroed stats).

    ``accelerator_factory(sm) -> accelerator`` attaches an RTA/TTA/TTA+
    model to every SM; kernels reach it by yielding
    :class:`~repro.gpu.isa.AccelCall` ops.
    """

    def __init__(self, config: GPUConfig = DEFAULT_CONFIG,
                 accelerator_factory=None):
        self.config = config
        self.accelerator_factory = accelerator_factory

    def launch(self, kernel: KernelFn, n_threads: int, args: Any = None,
               max_events: Optional[int] = None,
               guard=None) -> KernelStats:
        """Run ``kernel`` over ``n_threads`` threads to completion.

        ``guard`` overrides the ``$REPRO_GUARD``-derived watchdog for
        this launch: pass a :class:`repro.guard.Guard`, a
        :class:`repro.guard.GuardConfig`, or leave None to build one
        from the environment (``REPRO_GUARD=off`` disables it).
        """
        if n_threads <= 0:
            raise ConfigurationError("kernel needs at least one thread")
        cfg = self.config
        tracer = active_tracer()

        # Launch-level replay (gpu/replay.py): a marked kernel relaunched
        # over identical args on the fast engine is served straight from
        # its recording — same stats, same results, no simulation.  Only
        # engaged when nothing can observe the run from outside (no
        # tracer, no guard/fault overrides, no event cap).
        launch_cache = self._launch_cache(kernel, args, tracer, max_events,
                                          guard)
        launch_key = None
        if launch_cache is not None:
            launch_key = ("__launch__",
                          getattr(kernel, "__name__", "kernel"),
                          n_threads, cfg, self._accel_fingerprint())
            if launch_key[-1] is None:
                launch_cache = launch_key = None
            else:
                stats = replay_launch(launch_cache, launch_key, args)
                if stats is not None:
                    return stats

        sim = make_simulator()  # fast core, or $REPRO_SIM_CORE=legacy
        # The tracer must be on the simulator *before* the hierarchy,
        # SMs, and accelerators are built: they cache it at construction.
        sim.tracer = tracer
        if tracer is not None:
            tracer.begin_launch(getattr(kernel, "__name__", "kernel"))
        guard = Guard.resolve(guard)
        hierarchy = MemoryHierarchy(sim, cfg)
        if tracer is not None:
            # First-class DRAM bandwidth series (Fig. 13's substrate).
            hierarchy.dram.series = TimeSeries()
        stats = KernelStats()
        sms: List[SM] = [
            SM(sim, i, cfg, hierarchy, stats, self.accelerator_factory)
            for i in range(cfg.n_sms)
        ]

        # Value-independent kernels over a workload that carries a stream
        # cache are replayed from recorded warp traces (see gpu/replay.py);
        # the op-group sequence — and therefore every cycle and statistic
        # — is identical to running the generators.
        stream_cache = (getattr(args, "stream_cache", None)
                        if getattr(kernel, "value_independent", False)
                        else None)
        n_warps = math.ceil(n_threads / cfg.warp_size)
        for warp_id in range(n_warps):
            first = warp_id * cfg.warp_size
            thread_ids = range(first, min(first + cfg.warp_size, n_threads))
            if stream_cache is not None:
                trace = warp_trace(kernel, thread_ids, args, stream_cache,
                                   cfg.sector_size)
                for tid, value in trace.writes:
                    args.results[tid] = value
                sms[warp_id % cfg.n_sms].add_warp(trace)
            else:
                threads = [kernel(tid, args) for tid in thread_ids]
                sms[warp_id % cfg.n_sms].add_warp(Warp(warp_id, threads))

        if guard is not None:
            guard.attach(sim, sms=sms, hierarchy=hierarchy, stats=stats,
                         n_warps=n_warps)
        for sm in sms:
            sm.start()
        sim.run(max_events=max_events)
        if guard is not None:
            guard.finalize()

        stats.cycles = sim.now
        stats.memory = hierarchy.stats(sim.now)
        l1_acc = sum(sm.l1.accesses for sm in sms)
        l1_hits = sum(sm.l1.hits for sm in sms)
        stats.l1_hit_rate = l1_hits / l1_acc if l1_acc else 0.0
        accels = [sm.accelerator for sm in sms if sm.accelerator is not None]
        if accels:
            stats.accel_stats = self._merge_accel_stats(accels, sim.now)
        stats.notes["n_threads"] = n_threads
        stats.notes["n_warps"] = n_warps
        stats.metrics = build_metrics(stats, sms, hierarchy, sim.now, tracer)
        if tracer is not None:
            tracer.end_launch(sim.now)
        if launch_key is not None:
            record_launch(launch_cache, launch_key, args, stats)
        return stats

    def _launch_cache(self, kernel, args, tracer, max_events, guard):
        """The workload's cache dict iff this launch may be replayed."""
        if not getattr(kernel, "launch_replayable", False):
            return None
        if args is None or getattr(args, "stream_cache", None) is None:
            return None
        if tracer is not None or max_events is not None or guard is not None:
            return None
        if not launch_replay_enabled():
            return None
        return args.stream_cache

    def _accel_fingerprint(self):
        """Value identity of the accelerator configuration, or None.

        A factory without a ``replay_fingerprint`` (ad-hoc test
        factories, monkeypatched cores) cannot prove two launches build
        the same accelerator, so such launches are never replayed.
        """
        factory = self.accelerator_factory
        if factory is None:
            return ("simt",)
        return getattr(factory, "replay_fingerprint", None)

    @staticmethod
    def _merge_accel_stats(accels, end: float) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        contributors: Dict[str, int] = {}
        per_accel = [a.snapshot(end) for a in accels]
        for snap in per_accel:
            for key, value in snap.items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0.0) + value
                    contributors[key] = contributors.get(key, 0) + 1
        for key in list(merged):
            if key.endswith("_avg") or key.endswith("_util") or \
                    key.endswith("_mean"):
                # Rate-like metrics: average over the accelerators that
                # actually reported them (idle accelerators would skew
                # the mean toward zero).
                merged[key] /= contributors[key]
        merged["per_accel"] = per_accel
        return merged
