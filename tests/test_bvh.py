"""Unit and property tests for the BVH and two-level BVH."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry import Ray, Sphere, Triangle, Vec3
from repro.geometry.sphere import ray_sphere_intersect
from repro.geometry.triangle import ray_triangle_intersect
from repro.trees import BVH, Instance, TwoLevelBVH


def random_triangles(n, seed=0, span=10.0):
    rng = random.Random(seed)

    def v():
        return Vec3(rng.uniform(-span, span), rng.uniform(-span, span),
                    rng.uniform(-span, span))

    tris = []
    for i in range(n):
        base = v()
        tris.append(Triangle(base, base + Vec3(rng.uniform(0.1, 1), 0, 0),
                             base + Vec3(0, rng.uniform(0.1, 1), 0), prim_id=i))
    return tris


def random_rays(n, seed=1, span=12.0):
    rng = random.Random(seed)
    rays = []
    for _ in range(n):
        origin = Vec3(rng.uniform(-span, span), rng.uniform(-span, span),
                      rng.uniform(-span, span))
        direction = Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1),
                         rng.uniform(-1, 1))
        if direction.length_squared() < 1e-6:
            direction = Vec3(1, 0, 0)
        rays.append(Ray(origin, direction.normalized()))
    return rays


def brute_force_closest(ray, tris):
    best_t, best_id = math.inf, None
    for tri in tris:
        hit = ray_triangle_intersect(ray, tri)
        if hit is not None and hit.t < best_t:
            best_t, best_id = hit.t, tri.prim_id
    return best_t, best_id


class TestBVHBuild:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            BVH([])

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            BVH(random_triangles(4), method="bogus")

    @pytest.mark.parametrize("method", ["median", "sah"])
    def test_all_prims_reachable(self, method):
        tris = random_triangles(64)
        bvh = BVH(tris, method=method)
        found = set()

        def collect(node):
            if node.is_leaf:
                found.update(p.prim_id for p in bvh.leaf_prims(node))
            else:
                collect(node.left)
                collect(node.right)

        collect(bvh.root)
        assert found == set(range(64))

    @pytest.mark.parametrize("method", ["median", "sah"])
    def test_child_bounds_contained_in_parent(self, method):
        bvh = BVH(random_triangles(100, seed=3), method=method)

        def check(node):
            if not node.is_leaf:
                assert node.bounds.contains_box(node.left.bounds)
                assert node.bounds.contains_box(node.right.bounds)
                check(node.left)
                check(node.right)
            else:
                for prim in bvh.leaf_prims(node):
                    assert node.bounds.contains_box(prim.bounds())

        check(bvh.root)

    def test_leaf_size_respected(self):
        bvh = BVH(random_triangles(200, seed=4), max_leaf_size=4)
        for node in bvh.nodes():
            if node.is_leaf:
                assert node.prim_count <= 4

    def test_node_count_matches_nodes_list(self):
        bvh = BVH(random_triangles(77, seed=5))
        assert bvh.node_count == len(bvh.nodes())

    def test_single_primitive(self):
        bvh = BVH(random_triangles(1))
        assert bvh.root.is_leaf
        assert bvh.node_count == 1

    def test_sah_no_worse_node_count_blowup(self):
        tris = random_triangles(256, seed=6)
        sah = BVH(tris, method="sah")
        med = BVH(tris, method="median")
        assert sah.node_count <= med.node_count * 2


class TestBVHTraversal:
    def test_closest_matches_brute_force(self):
        tris = random_triangles(128, seed=7)
        bvh = BVH(tris)
        for ray in random_rays(60, seed=8):
            result = bvh.traverse(ray, ray_triangle_intersect)
            bf_t, bf_id = brute_force_closest(ray, tris)
            assert result.closest_prim == bf_id
            if bf_id is not None:
                assert result.closest_t == pytest.approx(bf_t)

    def test_any_mode_stops_after_first_hit_leaf(self):
        tris = random_triangles(128, seed=9)
        bvh = BVH(tris)
        for ray in random_rays(40, seed=10):
            result = bvh.traverse(ray, ray_triangle_intersect, mode="any")
            bf_t, bf_id = brute_force_closest(ray, tris)
            assert (len(result.all_hits) > 0) == (bf_id is not None)

    def test_all_mode_superset_of_closest(self):
        tris = random_triangles(64, seed=11)
        bvh = BVH(tris)
        for ray in random_rays(30, seed=12):
            every = bvh.traverse(ray, ray_triangle_intersect, mode="all")
            bf_t, bf_id = brute_force_closest(ray, tris)
            if bf_id is not None:
                assert bf_id in every.all_hits

    def test_visit_trace_contains_root(self):
        bvh = BVH(random_triangles(32, seed=13))
        ray = random_rays(1, seed=14)[0]
        result = bvh.traverse(ray, ray_triangle_intersect)
        assert result.visits[0].node is bvh.root

    def test_bad_mode_rejected(self):
        bvh = BVH(random_triangles(4))
        with pytest.raises(ConfigurationError):
            bvh.traverse(random_rays(1)[0], ray_triangle_intersect, mode="x")

    def test_miss_everything(self):
        tris = random_triangles(16, seed=15, span=1.0)
        bvh = BVH(tris)
        ray = Ray(Vec3(100, 100, 100), Vec3(1, 0, 0))
        result = bvh.traverse(ray, ray_triangle_intersect)
        assert result.closest_prim is None
        assert math.isinf(result.closest_t)
        # Root test fails, traversal does no more work.
        assert len(result.visits) == 1


class TestTwoLevel:
    def build(self):
        spheres = [Sphere(Vec3(x, 0, 0), 0.4, prim_id=x) for x in range(4)]
        blas = BVH(spheres, max_leaf_size=1)
        instances = [
            Instance(blas, translation=Vec3(0, 0, 0), instance_id=0),
            Instance(blas, translation=Vec3(0, 10, 0), instance_id=1),
            Instance(blas, translation=Vec3(0, 0, 10), scale=2.0, instance_id=2),
        ]
        return TwoLevelBVH(instances)

    def test_hits_correct_instance(self):
        tl = self.build()
        ray = Ray(Vec3(2, 10, -5), Vec3(0, 0, 1))
        result = tl.trace(ray, ray_sphere_intersect)
        assert result.hit is not None
        assert result.hit.instance_id == 1
        assert result.hit.prim_id == 2

    def test_scaled_instance_hit_distance_in_world_units(self):
        tl = self.build()
        # Instance 2 is scaled 2x: sphere prim 0 has world radius 0.8 at z=10.
        ray = Ray(Vec3(0, 0, 5), Vec3(0, 0, 1))
        result = tl.trace(ray, ray_sphere_intersect)
        assert result.hit is not None
        assert result.hit.instance_id == 2
        assert result.hit.t == pytest.approx(5 - 0.8)

    def test_xform_count_positive_on_hit(self):
        tl = self.build()
        ray = Ray(Vec3(2, 10, -5), Vec3(0, 0, 1))
        result = tl.trace(ray, ray_sphere_intersect)
        assert result.xforms >= 1

    def test_miss_returns_none(self):
        tl = self.build()
        ray = Ray(Vec3(100, 100, 100), Vec3(0, 1, 0))
        assert tl.trace(ray, ray_sphere_intersect).hit is None

    def test_empty_instances_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoLevelBVH([])

    def test_instance_bad_scale_rejected(self):
        blas = BVH(random_triangles(2))
        with pytest.raises(ConfigurationError):
            Instance(blas, scale=0.0)


@given(st.integers(min_value=1, max_value=100),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_property_bvh_closest_equals_brute_force(n, seed):
    tris = random_triangles(n, seed=seed)
    bvh = BVH(tris)
    for ray in random_rays(5, seed=seed + 1):
        result = bvh.traverse(ray, ray_triangle_intersect)
        bf_t, bf_id = brute_force_closest(ray, tris)
        assert result.closest_prim == bf_id
