#!/usr/bin/env python3
"""Galaxy simulation: Barnes-Hut N-Body with accelerated tree walks.

Builds a clustered 3D galaxy, runs leapfrog integration steps where the
force computation's tree traversal is offloaded (per the paper's N-Body
evaluation), and reports both physics quality (Barnes-Hut vs direct
summation error) and simulated-hardware speedups, including the
kernel-fusion optimization of §V-A.

Run:  python examples/galaxy_simulation.py
"""

from repro.geometry.vec import Vec3
from repro.harness.runner import run_nbody, scaled_config_for
from repro.trees.octree import BarnesHutTree, make_body
from repro.workloads import make_nbody_workload

N_BODIES = 1024
DT = 0.01


def leapfrog_step(tree: BarnesHutTree, dt: float) -> BarnesHutTree:
    """One kick-drift integration step; rebuilds the tree afterwards."""
    new_bodies = []
    for body in tree.bodies:
        acc = tree.force_on(body).acceleration
        vel = body.vel + acc * dt
        pos = body.position + vel * dt
        new_bodies.append(make_body(pos, body.mass, body.body_id, vel=vel))
    return BarnesHutTree(new_bodies, dims=tree.dims, theta=tree.theta,
                         softening=tree.softening)


def main() -> None:
    wl = make_nbody_workload(n_bodies=N_BODIES, dims=3, seed=11, theta=0.6)
    cfg = scaled_config_for(wl.image.size_bytes)

    # Physics quality: Barnes-Hut against direct summation.
    worst = 0.0
    for body in wl.tree.bodies[:32]:
        approx = wl.tree.force_on(body).acceleration
        exact = wl.tree.direct_force_on(body)
        worst = max(worst, (approx - exact).length()
                    / max(exact.length(), 1e-12))
    print(f"Barnes-Hut force error vs direct summation (theta=0.6): "
          f"worst {worst:.1%} over 32 sampled bodies")

    # Hardware comparison for the force-computation kernel.
    base = run_nbody(wl, "gpu", config=cfg)
    tta = run_nbody(wl, "tta", config=cfg)
    plus = run_nbody(wl, "ttaplus", config=cfg)
    fused = run_nbody(wl, "ttaplus", config=cfg, fused_post_insts=120)
    base_fused = run_nbody(wl, "gpu", config=cfg, fused_post_insts=120)
    print(f"baseline GPU : {base.cycles:9.0f} cycles "
          f"(SIMT eff {base.simt_efficiency:.2f} — warp-voting walk)")
    print(f"TTA          : {tta.cycles:9.0f} cycles "
          f"({tta.speedup_over(base):.2f}x)")
    print(f"TTA+         : {plus.cycles:9.0f} cycles "
          f"({plus.speedup_over(base):.2f}x)")
    print(f"TTA+ fused   : {fused.cycles:9.0f} cycles "
          f"({base_fused.cycles / fused.cycles:.2f}x incl. post-processing)")

    # A few real integration steps to show the library end to end.
    tree = wl.tree
    momentum0 = Vec3()
    for body in tree.bodies:
        momentum0 = momentum0 + body.vel * body.mass
    for step in range(3):
        tree = leapfrog_step(tree, DT)
    momentum1 = Vec3()
    for body in tree.bodies:
        momentum1 = momentum1 + body.vel * body.mass
    print(f"integrated 3 leapfrog steps; |momentum drift| = "
          f"{(momentum1 - momentum0).length():.3e}")


if __name__ == "__main__":
    main()
