"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

import repro.exec as exec_mod
from repro.__main__ import (
    EXPERIMENTS,
    build_parser,
    cmd_list,
    cmd_run,
    main,
)


@pytest.fixture(autouse=True)
def _hermetic_exec(tmp_path, monkeypatch):
    """Point the CLI's disk cache at a temp dir and isolate the global
    service, so CLI tests neither read nor pollute ``~/.cache``."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    exec_mod.reset()
    yield
    exec_mod.reset()


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig13", "fig12", "--scale", "smoke",
             "--csv-dir", str(tmp_path)])
        assert args.experiments == ["fig13", "fig12"]
        assert args.scale == "smoke"
        assert args.jobs == 1 and not args.no_cache and not args.json

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig13", "--scale", "huge"])

    def test_scale_default_honors_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "large")
        args = build_parser().parse_args(["run", "fig13"])
        assert args.scale == "large"
        monkeypatch.delenv("REPRO_SCALE")
        args = build_parser().parse_args(["run", "fig13"])
        assert args.scale == "small"

    def test_exec_options(self):
        args = build_parser().parse_args(
            ["run", "fig12", "--jobs", "4", "--no-cache",
             "--timeout", "30"])
        assert args.jobs == 4 and args.no_cache and args.timeout == 30.0

    def test_sweep_and_cache_commands_parse(self):
        args = build_parser().parse_args(
            ["sweep", "btree", "--param", "n_keys=1024,2048",
             "--platforms", "gpu,tta", "--jobs", "2"])
        assert args.command == "sweep" and args.kind == "btree"
        assert args.param == ["n_keys=1024,2048"]
        args = build_parser().parse_args(["cache", "stats"])
        assert args.command == "cache" and args.action == "stats"

    def test_campaign_commands_parse(self, tmp_path):
        args = build_parser().parse_args(
            ["campaign", "run", "table.json", "--workers", "4",
             "--dir", str(tmp_path), "--quiet"])
        assert args.command == "campaign" and args.campaign_cmd == "run"
        assert args.workers == 4 and args.quiet
        args = build_parser().parse_args(
            ["campaign", "worker", "--join", str(tmp_path),
             "--max-points", "3"])
        assert args.campaign_cmd == "worker" and args.max_points == 3
        args = build_parser().parse_args(
            ["campaign", "status", str(tmp_path), "--json"])
        assert args.campaign_cmd == "status" and args.json
        args = build_parser().parse_args(
            ["campaign", "expand", "table.json"])
        assert args.campaign_cmd == "expand"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])  # subcommand required

    def test_bench_and_prune_parse(self):
        args = build_parser().parse_args(
            ["bench", "a.json", "b.json", "--check",
             "--threshold", "15", "--noise-factor", "2.5"])
        assert args.command == "bench" and args.check
        assert args.threshold == 15.0 and args.noise_factor == 2.5
        args = build_parser().parse_args(
            ["cache", "prune", "--stale-leases"])
        assert args.action == "prune" and args.stale_leases


class TestCommands:
    def test_list_prints_everything(self, capsys):
        assert cmd_list() == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert cmd_run(["fig99"], "smoke", None) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_writes_csv(self, tmp_path, capsys):
        from repro.harness import experiments
        experiments.clear_cache()
        code = main(["run", "fig13", "--scale", "smoke",
                     "--csv-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out
        assert "[exec] total=" in out
        csv = (tmp_path / "fig13.csv").read_text()
        assert csv.startswith("workload,")
        experiments.clear_cache()

    def test_second_run_resolves_from_cache(self, capsys):
        assert main(["run", "fig13", "--scale", "smoke", "--jobs", "2"]) == 0
        first = capsys.readouterr().out
        assert "executed=0" not in first
        assert main(["run", "fig13", "--scale", "smoke", "--jobs", "2"]) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second

    def test_json_output_round_trips_floats(self, tmp_path, capsys):
        code = main(["run", "fig13", "--scale", "smoke", "--json",
                     "--json-dir", str(tmp_path)])
        assert code == 0
        data = json.loads((tmp_path / "fig13.json").read_text())
        assert data["headers"][0] == "workload"
        # Full float precision: values are raw reprs, not %.3g strings.
        floats = [c for row in data["rows"] for c in row
                  if isinstance(c, float) and c == c and c != 0]
        assert any(len(repr(f)) > 6 for f in floats)
        # stdout must be pure JSON (pipeable into jq); the [exec]
        # manifest/timing chatter goes to stderr under --json.
        captured = capsys.readouterr()
        assert json.loads(captured.out) == data
        assert "[exec]" in captured.err

    def test_cache_stats_and_clear(self, capsys):
        assert main(["run", "fig13", "--scale", "smoke"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "entries:    0" not in out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_sweep_runs_and_reports(self, capsys):
        code = main(["sweep", "btree", "--param", "n_keys=256,512",
                     "--param", "n_queries=64", "--platforms", "gpu,tta"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep — btree" in out
        assert out.count("n_keys=256") == 2  # one row per platform
        assert "[exec] total=4" in out

    def test_sweep_rejects_bad_platform(self, capsys):
        assert main(["sweep", "wknd", "--platforms", "gpu"]) == 2
        assert "invalid platform" in capsys.readouterr().err

    def test_all_expands(self):
        # 'all' must expand to exactly the registered experiments.
        names = sorted(EXPERIMENTS)
        assert "fig12" in names and len(names) == 12


class TestServingCLI:
    """``repro serve`` / ``repro loadtest`` and the grouped --help."""

    def test_help_groups_subcommands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "command groups:" in out
        assert "serving (resident indexes, repro.serve):" in out
        for command in ("run", "sweep", "trace", "serve", "loadtest",
                        "cache"):
            assert command in out

    def test_loadtest_parses(self):
        args = build_parser().parse_args(
            ["loadtest", "--platform", "gpu,tta", "--qps", "100,200",
             "--mix", "point=2,knn=1", "--arrival", "burst",
             "--max-batch", "16", "--max-wait-ms", "1.5"])
        assert args.command == "loadtest"
        assert args.platform == "gpu,tta" and args.qps == "100,200"
        assert args.max_batch == 16 and args.max_wait_ms == 1.5

    def test_loadtest_rejects_bad_inputs(self, capsys):
        assert main(["loadtest", "--platform", "cpu"]) == 2
        assert "invalid platform" in capsys.readouterr().err
        assert main(["loadtest", "--qps", "fast"]) == 2
        assert "bad --qps" in capsys.readouterr().err

    @pytest.mark.parametrize("argv, fragment", [
        (["loadtest", "--qps", "-5"], "--qps"),
        (["loadtest", "--shards", "0"], "--shards"),
        (["loadtest", "--max-batch", "0"], "--max-batch"),
        (["loadtest", "--max-wait-ms", "-1"], "--max-wait-ms"),
        (["loadtest", "--deadline-ms", "0"], "--deadline-ms"),
        (["loadtest", "--duration", "0"], "--duration"),
        (["loadtest", "--warmup", "-0.1"], "--warmup"),
        (["loadtest", "--arrival", "burst", "--burst-size", "0"],
         "--burst-size"),
        (["loadtest", "--mix", "point=oops"], "--mix"),
        (["loadtest", "--mix", "zorp"], "zorp"),
        (["loadtest", "--mix", "point=-1"], "--mix"),
        (["loadtest", "--shards", "-2"], "--shards"),
        (["serve", "--mix", "point=0"], "--mix"),
        (["loadtest", "--write-mix", "zorp=1"], "--write-mix"),
        (["loadtest", "--write-mix", "insert=oops"], "--write-mix"),
        (["loadtest", "--write-mix", "insert=-5"], "--write-mix"),
        (["loadtest", "--rebuild-policy", "sometimes"],
         "--rebuild-policy"),
        (["loadtest", "--rebuild-policy", "writes:0"],
         "--rebuild-policy"),
        (["loadtest", "--write-mix", "insert=1",
          "--refit-threshold", "0"], "--refit-threshold"),
    ])
    def test_validation_catches_bad_serve_args(self, argv, fragment,
                                               capsys):
        """Satellite: malformed serving options die up front with a
        friendly message naming the offending flag — never a traceback
        mid-loadtest."""
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert fragment in err
        assert "Traceback" not in err

    def test_resilience_flags_parse_and_export(self, monkeypatch):
        # _apply_resilience_options writes os.environ directly (the CLI
        # is a one-shot process); setenv first so monkeypatch restores.
        monkeypatch.setenv("REPRO_RESILIENCE", "")
        monkeypatch.setenv("REPRO_RESILIENCE_DEADLINE_MS", "")
        args = build_parser().parse_args(
            ["loadtest", "--resilience", "shed", "--deadline-ms", "20"])
        assert args.resilience == "shed" and args.deadline_ms == 20.0
        from repro.__main__ import _apply_resilience_options
        import os
        _apply_resilience_options(args)
        assert os.environ["REPRO_RESILIENCE"] == "shed"
        assert os.environ["REPRO_RESILIENCE_DEADLINE_MS"] == "20.0"

    def test_resilience_mode_rejects_unknown_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--resilience", "yolo"])

    def test_loadtest_shed_mode_reports_slo(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESILIENCE", "")   # restore after leak
        code = main(["loadtest", "--platform", "tta", "--qps", "400",
                     "--duration", "0.02", "--warmup", "0",
                     "--mix", "point", "--resilience", "shed"])
        assert code == 0
        captured = capsys.readouterr()
        assert "resilience=shed" in captured.out
        assert "goodput" in captured.out
        assert "[slo]" in captured.err

    def test_loadtest_emits_curves_json(self, tmp_path, capsys):
        out_path = tmp_path / "curves.json"
        code = main(["loadtest", "--platform", "gpu,tta,ttaplus",
                     "--qps", "400,1600", "--duration", "0.05",
                     "--warmup", "0.01", "--mix", "point",
                     "--out", str(out_path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "loadtest —" in captured.out
        assert "p99_ms" in captured.out
        curves = json.loads(out_path.read_text())
        assert sorted(curves["curves"]) == ["gpu", "tta", "ttaplus"]
        for platform in ("gpu", "tta", "ttaplus"):
            rows = curves["curves"][platform]
            assert [row["qps"] for row in rows] == [400.0, 1600.0]
            for row in rows:
                assert row["served"] > 0
                assert {"p50_ms", "p95_ms", "p99_ms"} <= \
                    set(row["latency_ms"])

    def test_write_mix_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.write_mix is None
        assert args.rebuild_policy == "writes:256"
        assert args.refit_threshold == 64
        args = build_parser().parse_args(
            ["loadtest", "--write-mix", "insert=120,delete=60",
             "--rebuild-policy", "quality:1.3", "--refit-threshold",
             "32"])
        assert args.write_mix == "insert=120,delete=60"
        assert args.rebuild_policy == "quality:1.3"
        assert args.refit_threshold == 32

    def test_loadtest_write_mix_runs(self, capsys):
        """Mixed read/write loadtest end to end: exit 0, the latency
        table still prints, and the mutation summary reaches stderr."""
        code = main(["loadtest", "--platform", "tta", "--qps", "400",
                     "--duration", "0.05", "--warmup", "0.01",
                     "--mix", "point",
                     "--write-mix", "insert=200,delete=100",
                     "--rebuild-policy", "writes:48",
                     "--refit-threshold", "16"])
        assert code == 0
        captured = capsys.readouterr()
        assert "p99_ms" in captured.out
        assert "[mutation]" in captured.err
        assert "point:" in captured.err

    def test_loadtest_reuses_build_cache(self, capsys):
        argv = ["loadtest", "--platform", "tta", "--qps", "400",
                "--duration", "0.02", "--warmup", "0", "--mix", "point"]
        assert main(argv) == 0
        first = capsys.readouterr().err
        assert "index built" in first
        assert main(argv) == 0
        assert "index cached" in capsys.readouterr().err

    def test_serve_answers_jsonl_queries(self, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        queries.write_text(
            '{"class": "point", "qid": 0}\n'
            '{"class": "point", "qid": 1}\n'
            '# a comment line\n'
            '{"class": "point", "qid": 2}\n')
        out_path = tmp_path / "responses.jsonl"
        code = main(["serve", "--platform", "tta", "--mix", "point",
                     "--input", str(queries), "--out", str(out_path),
                     "--max-wait-ms", "5"])
        assert code == 0
        responses = [json.loads(line)
                     for line in out_path.read_text().splitlines()]
        assert [r["qid"] for r in responses] == [0, 1, 2]
        assert all(isinstance(r["result"], bool) for r in responses)
        assert all(r["engine"] == "fast" for r in responses)
        assert "3 queries" in capsys.readouterr().err

    def test_serve_rejects_malformed_line(self, tmp_path, capsys):
        queries = tmp_path / "bad.jsonl"
        queries.write_text('{"qid": 3}\n')
        code = main(["serve", "--mix", "point", "--input", str(queries)])
        assert code == 2
        assert "bad query" in capsys.readouterr().err

    def test_cache_stats_reports_builds(self, capsys):
        assert main(["loadtest", "--platform", "tta", "--qps", "400",
                     "--duration", "0.02", "--warmup", "0",
                     "--mix", "point"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "builds:" in out
        assert "builds:     0" not in out


class TestCampaignCLI:
    @pytest.fixture()
    def table(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text(json.dumps({
            "name": "clitest",
            "workloads": [{"kind": "btree",
                           "params": {"n_keys": [256, 512],
                                      "n_queries": 64}}],
            "platforms": ["gpu"],
            "reps": 1,
        }))
        return path

    def test_campaign_run_and_free_rerun(self, table, capsys):
        assert main(["campaign", "run", str(table), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "executed=2" in out and "unresolved=0" in out
        assert "result fingerprint" in out
        # The re-run touches no simulator: every point is skipped.
        assert main(["campaign", "run", str(table), "--quiet"]) == 0
        again = capsys.readouterr().out
        assert "this run: executed=0" in again

    def test_campaign_run_json_manifest(self, table, capsys):
        assert main(["campaign", "run", str(table), "--quiet",
                     "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["totals"]["points"] == 2
        assert manifest["result_fingerprint"]

    def test_campaign_expand_lists_points(self, table, capsys):
        assert main(["campaign", "expand", str(table)]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "btree[n_keys=256,n_queries=64]@gpu/default#r0" in out

    def test_campaign_worker_join_and_status(self, table, capsys):
        assert main(["campaign", "expand", str(table)]) == 0
        capsys.readouterr()
        # Materialize the directory, then join it as a lone worker.
        from repro.campaign import CampaignSpec, init_campaign

        directory = init_campaign(CampaignSpec.from_file(table))
        assert main(["campaign", "worker", "--join", str(directory),
                     "--id", "joiner", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "worker joiner" in out and "executed=2" in out
        assert main(["campaign", "status", str(directory)]) == 0
        assert "2/2 resolved" in capsys.readouterr().out

    def test_campaign_bad_table_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["campaign", "run", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_stats_shows_campaigns_and_prune(self, table, capsys):
        assert main(["campaign", "run", str(table), "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "campaigns:  1" in out
        assert main(["cache", "prune", "--stale-leases"]) == 0
        assert "stale campaign lease" in capsys.readouterr().out

    def test_bench_check_gates(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps({"g": {"fast_s": 1.0, "speedup": 8.0}}))
        cand.write_text(json.dumps({"g": {"fast_s": 1.0, "speedup": 8.0}}))
        assert main(["bench", str(base), str(cand), "--check"]) == 0
        assert "check passed" in capsys.readouterr().out
        cand.write_text(json.dumps({"g": {"fast_s": 1.5, "speedup": 8.0}}))
        assert main(["bench", str(base), str(cand), "--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION g.fast_s" in out and "CHECK FAILED" in out
        # Without --check a regression is reported but not fatal.
        assert main(["bench", str(base), str(cand)]) == 0

    def test_bench_json_output(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"g": {"fast_s": 1.0}}))
        assert main(["bench", str(base), str(base), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["compared"] == 1 and doc["regressions"] == []

    def test_bench_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["bench", str(tmp_path / "nope.json"),
                     str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_help_epilog_groups_campaigns(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "campaign run" in out and "bench" in out
