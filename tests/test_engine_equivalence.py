"""Differential tests: calendar-queue engine vs the seed heap engine.

The fast core (``repro.sim.engine.Simulator``) must preserve the legacy
heap engine's semantics exactly: same event interleaving (the heap's
``(time, seq)`` order), same signal wake-ups, same final clock.  These
tests interpret randomized process programs — generated as pure data
from seeded RNGs, no external property-testing dependency — on both
engines and require identical execution traces.
"""

import os

import pytest

import random

from repro.errors import SimulationError
from repro.sim import (
    HeapSimulator,
    Simulator,
    ceil_cycles,
    core_mode,
    make_simulator,
    scheduler_fingerprint,
)

N_MANUAL_SIGNALS = 3   # fired (at most once) by "fire" ops
N_TIMED_SIGNALS = 2    # fired by pre-scheduled fire_at events
N_SIGNALS = N_MANUAL_SIGNALS + N_TIMED_SIGNALS


def generate_program(rng: random.Random, depth: int = 0):
    """A process body as pure data: a list of op tuples."""
    ops = []
    for _ in range(rng.randint(2, 7)):
        roll = rng.random()
        if roll < 0.40:
            ops.append(("delay", rng.randint(0, 5)))
        elif roll < 0.60:
            ops.append(("wait", rng.randrange(N_SIGNALS)))
        elif roll < 0.80:
            ops.append(("fire", rng.randrange(N_MANUAL_SIGNALS),
                        rng.randint(0, 99)))
        elif roll < 0.90 and depth < 2:
            ops.append(("spawn", generate_program(rng, depth + 1)))
        else:
            ops.append(("call_after", rng.randint(0, 8), rng.randint(0, 999)))
    return ops


def generate_scenario(seed: int):
    """Top-level programs plus the timed fire_at schedule."""
    rng = random.Random(seed)
    programs = [generate_program(rng) for _ in range(rng.randint(2, 5))]
    fire_times = [rng.randint(1, 12) for _ in range(N_TIMED_SIGNALS)]
    return programs, fire_times


def run_scenario(sim, programs, fire_times):
    """Interpret a scenario on ``sim``; return the execution trace."""
    trace = []
    signals = [sim.signal() for _ in range(N_SIGNALS)]
    for i, t in enumerate(fire_times):
        signals[N_MANUAL_SIGNALS + i].fire_at(t, ("timed", i))

    def make_process(pid, ops):
        def body():
            for step, op in enumerate(ops):
                kind = op[0]
                trace.append((kind, pid, step, sim.now))
                if kind == "delay":
                    yield op[1]
                elif kind == "wait":
                    value = yield signals[op[1]]
                    trace.append(("woke", pid, step, sim.now, value))
                elif kind == "fire":
                    sig = signals[op[1]]
                    if not sig.fired:
                        sig.fire(op[2])
                elif kind == "spawn":
                    sim.spawn(make_process((pid, step), op[1])())
                elif kind == "call_after":
                    sim.call_after(
                        op[1],
                        lambda tag=op[2]: trace.append(("cb", tag, sim.now)))
            trace.append(("end", pid, sim.now))
        return body

    for pid, ops in enumerate(programs):
        sim.spawn(make_process(pid, ops)())
    end = sim.run()
    return trace, end


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_same_trace_and_final_time(self, seed):
        programs, fire_times = generate_scenario(seed)
        fast_trace, fast_end = run_scenario(Simulator(), programs, fire_times)
        ref_trace, ref_end = run_scenario(HeapSimulator(), programs,
                                          fire_times)
        assert fast_trace == ref_trace
        assert float(fast_end) == float(ref_end)

    def test_traces_are_nontrivial(self):
        # Guard against the generator degenerating into empty scenarios.
        total = 0
        for seed in range(40):
            programs, fire_times = generate_scenario(seed)
            trace, _ = run_scenario(Simulator(), programs, fire_times)
            total += len(trace)
        assert total > 40 * 10


class TestEndToEndEquivalence:
    """Full-platform check: both engines run the same quantized model."""

    @pytest.fixture(scope="class")
    def btree_wl(self):
        from repro.workloads import make_btree_workload
        return make_btree_workload("btree", n_keys=256, n_queries=128,
                                   seed=11)

    def _run(self, wl, platform, mode, monkeypatch):
        from repro.harness.runner import run_btree, scaled_config_for
        monkeypatch.setenv("REPRO_SIM_CORE", mode)
        cfg = scaled_config_for(wl.image.size_bytes)
        return run_btree(wl, platform, config=cfg)

    def test_baseline_gpu_cycles_identical(self, btree_wl, monkeypatch):
        fast = self._run(btree_wl, "gpu", "fast", monkeypatch)
        legacy = self._run(btree_wl, "gpu", "legacy", monkeypatch)
        # The SM path is shared generator code, quantized identically on
        # both engines: the clocks must agree exactly.
        assert float(fast.stats.cycles) == float(legacy.stats.cycles)
        assert fast.stats.memory == legacy.stats.memory

    def test_tta_cycles_close(self, btree_wl, monkeypatch):
        fast = self._run(btree_wl, "tta", "fast", monkeypatch)
        legacy = self._run(btree_wl, "tta", "legacy", monkeypatch)
        # The batched driver resumes jobs on cycle boundaries (the legacy
        # engine resumed them at exact float times), so sub-cycle drain
        # ordering may differ — but the analytic model is the same, and
        # the clocks must agree to a few percent.
        assert fast.stats.cycles == pytest.approx(legacy.stats.cycles,
                                                  rel=0.05)
        assert fast.stats.accel_stats["jobs_completed"] == \
            legacy.stats.accel_stats["jobs_completed"]


class TestMetricsEquivalence:
    """repro.obs metric parity between the fast and legacy engines.

    The metrics registry folds the same model counters on both engines,
    so the *set* of metric names must be identical, count-like metrics
    must match exactly, and rate-like metrics must agree to the same
    tolerance as the underlying clocks.
    """

    @pytest.fixture(scope="class")
    def btree_wl(self):
        from repro.workloads import make_btree_workload
        return make_btree_workload("btree", n_keys=256, n_queries=128,
                                   seed=11)

    def _run(self, wl, platform, mode, monkeypatch):
        from repro.harness.runner import run_btree, scaled_config_for
        monkeypatch.setenv("REPRO_SIM_CORE", mode)
        cfg = scaled_config_for(wl.image.size_bytes)
        return run_btree(wl, platform, config=cfg)

    def test_baseline_gpu_metrics_identical(self, btree_wl, monkeypatch):
        fast = self._run(btree_wl, "gpu", "fast", monkeypatch).metrics
        legacy = self._run(btree_wl, "gpu", "legacy", monkeypatch).metrics
        assert set(fast.names()) == set(legacy.names())
        for name in fast.names():
            assert fast.get(name) == legacy.get(name), name

    def test_tta_metrics_equivalent(self, btree_wl, monkeypatch):
        fast = self._run(btree_wl, "tta", "fast", monkeypatch).metrics
        legacy = self._run(btree_wl, "tta", "legacy", monkeypatch).metrics
        assert set(fast.names()) == set(legacy.names())
        # Count metrics are engine-independent (same traversal steps,
        # same ops); clocks and rates agree like the cycle counts do.
        assert fast.get("accel.jobs_completed") == \
            legacy.get("accel.jobs_completed")
        assert fast.get("rta.unit.query_key.ops") == \
            legacy.get("rta.unit.query_key.ops")
        assert fast.get("sim.warp_instructions") == \
            legacy.get("sim.warp_instructions")
        assert fast.get("sim.cycles") == \
            pytest.approx(legacy.get("sim.cycles"), rel=0.05)
        assert fast.get("memsys.dram.utilization") == \
            pytest.approx(legacy.get("memsys.dram.utilization"), rel=0.10)


class TestDegenerateEquivalence:
    """Degenerate traversal batches: both engines must terminate
    cleanly with identical functional results and matching stats."""

    @staticmethod
    def _launch_jobs(jobs, mode, monkeypatch, guard=None):
        from repro.gpu import GPU, AccelCall, GPUConfig
        from repro.rta.rta import make_rta_factory

        monkeypatch.setenv("REPRO_SIM_CORE", mode)
        out = {}

        def kernel(tid, args):
            r = yield AccelCall(jobs[tid], tag=0)
            args[tid] = r

        gpu = GPU(GPUConfig(n_sms=1),
                  accelerator_factory=make_rta_factory())
        stats = gpu.launch(kernel, len(jobs), args=out, guard=guard)
        return stats, out

    @staticmethod
    def _duplicate_jobs():
        from repro.rta.traversal import Step, TraversalJob
        steps = [Step(0, 64, "box"), Step(64, 64, "box")]
        return [TraversalJob(i, list(steps), i) for i in range(64)]

    @staticmethod
    def _all_miss_jobs():
        from repro.rta.traversal import Step, TraversalJob
        return [TraversalJob(i, [Step((i * 11 + s) << 20, 64, "box")
                                 for s in range(8)], i)
                for i in range(32)]

    @pytest.mark.parametrize("batch", ["duplicates", "all_miss"])
    def test_same_results_and_stats(self, batch, monkeypatch):
        jobs = (self._duplicate_jobs() if batch == "duplicates"
                else self._all_miss_jobs())
        fast, fast_out = self._launch_jobs(jobs, "fast", monkeypatch)
        legacy, legacy_out = self._launch_jobs(jobs, "legacy", monkeypatch)
        assert fast_out == legacy_out
        assert fast.accel_stats["jobs_completed"] == \
            legacy.accel_stats["jobs_completed"] == len(jobs)
        assert fast.accel_stats["node_fetches"] == \
            legacy.accel_stats["node_fetches"]
        assert float(fast.cycles) == pytest.approx(float(legacy.cycles),
                                                   rel=0.05)

    def test_max_cycles_aborts_on_both_engines(self, monkeypatch):
        from repro.errors import SimulationStallError
        from repro.guard import Guard, GuardConfig
        from repro.rta.traversal import Step, TraversalJob

        jobs = [TraversalJob(i, [Step(64 * s, 64, "box")
                                 for s in range(50)], i)
                for i in range(32)]
        for mode in ("fast", "legacy"):
            with pytest.raises(SimulationStallError) as err:
                self._launch_jobs(jobs, mode, monkeypatch,
                                  guard=Guard(GuardConfig(max_cycles=100)))
            assert err.value.diagnostics["reason"] == "cycle-budget"


class TestFastEngineAPI:
    def test_non_integral_call_at_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_at(1.5, lambda: None)

    def test_non_integral_call_after_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_after(0.25, lambda: None)

    def test_integral_float_times_accepted(self):
        sim = Simulator()
        fired = []
        sim.call_at(3.0, fired.append, "a")
        sim.call_after(4.0, fired.append, "b")
        assert sim.run() == 4
        assert fired == ["a", "b"]

    def test_non_integral_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield 1.5

        sim.spawn(proc())
        with pytest.raises(SimulationError, match="non-integral"):
            sim.run()

    def test_integral_float_yield_accepted(self):
        sim = Simulator()
        seen = []

        def proc():
            yield 2.0
            seen.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert seen == [2]

    def test_ceil_cycles(self):
        assert ceil_cycles(0) == 0
        assert ceil_cycles(-3.7) == 0
        assert ceil_cycles(0.25) == 1
        assert ceil_cycles(1.0) == 1
        assert ceil_cycles(1.0 + 5e-10) == 1  # float noise, not a fraction
        assert ceil_cycles(1.1) == 2

    def test_same_cycle_events_run_fifo_without_heap(self):
        sim = Simulator()
        order = []
        sim.call_at(5, order.append, "first")
        sim.call_at(5, lambda: sim.call_at(5, order.append, "nested"))
        sim.call_at(5, order.append, "second")
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_far_future_scheduling(self):
        sim = Simulator()
        fired = []
        sim.call_at(10**9, fired.append, True)
        assert sim.run() == 10**9
        assert fired == [True]

    def test_pending_events(self):
        sim = Simulator()
        sim.call_at(1, lambda: None)
        sim.call_at(1, lambda: None)
        sim.call_at(7, lambda: None)
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0


class TestEngineSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        assert core_mode() == "fast"
        assert isinstance(make_simulator(), Simulator)

    def test_legacy_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", "legacy")
        assert core_mode() == "legacy"
        assert isinstance(make_simulator(), HeapSimulator)

    def test_invalid_selection_rejected(self, monkeypatch):
        from repro.errors import ConfigurationError
        monkeypatch.setenv("REPRO_SIM_CORE", "turbo")
        with pytest.raises(ConfigurationError):
            core_mode()

    def test_fingerprint_reflects_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        fast_fp = scheduler_fingerprint()
        monkeypatch.setenv("REPRO_SIM_CORE", "legacy")
        legacy_fp = scheduler_fingerprint()
        assert fast_fp.endswith(".fast")
        assert legacy_fp.endswith(".legacy")
        assert fast_fp.split(".")[0] == legacy_fp.split(".")[0]

    def test_fingerprint_in_cache_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        from repro.exec.spec import code_fingerprint
        assert scheduler_fingerprint() in code_fingerprint()
