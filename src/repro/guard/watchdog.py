"""The simulation watchdog: no-progress detection and diagnostic bundles.

A :class:`Guard` is attached to one simulation (one ``GPU.launch``).
The engines call back into it from their run loops — the guard never
schedules events of its own, so an attached guard changes *nothing*
about event order, final cycle counts, or statistics; it only observes:

* every ``check_events`` host events the engine calls
  :meth:`Guard.on_events`, which compares a **progress token** (a tuple
  of monotone model counters: jobs completed, traversal steps advanced,
  warps retired, SIMT issues, memory sectors) against the previous
  checkpoint.  ``stall_events`` host events without the token moving
  means the simulation is spinning (livelock) and the guard aborts with
  :class:`~repro.errors.SimulationStallError`.  Measuring progress in
  *events* rather than cycles keeps legitimate far-future time jumps
  (an idle simulator skipping to the next event) from being flagged.
* the same checkpoint scans for **parked work**: a wake bucket whose
  cycle has already passed (its drain event was dropped) or a job
  waiting in a core's admission queue longer than ``park_cycles``.
* when the cycle clock passes ``max_cycles`` (if set) the engine calls
  :meth:`Guard.on_cycle_budget`, which always aborts.
* after ``sim.run()`` returns, :meth:`Guard.finalize` verifies
  **quiescence** (the event queue drained with no traversal still in
  flight, no undrained wake bucket, every launched warp retired — this
  is how a *dropped* wake surfaces: the simulation goes quiet with work
  pending) and, in ``on``/``strict`` modes, the conservation invariants
  of :mod:`repro.guard.invariants`.

Every abort carries a diagnostic **bundle** (see :meth:`Guard.bundle`):
a JSON-serializable dict naming the stuck units and jobs, which
``repro.exec`` persists when it quarantines the run's spec.
"""

from typing import Optional

from repro.errors import InvariantViolation, SimulationStallError
from repro.guard.config import GuardConfig
from repro.guard.invariants import (check_balance, check_conservation,
                                    quiescence_report)


class Guard:
    """Watchdog + invariant checker for one simulation run."""

    def __init__(self, config: Optional[GuardConfig] = None):
        self.config = config if config is not None else GuardConfig()
        self.sim = None
        self.sms = []
        self.cores = []
        self.hierarchy = None
        self.stats = None
        self.n_warps = 0
        self._last_token = None
        self._progress_events = 0
        self._progress_cycle = 0

    # -- construction ------------------------------------------------------
    @classmethod
    def from_env(cls) -> Optional["Guard"]:
        """Build a guard from ``$REPRO_GUARD``; None when mode is ``off``."""
        config = GuardConfig.from_env()
        if config.mode == "off":
            return None
        return cls(config)

    @staticmethod
    def resolve(value) -> Optional["Guard"]:
        """Normalize a ``guard=`` argument: None -> from env, a
        :class:`GuardConfig` -> fresh guard (or None when off), a
        :class:`Guard` -> itself."""
        if value is None:
            return Guard.from_env()
        if isinstance(value, GuardConfig):
            return None if value.mode == "off" else Guard(value)
        return value

    # -- wiring ------------------------------------------------------------
    def attach(self, sim, sms=(), hierarchy=None, stats=None,
               n_warps: int = 0) -> "Guard":
        """Bind to a simulation: the engine plus the model objects whose
        counters define progress.  Registers self as ``sim.guard``."""
        self.sim = sim
        self.sms = list(sms)
        # Only accelerators exposing the guard interface are observed;
        # custom/stub accelerators (tests, user extensions) without
        # ``guard_state`` are simply not instrumented.
        self.cores = [sm.accelerator for sm in self.sms
                      if hasattr(sm.accelerator, "guard_state")]
        self.hierarchy = hierarchy
        self.stats = stats
        self.n_warps = n_warps
        self._last_token = None
        self._progress_events = sim.events_processed
        self._progress_cycle = sim.now
        sim.guard = self
        if self.config.strict:
            for core in self.cores:
                # The fetch-park ordering (rta.py) exists to keep the
                # memory-scheduler timeline FIFO in arrival order; the
                # analytic clocks may jitter within one engine cycle,
                # hence the tolerance.  SM issue/ldst timelines are
                # legitimately acquired at future times (shader handoff,
                # post-issue LDST chaining) and are not order-checked.
                issue = getattr(getattr(core, "mem", None), "issue", None)
                if issue is not None and \
                        hasattr(issue, "enable_order_check"):
                    issue.enable_order_check(self)
        return self

    # -- engine hooks ------------------------------------------------------
    @property
    def cycle_cap(self) -> Optional[int]:
        return self.config.max_cycles

    def event_checkpoint(self, processed: int) -> int:
        """The event count at which the engine should next call
        :meth:`on_events`."""
        return processed + self.config.check_events

    def on_events(self, processed: int, now) -> int:
        """Watchdog checkpoint; returns the next checkpoint event count.

        Raises :class:`SimulationStallError` on a frozen progress token
        or parked work, :class:`InvariantViolation` when a strict-mode
        balance check fails.
        """
        config = self.config
        token = self._progress_token()
        if token != self._last_token:
            self._last_token = token
            self._progress_events = processed
            self._progress_cycle = now
        elif processed - self._progress_events >= config.stall_events:
            raise SimulationStallError(
                f"no model progress over "
                f"{processed - self._progress_events} events "
                f"(cycle {now}, last progress at cycle "
                f"{self._progress_cycle}){self._unit_suffix()}",
                self.bundle("no-progress", now=now, events=processed),
            )
        parked = self._parked_report(now)
        if parked is not None:
            raise SimulationStallError(
                parked + self._unit_suffix(),
                self.bundle("parked-work", now=now, events=processed))
        if config.strict:
            check_balance(self)
        return processed + config.check_events

    def on_cycle_budget(self, time) -> None:
        """The cycle clock passed ``max_cycles``; always aborts."""
        raise SimulationStallError(
            f"cycle budget exceeded: clock reached {time} "
            f"(max_cycles={self.config.max_cycles})"
            f"{self._unit_suffix()}",
            self.bundle("cycle-budget", now=time),
        )

    def order_violation(self, name: str, now, last) -> None:
        """A FIFO timeline saw an acquisition earlier than a previous one
        (beyond the one-cycle analytic jitter tolerance)."""
        raise InvariantViolation(
            f"timeline {name}: acquisition at {now:.3f} arrived after one "
            f"at {last:.3f} — FIFO arrival order violated"
            f"{self._unit_suffix()}",
            self.bundle("timeline-order"),
        )

    # -- end of run --------------------------------------------------------
    def finalize(self) -> None:
        """Post-run checks: quiescence always, conservation in on/strict."""
        if self.sim is None:
            return
        quiet = quiescence_report(self)
        if quiet is not None:
            raise SimulationStallError(
                f"simulation went quiet with work pending: {quiet}",
                self.bundle("quiescent-with-pending"),
            )
        if self.config.checks_invariants:
            check_conservation(self)

    # -- internals ---------------------------------------------------------
    def _progress_token(self):
        jobs = steps = 0
        for core in self.cores:
            jobs += core.jobs_completed
            steps += core.steps_advanced
        warps = 0
        for sm in self.sms:
            warps += sm._done_count
        issues = self.stats._simt_issues if self.stats is not None else 0
        sectors = (self.hierarchy.sector_requests
                   if self.hierarchy is not None else 0)
        return (jobs, steps, warps, issues, sectors)

    def _parked_report(self, now) -> Optional[str]:
        park_cycles = self.config.park_cycles
        for core in self.cores:
            report = core.guard_parked(now, park_cycles)
            if report is not None:
                return report
        return None

    def _tracer(self):
        """The run's tracer (repro.obs), or None when tracing is off."""
        return getattr(self.sim, "tracer", None) \
            if self.sim is not None else None

    def _unit_suffix(self) -> str:
        """`` (last active unit: ...)`` for abort messages, or ``""``.

        With tracing on, the flight-recorder names the component that
        emitted last before the abort — usually the stuck one.
        """
        tracer = self._tracer()
        if tracer is None or not len(tracer):
            return ""
        unit = tracer.last_active_unit()
        return f" (last active unit: {unit})" if unit else ""

    def bundle(self, reason: str, now=None, events=None) -> dict:
        """The diagnostic bundle: JSON-serializable simulator state.

        With tracing enabled the bundle embeds the flight-recorder tail
        (the last events before the abort) and the last-active unit;
        when ``$REPRO_OBS_DIR`` is set the bundle (plus the full trace)
        is also dumped there for CI artifact collection.
        """
        sim = self.sim
        data = {
            "reason": reason,
            "cycle": sim.now if now is None else now,
            "events_processed": (sim.events_processed
                                 if events is None else events),
            "pending_events": sim.pending_events,
            "last_progress": {
                "events": self._progress_events,
                "cycle": self._progress_cycle,
            },
            "mode": self.config.mode,
            "warps": {
                "launched": self.n_warps,
                "retired": sum(sm._done_count for sm in self.sms),
            },
            "cores": [core.guard_state() for core in self.cores],
            "sms": [sm.guard_state() for sm in self.sms],
        }
        if self.hierarchy is not None:
            data["memsys"] = self.hierarchy.guard_state()
        tracer = self._tracer()
        if tracer is not None and len(tracer):
            data["last_active_unit"] = tracer.last_active_unit()
            data["trace_tail"] = [list(event) for event in tracer.tail(64)]
        # Imported lazily: the guard works without obs on the path, and
        # dump_diagnostics itself never raises into this abort path.
        from repro.obs import dump_diagnostics

        dumped = dump_diagnostics(data, tracer)
        if dumped is not None:
            data["dumped_to"] = dumped
        return data
