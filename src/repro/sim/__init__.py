"""Discrete-event simulation kernel.

Every timing model in this package (SIMT cores, caches, DRAM, RTA/TTA/TTA+
pipelines) is built on the primitives exported here:

* :class:`~repro.sim.engine.Simulator` — the fast integer-cycle
  calendar-queue engine (the default core).
* :class:`~repro.sim.engine_ref.HeapSimulator` — the seed heap engine,
  kept as a reference/baseline (``REPRO_SIM_CORE=legacy``).
* :func:`make_simulator` — engine factory honouring ``REPRO_SIM_CORE``.
* :class:`~repro.sim.resources.PipelinedUnit` /
  :class:`~repro.sim.resources.Timeline` /
  :class:`~repro.sim.resources.ThroughputResource` — contended resources
  modelled as occupancy timelines at cycle resolution.
* :mod:`~repro.sim.stats` — counters, occupancy and latency trackers used
  to produce the paper's utilization figures.
"""

import hashlib
import os
import pathlib

from repro.errors import ConfigurationError
from repro.sim.engine import Signal, Simulator, ceil_cycles
from repro.sim.engine_ref import HeapSimulator
from repro.sim.resources import PipelinedUnit, ThroughputResource, Timeline
from repro.sim.stats import Counter, LatencySampler, OccupancyTracker

__all__ = [
    "Simulator",
    "HeapSimulator",
    "Signal",
    "Timeline",
    "PipelinedUnit",
    "ThroughputResource",
    "Counter",
    "OccupancyTracker",
    "LatencySampler",
    "ceil_cycles",
    "core_mode",
    "make_simulator",
    "scheduler_fingerprint",
]

#: Engine selector environment variable: "fast" (default) or "legacy".
CORE_ENV = "REPRO_SIM_CORE"

_CORE_MODES = ("fast", "legacy")


def core_mode() -> str:
    """The active engine, from ``$REPRO_SIM_CORE`` (default: fast)."""
    mode = os.environ.get(CORE_ENV, "fast")
    if mode not in _CORE_MODES:
        raise ConfigurationError(
            f"unknown {CORE_ENV}={mode!r}; pick from {_CORE_MODES}"
        )
    return mode


def make_simulator():
    """A fresh simulator of the configured engine kind."""
    if core_mode() == "legacy":
        return HeapSimulator()
    return Simulator()


#: Source files folded into the scheduler fingerprint: the engines
#: themselves plus the packages whose code decides what every simulated
#: cycle computes — the vectorized geometry kernels and the batched
#: accelerator driver.  An edit to any of these must invalidate cached
#: results.
_MODEL_SOURCES = (
    ("sim", ("engine.py", "engine_ref.py")),
    ("geometry", None),  # None = every *.py in the package
    ("rta", None),
)


def _model_source_hash(root: pathlib.Path = None) -> str:
    """Hash the timing-model sources under ``root`` (default: repro/).

    ``root`` is parameterizable so tests can copy the tree, edit one
    geometry file, and prove the fingerprint moves.
    """
    if root is None:
        root = pathlib.Path(__file__).parent.parent
    digest = hashlib.sha256()
    for package, names in _MODEL_SOURCES:
        folder = root / package
        paths = ([folder / name for name in names] if names is not None
                 else sorted(folder.glob("*.py")))
        for path in paths:
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


#: Hash of the scheduler + model sources, computed once at import.
_ENGINE_HASH = _model_source_hash()


def scheduler_fingerprint() -> str:
    """Scheduler-model identity folded into exec-cache keys.

    Combines a hash of the engine, geometry, and accelerator-driver
    sources with the active core mode, so results computed by one
    engine (or an older model revision) can never satisfy a spec
    executed under another.
    """
    return f"{_ENGINE_HASH}.{core_mode()}"
