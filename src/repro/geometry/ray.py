"""Rays as traced by the RTA: origin, direction, [tmin, tmax] interval."""

from repro.geometry.vec import Vec3

_HUGE = 1e30  # stands in for +inf while staying finite under 1/x


class Ray:
    """A parametric ray ``origin + t * direction`` with a valid t-interval.

    The reciprocal direction is cached because both the hardware slab test
    and our model use multiply-by-reciprocal rather than division (the
    baseline Ray-Box unit spends its RCP units on exactly this).
    """

    __slots__ = ("origin", "direction", "tmin", "tmax", "inv_direction")

    def __init__(self, origin: Vec3, direction: Vec3, tmin: float = 0.0,
                 tmax: float = _HUGE):
        self.origin = origin
        self.direction = direction
        self.tmin = float(tmin)
        self.tmax = float(tmax)
        self.inv_direction = Vec3(
            self._safe_rcp(direction.x),
            self._safe_rcp(direction.y),
            self._safe_rcp(direction.z),
        )

    @staticmethod
    def _safe_rcp(v: float) -> float:
        # Hardware RCP of a denormal/zero saturates; mirror that so axis-
        # parallel rays still produce correct interval logic.
        if abs(v) < 1e-12:
            return _HUGE if v >= 0 else -_HUGE
        return 1.0 / v

    def point_at(self, t: float) -> Vec3:
        return self.origin + self.direction * t

    def __repr__(self) -> str:
        return (
            f"Ray(o={self.origin!r}, d={self.direction!r}, "
            f"t=[{self.tmin}, {self.tmax}])"
        )
