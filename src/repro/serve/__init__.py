"""repro.serve — resident-index query serving over the simulator.

The serving layer answers the question the one-shot harness cannot:
*what do the accelerators buy at serving time?*  It keeps the four tree
indexes warm (:mod:`repro.serve.index`), coalesces individually
arriving queries into accelerator launches timeout-or-size
(:mod:`repro.serve.batcher`), launches them through per-platform
backends that reuse the harness's kernels and scaled configs verbatim
(:mod:`repro.serve.backends`), and maps simulated cycles onto a
wall-clock timeline (:mod:`repro.serve.clock`) so open-loop load
generation (:mod:`repro.serve.loadgen`) yields latency percentiles and
QPS-vs-latency curves (:mod:`repro.serve.loadtest`).  An asyncio facade
(:mod:`repro.serve.service`) serves real callers with the same
machinery.  Failure semantics — deadlines, load shedding, circuit
breaking, hedged re-dispatch, result integrity — live in
:mod:`repro.serve.resilience` (``$REPRO_RESILIENCE``).

Entry points: ``repro serve`` / ``repro loadtest``; MODEL.md §10 (the
serving model) and §12 (resilience) have the semantics.
"""

from repro.serve.backends import BatchLaunch, LaunchBackend
from repro.serve.batcher import (
    Batch,
    BatchPolicy,
    MicroBatcher,
    QueryRequest,
)
from repro.serve.clock import (
    DEFAULT_CLOCK,
    DEFAULT_CORE_MHZ,
    DEFAULT_LAUNCH_OVERHEAD_S,
    ServiceClock,
)
from repro.serve.index import (
    QUERY_CLASSES,
    SERVE_PLATFORMS,
    SERVE_SCALES,
    QueryClassSpec,
    ResidentIndex,
    build_resident_index,
    query_class_spec,
)
from repro.serve.loadgen import (
    ARRIVAL_PROCESSES,
    DEFAULT_MIX,
    Arrival,
    LoadProfile,
    generate_arrivals,
    parse_mix,
    stream_signature,
)
from repro.serve.loadtest import (
    ClassReport,
    LoadtestReport,
    percentile,
    run_loadtest,
    run_qps_sweep,
)
from repro.serve.resilience import (
    DEFAULT_PRIORITIES,
    MODES as RESILIENCE_MODES,
    RESILIENCE_ENV,
    CircuitBreaker,
    EwmaEstimator,
    ResilienceConfig,
    check_batch_integrity,
    resilience_mode,
    slo_summary,
)
from repro.serve.service import QueryResponse, ServeService

__all__ = [
    "ARRIVAL_PROCESSES",
    "Arrival",
    "Batch",
    "BatchLaunch",
    "BatchPolicy",
    "CircuitBreaker",
    "ClassReport",
    "DEFAULT_CLOCK",
    "DEFAULT_CORE_MHZ",
    "DEFAULT_LAUNCH_OVERHEAD_S",
    "DEFAULT_MIX",
    "DEFAULT_PRIORITIES",
    "EwmaEstimator",
    "LaunchBackend",
    "LoadProfile",
    "LoadtestReport",
    "MicroBatcher",
    "QUERY_CLASSES",
    "QueryClassSpec",
    "QueryRequest",
    "QueryResponse",
    "RESILIENCE_ENV",
    "RESILIENCE_MODES",
    "ResidentIndex",
    "ResilienceConfig",
    "SERVE_PLATFORMS",
    "SERVE_SCALES",
    "ServeService",
    "ServiceClock",
    "build_resident_index",
    "check_batch_integrity",
    "generate_arrivals",
    "parse_mix",
    "percentile",
    "query_class_spec",
    "resilience_mode",
    "run_loadtest",
    "run_qps_sweep",
    "slo_summary",
    "stream_signature",
]
