"""Campaign orchestration: init, local worker fan-out, manifest.

``run_campaign`` is deliberately thin: it materializes the campaign
directory (the *only* shared state), spawns N local worker processes,
and finalizes the manifest once the table is drained.  Workers on other
hosts join the very same directory with ``repro campaign worker --join``
— the orchestrator neither knows nor cares, because completion is
defined by records + cache entries, not by which processes it spawned.

The **manifest** is the campaign's durable output: per-point axes,
status, engine, wall time, peak RSS, cache hit/miss and lease-steal
flags, campaign-level totals, per-worker reports, and a
``repro.obs``-style metrics snapshot (``campaign.*`` namespace) built
through the same :class:`~repro.obs.metrics.MetricsRegistry` the
simulator uses — so campaign dashboards read the exact format run
metrics already use.

``result_fingerprint`` hashes each point's *result checksum* (the
SHA-256 the exec cache recorded at put time) in key order.  Two
campaigns — interrupted-and-resumed vs. uninterrupted, 1 worker vs. 8,
one host vs. three — agree on this fingerprint iff every per-point
result is bit-identical.
"""

import hashlib
import json
import os
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.service import SERIAL_ENV, STATUS_FAILED
from repro.campaign.spec import CampaignPoint, CampaignSpec
from repro.campaign.worker import (
    CAMPAIGN_FILE,
    LEASES_DIR,
    MANIFEST_FILE,
    RECORDS_DIR,
    WORKERS_DIR,
    _atomic_write_json,
    run_worker,
)

#: Subdirectory of the cache root where campaign directories live by
#: default — rides the same shared filesystem the cache already uses,
#: which is what makes multi-host joins work with zero extra setup.
CAMPAIGNS_SUBDIR = "campaigns"


def campaign_dir_for(spec: CampaignSpec,
                     cache: Optional[ResultCache] = None) -> pathlib.Path:
    cache = cache if cache is not None else ResultCache()
    return cache.base / CAMPAIGNS_SUBDIR / spec.slug


def init_campaign(spec: CampaignSpec,
                  directory: Optional[pathlib.Path] = None,
                  cache: Optional[ResultCache] = None) -> pathlib.Path:
    """Create (or re-open) the campaign directory; idempotent.

    Re-opening with a *different* run table under the same path is a
    configuration error — the directory's records would silently stop
    matching the expansion.
    """
    directory = pathlib.Path(directory) if directory is not None \
        else campaign_dir_for(spec, cache)
    directory.mkdir(parents=True, exist_ok=True)
    doc_path = directory / CAMPAIGN_FILE
    if doc_path.exists():
        existing = CampaignSpec.from_file(doc_path)
        if existing.canonical() != spec.canonical():
            raise ConfigurationError(
                f"{directory} already holds a different campaign "
                f"({existing.slug}); pick another --dir or name")
    else:
        spec.write(doc_path)
    for sub in (RECORDS_DIR, LEASES_DIR, WORKERS_DIR):
        (directory / sub).mkdir(exist_ok=True)
    return directory


# -- local fan-out --------------------------------------------------------------
def _worker_entry(directory: str, worker_id: str,
                  cache_root: Optional[str], quiet: bool) -> None:
    """Top-level target for spawned local worker processes."""
    cache = ResultCache(pathlib.Path(cache_root)) \
        if cache_root is not None else ResultCache()
    report = run_worker(directory, worker_id=worker_id, cache=cache,
                        quiet=quiet)
    # Worker processes communicate through the filesystem like remote
    # joiners do; the exit code only says "I did not crash".
    sys.exit(1 if report.errors and not report.resolved else 0)


def run_campaign(spec: CampaignSpec, workers: int = 1,
                 directory: Optional[pathlib.Path] = None,
                 cache: Optional[ResultCache] = None,
                 quiet: bool = False) -> Dict[str, Any]:
    """Drain the whole run table with ``workers`` local processes.

    Returns the finalized manifest.  ``workers=1`` (or
    ``$REPRO_EXEC_SERIAL``, or a sandbox without multiprocessing) runs
    the single worker in-process; either way the campaign completes.
    The parent always finishes with an in-process sweep, which doubles
    as crash recovery: points whose spawned worker died mid-run are
    stolen once their lease expires (dead local pids immediately).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    cache = cache if cache is not None else ResultCache()
    directory = init_campaign(spec, directory, cache)
    started = time.monotonic()
    started_unix = time.time()

    procs: List[Any] = []
    if workers > 1 and not os.environ.get(SERIAL_ENV):
        try:
            import multiprocessing
            ctx = multiprocessing.get_context(
                "fork" if sys.platform != "win32" else None)
            for i in range(workers - 1):
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(str(directory), f"w{i + 1}", str(cache.base),
                          quiet))
                proc.start()
                procs.append(proc)
        except Exception as exc:  # pragma: no cover - constrained sandboxes
            print(f"[campaign] worker processes unavailable "
                  f"({type(exc).__name__}: {exc}); draining in-process",
                  file=sys.stderr)
            procs = []

    # The parent is worker 0; it participates rather than just waiting,
    # so workers=N really is N simulating processes.
    run_worker(directory, worker_id="w0", cache=cache, quiet=quiet)
    for proc in procs:
        proc.join()

    manifest = finalize(directory, cache=cache,
                        wall_seconds=time.monotonic() - started,
                        workers=workers)
    # Totals above are campaign-cumulative (folded from the durable
    # records); the invocation block answers "what did THIS command
    # do" — a resumed or re-run campaign shows executed=0 here while
    # the totals still say who originally produced each point.
    manifest["invocation"] = _invocation_summary(directory, started_unix)
    _atomic_write_json(directory / MANIFEST_FILE, manifest)
    return manifest


def _invocation_summary(directory: pathlib.Path,
                        started_unix: float) -> Dict[str, Any]:
    """Fold the worker reports written during this invocation."""
    summary = {"workers": 0, "executed": 0, "cached": 0, "failed": 0,
               "quarantined": 0, "stolen": 0, "skipped": 0}
    for path in sorted((directory / WORKERS_DIR).glob("*.json")):
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if float(report.get("finished_unix", 0.0)) < started_unix:
            continue  # stale report from an earlier invocation
        summary["workers"] += 1
        for key in ("executed", "cached", "failed", "quarantined",
                    "stolen", "skipped"):
            summary[key] += int(report.get(key, 0))
    return summary


# -- manifest -------------------------------------------------------------------
def _load_records(directory: pathlib.Path) -> List[Dict[str, Any]]:
    records = []
    for path in sorted((directory / RECORDS_DIR).glob("*.json")):
        try:
            records.append(json.loads(path.read_text()))
        except (OSError, ValueError):
            continue  # mid-write record; the next finalize sees it
    return records


def result_fingerprint(points: List[CampaignPoint],
                       cache: ResultCache) -> str:
    """Order-independent digest of every point's result bytes.

    Folds ``(spec key, cached payload SHA-256)`` pairs in key order.
    Points with no cache entry (failed, quarantined-to-legacy) fold in
    a miss marker, so two manifests agree iff they resolved the same
    points to the same bytes.
    """
    digest = hashlib.sha256()
    for point in sorted(points, key=lambda p: p.key):
        digest.update(point.key.encode())
        digest.update((cache.result_sha(point.key) or "miss").encode())
    return digest.hexdigest()


def finalize(directory: pathlib.Path,
             cache: Optional[ResultCache] = None,
             wall_seconds: Optional[float] = None,
             workers: Optional[int] = None) -> Dict[str, Any]:
    """Fold records + worker reports into ``manifest.json``."""
    from repro.obs.metrics import MetricsRegistry

    directory = pathlib.Path(directory)
    cache = cache if cache is not None else ResultCache()
    spec = CampaignSpec.from_file(directory / CAMPAIGN_FILE)
    points = spec.expand()
    by_key = {p.key: p for p in points}
    records = [r for r in _load_records(directory) if r.get("key") in by_key]
    recorded = {r["key"] for r in records}

    reg = MetricsRegistry()
    totals = {"points": len(points), "executed": 0, "cached": 0,
              "failed": 0, "quarantined": 0, "stolen_leases": 0,
              "unresolved": len(points) - len(recorded)}
    wall_hist = reg.histogram("campaign.point_wall_s")
    rss_hist = reg.histogram("campaign.point_rss_kb")
    for record in records:
        status = record.get("status", STATUS_FAILED)
        if status in totals:
            totals[status] += 1
        if record.get("stolen_lease"):
            totals["stolen_leases"] += 1
        wall_hist.observe(float(record.get("wall_s", 0.0)))
        rss_hist.observe(float(record.get("peak_rss_kb", 0.0)))
    for name, value in totals.items():
        reg.set(f"campaign.{name}", value)
    if wall_seconds is not None:
        reg.set("campaign.wall_seconds", wall_seconds)
    if workers is not None:
        reg.set("campaign.workers", workers)

    worker_reports = []
    for path in sorted((directory / WORKERS_DIR).glob("*.json")):
        try:
            worker_reports.append(json.loads(path.read_text()))
        except (OSError, ValueError):
            continue

    manifest = {
        "campaign": spec.name,
        "campaign_id": spec.campaign_id,
        "slug": spec.slug,
        "directory": str(directory),
        "points": sorted(
            (dict(r) for r in records), key=lambda r: r["key"]),
        "totals": totals,
        "workers": worker_reports,
        "n_workers": workers,
        "wall_seconds": wall_seconds,
        "result_fingerprint": result_fingerprint(points, cache),
        "metrics": reg.snapshot().as_dict(),
        "finished_unix": time.time(),
    }
    _atomic_write_json(directory / MANIFEST_FILE, manifest)
    return manifest


def status(directory: pathlib.Path,
           cache: Optional[ResultCache] = None) -> Dict[str, Any]:
    """Cheap progress probe for ``repro campaign status`` (no writes)."""
    from repro.campaign.leases import LeaseBoard

    directory = pathlib.Path(directory)
    spec = CampaignSpec.from_file(directory / CAMPAIGN_FILE)
    points = spec.expand()
    records = _load_records(directory)
    statuses: Dict[str, int] = {}
    for record in records:
        key = record.get("status", "unknown")
        statuses[key] = statuses.get(key, 0) + 1
    board = LeaseBoard(directory / LEASES_DIR, "status-probe",
                       ttl_s=spec.lease_ttl_s)
    return {
        "campaign": spec.name,
        "slug": spec.slug,
        "points": len(points),
        "resolved": len(records),
        "unresolved": len(points) - len(records),
        "statuses": statuses,
        "leases": board.sweep(),
        "manifest_written": (directory / MANIFEST_FILE).exists(),
    }
