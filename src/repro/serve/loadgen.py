"""Open-loop load generation for the serving layer.

An **open-loop** generator decides every arrival time up front from the
target rate alone — arrivals never wait for responses, so queueing
delay shows up as latency instead of silently throttling the offered
load (the classic closed-loop coordinated-omission trap; MODEL.md §10
spells out the distinction).

Three arrival processes:

* ``poisson`` — exponential inter-arrival gaps (memoryless; the
  standard open-system model),
* ``uniform`` — fixed ``1/qps`` spacing (best case for batching),
* ``burst``  — Poisson arrivals of small bursts; each burst lands
  ``burst_size`` queries back-to-back (worst case for tail latency).

Every arrival is tagged with a query class drawn from the profile's
``mix`` and a canonical query id drawn uniformly from that class's
resident stream.  Generation is fully seeded: the same
:class:`LoadProfile` always yields the same arrival schedule, which is
what makes loadtest percentiles byte-reproducible.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.serve.index import QUERY_CLASSES

ARRIVAL_PROCESSES = ("poisson", "uniform", "burst")

#: Default query mix: an even split over every class.
DEFAULT_MIX = {cls: 1.0 for cls in QUERY_CLASSES}


@dataclass(frozen=True)
class Arrival:
    """One generated query arrival."""

    t: float                 # seconds since loadtest start
    query_class: str
    qid: int                 # canonical-stream index within the class
    measured: bool           # False while inside the warmup window


@dataclass(frozen=True)
class LoadProfile:
    """Everything that defines one open-loop run."""

    qps: float = 200.0
    duration_s: float = 1.0          # measurement window
    warmup_s: float = 0.0            # unmeasured lead-in at the same rate
    mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX))
    arrival: str = "poisson"
    burst_size: int = 8              # burst mode only
    seed: int = 0

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ConfigurationError(f"qps must be positive, got {self.qps}")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}")
        if self.warmup_s < 0:
            raise ConfigurationError("warmup_s cannot be negative")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}; "
                f"known: {ARRIVAL_PROCESSES}")
        if self.burst_size < 1:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {self.burst_size}")
        if not self.mix:
            raise ConfigurationError("mix cannot be empty")
        for cls, weight in self.mix.items():
            if cls not in QUERY_CLASSES:
                raise ConfigurationError(
                    f"unknown query class {cls!r} in mix; "
                    f"known: {QUERY_CLASSES}")
            if weight < 0:
                raise ConfigurationError(
                    f"mix weight for {cls!r} cannot be negative")
        if sum(self.mix.values()) <= 0:
            raise ConfigurationError("mix weights sum to zero")

    @property
    def total_s(self) -> float:
        return self.warmup_s + self.duration_s

    def classes(self) -> Tuple[str, ...]:
        """Classes with nonzero weight, in canonical order."""
        return tuple(cls for cls in QUERY_CLASSES
                     if self.mix.get(cls, 0.0) > 0)


def _arrival_times(profile: LoadProfile, rng: random.Random) -> List[float]:
    times: List[float] = []
    horizon = profile.total_s
    if profile.arrival == "uniform":
        gap = 1.0 / profile.qps
        t = gap
        while t < horizon:
            times.append(t)
            t += gap
    elif profile.arrival == "poisson":
        t = 0.0
        while True:
            t += rng.expovariate(profile.qps)
            if t >= horizon:
                break
            times.append(t)
    else:  # burst: Poisson bursts, back-to-back members, same mean rate
        burst_rate = profile.qps / profile.burst_size
        t = 0.0
        while True:
            t += rng.expovariate(burst_rate)
            if t >= horizon:
                break
            times.extend([t] * profile.burst_size)
    return times


def generate_arrivals(profile: LoadProfile,
                      capacities: Optional[Dict[str, int]] = None
                      ) -> List[Arrival]:
    """The full, deterministic arrival schedule for one run.

    ``capacities`` maps query class -> canonical stream length (qids are
    drawn modulo it); defaults to a nominal 256 per class for callers
    that only need the schedule's shape.
    """
    rng = random.Random(profile.seed)
    classes = profile.classes()
    weights = [profile.mix[cls] for cls in classes]
    arrivals: List[Arrival] = []
    for t in _arrival_times(profile, rng):
        cls = rng.choices(classes, weights=weights)[0] \
            if len(classes) > 1 else classes[0]
        capacity = (capacities or {}).get(cls, 256)
        qid = rng.randrange(capacity)
        arrivals.append(Arrival(t, cls, qid, measured=t >= profile.warmup_s))
    return arrivals


def stream_signature(arrivals: List[Arrival]) -> Tuple:
    """A hashable fingerprint of an arrival schedule.

    Two schedules compare equal iff every arrival matches in time,
    class, qid, and warmup tagging — what the loadgen determinism tests
    assert across repeated generation from the same profile.
    """
    return tuple((a.t, a.query_class, a.qid, a.measured) for a in arrivals)


def parse_mix(text: str) -> Dict[str, float]:
    """Parse a CLI mix string, e.g. ``point=4,range=1,knn=1``.

    A bare class list (``point,knn``) means equal weights.
    """
    mix: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            cls, _, weight = part.partition("=")
            try:
                mix[cls.strip()] = float(weight)
            except ValueError:
                raise ConfigurationError(
                    f"bad mix weight in {part!r}") from None
        else:
            mix[part] = 1.0
    if not mix:
        raise ConfigurationError(f"empty query mix: {text!r}")
    return mix
