"""Cycle-domain structured event tracer (ring-buffered, zero-cost off).

The tracer follows the same attachment pattern as :mod:`repro.guard`:
``GPU.launch`` places the active tracer (or None) on ``sim.tracer``,
components cache ``getattr(sim, "tracer", None)`` at construction and
hoist it into a local at hot-loop entry, so a disabled tracer costs one
is-None branch per emission point and nothing else.  No simulator or
model module imports this one — the dependency runs strictly
obs → sim.stats, never the other way.

Events are plain tuples ``(category, unit, name, ts, dur, arg)``:

* ``category`` — coarse track group: ``"scheduler"``, ``"sm"``,
  ``"rta"``, ``"memsys"`` (exporters map these to trace processes);
* ``unit`` — the emitting instance (``"sm3"``, ``"ray_box"``,
  ``"dram"``, ...), mapped to a thread within the category;
* ``name`` — the phase/op (``"load"``, ``"node_fetch"``, ``"op"``);
* ``ts``/``dur`` — cycle-domain start and duration (``dur == 0``
  renders as an instant);
* ``arg`` — one small payload value (active lanes, query id, bytes).

The ring is a ``deque(maxlen=capacity)``: a trace that outgrows its
budget silently drops the *oldest* events, which is exactly the
flight-recorder behaviour the guard integration wants.

Environment controls (read by :func:`active_tracer`):

=========================  =================================================
``REPRO_TRACE``            ``1``/``on`` enables tracing (default: off)
``REPRO_TRACE_RATE``       keep every Nth event (default 1 = keep all)
``REPRO_TRACE_CATEGORIES`` comma list of categories to keep (default: all)
``REPRO_TRACE_EVENTS``     ring capacity in events (default 1,000,000)
=========================  =================================================
"""

import os
from collections import deque
from typing import List, Optional, Tuple

TRACE_ENV = "REPRO_TRACE"
TRACE_RATE_ENV = "REPRO_TRACE_RATE"
TRACE_CATEGORIES_ENV = "REPRO_TRACE_CATEGORIES"
TRACE_EVENTS_ENV = "REPRO_TRACE_EVENTS"

#: Default ring capacity; ~60 bytes/event tuple keeps this under 100MB.
DEFAULT_CAPACITY = 1_000_000

#: The categories the emit points use, in canonical track order.
#: ``serve`` is the query-serving layer (:mod:`repro.serve`): enqueue /
#: batch / launch / complete lifecycle events in its virtual-time
#: domain, mapped onto the cycle timeline via the service clock.
#: ``resilience`` is the failure-semantics track riding the same
#: timeline (:mod:`repro.serve.resilience`): shed / expired / failed /
#: hedge / launch_failed decision points, so an overload or chaos run
#: shows *why* queries vanished next to *when* batches ran.
CATEGORIES = ("scheduler", "sm", "rta", "memsys", "serve", "resilience")

Event = Tuple[str, str, str, float, float, object]

_FALSY = ("", "0", "off", "false", "no", "none")


class Tracer:
    """Ring-buffered event recorder with sampling and category filters."""

    __slots__ = ("capacity", "rate", "categories", "_ring", "_seen",
                 "_kept", "_offset", "_launches", "_launch_label")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, rate: int = 1,
                 categories=None):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        if rate < 1:
            raise ValueError(f"tracer sampling rate must be >= 1, got {rate}")
        self.capacity = capacity
        self.rate = rate
        self.categories = frozenset(categories) if categories else None
        self._ring: deque = deque(maxlen=capacity)
        self._seen = 0
        self._kept = 0
        #: Cycle offset of the current launch: successive GPU launches
        #: lay end-to-end on one global trace timeline.
        self._offset = 0.0
        self._launches: List[Tuple[str, float]] = []
        self._launch_label = None

    # -- hot path ----------------------------------------------------------
    def emit(self, cat: str, unit: str, name: str, ts, dur=0.0,
             arg=None) -> None:
        """Record one event; sampling and filtering happen here.

        The sampling check runs first: under ``rate`` N only every Nth
        call pays for the category filter and the append, which is what
        keeps the sampled-tracing overhead within its contract.
        ``events_seen`` therefore counts *all* emissions, regardless of
        any category filter.
        """
        seen = self._seen
        self._seen = seen + 1
        if seen % self.rate:
            return
        cats = self.categories
        if cats is not None and cat not in cats:
            return
        self._kept += 1
        self._ring.append((cat, unit, name, ts + self._offset, dur, arg))

    # -- launch bookkeeping ------------------------------------------------
    def begin_launch(self, label: str) -> None:
        self._launch_label = label
        self._ring.append(("scheduler", "engine", f"launch:{label}",
                           self._offset, 0.0, None))
        self._kept += 1
        self._seen += 1

    def end_launch(self, end_cycle) -> None:
        self._launches.append((self._launch_label or "kernel",
                               float(end_cycle)))
        self._offset += float(end_cycle)
        self._launch_label = None

    # -- inspection --------------------------------------------------------
    @property
    def events_seen(self) -> int:
        return self._seen

    @property
    def events_kept(self) -> int:
        return self._kept

    @property
    def events_dropped(self) -> int:
        """Events kept past sampling but evicted by the ring."""
        return self._kept - len(self._ring)

    @property
    def launches(self) -> List[Tuple[str, float]]:
        return list(self._launches)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[Event]:
        """All buffered events, oldest first."""
        return list(self._ring)

    def tail(self, n: int = 64) -> List[Event]:
        """The flight-recorder tail: the last ``n`` buffered events."""
        if n <= 0:
            return []
        ring = self._ring
        if len(ring) <= n:
            return list(ring)
        return list(ring)[-n:]

    def last_active_unit(self) -> Optional[str]:
        """``"category:unit"`` of the most recent non-scheduler event.

        Scheduler cycle ticks fire between every model event, so the
        last *model* emission is what names the stuck component in
        guard diagnostics; falls back to the very last event when only
        scheduler events are buffered.
        """
        last = None
        for event in reversed(self._ring):
            if last is None:
                last = event
            if event[0] != "scheduler":
                return f"{event[0]}:{event[1]}"
        if last is not None:
            return f"{last[0]}:{last[1]}"
        return None

    def clear(self) -> None:
        self._ring.clear()
        self._seen = 0
        self._kept = 0
        self._offset = 0.0
        self._launches = []
        self._launch_label = None


# -- process-wide active tracer -------------------------------------------------
#
# ``active_tracer()`` is consulted once per GPU.launch.  A tracer pinned
# with ``install()`` (the CLI path) always wins; otherwise the tracer is
# derived from the environment and rebuilt only when the relevant
# variables change, so monkeypatched env vars in tests take effect while
# back-to-back launches under one configuration share a single ring.

_pinned: Optional[Tracer] = None
_env_tracer: Optional[Tracer] = None
_env_signature = None


def _read_env_signature():
    return (os.environ.get(TRACE_ENV, ""),
            os.environ.get(TRACE_RATE_ENV, ""),
            os.environ.get(TRACE_CATEGORIES_ENV, ""),
            os.environ.get(TRACE_EVENTS_ENV, ""))


def trace_enabled() -> bool:
    """Whether ``$REPRO_TRACE`` asks for tracing (ignoring any pin)."""
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSY


def _tracer_from_env() -> Optional[Tracer]:
    if not trace_enabled():
        return None
    rate = int(os.environ.get(TRACE_RATE_ENV, "1") or "1")
    capacity = int(os.environ.get(TRACE_EVENTS_ENV, "0")
                   or DEFAULT_CAPACITY)
    raw_cats = os.environ.get(TRACE_CATEGORIES_ENV, "")
    categories = [c.strip() for c in raw_cats.split(",") if c.strip()] or None
    return Tracer(capacity=capacity or DEFAULT_CAPACITY, rate=rate,
                  categories=categories)


def active_tracer() -> Optional[Tracer]:
    """The tracer new launches should attach, or None when tracing is off."""
    global _env_tracer, _env_signature
    if _pinned is not None:
        return _pinned
    signature = _read_env_signature()
    if signature != _env_signature:
        _env_signature = signature
        _env_tracer = _tracer_from_env()
    return _env_tracer


def install(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Pin ``tracer`` as the process-wide active tracer (None unpins)."""
    global _pinned
    _pinned = tracer
    return tracer


def enable(capacity: int = DEFAULT_CAPACITY, rate: int = 1,
           categories=None) -> Tracer:
    """Build and pin a fresh tracer; returns it for later export."""
    return install(Tracer(capacity=capacity, rate=rate,
                          categories=categories))


def reset() -> None:
    """Unpin and forget all process-wide tracer state (test hygiene)."""
    global _pinned, _env_tracer, _env_signature
    _pinned = None
    _env_tracer = None
    _env_signature = None
