"""Fig. 19 — end-to-end energy, normalized to the baseline (BASE)."""

from repro.harness import experiments


def test_fig19_energy(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig19_energy(scale), rounds=1, iterations=1)
    save_table("fig19_energy", table)
    by_key = {(r[0], r[1]): r for r in table.rows}
    # B-Tree family: TTA and TTA+ save energy vs BASE (paper: 15-62%).
    for variant in ("btree", "bstar", "bplus"):
        for platform in ("tta", "ttaplus"):
            total = by_key[(variant, platform)][5]
            assert total < 0.95, f"{variant}/{platform}: no energy saving"
            assert total > 0.10, f"{variant}/{platform}: implausible saving"
    # The intersection-unit bucket is small relative to the savings
    # (§V-C3: "intersection energy is generally insignificant").
    for (name, platform), row in by_key.items():
        if platform in ("tta", "ttaplus"):
            assert row[4] < 0.5
    # *RTNN keeps net savings despite µop energy (paper: 19-29%).
    assert by_key[("rtnn", "*rtnn")][5] < 1.0
