"""Traversal jobs: the unit of work an accelerator executes.

A job is a per-query sequence of :class:`Step`s produced by the
*functional* traversal (B-Tree search path, BVH visit trace, Barnes-Hut
walk), plus the functional result to hand back to the launching thread.
Replaying steps keeps the timing and functional models in lockstep by
construction — the accelerator can never "traverse" nodes the algorithm
would not visit.

Step kinds (``op``):

==============  ==============================================================
``box``         Ray-Box slab test on the fixed-function unit (13 cycles)
``tri``         Ray-Triangle Möller-Trumbore test (37 cycles)
``query_key``   TTA's 9-wide Query-Key comparison (modified Ray-Box unit)
``point_dist``  TTA's Point-to-Point distance test (Ray-Triangle datapath)
``xform``       Ray transform between BVH levels (R-XFORM)
``shader``      Bounce to the SM cores (intersection shader) — the baseline
                path for procedural geometry such as spheres
``uop:<name>``  A TTA+ µop program (resolved by the TTA+ backend)
==============  ==============================================================
"""

from typing import Any, List, NamedTuple, Sequence


class Step(NamedTuple):
    """One node visit: an optional fetch plus an operation.

    ``address``/``size`` describe the node fetch (``address=-1`` skips the
    fetch, e.g. for a pure ray-transform step).  ``count`` repeats the
    operation (a leaf with k primitives issues k tests).  ``shader_insts``
    is only used by ``op="shader"`` — the instruction cost charged to the
    SM front end while the traversal is suspended.
    """

    address: int
    size: int
    op: str
    count: int = 1
    shader_insts: int = 0


class TraversalJob:
    """One query's traversal: steps to replay plus its functional result."""

    __slots__ = ("query_id", "steps", "result", "warp_buffer_reads")

    def __init__(self, query_id: int, steps: Sequence[Step], result: Any):
        self.query_id = query_id
        self.steps: List[Step] = list(steps)
        self.result = result
        # Each step reads the ray entry and writes state back (energy model).
        self.warp_buffer_reads = 2 * len(self.steps)

    @property
    def node_fetches(self) -> int:
        return sum(1 for s in self.steps if s.address >= 0)

    def op_counts(self) -> dict:
        counts = {}
        for step in self.steps:
            counts[step.op] = counts.get(step.op, 0) + step.count
        return counts

    def __repr__(self) -> str:
        return (
            f"TraversalJob(q={self.query_id}, steps={len(self.steps)})"
        )
