"""B-Tree / B*Tree / B+Tree query workloads (§IV-A).

The paper queries 1M random keys against trees of 10k-4M keys; the
scaled defaults here preserve the queries-per-key ratios and tree
depths (see DESIGN.md §6).  Golden results come from plain set
membership.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.kernels.btree_search import BTreeKernelArgs, build_btree_jobs
from repro.memsys.memory_image import AddressSpace
from repro.rta.traversal import TraversalJob
from repro.trees import BPlusTree, BStarTree, BTree
from repro.trees.layout import TreeImage

VARIANTS = {
    "btree": BTree,
    "bstar": BStarTree,
    "bplus": BPlusTree,
}


@dataclass
class BTreeWorkload:
    """One B-Tree query experiment instance."""

    variant: str
    tree: object
    image: TreeImage
    queries: List[int]
    golden: List[bool]
    space: AddressSpace
    query_buf: int
    result_buf: int
    # Job lowering is pure per (tree, queries, flavor); cache it across
    # repeated runs of the same workload object.
    _jobs_cache: Dict[str, List[TraversalJob]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _stream_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False)
    #: bumped by every image refresh after structural mutation; the exec
    #: build cache refuses to persist a workload with nonzero epoch.
    mutation_epoch: int = field(default=0, init=False, compare=False)

    def kernel_args(self, jobs: Sequence[TraversalJob] = ()) -> BTreeKernelArgs:
        return BTreeKernelArgs(
            tree=self.tree,
            queries=self.queries,
            query_buf=self.query_buf,
            result_buf=self.result_buf,
            jobs=list(jobs),
            stream_cache=self._stream_cache,
        )

    def jobs(self, flavor: str) -> List[TraversalJob]:
        cached = self._jobs_cache.get(flavor)
        if cached is None:
            cached = self._jobs_cache[flavor] = build_btree_jobs(
                self.tree, self.queries, flavor=flavor)
        return cached

    @property
    def n_queries(self) -> int:
        return len(self.queries)


def make_btree_workload(variant: str = "btree", n_keys: int = 16_384,
                        n_queries: int = 8_192, seed: int = 0,
                        hit_fraction: float = 0.5,
                        churn: Optional[str] = None) -> BTreeWorkload:
    """Build a tree of ``n_keys`` random keys plus a random query stream.

    ``hit_fraction`` of the queries are present keys; the rest miss, as
    with the paper's uniformly random key queries.  ``churn`` (a
    ``<mix>@<writes>`` spec, see :func:`repro.mutation.parse_churn`)
    pre-ages the tree with a seeded write burst — the campaign axis for
    measuring decayed-index serving.
    """
    if variant not in VARIANTS:
        raise ConfigurationError(
            f"variant must be one of {sorted(VARIANTS)}, got {variant!r}"
        )
    if not 0 <= hit_fraction <= 1:
        raise ConfigurationError("hit_fraction must be in [0, 1]")
    rng = random.Random(seed)
    key_space = max(4 * n_keys, n_keys + n_queries + 1)
    keys = rng.sample(range(key_space), n_keys)
    tree = VARIANTS[variant].bulk_load(sorted(keys), seed=seed)

    present = set(keys)
    queries: List[int] = []
    for _ in range(n_queries):
        if rng.random() < hit_fraction:
            queries.append(keys[rng.randrange(n_keys)])
        else:
            while True:
                q = rng.randrange(key_space)
                if q not in present:
                    queries.append(q)
                    break
    golden = [q in present for q in queries]

    space = AddressSpace()
    image = space.place_tree(tree.nodes())
    query_buf = space.alloc(4 * n_queries, align=128)
    result_buf = space.alloc(4 * n_queries, align=128)
    workload = BTreeWorkload(variant, tree, image, queries, golden, space,
                             query_buf, result_buf)
    if churn is not None:
        from repro.mutation import apply_churn
        apply_churn(workload, "point", churn, seed=seed + 7)
    return workload


def verify_results(workload: BTreeWorkload, results: Dict[int, bool]) -> None:
    """Raise AssertionError unless results match the golden membership."""
    assert len(results) == workload.n_queries, (
        f"expected {workload.n_queries} results, got {len(results)}"
    )
    for tid, expected in enumerate(workload.golden):
        assert results[tid] == expected, (
            f"query {tid} ({workload.queries[tid]}): "
            f"got {results[tid]}, expected {expected}"
        )
