"""Warps: bundles of thread generators executed in SIMT lockstep."""

from typing import Any, Generator, List, Optional, Sequence

from repro.errors import SimulationError
from repro.gpu.isa import OP_TYPES


class Warp:
    """Up to ``warp_size`` thread generators plus their pending ops."""

    def __init__(self, warp_id: int, threads: Sequence[Generator]):
        self.warp_id = warp_id
        self.threads: List[Generator] = list(threads)
        self.pending: List[Optional[Any]] = [None] * len(self.threads)

    def prime(self) -> None:
        """Advance every thread to its first op."""
        for tid in range(len(self.threads)):
            self.pending[tid] = self._advance(tid, None)

    def _advance(self, tid: int, value: Any):
        try:
            op = self.threads[tid].send(value)
        except StopIteration:
            return None
        if not isinstance(op, OP_TYPES):
            raise SimulationError(
                f"thread yielded {op!r}; kernels must yield ISA descriptors"
            )
        return op

    def live_groups(self):
        """Bucket live threads by tag; returns {tag: [tid, ...]}."""
        groups = {}
        for tid, op in enumerate(self.pending):
            if op is not None:
                groups.setdefault(op.tag, []).append(tid)
        return groups

    def step(self, tids: Sequence[int], results) -> None:
        """Advance the given threads past their current op."""
        for tid in tids:
            self.pending[tid] = self._advance(tid, results.get(tid))

    @property
    def alive(self) -> bool:
        return any(op is not None for op in self.pending)
