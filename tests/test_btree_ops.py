"""Tests for B-Tree deletion, rebalancing, and range scans."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import BPlusTree, BStarTree, BTree

ALL_VARIANTS = [BTree, BStarTree, BPlusTree]


@pytest.fixture(params=ALL_VARIANTS, ids=lambda c: c.__name__)
def variant(request):
    return request.param


class TestDelete:
    def test_delete_missing_raises(self, variant):
        tree = variant.bulk_load([1, 2, 3])
        with pytest.raises(KeyError):
            tree.delete(99)

    def test_delete_then_not_found(self, variant):
        tree = variant.bulk_load(list(range(100)))
        tree.delete(42)
        assert not tree.search(42).found
        assert tree.search(41).found and tree.search(43).found
        assert len(tree) == 99

    def test_delete_everything(self, variant):
        keys = list(range(200))
        tree = variant.bulk_load(keys)
        rng = random.Random(1)
        rng.shuffle(keys)
        for i, key in enumerate(keys):
            tree.delete(key)
            if i % 37 == 0 and len(tree) > tree.order:
                tree.check_invariants()
        assert len(tree) == 0
        assert tree.keys_in_order() == []

    def test_interleaved_insert_delete(self, variant):
        tree = variant()
        rng = random.Random(2)
        alive = set()
        for step in range(2000):
            if alive and rng.random() < 0.4:
                key = rng.choice(sorted(alive))
                tree.delete(key)
                alive.discard(key)
            else:
                key = rng.randrange(100_000)
                if key not in alive:
                    tree.insert(key)
                    alive.add(key)
        assert tree.keys_in_order() == sorted(alive)
        if len(alive) > tree.order:
            tree.check_invariants()

    def test_rebalance_preserves_order(self, variant):
        tree = variant.bulk_load(list(range(0, 1000, 3)))
        for key in range(0, 500, 3):
            tree.delete(key)
        keys = tree.keys_in_order()
        assert keys == sorted(keys) == list(range(501, 1000, 3))


class TestRangeScan:
    def test_scan_matches_filter(self, variant):
        keys = sorted(random.Random(3).sample(range(10_000), 1500))
        tree = variant.bulk_load(keys)
        for lo, hi in ((0, 10_000), (500, 600), (9_990, 10_000), (42, 42)):
            assert tree.range_scan(lo, hi) == \
                [k for k in keys if lo <= k <= hi]

    def test_empty_interval(self, variant):
        tree = variant.bulk_load([1, 5, 9])
        assert tree.range_scan(6, 8) == []
        assert tree.range_scan(10, 5) == []

    def test_scan_beyond_max(self, variant):
        tree = variant.bulk_load([1, 5, 9])
        assert tree.range_scan(100, 200) == []

    def test_leaf_chain_complete_after_inserts(self, variant):
        tree = variant()
        for key in random.Random(4).sample(range(5000), 800):
            tree.insert(key)
        assert tree.range_scan(0, 5000) == tree.keys_in_order()

    def test_leaf_chain_survives_deletes(self, variant):
        keys = list(range(300))
        tree = variant.bulk_load(keys)
        for key in range(0, 300, 2):
            tree.delete(key)
        assert tree.range_scan(0, 300) == list(range(1, 300, 2))


class TestDeleteChurnSoak:
    """Long delete-heavy churn: invariants plus fresh-build equality.

    This is the serving-layer contract (MODEL.md §14) exercised at the
    tree level: after any prefix of an online write stream, the mutated
    tree must answer exactly like a from-scratch bulk load over the
    same live set.
    """

    STEPS = 1200

    def _soak(self, variant, seed, delete_bias):
        tree = variant.bulk_load(list(range(0, 3000, 3)))
        rng = random.Random(seed)
        alive = set(tree.keys_in_order())
        for step in range(self.STEPS):
            if alive and rng.random() < delete_bias:
                key = rng.choice(sorted(alive))
                tree.delete(key)
                alive.discard(key)
            else:
                key = rng.randrange(12_000)
                if key not in alive:
                    tree.insert(key)
                    alive.add(key)
            if step % 97 == 0:
                if len(tree) > tree.order:
                    tree.check_invariants()
                assert tree.keys_in_order() == sorted(alive)
        # Fresh-build oracle: bulk load over the live set answers the
        # same membership and range questions as the churned tree.
        oracle = variant.bulk_load(sorted(alive))
        assert tree.keys_in_order() == oracle.keys_in_order()
        probes = random.Random(seed + 1).sample(range(12_000), 200)
        for key in probes:
            assert tree.search(key).found == oracle.search(key).found
        for lo in range(0, 12_000, 1500):
            assert tree.range_scan(lo, lo + 1499) == \
                oracle.range_scan(lo, lo + 1499)
        if len(tree) > tree.order:
            tree.check_invariants()

    def test_delete_heavy_soak(self, variant):
        self._soak(variant, seed=11, delete_bias=0.65)

    def test_balanced_churn_soak(self, variant):
        self._soak(variant, seed=12, delete_bias=0.5)

    def test_mutator_soak_matches_fresh_build(self, variant):
        """The serving-layer BTreeMutator keeps tree + golden oracle in
        lockstep through a delete-heavy stream."""
        from repro.harness.runner import build_workload
        from repro.mutation import make_mutator

        wl = build_workload("btree", {"n_keys": 600, "n_queries": 96,
                                      "seed": 5})
        if type(wl.tree) is not variant:
            wl.tree = variant.bulk_load(wl.tree.keys_in_order())
        mutator = make_mutator("point", wl)
        rng = random.Random(31)
        ops = ["delete", "delete", "insert", "update"]
        for step in range(500):
            mutator.apply(ops[step % len(ops)], rng)
        fresh = mutator.fresh_tree()
        assert wl.tree.keys_in_order() == fresh.keys_in_order()
        for qid, key in enumerate(wl.queries):
            assert wl.tree.search(key).found == wl.golden[qid]
            assert fresh.search(key).found == wl.golden[qid]
        if len(wl.tree) > wl.tree.order:
            wl.tree.check_invariants()


@given(st.sets(st.integers(min_value=0, max_value=10**6), min_size=2,
               max_size=250),
       st.sampled_from(ALL_VARIANTS),
       st.integers(min_value=0, max_value=10**4))
@settings(max_examples=40, deadline=None)
def test_property_delete_half_keeps_rest(keys, variant, seed):
    keys = sorted(keys)
    tree = variant.bulk_load(keys)
    rng = random.Random(seed)
    doomed = set(rng.sample(keys, len(keys) // 2))
    for key in doomed:
        tree.delete(key)
    survivors = [k for k in keys if k not in doomed]
    assert tree.keys_in_order() == survivors
    for key in survivors[:20]:
        assert tree.search(key).found
    for key in list(doomed)[:20]:
        assert not tree.search(key).found
    assert tree.range_scan(0, 10**6) == survivors
