#!/usr/bin/env python3
"""Mixed read/write serving benchmark → ``BENCH_mutate.json``.

Runs the open-loop loadtest (``repro.serve.loadtest``) with a seeded
write stream (``repro.mutation``) interleaved into the read load, per
platform and per churn level, and records what mutation costs:

* **Virtual-time results** — read latency percentiles with and without
  churn, writes applied, refit/rebuild counts, and the quality decay
  curve (``decay_peak`` at the worst point of the run, ``decay_final``
  after maintenance recovers).  Deterministic for a given seed/profile:
  drift here means the mutation *model* changed, not the machine.
* **Host wall time** (``wall_s``, min over ``--reps``) — how long the
  churned loadtest takes to simulate, tracking mutation-path simulator
  throughput the way BENCH_serve tracks the read path.

Every churn leg deep-copies the pristine indexes, so legs are
independent and the committed baseline self-compares clean under
``repro bench --check``.

Non-gating for cross-machine timings: CI runs this in the
informational perf-smoke job; the bench-gate job only self-compares
the committed JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_mutation.py \
        --out BENCH_mutate.json --scale smoke --reps 2 \
        --platforms gpu,tta,ttaplus --write-rates 0,150,450
"""

import argparse
import copy
import json
import pathlib
import platform as platform_mod
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(_ROOT / "src"))

from repro import __version__  # noqa: E402
from repro.mutation import (  # noqa: E402
    MutationConfig,
    WriteProfile,
    parse_rebuild_policy,
)
from repro.serve import (  # noqa: E402
    SERVE_SCALES,
    BatchPolicy,
    LaunchBackend,
    LoadProfile,
    build_resident_index,
    run_loadtest,
)
from repro.sim import scheduler_fingerprint  # noqa: E402

DEFAULT_PLATFORMS = "gpu,tta,ttaplus"
#: Total write rates (writes/second) per churn leg; 0 is the read-only
#: baseline.  The mix at rate w is 2/3 inserts, 1/3 deletes.
DEFAULT_WRITE_RATES = "0,150,450"


def _mutation_for(rate: float, seed: int, policy_text: str,
                  refit_threshold: int) -> MutationConfig:
    mix = {"insert": 2.0 * rate / 3.0, "delete": rate / 3.0}
    return MutationConfig(
        write=WriteProfile(mix=mix, seed=seed),
        policy=parse_rebuild_policy(policy_text),
        refit_threshold=refit_threshold)


def bench(scale: str, platforms, write_rates, duration: float,
          warmup: float, qps: float, seed: int, reps: int,
          rebuild_policy: str, refit_threshold: int) -> dict:
    indexes = {}
    for cls in ("point", "range", "knn", "radius"):
        indexes[cls] = build_resident_index(cls, SERVE_SCALES[scale][cls])
    profile = LoadProfile(qps=qps, duration_s=duration, warmup_s=warmup,
                          seed=seed)
    policy = BatchPolicy(max_batch=32, max_wait_s=2e-3)

    points = {}
    for platform in platforms:
        backend = LaunchBackend(platform)
        # Keyed by churn level (not a list): the bench differ flattens
        # dict leaves only, so this shape is what lets --check gate the
        # virtual-time latency and decay numbers.
        rows = {}
        for rate in write_rates:
            mutation = None if rate <= 0 else _mutation_for(
                rate, seed, rebuild_policy, refit_threshold)
            walls, report = [], None
            for _ in range(reps):
                leg_indexes = indexes if mutation is None \
                    else copy.deepcopy(indexes)
                started = time.perf_counter()
                report = run_loadtest(platform, leg_indexes, profile,
                                      policy=policy, backend=backend,
                                      mutation=mutation)
                walls.append(time.perf_counter() - started)
            doc = report.to_dict()
            row = {
                "write_rate": rate,
                "achieved_qps": doc["achieved_qps"],
                "p50_ms": doc["latency_ms"]["p50_ms"],
                "p99_ms": doc["latency_ms"]["p99_ms"],
                "served": doc["served"],
                "sim_cycles": doc["sim_cycles"],
                "wall_s": min(walls),
                "wall_reps": walls,
            }
            if mutation is not None:
                summary = doc["mutation"]
                refits = sum(c["refits"]
                             for c in summary["per_class"].values())
                rebuilds = sum(c["rebuilds"]
                               for c in summary["per_class"].values())
                decays = [b["decay_ratio"] for b in summary["churn_curve"]
                          if b["decay_ratio"] is not None]
                row.update({
                    "writes_applied": summary["writes_applied"],
                    "refits": refits,
                    "rebuilds": rebuilds,
                    "decay_peak": max(decays) if decays else 1.0,
                    "decay_final": decays[-1] if decays else 1.0,
                })
            rows[f"churn_{rate:g}"] = row
            extra = "" if mutation is None else (
                f", {row['writes_applied']:4d}w/"
                f"{row['refits']}rf/{row['rebuilds']}rb, decay peak "
                f"{row['decay_peak']:.3f} final {row['decay_final']:.3f}")
            print(f"{platform:8s} churn {rate:5g}/s: p50 "
                  f"{row['p50_ms']:.3f}ms, p99 {row['p99_ms']:.3f}ms, "
                  f"wall {row['wall_s']:.2f}s{extra}", file=sys.stderr)
        points[platform] = rows

    return {
        "profile": {"qps": qps, "duration_s": duration,
                    "warmup_s": warmup, "seed": seed,
                    "mix": dict(profile.mix)},
        "policy": {"max_batch": policy.max_batch,
                   "max_wait_s": policy.max_wait_s},
        "mutation": {"write_rates": list(write_rates),
                     "rebuild_policy": rebuild_policy,
                     "refit_threshold": refit_threshold},
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_mutate.json"))
    parser.add_argument("--scale", default="smoke",
                        choices=sorted(SERVE_SCALES))
    parser.add_argument("--platforms", default=DEFAULT_PLATFORMS)
    parser.add_argument("--write-rates", default=DEFAULT_WRITE_RATES)
    parser.add_argument("--qps", type=float, default=1000.0)
    parser.add_argument("--duration", type=float, default=0.25)
    parser.add_argument("--warmup", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument("--rebuild-policy", default="writes:64")
    parser.add_argument("--refit-threshold", type=int, default=16)
    args = parser.parse_args(argv)

    platforms = [p.strip() for p in args.platforms.split(",") if p.strip()]
    rates = [float(r) for r in args.write_rates.split(",") if r.strip()]
    doc = {
        "schema": 1,
        "generated_unix": time.time(),
        "package_version": __version__,
        "scheduler_fingerprint": scheduler_fingerprint(),
        "python": platform_mod.python_version(),
        "platform": platform_mod.platform(),
        "scale": args.scale,
        "reps": args.reps,
    }
    doc.update(bench(args.scale, platforms, rates, args.duration,
                     args.warmup, args.qps, args.seed, args.reps,
                     args.rebuild_policy, args.refit_threshold))
    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(f"[bench_mutation] written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
