#!/usr/bin/env python3
"""Campaign-scheduler benchmark → ``BENCH_campaign.json``.

Three sections:

1. **Lease microbenchmark** — claims/sec and steals/sec of the atomic
   lease-file protocol (:mod:`repro.campaign.leases`), isolating the
   filesystem rendezvous cost from the simulations it schedules.

2. **Campaign scaling** — one 32-point factorial run table (B-Tree
   sizes × query counts × platforms × dataset-resample reps) drained
   cold three ways: one worker, ``--workers N`` local processes, and a
   re-run over the completed directory (which must execute nothing).
   Every drain is checked for **bit-identical results**: the manifest's
   ``result_fingerprint`` must agree across worker counts, or this
   harness exits nonzero — speed that changes answers is not speed.

3. **Resume overhead** — drain half the table, then measure the time
   for a full run to pick up the remainder (the crash-recovery path).

The minimum over repetitions is reported for each wall time, regimes
interleaved within each repetition so machine drift cannot bias the
comparison.  ``--assert-speedup X`` exits nonzero when the multi-worker
speedup falls below ``X`` — meaningful only on hosts with at least
``--workers`` cores, so it is an explicit opt-in (CI runs it on
multi-core runners; the committed baseline records whatever the
baseline host could do).

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py \
        --out BENCH_campaign.json --scale smoke --reps 2 --workers 4
"""

import argparse
import json
import os
import pathlib
import platform
import shutil
import sys
import tempfile
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(_ROOT / "src"))

from repro import __version__  # noqa: E402
from repro.campaign import CampaignSpec, LeaseBoard, run_campaign  # noqa: E402
from repro.exec.cache import ResultCache  # noqa: E402
from repro.sim import scheduler_fingerprint  # noqa: E402

#: Run-table sizes per --scale; both expand to kinds the behavioral
#: simulator drains in well under a second per point.
SCALES = {
    "smoke": {"n_keys": [2048, 4096], "n_queries": [512],
              "platforms": ["gpu", "tta"], "reps": 2},        # 8 points
    "small": {"n_keys": [2048, 4096, 8192, 16384],
              "n_queries": [1024, 2048],
              "platforms": ["gpu", "tta"], "reps": 2},        # 32 points
}


def table_for(scale: str) -> CampaignSpec:
    cfg = SCALES[scale]
    return CampaignSpec.from_dict({
        "name": f"bench-{scale}",
        "workloads": [{"kind": "btree",
                       "params": {"n_keys": cfg["n_keys"],
                                  "n_queries": cfg["n_queries"]}}],
        "platforms": cfg["platforms"],
        "reps": cfg["reps"],
    })


# -- section 1: lease microbenchmark ------------------------------------------
def lease_microbench(n: int, reps: int) -> dict:
    claims = steals = 0.0
    for _ in range(reps):
        with tempfile.TemporaryDirectory() as tmp:
            board = LeaseBoard(tmp, "bench", ttl_s=300.0)
            t0 = time.perf_counter()
            for i in range(n):
                board.claim(f"k{i}")
            claims = max(claims, n / (time.perf_counter() - t0))
            # Expire everything (content clock and mtime both count),
            # then steal it all back.
            past = time.time() - 9999
            for path in board.root.glob("*.json"):
                lease = json.loads(path.read_text())
                lease["acquired"] = past
                path.write_text(json.dumps(lease))
                os.utime(path, (past, past))
            thief = LeaseBoard(tmp, "thief", ttl_s=300.0)
            t0 = time.perf_counter()
            for i in range(n):
                thief.steal(f"k{i}")
            steals = max(steals, n / (time.perf_counter() - t0))
            assert thief.stolen == n
    return {"n_leases": n, "claims_per_sec": claims,
            "steals_per_sec": steals}


# -- sections 2 + 3: campaign scaling -----------------------------------------
def _drain(spec: CampaignSpec, workers: int, root: pathlib.Path) -> dict:
    from repro.harness.runner import clear_workload_cache

    # Every drain starts cold: the process-global workload cache would
    # otherwise turn repeat simulations into warm replays and make the
    # 1-worker-vs-N comparison measure nothing but fork overhead.
    # Cleared in the parent before forking, so workers start cold too.
    clear_workload_cache()
    cache = ResultCache(root)
    t0 = time.perf_counter()
    manifest = run_campaign(spec, workers=workers, cache=cache, quiet=True)
    wall = time.perf_counter() - t0
    if manifest["totals"]["failed"] or manifest["totals"]["unresolved"]:
        raise SystemExit(f"benchmark campaign did not drain cleanly: "
                         f"{manifest['totals']}")
    return {"wall_s": wall, "fingerprint": manifest["result_fingerprint"],
            "invocation": manifest["invocation"]}


def campaign_bench(scale: str, workers: int, reps: int,
                   scratch: pathlib.Path) -> dict:
    spec = table_for(scale)
    n_points = len(spec.expand())
    one, many, rerun, resume = [], [], [], []
    fingerprints = set()
    for rep in range(reps):
        for label, runs in (("w1", one), (f"w{workers}", many)):
            root = scratch / f"{label}-r{rep}"
            drained = _drain(spec, 1 if label == "w1" else workers, root)
            runs.append(drained["wall_s"])
            fingerprints.add(drained["fingerprint"])
            if label != "w1":
                # Re-run over the completed directory: zero simulations.
                t0 = time.perf_counter()
                again = _drain(spec, 1, root)
                rerun.append(time.perf_counter() - t0)
                if again["invocation"]["executed"]:
                    raise SystemExit("re-run executed simulations; the "
                                     "records ledger is broken")
                fingerprints.add(again["fingerprint"])
            shutil.rmtree(root)
        # Resume path: half the table drained, then a full run.
        root = scratch / f"resume-r{rep}"
        cache = ResultCache(root)
        from repro.campaign import init_campaign, run_worker
        directory = init_campaign(spec, cache=cache)
        run_worker(directory, worker_id="victim", cache=cache,
                   max_points=n_points // 2, quiet=True)
        t0 = time.perf_counter()
        drained = _drain(spec, 1, root)
        resume.append(time.perf_counter() - t0)
        fingerprints.add(drained["fingerprint"])
        shutil.rmtree(root)
    if len(fingerprints) != 1:
        raise SystemExit(f"result fingerprints diverged across drains: "
                         f"{sorted(fingerprints)}")
    wall_1w, wall_mw = min(one), min(many)
    return {
        "points": n_points,
        "workers": workers,
        "wall_1w_s": wall_1w,
        "wall_1w_reps": one,
        "wall_mw_s": wall_mw,
        "wall_mw_reps": many,
        "speedup": wall_1w / wall_mw if wall_mw else 0.0,
        "rerun_s": min(rerun),
        "rerun_reps": rerun,
        "resume_half_s": min(resume),
        "resume_half_reps": resume,
        "result_fingerprint": fingerprints.pop(),
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=pathlib.Path, default=None)
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument("--reps", type=int, default=2)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--lease-n", type=int, default=2000)
    ap.add_argument("--assert-speedup", type=float, default=None,
                    metavar="X",
                    help="exit nonzero unless multi-worker speedup >= X "
                         "(only meaningful on a host with >= --workers "
                         "cores)")
    args = ap.parse_args()

    doc = {
        "schema": "bench-campaign-v1",
        "generated_unix": time.time(),
        "package_version": __version__,
        "scheduler_fingerprint": scheduler_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": args.scale,
        "reps": args.reps,
        "cpus": os.cpu_count(),
    }
    doc["leases"] = lease_microbench(args.lease_n, args.reps)
    with tempfile.TemporaryDirectory() as scratch:
        doc["campaign"] = campaign_bench(args.scale, args.workers,
                                         args.reps,
                                         pathlib.Path(scratch))

    camp = doc["campaign"]
    print(f"[bench] {camp['points']} points: 1 worker {camp['wall_1w_s']:.2f}s, "
          f"{camp['workers']} workers {camp['wall_mw_s']:.2f}s "
          f"(speedup {camp['speedup']:.2f}x) on {doc['cpus']} cpu(s)")
    print(f"[bench] re-run {camp['rerun_s']:.3f}s (0 simulations), "
          f"resume-from-half {camp['resume_half_s']:.2f}s")
    print(f"[bench] leases: {doc['leases']['claims_per_sec']:.0f} claims/s, "
          f"{doc['leases']['steals_per_sec']:.0f} steals/s")
    print(f"[bench] results bit-identical across drains "
          f"({camp['result_fingerprint'][:16]})")

    if args.out:
        args.out.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"[bench] wrote {args.out}")
    if args.assert_speedup is not None and \
            camp["speedup"] < args.assert_speedup:
        print(f"[bench] FAIL: speedup {camp['speedup']:.2f}x < "
              f"required {args.assert_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
