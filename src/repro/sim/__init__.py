"""Discrete-event simulation kernel.

Every timing model in this package (SIMT cores, caches, DRAM, RTA/TTA/TTA+
pipelines) is built on the primitives exported here:

* :class:`~repro.sim.engine.Simulator` — the event queue and process runner.
* :class:`~repro.sim.resources.PipelinedUnit` /
  :class:`~repro.sim.resources.Timeline` /
  :class:`~repro.sim.resources.ThroughputResource` — contended resources
  modelled as occupancy timelines at cycle resolution.
* :mod:`~repro.sim.stats` — counters, occupancy and latency trackers used
  to produce the paper's utilization figures.
"""

from repro.sim.engine import Signal, Simulator
from repro.sim.resources import PipelinedUnit, ThroughputResource, Timeline
from repro.sim.stats import Counter, LatencySampler, OccupancyTracker

__all__ = [
    "Simulator",
    "Signal",
    "Timeline",
    "PipelinedUnit",
    "ThroughputResource",
    "Counter",
    "OccupancyTracker",
    "LatencySampler",
]
