"""Tests for the TTA+ µop assembler (the Listing 1 .asm format)."""

import pytest

from repro.core.ttaplus.asm import (
    RAY_BOX_ASM,
    AssembledProgram,
    assemble,
    assemble_file,
)
from repro.core.ttaplus.programs import PROGRAMS
from repro.errors import ProgramError


class TestAssemble:
    def test_simple_program(self):
        prog = assemble("p", "SUB a, b, c\nDOT d, a, a\nCMP r, d, t")
        assert [u.unit for u in prog.uops] == ["vec3_addsub", "dot",
                                               "vec3_cmp"]
        assert prog.operands[0] == "a, b, c"

    def test_repeat_syntax(self):
        prog = assemble("p", "MUL x3 t, a, b")
        assert [u.unit for u in prog.uops] == ["mul"] * 3

    def test_comments_and_blanks_ignored(self):
        prog = assemble("p", """
        ; a comment
        SQRT r, x   # trailing comment

        XFORM o, m, r
        """)
        assert [u.unit for u in prog.uops] == ["sqrt", "rxform"]

    def test_case_insensitive_mnemonics(self):
        prog = assemble("p", "sub a\nMaxMin b")
        assert [u.unit for u in prog.uops] == ["vec3_addsub", "maxmin"]

    def test_term_records_pc(self):
        prog = assemble("p", "CMP a\nOR b\nTERM b")
        assert prog.terminate_pc == 1

    def test_term_before_uops_rejected(self):
        with pytest.raises(ProgramError, match="TERM before"):
            assemble("p", "TERM x")

    def test_duplicate_term_rejected(self):
        with pytest.raises(ProgramError, match="duplicate TERM"):
            assemble("p", "CMP a\nTERM a\nTERM a")

    def test_unknown_mnemonic(self):
        with pytest.raises(ProgramError, match="FMA"):
            assemble("p", "FMA a, b, c")

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            assemble("p", "; nothing here\n")

    def test_bad_repeat(self):
        with pytest.raises(ProgramError):
            assemble("p", "MUL x0 t")

    def test_error_reports_line_number(self):
        with pytest.raises(ProgramError, match=":3:"):
            assemble("p", "SUB a\nMUL b\nWARP c")


class TestRayBoxAsm:
    def test_matches_table3_raybox(self):
        """RayBoxProg.asm must assemble to the Table III Ray-Box row."""
        prog = assemble("raybox_asm", RAY_BOX_ASM)
        assert len(prog) == 19
        assert prog.unit_counts() == PROGRAMS["raybox"].unit_counts()

    def test_terminate_pc_is_last_uop(self):
        prog = assemble("raybox_asm", RAY_BOX_ASM)
        assert prog.terminate_pc == len(prog) - 1


class TestAssembleFile:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "MyTest.asm"
        path.write_text("SUB a, b, c\nDOT d, a, a\n")
        prog = assemble_file(str(path))
        assert prog.name == "MyTest"
        assert len(prog) == 2
        assert isinstance(prog, AssembledProgram)

    def test_runs_on_backend(self, tmp_path):
        """An assembled program is executable by the TTA+ backend."""
        from repro.core.ttaplus import TTAPlusBackend
        from repro.core.ttaplus.programs import register_program
        from repro.gpu.config import GPUConfig
        from repro.sim import Simulator

        prog = assemble("asm_backend_test", "SUB a\nSQRT b\nCMP c")
        register_program(prog, replace=True)
        backend = TTAPlusBackend(Simulator(), GPUConfig())
        elapsed = {}

        def proc():
            start = backend.sim.now
            yield from backend.execute(backend.sim.now,
                                       "uop:asm_backend_test", 1)
            elapsed["t"] = backend.sim.now - start

        backend.sim.spawn(proc())
        backend.sim.run()
        # SUB(4) + SQRT(11) + CMP(1) + hand-offs: well over 16 cycles.
        assert elapsed["t"] >= 16
