"""Ablation: TTA+ design knobs the paper defers to future work.

§V-A/§V-C2 call out three open knobs: the number of parallel OP units
("strategically reducing the number of parallel operation units"),
the interconnect cost, and prefetching ([16]).  This bench sweeps all
three on the B-Tree workload.
"""

from repro.core.ttaplus import make_ttaplus_factory
from repro.gpu import GPU
from repro.core.ttaplus.opunits import OP_UNIT_LATENCIES
from repro.harness.results import Table
from repro.harness.runner import run_btree, scaled_config_for
from repro.kernels.btree_search import btree_accel_kernel
from repro.workloads import make_btree_workload

SIZES = {"smoke": (2048, 2048), "small": (16384, 8192),
         "large": (65536, 16384)}


def _run(wl, cfg, **knobs):
    gpu = GPU(cfg, accelerator_factory=make_ttaplus_factory(**knobs))
    args = wl.kernel_args(jobs=wl.jobs("ttaplus"))
    return gpu.launch(btree_accel_kernel, wl.n_queries, args=args)


def test_ablation_ttaplus(benchmark, scale, save_table):
    n_keys, n_queries = SIZES.get(scale, SIZES["small"])

    def build():
        wl = make_btree_workload("btree", n_keys, n_queries, seed=1)
        cfg = scaled_config_for(wl.image.size_bytes)
        base_gpu = run_btree(wl, "gpu", config=cfg)
        table = Table(
            "Ablation — TTA+ OP-unit sets, interconnect, prefetch (B-Tree)",
            ["knob", "value", "cycles", "speedup_vs_gpu"],
        )
        for sets in (1, 2, 4):
            copies = {unit: sets for unit in OP_UNIT_LATENCIES}
            stats = _run(wl, cfg, copies=copies)
            table.add_row("op_unit_sets", sets, stats.cycles,
                          base_gpu.cycles / stats.cycles)
        for label, knobs in (("default", {}),
                             ("perfect_icnt", {"perfect_icnt": True})):
            stats = _run(wl, cfg, **knobs)
            table.add_row("interconnect", label, stats.cycles,
                          base_gpu.cycles / stats.cycles)
        for depth in (0, 1, 2):
            stats = _run(wl, cfg, prefetch_depth=depth)
            table.add_row("prefetch_depth", depth, stats.cycles,
                          base_gpu.cycles / stats.cycles)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("ablation_ttaplus", table)
    rows = {(r[0], r[1]): r for r in table.rows}
    # More OP-unit sets never hurt; fewer sets cost at most moderately.
    assert rows[("op_unit_sets", 4)][2] <= rows[("op_unit_sets", 1)][2]
    # A free interconnect helps (bounds the ICNT share of Fig. 18).
    assert rows[("interconnect", "perfect_icnt")][2] <= \
        rows[("interconnect", "default")][2]
    # Prefetching node fetches hides memory latency.
    assert rows[("prefetch_depth", 1)][2] <= \
        rows[("prefetch_depth", 0)][2] * 1.02
