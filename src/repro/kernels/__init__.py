"""Software kernels: the CUDA-baseline instruction streams.

Each module pairs a *baseline* kernel (the full traversal executed on
the SIMT cores, instruction by instruction) with an *accelerated*
kernel (setup + a single ``traverseTreeTTA``/``traceRay`` AccelCall +
result writeback).  Both replay the same functional traversal, so the
speedups measured between them isolate exactly the three RTA advantages
the paper identifies.
"""

from repro.kernels.btree_search import (
    btree_accel_kernel,
    btree_baseline_kernel,
)
from repro.kernels.nbody_walk import nbody_accel_kernel, nbody_baseline_kernel
from repro.kernels.radius_search import (
    radius_accel_kernel,
    radius_baseline_kernel,
)
from repro.kernels.ray_trace import rt_accel_kernel, rt_baseline_kernel

__all__ = [
    "btree_baseline_kernel",
    "btree_accel_kernel",
    "nbody_baseline_kernel",
    "nbody_accel_kernel",
    "radius_baseline_kernel",
    "radius_accel_kernel",
    "rt_baseline_kernel",
    "rt_accel_kernel",
]
