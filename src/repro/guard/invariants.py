"""Conservation invariants over the simulation's bookkeeping.

Three families, mirroring where work can silently leak in the batched
driver (see ``rta/rta.py``):

* **Job conservation** — every `TraversalJob` handed to ``submit``
  completes exactly once.  The *at-most-once* half is enforced inline
  (``_finish_job`` raises on a duplicate completion); the *at-least-
  once* half is checked here: launched == completed, no query id left
  in a core's pending set, no job stranded in a wake bucket or the
  admission queue.
* **Resource conservation** — every warp-buffer slot claimed is
  vacated; every launched warp retires.
* **Memory balance** — every sector request produced a response
  (``MemoryHierarchy`` counts both sides).

``check_balance`` runs the cheap subset at watchdog checkpoints in
strict mode ("per-epoch"): mid-run the counters need not be equal, but
completions can never exceed launches and a warp buffer can never go
negative or overflow.
"""

from typing import Optional

from repro.errors import InvariantViolation


def quiescence_report(guard) -> Optional[str]:
    """Describe pending work after the event queue drained, or None.

    This is the watchdog's end-of-run stall check (all modes): a
    dropped wake does not spin — the simulation simply goes quiet with
    traversals still in flight — so it can only be seen here.
    """
    for core in guard.cores:
        in_flight = core.jobs_launched - core.jobs_completed
        if in_flight > 0:
            stuck = sorted(core._pending)[:8]
            return (f"accelerator sm{core.sm.sm_id}: {in_flight} traversal "
                    f"job(s) never completed (query ids {stuck})")
        if core._wake:
            cycles = sorted(core._wake)[:8]
            return (f"accelerator sm{core.sm.sm_id}: undrained wake "
                    f"bucket(s) at cycle(s) {cycles}")
        if core._admit_queue:
            head = core._admit_queue[0]
            return (f"accelerator sm{core.sm.sm_id}: "
                    f"{len(core._admit_queue)} job(s) still queued for "
                    f"admission (head: query {head.job.query_id})")
    if guard.n_warps:
        retired = sum(sm._done_count for sm in guard.sms)
        if retired < guard.n_warps:
            return (f"{guard.n_warps - retired} of {guard.n_warps} warps "
                    "never retired")
    return None


def check_conservation(guard) -> None:
    """End-of-run conservation invariants (``on``/``strict`` modes)."""
    for core in guard.cores:
        if core.jobs_completed != core.jobs_launched:
            raise InvariantViolation(
                f"accelerator sm{core.sm.sm_id}: {core.jobs_launched} jobs "
                f"launched but {core.jobs_completed} completed",
                guard.bundle("job-conservation"),
            )
        if core._pending:
            raise InvariantViolation(
                f"accelerator sm{core.sm.sm_id}: query ids "
                f"{sorted(core._pending)[:8]} still pending after all jobs "
                "counted complete",
                guard.bundle("job-conservation"),
            )
        in_use = core.warp_buffer._in_use
        if in_use != 0:
            raise InvariantViolation(
                f"accelerator sm{core.sm.sm_id}: warp buffer leaked "
                f"{in_use} ray slot(s) (capacity "
                f"{core.warp_buffer.capacity})",
                guard.bundle("warp-buffer-leak"),
            )
    hierarchy = guard.hierarchy
    if hierarchy is not None:
        if hierarchy.sector_responses != hierarchy.sector_requests:
            raise InvariantViolation(
                f"memory system: {hierarchy.sector_requests} sector "
                f"requests but {hierarchy.sector_responses} responses",
                guard.bundle("memsys-balance"),
            )


def check_balance(guard) -> None:
    """Mid-run ("per-epoch") balance checks, strict mode only."""
    for core in guard.cores:
        if core.jobs_completed > core.jobs_launched:
            raise InvariantViolation(
                f"accelerator sm{core.sm.sm_id}: {core.jobs_completed} "
                f"completions exceed {core.jobs_launched} launches",
                guard.bundle("job-balance"),
            )
        in_use = core.warp_buffer._in_use
        if in_use < 0 or in_use > core.warp_buffer.capacity:
            raise InvariantViolation(
                f"accelerator sm{core.sm.sm_id}: warp buffer occupancy "
                f"{in_use} outside [0, {core.warp_buffer.capacity}]",
                guard.bundle("warp-buffer-balance"),
            )
    hierarchy = guard.hierarchy
    if hierarchy is not None:
        if hierarchy.sector_responses > hierarchy.sector_requests:
            raise InvariantViolation(
                f"memory system: {hierarchy.sector_responses} responses "
                f"exceed {hierarchy.sector_requests} requests",
                guard.bundle("memsys-balance"),
            )
