"""The accelerator core: admission, traversal replay, shader bounces.

``RTACore`` is attached to an SM and receives work through
``submit(now, jobs)`` (the :class:`~repro.gpu.isa.AccelCall` path).
Each job walks the same state machine:

1. wait for a warp-buffer ray slot,
2. for each step: fetch the node through the RTA memory scheduler,
   then execute the step's operation on the backend (fixed-function
   pools for RTA/TTA, µop programs for TTA+),
3. ``shader`` steps suspend the traversal and occupy the host SM's
   issue port — the expensive intersection-shader bounce that the
   baseline needs for procedural geometry and that TTA+ eliminates.

On the fast engine the state machine is driven directly (the *batched*
path): one launch event admits a whole submission, resource completion
times are computed analytically, and all jobs waking at the same cycle
advance from a single drain event — a per-(core, cycle) wake bucket
instead of one heap event per query per step.  Under the legacy heap
engine (``REPRO_SIM_CORE=legacy``) each job runs as its own generator
process, exactly as the seed engine did.

The submission's signal fires when all of its jobs complete, resuming
the launching warp.
"""

import os
from collections import deque
from typing import Iterable, List

from repro.errors import ConfigurationError, InvariantViolation
from repro.rta.mem_scheduler import RTAMemScheduler
from repro.rta.traversal import Step, TraversalJob
from repro.rta.units import FixedFunctionBackend
from repro.rta.warp_buffer import WarpBuffer
from repro.sim.engine import TIME_EPS, ceil_cycles
from repro.sim.stats import LatencySampler

#: Fixed cost of suspending a traversal and scheduling shader threads on
#: the SM (launch + result return), in cycles each way.
SHADER_HANDOFF_CYCLES = 40


class _Batch:
    """One submission: completion countdown plus the signal to fire."""

    __slots__ = ("remaining", "signal", "jobs")

    def __init__(self, remaining, signal, jobs):
        self.remaining = remaining
        self.signal = signal
        self.jobs = jobs


class _JobRun:
    """Per-job state for the batched driver: where the traversal is.

    ``at`` is the job's *analytic* clock: engine wake-ups are quantized
    to whole cycles, but the traversal chains its resource completion
    times in exact float time (just like the legacy per-job generator,
    which resumed at the float timestamp directly), so rounding never
    compounds across steps.
    """

    __slots__ = ("job", "steps", "idx", "begin", "batch", "chain", "at",
                 "fetched", "done")

    def __init__(self, job, batch, begin):
        self.job = job
        self.steps = job.steps
        self.idx = 0
        self.begin = begin
        self.batch = batch
        self.chain = None  # in-flight TTA+ µop chain, if any
        self.at = begin
        self.fetched = False  # current step's node fetch has completed
        self.done = False  # completion latch (at-most-once invariant)


class RTACore:
    """One accelerator instance (RTA, TTA, or TTA+ depending on backend).

    ``prefetch_depth`` models a treelet prefetcher [16]: while a node is
    being processed, the next ``prefetch_depth`` node fetches of the
    same traversal are issued ahead of time, overlapping their memory
    latency with the current intersection test (one of the
    "architectural improvements" §V-B says compose with TTA+).
    """

    def __init__(self, sm, backend, prefetch_depth: int = 0):
        self.sm = sm
        self.sim = sm.sim
        self.config = sm.config
        self.backend = backend
        self.prefetch_depth = prefetch_depth
        self.warp_buffer = WarpBuffer(self.sim,
                                      self.config.warp_buffer_warps,
                                      self.config.warp_size)
        self.mem = RTAMemScheduler(self.sim, sm.hierarchy, sm.l1,
                                   self.config.mem_scheduler_reqs_per_cycle)
        self.traversal_latency = LatencySampler()
        self.jobs_completed = 0
        self.jobs_launched = 0
        self.steps_advanced = 0  # guard progress counter (monotone)
        self.shader_bounces = 0
        self.shader_cycles = 0.0
        self._busy_jobs = 0
        self._legacy = getattr(self.sim, "legacy_core", False)
        self._chained = hasattr(backend, "begin_chain")
        # Cached tracer (repro.obs); job-phase events ("node_fetch",
        # "shader", "job_done") are emitted here, per-op unit events by
        # the backend's pools.
        self.trace = getattr(self.sim, "tracer", None)
        self._unit = f"rta{sm.sm_id}"
        self._admit_queue = deque()
        self._wake: dict = {}  # cycle -> [_JobRun, ...] awaiting that cycle
        self._pending: set = set()  # query ids launched but not completed
        if os.environ.get("REPRO_FAULTS"):
            from repro.guard.faults import install_env_faults
            install_env_faults(self)

    # -- submission interface (matches gpu.sm expectations) ---------------------
    def submit(self, now: float, jobs: Iterable[TraversalJob]):
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("empty accelerator submission")
        self.jobs_launched += len(jobs)
        self._pending.update(job.query_id for job in jobs)
        done_signal = self.sim.signal()
        launch_at = now + self.config.rta_issue_overhead
        if self._legacy:
            state = {"remaining": len(jobs)}
            for job in jobs:
                self.sim.call_at(launch_at, self._start_job, job, state,
                                 done_signal, jobs)
        else:
            batch = _Batch(len(jobs), done_signal, jobs)
            self.sim.call_at(launch_at, self._launch_batch, batch)
        return done_signal

    # -- batched driver (fast engine) --------------------------------------------
    def _launch_batch(self, batch: _Batch) -> None:
        now = self.sim.now
        warp_buffer = self.warp_buffer
        queue = self._admit_queue
        advance = self._advance_job
        for job in batch.jobs:
            run = _JobRun(job, batch, now)
            if queue or not warp_buffer.try_admit(now):
                queue.append(run)
            else:
                warp_buffer.record_access(writes=1)  # install ray state
                advance(run)

    def _advance_job(self, run: _JobRun) -> None:
        self.steps_advanced += 1
        backend = self.backend
        warp_buffer = self.warp_buffer
        fetch = self.mem.fetch
        wake_at = self._wake_at
        steps = run.steps
        n_steps = len(steps)
        chained = self._chained
        prefetch_depth = self.prefetch_depth
        obs = self.trace
        unit = self._unit
        while True:
            now = run.at
            if run.chain is not None:
                wake = backend.advance_chain(run.chain, now)
                if wake is not None:
                    wake_at(wake, run)
                    return
                run.chain = None
                run.idx += 1
                continue
            idx = run.idx
            if idx >= n_steps:
                break
            step = steps[idx]
            if not run.fetched:
                # Fetch the node, then *park until the data arrives* before
                # touching the backend: issuing the op at the (future)
                # fetch-completion time from within the current event
                # would acquire the FIFO unit timelines out of arrival
                # order and distort contention for every other job.
                address = step.address
                if address >= 0:
                    if prefetch_depth:
                        for ahead in steps[idx + 1: idx + 1 + prefetch_depth]:
                            if ahead.address >= 0:
                                fetch(now, ahead.address, ahead.size)
                    ready = fetch(now, address, step.size)
                else:
                    ready = now
                warp_buffer.record_access(reads=2, writes=1)
                if ready > now:
                    if obs is not None:
                        obs.emit("rta", unit, "node_fetch", now, ready - now,
                                 run.job.query_id)
                    run.fetched = True
                    wake_at(ready, run)
                    return
            run.fetched = False
            op = step.op
            if op == "shader":
                run.idx = idx + 1
                finish = self._shader_finish_at(now, step)
                if obs is not None:
                    obs.emit("rta", unit, "shader", now, finish - now,
                             run.job.query_id)
                wake_at(finish, run)
                return
            if chained:
                chain = backend.begin_chain(op, step.count)
                wake = backend.advance_chain(chain, now)
                if wake is not None:
                    run.chain = chain
                    wake_at(wake, run)
                    return
                run.idx = idx + 1
                continue
            done = backend.finish_at(now, op, step.count)
            run.idx = idx + 1
            if done > now:
                wake_at(done, run)
                return
        self._finish_job(run)

    def _wake_at(self, time, run: _JobRun) -> None:
        """Park ``run`` until (the ceiling cycle of) analytic ``time``.

        All jobs of this core waking at one cycle share a single engine
        event: whole warps of same-latency queries advance per drain.
        The run resumes with ``run.at`` set to the exact float ``time``,
        so quantization affects only event scheduling, not the model.
        """
        run.at = time
        sim = self.sim
        now = sim.now
        # ceil_cycles(time - now), inlined: this runs once or twice per
        # step of every traversal in every accelerated run.
        delta = time - now
        if delta <= 0:
            cycle = now
        else:
            whole = int(delta)
            cycle = now + (whole if delta - whole <= TIME_EPS else whole + 1)
        bucket = self._wake.get(cycle)
        if bucket is None:
            self._wake[cycle] = [run]
            sim.call_at(cycle, self._drain_wake, cycle)
        else:
            bucket.append(run)

    def _drain_wake(self, cycle: int) -> None:
        advance = self._advance_job
        for run in self._wake.pop(cycle):
            advance(run)

    def _finish_job(self, run: _JobRun) -> None:
        if run.done:
            # At-most-once completion: a duplicated finish would vacate
            # a warp-buffer slot twice and double-count the batch.
            diagnostics = {"reason": "duplicate-completion",
                           "cycle": self.sim.now}
            diagnostics.update(self.guard_state())
            raise InvariantViolation(
                f"job {run.job.query_id} completed twice on "
                f"sm{self.sm.sm_id}'s accelerator",
                diagnostics,
            )
        run.done = True
        now = run.at  # analytic completion time (≤ the engine cycle)
        warp_buffer = self.warp_buffer
        warp_buffer.vacate(now)
        if self.trace is not None:
            self.trace.emit("rta", self._unit, "job_done", now, 0.0,
                            run.job.query_id)
        self.traversal_latency.sample(now - run.begin)
        self.jobs_completed += 1
        self._pending.discard(run.job.query_id)
        batch = run.batch
        batch.remaining -= 1
        if batch.remaining == 0:
            batch.signal.fire([j.result for j in batch.jobs])
        queue = self._admit_queue
        if queue and warp_buffer.try_admit(now):
            nxt = queue.popleft()
            nxt.at = now  # the freed slot is taken at the release time
            warp_buffer.record_access(writes=1)
            self._advance_job(nxt)

    def _shader_finish_at(self, now, step: Step):
        """Analytic intersection-shader bounce (see :meth:`_run_shader`)."""
        warp_size = self.config.warp_size
        insts = step.shader_insts * step.count
        self.shader_bounces += step.count
        start = self.sm.issue_port.acquire(
            now + SHADER_HANDOFF_CYCLES,
            max(1.0, insts / warp_size))
        done = max(start + insts, now + insts) + 2 * SHADER_HANDOFF_CYCLES
        self.shader_cycles += done - now
        # Warp-batched: this ray's share of the shader warp's instructions.
        self.sm.stats.count_compute("shader", insts / warp_size, warp_size,
                                    warp_size)
        return done

    # -- per-job processes (legacy heap engine) -----------------------------------
    def _start_job(self, job: TraversalJob, state: dict, done_signal,
                   jobs: List[TraversalJob]) -> None:
        self.sim.spawn(self._run_job(job, state, done_signal, jobs))

    def _run_job(self, job: TraversalJob, state: dict, done_signal,
                 jobs: List[TraversalJob]):
        sim = self.sim
        begin = sim.now
        obs = self.trace
        unit = self._unit
        yield from self.warp_buffer.acquire()
        self.warp_buffer.record_access(writes=1)  # install ray state
        for index, step in enumerate(job.steps):
            if step.address >= 0:
                if self.prefetch_depth:
                    for ahead in job.steps[index + 1:
                                           index + 1 + self.prefetch_depth]:
                        if ahead.address >= 0:
                            self.mem.fetch(sim.now, ahead.address,
                                           ahead.size)
                ready = self.mem.fetch(sim.now, step.address, step.size)
                if ready > sim.now:
                    if obs is not None:
                        obs.emit("rta", unit, "node_fetch", sim.now,
                                 ready - sim.now, job.query_id)
                    yield ready - sim.now
            self.warp_buffer.record_access(reads=2, writes=1)
            self.steps_advanced += 1
            if step.op == "shader":
                shader_from = sim.now
                yield from self._run_shader(step)
                if obs is not None:
                    obs.emit("rta", unit, "shader", shader_from,
                             sim.now - shader_from, job.query_id)
            else:
                yield from self.backend.execute(sim.now, step.op, step.count)
        self.warp_buffer.release()
        if obs is not None:
            obs.emit("rta", unit, "job_done", sim.now, 0.0, job.query_id)
        self.traversal_latency.sample(sim.now - begin)
        self.jobs_completed += 1
        self._pending.discard(job.query_id)
        state["remaining"] -= 1
        if state["remaining"] == 0:
            done_signal.fire([j.result for j in jobs])

    def _run_shader(self, step: Step):
        """Bounce to the SM cores for an intersection shader invocation.

        The driver batches shader invocations from many suspended rays
        into full warps, so the *issue-port* cost is amortized across the
        warp width, while the suspended ray still waits for the handoff
        plus the scalar shader execution.
        """
        sim = self.sim
        warp_size = self.config.warp_size
        insts = step.shader_insts * step.count
        self.shader_bounces += step.count
        start = self.sm.issue_port.acquire(
            sim.now + SHADER_HANDOFF_CYCLES,
            max(1.0, insts / warp_size))
        done = max(start + insts, sim.now + insts) + 2 * SHADER_HANDOFF_CYCLES
        self.shader_cycles += done - sim.now
        # Warp-batched: this ray's share of the shader warp's instructions.
        self.sm.stats.count_compute("shader", insts / warp_size, warp_size,
                                    warp_size)
        yield done - sim.now

    # -- guard interface ----------------------------------------------------------
    def guard_state(self) -> dict:
        """JSON-serializable occupancy snapshot for diagnostic bundles."""
        state = {
            "sm": self.sm.sm_id,
            "jobs_launched": self.jobs_launched,
            "jobs_completed": self.jobs_completed,
            "in_flight": self.jobs_launched - self.jobs_completed,
            "steps_advanced": self.steps_advanced,
            "stuck_jobs": sorted(self._pending)[:16],
            "admit_queue": len(self._admit_queue),
            "wake_buckets": {str(cycle): len(runs)
                             for cycle, runs in sorted(self._wake.items())[:16]},
        }
        state.update(self.warp_buffer.guard_state())
        return state

    def guard_parked(self, now, park_cycles: int):
        """Describe work parked past its budget, or None.

        A wake bucket whose cycle has already passed means its drain
        event was dropped — flagged regardless of budget.  A job at the
        head of the admission queue is allowed to wait ``park_cycles``
        (legitimate under a saturated warp buffer) before being flagged.
        """
        if self._wake:
            stale = min(self._wake)
            if stale < now:
                return (f"accelerator sm{self.sm.sm_id}: wake bucket at "
                        f"cycle {stale} ({len(self._wake[stale])} job(s)) "
                        f"was never drained (now={now})")
        if self._admit_queue:
            head = self._admit_queue[0]
            waited = now - head.begin
            if waited > park_cycles:
                return (f"accelerator sm{self.sm.sm_id}: job "
                        f"{head.job.query_id} parked in the admission queue "
                        f"for {waited:.0f} cycles (budget {park_cycles})")
        return None

    # -- statistics ---------------------------------------------------------------
    def snapshot(self, end: float) -> dict:
        snap = {
            "jobs_completed": self.jobs_completed,
            "traversal_latency_mean": self.traversal_latency.mean,
            "shader_bounces": self.shader_bounces,
            "shader_cycles": self.shader_cycles,
        }
        snap.update(self.warp_buffer.snapshot(end))
        snap.update(self.mem.snapshot(end))
        snap.update(self.backend.snapshot(end))
        return snap


def make_rta_factory(tta: bool = False, latency_overrides=None,
                     prefetch_depth: int = 0):
    """Factory for attaching a baseline RTA (or TTA) to every SM.

    Use with :class:`repro.gpu.GPU`::

        gpu = GPU(config, accelerator_factory=make_rta_factory(tta=True))
    """

    def factory(sm):
        backend = FixedFunctionBackend(sm.sim, sm.config, tta=tta,
                                       latency_overrides=latency_overrides)
        return RTACore(sm, backend, prefetch_depth=prefetch_depth)

    return factory
