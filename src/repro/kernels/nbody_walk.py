"""Barnes-Hut N-Body force-walk kernels (2D and 3D).

The *baseline* follows the Burtscher-Pingali CUDA formulation: the
whole warp walks one union traversal (cells opened if any lane votes to
open), every lane executing every visit predicated — high SIMT
efficiency, extra node work, force math on the cores.

On the accelerators each body walks only *its own* path (the RTA handles
per-ray control flow, advantage (2) of §II-C):

* **TTA** — inner opening tests and leaf screening run as Point-to-Point
  distance ops; the gathered interactions' force math (which needs SQRT)
  runs on the SIMT cores after the traversal returns, one block per
  thread.
* **TTA+** — the force computation itself runs on the accelerator as the
  5-µop leaf program of Table III (3 MUL + SQRT + R-XFORM), keeping the
  whole walk on the accelerator at the price of µop overheads (the
  "particularly sensitive to TTA+ overheads" point of §V-A).
"""

from dataclasses import dataclass, field
from typing import Any, List

from repro.errors import ConfigurationError
from repro.gpu.isa import AccelCall, Compute
from repro.gpu.replay import launch_replayable, value_independent
from repro.kernels import common
from repro.kernels.common import epilogue, prologue, visit_header
from repro.rta.traversal import Step, TraversalJob
from repro.trees.layout import NODE_STRIDE

#: vector subtract + dot + compare of Algorithm 2, scalarized
_DIST_TEST_ALU = 10
#: open-or-approximate branch + child push loop
_OPEN_CONTROL = 4
#: force math: subtract, r^2, rsqrt, scale, accumulate
_FORCE_ALU = 14
_FORCE_SFU = 2  # rsqrt on the special function unit


@dataclass
class NBodyKernelArgs:
    """One launch of the force-computation kernel (one thread per body)."""

    tree: Any
    body_buf: int
    accel_buf: int
    #: per-warp union traces for the baseline (warp-voting walk)
    warp_traces: List[tuple] = field(default_factory=list)
    jobs: List[TraversalJob] = field(default_factory=list)
    #: per-body interaction counts for the TTA post-traversal force block
    interactions: List[int] = field(default_factory=list)
    results: dict = field(default_factory=dict)
    #: extra post-processing instructions fused into the kernel (the
    #: kernel-merging optimization of §V-A); 0 = separate kernels
    fused_post_insts: int = 0
    warp_size: int = 32
    #: workload-owned recording cache for gpu/replay.py
    stream_cache: dict = None


@launch_replayable
@value_independent
def nbody_baseline_kernel(tid: int, args: NBodyKernelArgs):
    """Warp-voting union walk: converged control flow, predicated lanes."""
    body = args.tree.bodies[tid]
    visits = args.warp_traces[tid // args.warp_size]
    yield from prologue(args.body_buf + tid * 16, setup_alu=6)
    for event in visits:
        yield from visit_header(event.node.address, NODE_STRIDE)
        if event.kind == "inner":
            yield Compute(_DIST_TEST_ALU, common.TAG_INNER, kind="alu")
            yield Compute(_OPEN_CONTROL, common.TAG_INNER_NEXT,
                          kind="control")
            if not event.opened:
                # Approximated cell: predicated force math for all lanes.
                yield Compute(_FORCE_ALU, common.TAG_INNER_NEXT, kind="alu")
                yield Compute(_FORCE_SFU, common.TAG_INNER_NEXT, kind="sfu")
        else:
            yield Compute(_FORCE_ALU, common.TAG_LEAF, kind="alu")
            yield Compute(_FORCE_SFU, common.TAG_LEAF, kind="sfu")
    if args.fused_post_insts:
        yield Compute(args.fused_post_insts, common.TAG_EPILOGUE - 1,
                      kind="alu")
    yield from epilogue(args.accel_buf + tid * 12)
    # Functional result from the body's own (exact) walk.
    args.results[tid] = args.tree.force_on(body).acceleration


@launch_replayable
def nbody_accel_kernel(tid: int, args: NBodyKernelArgs):
    yield from prologue(args.body_buf + tid * 16, setup_alu=6)
    yield Compute(3, common.TAG_SETUP + 1, kind="alu")
    acceleration = yield AccelCall(args.jobs[tid], tag=common.TAG_SETUP + 2)
    if args.interactions:
        # TTA path: force math for the gathered interactions on the cores.
        n = args.interactions[tid]
        yield Compute(_FORCE_ALU * n, common.TAG_SETUP + 3, kind="alu")
        yield Compute(_FORCE_SFU * n, common.TAG_SETUP + 3, kind="sfu")
    if args.fused_post_insts:
        # Fused post-processing overlaps with other warps' traversals.
        yield Compute(args.fused_post_insts, common.TAG_EPILOGUE - 1,
                      kind="alu")
    yield from epilogue(args.accel_buf + tid * 12)
    args.results[tid] = acceleration


def build_warp_traces(tree, warp_size: int = 32) -> List[tuple]:
    """Union (warp-voting) traces, one per warp of consecutive bodies."""
    traces = []
    bodies = tree.bodies
    for first in range(0, len(bodies), warp_size):
        traces.append(tree.warp_walk(bodies[first:first + warp_size]))
    return traces


def build_nbody_jobs(tree, flavor: str = "tta"):
    """Lower each body's walk into accelerator steps.

    Returns ``(jobs, interactions)``; ``interactions[i]`` is the number
    of force interactions body ``i`` gathered (used by the TTA kernel's
    post-traversal force block; empty list for TTA+, which computes
    forces on the accelerator).
    """
    if flavor not in ("tta", "ttaplus"):
        raise ConfigurationError(
            f"N-Body needs Point-to-Point support (got flavor {flavor!r})"
        )
    jobs: List[TraversalJob] = []
    interactions: List[int] = []
    for body in tree.bodies:
        walk = tree.force_on(body)
        steps: List[Step] = []
        n_force = 0
        for event in walk.visits:
            if event.kind == "inner":
                op = "point_dist" if flavor == "tta" else "uop:nbody_inner"
                steps.append(Step(event.node.address, NODE_STRIDE, op))
                if not event.opened:
                    n_force += 1
                    if flavor == "ttaplus":
                        steps.append(Step(-1, 0, "uop:nbody_leaf"))
            else:
                n_force += 1
                if flavor == "tta":
                    # Screen the candidate with the Point-to-Point unit;
                    # the force math runs on the cores afterwards.
                    steps.append(Step(event.node.address, NODE_STRIDE,
                                      "point_dist"))
                else:
                    steps.append(Step(event.node.address, NODE_STRIDE,
                                      "uop:nbody_leaf"))
        jobs.append(TraversalJob(body.body_id, steps, walk.acceleration))
        interactions.append(n_force)
    if flavor == "ttaplus":
        interactions = []
    return jobs, interactions
