"""The experiment execution service.

:class:`ExecutionService` owns three layers:

1. an **in-memory memo** (spec key → RunResult) replacing the old
   ad-hoc dict in ``harness.experiments`` — repeated points inside one
   process are free;
2. the **content-addressed disk cache** (:mod:`repro.exec.cache`) —
   repeated points across processes only unpickle;
3. the **worker pool** (:mod:`repro.exec.pool`) — missing points fan
   out over a ``ProcessPoolExecutor``, degrading gracefully to serial
   in-process execution when multiprocessing is unavailable.

Figures parallelize via **record/replay**: the figure function runs
once in *recording* mode, where every :meth:`ExecutionService.run` call
logs its spec and returns a numeric stub (figure bodies only ever do
arithmetic on results, never branch on which runs exist); the deduped
spec list then executes through the pool into the caches; finally the
figure function runs again for real, with every point a cache hit.
Serial and parallel runs therefore assemble tables from *identical*
RunResult objects — the acceptance property ``fig12 --jobs 4 ==
serial`` holds by construction, and ``tests/test_exec.py`` checks it
anyway.

Every batch also fills a :class:`RunManifest` — structured counters
(executed / cached / failed, attempts, wall time) that the CLI prints
and resume tooling can assert on ("second invocation executed 0
simulations").

**Graceful degradation** (``repro.guard`` integration): a spec whose
run aborts with a guard error — the watchdog detected a stall, or a
conservation invariant failed — is *quarantined*: its diagnostic
bundle is persisted to ``<cache>/quarantine/<key>.json`` and the spec
is retried once, in-process, on the legacy reference engine
(``REPRO_SIM_CORE=legacy``).  A successful retry satisfies the point
(memo only — the disk cache is keyed by the *fast* engine fingerprint
and must never hold legacy results); a failed retry reports the point
failed.  Either way the sweep completes: one poisoned config can no
longer hang or kill a whole figure.
"""

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, GuardError
from repro.exec.cache import ResultCache
from repro.exec.pool import (
    Outcome,
    ParallelRunner,
    run_serial,
)
from repro.exec.spec import RunSpec

#: Exception type names classified as guard verdicts (matched by name
#: because pool failures cross a pickling boundary).
GUARD_FAILURE_TYPES = ("SimulationStallError", "InvariantViolation")

#: Set to a truthy value to force in-process execution regardless of
#: ``jobs`` (useful under debuggers and in constrained sandboxes).
SERIAL_ENV = "REPRO_EXEC_SERIAL"


# -- worker entry point -----------------------------------------------------------
def execute_payload(payload: str):
    """Top-level worker function: JSON spec in, RunResult out.

    Imports happen inside so that forked/spawned workers pay the import
    cost once per process, and so that importing :mod:`repro.exec.pool`
    never drags the whole simulator in.
    """
    from repro.harness.runner import execute_spec

    return execute_spec(RunSpec.from_json(payload))


def execute_payload_legacy(payload: str):
    """Worker entry point forcing the legacy reference engine.

    Used for the one in-process retry of a guard-quarantined spec: the
    fast core tripped the watchdog or an invariant, so the point gets a
    second opinion from the slower, simpler ``HeapSimulator`` path.
    """
    from repro.sim import CORE_ENV

    previous = os.environ.get(CORE_ENV)
    os.environ[CORE_ENV] = "legacy"
    try:
        return execute_payload(payload)
    finally:
        if previous is None:
            os.environ.pop(CORE_ENV, None)
        else:
            os.environ[CORE_ENV] = previous


# -- manifest ----------------------------------------------------------------------
STATUS_EXECUTED = "executed"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
#: The fast engine tripped the guard; the point was satisfied (or at
#: least re-attempted) on the legacy engine and its diagnostic bundle
#: written to ``<cache>/quarantine/``.
STATUS_QUARANTINED = "quarantined"


@dataclass
class RunRecord:
    """How one unique spec was satisfied."""

    key: str
    label: str
    status: str
    attempts: int = 1
    seconds: float = 0.0
    error: Optional[str] = None
    #: Which simulation core produced the result ("fast" unless a
    #: guard quarantine forced the legacy retry).
    engine: str = "fast"


@dataclass
class RunManifest:
    """Structured account of one batch of runs."""

    mode: str = "serial"
    jobs: int = 1
    wall_seconds: float = 0.0
    records: Dict[str, RunRecord] = field(default_factory=dict)

    def add(self, record: RunRecord) -> None:
        # First resolution wins (replay hits must not double-count),
        # except that a later successful retry overrides a failure.
        # QUARANTINED is terminal: it already *is* the retry verdict.
        existing = self.records.get(record.key)
        if existing is None or existing.status == STATUS_FAILED:
            self.records[record.key] = record

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records.values() if r.status == status)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def executed(self) -> int:
        return self._count(STATUS_EXECUTED)

    @property
    def cached(self) -> int:
        return self._count(STATUS_CACHED)

    @property
    def failed(self) -> int:
        return self._count(STATUS_FAILED)

    @property
    def quarantined(self) -> int:
        return self._count(STATUS_QUARANTINED)

    def summary(self) -> str:
        quarantined = ""
        if self.quarantined:
            quarantined = f" quarantined={self.quarantined}"
        return (f"[exec] total={self.total} executed={self.executed} "
                f"cached={self.cached} failed={self.failed}"
                f"{quarantined} mode={self.mode} jobs={self.jobs} "
                f"wall={self.wall_seconds:.1f}s")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "runs": [vars(r) for r in self.records.values()],
        }


# -- recording stubs ----------------------------------------------------------------
class _StubMapping(dict):
    """Mapping whose every lookup is 1.0 (keeps figure arithmetic alive)."""

    def __getitem__(self, key):  # noqa: D105
        return 1.0

    def get(self, key, default=None):
        return 1.0


class _StubMetrics:
    """Metrics snapshot stand-in: scalar reads are 1.0, groups empty.

    ``group()`` returning ``{}`` matters the same way the empty
    ``accel_stats`` dict does: figures *iterate* metric groups
    (Fig. 18) and must see no spurious entries during recording.
    """

    def get(self, name, default=0.0):
        return 1.0

    def group(self, prefix):
        return {}

    def series(self, name):
        return None

    def histogram(self, name):
        return None

    def names(self):
        return ()

    def as_dict(self):
        return {}


class _StubStats:
    cycles = 1.0
    simt_efficiency = 1.0
    total_warp_instructions = 1.0
    dram_utilization = 1.0
    l1_hit_rate = 0.0
    mem_sectors = 0

    def __init__(self) -> None:
        self.warp_instructions = _StubMapping()
        self.thread_instructions = _StubMapping()
        self.memory = _StubMapping()
        # Plain dict: figures *iterate* accel stats (Figs. 15/18) and
        # must see no spurious entries during recording.
        self.accel_stats: Dict[str, float] = {}
        self.notes: Dict[str, Any] = {}
        self.metrics = _StubMetrics()


class _StubEnergy:
    compute_core_mj = warp_buffer_mj = intersection_mj = total_mj = 1.0

    def normalized_to(self, baseline) -> Dict[str, float]:
        return _StubMapping()


class StubResult:
    """Placeholder RunResult returned while recording a figure."""

    cycles = 1.0
    simt_efficiency = 1.0
    dram_utilization = 1.0

    def __init__(self, spec: RunSpec) -> None:
        self.workload = spec.label
        self.platform = spec.platform
        self.stats = _StubStats()
        self.energy = _StubEnergy()
        self.notes: Dict[str, Any] = {}

    @property
    def metrics(self):
        return self.stats.metrics

    def metric(self, name: str, default: float = 0.0) -> float:
        return 1.0

    def speedup_over(self, baseline) -> float:
        return 1.0


# -- progress reporting ---------------------------------------------------------------
class _ProgressPrinter:
    """Rate-limited ``[exec] i/n`` lines with a crude ETA on stderr."""

    def __init__(self, total: int, stream=None, min_interval: float = 0.5):
        self.total = total
        self.done = 0
        self.executed = 0
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.started = time.monotonic()
        self._last = 0.0

    def cached(self, n: int = 1) -> None:
        self.done += n
        self._emit()

    def __call__(self, outcome: Outcome) -> None:
        self.done += 1
        self.executed += 1
        self._emit(force=self.done == self.total)

    def _emit(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last < self.min_interval:
            return
        self._last = now
        elapsed = now - self.started
        remaining = self.total - self.done
        if self.executed and remaining > 0:
            eta = f", eta {elapsed / max(1, self.done) * remaining:.0f}s"
        else:
            eta = ""
        print(f"[exec] {self.done}/{self.total} points "
              f"({self.executed} simulated), {elapsed:.1f}s elapsed{eta}",
              file=self.stream)


# -- the service -----------------------------------------------------------------------
class ExecutionService:
    """Runs :class:`RunSpec` points through memo, cache and pool."""

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 progress: bool = False) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.manifest = RunManifest(jobs=jobs)
        self._memory: Dict[str, Any] = {}
        self._recording: Optional[List[RunSpec]] = None

    # -- bookkeeping -------------------------------------------------------------
    def reset_manifest(self) -> None:
        self.manifest = RunManifest(jobs=self.jobs)

    def clear_memory(self) -> None:
        self._memory.clear()

    def _record(self, spec: RunSpec, status: str, **kw) -> None:
        self.manifest.add(RunRecord(spec.key, spec.label, status, **kw))

    @property
    def _serial_forced(self) -> bool:
        return bool(os.environ.get(SERIAL_ENV))

    # -- guard quarantine ---------------------------------------------------------
    def _write_quarantine(self, spec: RunSpec, error: str,
                          diagnostics: Optional[dict]) -> Optional[str]:
        """Persist a guard diagnostic bundle for post-mortem; returns
        its path, or None when there is no cache directory to hold it
        (or the write itself fails — quarantine must never raise)."""
        if self.cache is None:
            return None
        qdir = self.cache.base / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            path = qdir / f"{spec.key}.json"
            bundle = {
                "spec": spec.canonical(),
                "label": spec.label,
                "error": error,
                "diagnostics": diagnostics,
                "created": time.time(),
            }
            with open(path, "w") as fh:
                json.dump(bundle, fh, indent=1, default=str)
            return str(path)
        except OSError:
            return None

    def _quarantine(self, spec: RunSpec, error: str,
                    diagnostics: Optional[dict],
                    attempts: int, seconds: float):
        """The fast engine tripped the guard on ``spec``: write the
        diagnostic bundle, retry once in-process on the legacy
        reference engine, and record the verdict.

        Returns the legacy result on success (memoized but *never*
        written to the disk cache — its key folds the fast-engine
        fingerprint), or None when the legacy retry failed too.
        """
        bundle_path = self._write_quarantine(spec, error, diagnostics)
        where = f"; bundle at {bundle_path}" if bundle_path else ""
        print(f"[exec] guard quarantined {spec.label}: {error}{where}; "
              f"retrying once on the legacy engine", file=sys.stderr)
        started = time.monotonic()
        try:
            result = execute_payload_legacy(spec.to_json())
        except Exception as exc:
            self._record(spec, STATUS_FAILED, attempts=attempts + 1,
                         seconds=seconds + time.monotonic() - started,
                         error=f"fast engine aborted ({error}); legacy "
                               f"retry also failed: "
                               f"{type(exc).__name__}: {exc}",
                         engine="legacy")
            return None
        self._memory[spec.key] = result
        if self.cache is not None:
            # The degraded result never enters the disk cache (its key
            # folds the fast-engine fingerprint), but its metrics must
            # still land: a sweep where some cells silently vanish from
            # metrics reporting looks healthier than it is.
            self.cache.put_metrics(spec, result,
                                   extra={"engine": "legacy",
                                          "degraded": True})
        self._record(spec, STATUS_QUARANTINED, attempts=attempts + 1,
                     seconds=seconds + time.monotonic() - started,
                     error=f"fast engine aborted ({error}){where}; "
                           f"result from legacy engine",
                     engine="legacy")
        return result

    # -- single point ------------------------------------------------------------
    def run(self, spec: RunSpec):
        """Resolve one spec: memo → disk cache → execute in-process."""
        if self._recording is not None:
            self._recording.append(spec)
            return StubResult(spec)
        key = spec.key
        if key in self._memory:
            return self._memory[key]
        if self.cache is not None:
            result = self.cache.get(spec)
            if result is not None:
                self._record(spec, STATUS_CACHED)
                self._memory[key] = result
                return result
        started = time.monotonic()
        try:
            result = execute_payload(spec.to_json())
        except GuardError as exc:
            result = self._quarantine(
                spec, f"{type(exc).__name__}: {exc}", exc.diagnostics,
                attempts=1, seconds=time.monotonic() - started)
            if result is None:
                raise
            return result
        except Exception:
            self._record(spec, STATUS_FAILED,
                         seconds=time.monotonic() - started,
                         error="in-process execution raised")
            raise
        seconds = time.monotonic() - started
        self._record(spec, STATUS_EXECUTED, seconds=seconds)
        if self.cache is not None:
            self.cache.put(spec, result, seconds=seconds)
        self._memory[key] = result
        return result

    # -- batches -------------------------------------------------------------------
    def run_many(self, specs: Sequence[RunSpec]) -> None:
        """Resolve a batch, fanning misses out over the worker pool.

        Results land in the memo/cache; failures are recorded in the
        manifest and re-raised lazily when (if) the failing point is
        actually requested via :meth:`run`.
        """
        started = time.monotonic()
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)
        missing: List[RunSpec] = []
        cached_hits = 0
        for key, spec in unique.items():
            if key in self._memory:
                continue
            result = self.cache.get(spec) if self.cache is not None else None
            if result is not None:
                self._memory[key] = result
                self._record(spec, STATUS_CACHED)
                cached_hits += 1
            else:
                missing.append(spec)

        reporter = None
        if self.progress and unique:
            reporter = _ProgressPrinter(len(unique))
            if cached_hits:
                reporter.cached(cached_hits)

        if missing:
            outcomes, mode = self._dispatch(missing, reporter)
            self.manifest.mode = mode
            for outcome in outcomes:
                spec = missing[outcome.index]
                if outcome.ok:
                    self._memory[spec.key] = outcome.value
                    self._record(spec, STATUS_EXECUTED,
                                 attempts=outcome.attempts,
                                 seconds=outcome.seconds)
                    if self.cache is not None:
                        self.cache.put(spec, outcome.value,
                                       seconds=outcome.seconds)
                else:
                    failure = outcome.failure or {}
                    if failure.get("type") in GUARD_FAILURE_TYPES:
                        self._quarantine(
                            spec, f"{failure['type']} on fast engine",
                            failure.get("diagnostics"),
                            attempts=outcome.attempts,
                            seconds=outcome.seconds)
                    else:
                        self._record(spec, STATUS_FAILED,
                                     attempts=outcome.attempts,
                                     seconds=outcome.seconds,
                                     error=outcome.error)
        self.manifest.jobs = self.jobs
        self.manifest.wall_seconds += time.monotonic() - started

    def _dispatch(self, missing, reporter):
        """Run the missing specs; returns (outcomes, mode string)."""
        payloads = [spec.to_json() for spec in missing]
        if self.jobs > 1 and len(missing) > 1 and not self._serial_forced:
            try:
                runner = ParallelRunner(self.jobs, timeout=self.timeout,
                                        retries=self.retries)
            except Exception as exc:  # no multiprocessing here
                print(f"[exec] worker pool unavailable "
                      f"({type(exc).__name__}: {exc}); running serially",
                      file=sys.stderr)
                return (run_serial(execute_payload, payloads,
                                   retries=self.retries, progress=reporter),
                        "serial-fallback")
            with runner:
                return (runner.map(execute_payload, payloads,
                                   progress=reporter),
                        "parallel")
        return (run_serial(execute_payload, payloads, retries=self.retries,
                           progress=reporter),
                "serial")

    # -- figures ---------------------------------------------------------------------
    def collect(self, fn: Callable, *args) -> List[RunSpec]:
        """Record-mode pass: which specs would ``fn(*args)`` run?"""
        if self._recording is not None:
            raise ConfigurationError("collect() cannot nest")
        self._recording = []
        try:
            fn(*args)
        finally:
            specs, self._recording = self._recording, None
        return specs

    def run_figure(self, fn: Callable, scale: Optional[str] = None):
        """Run one figure function, parallelizing its points if jobs>1."""
        self.reset_manifest()
        started = time.monotonic()
        if self.jobs > 1:
            self.run_many(self.collect(fn, scale))
        table = fn(scale)
        self.manifest.wall_seconds = time.monotonic() - started
        return table

    # -- metrics ----------------------------------------------------------------
    def metrics_report(self) -> Dict[str, Any]:
        """Flat metrics for every point this batch touched.

        Maps each manifest record's label to its result's
        ``repro.obs`` snapshot (``as_dict()`` form: scalars, series,
        histograms).  Points resolved from a pre-obs cache entry carry
        an empty snapshot and report ``{}``.
        """
        report: Dict[str, Any] = {}
        for record in self.manifest.records.values():
            result = self._memory.get(record.key)
            snapshot = getattr(getattr(result, "stats", None), "metrics",
                               None)
            if snapshot is None:
                continue
            report[record.label] = snapshot.as_dict()
        return report
