"""Unit tests for the SIMT GPU model: divergence, timing, statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import GPU, AccelCall, Compute, GPUConfig, Load
from repro.gpu.isa import Store

CFG = GPUConfig(n_sms=1, max_warps_per_sm=4)


def test_empty_launch_rejected():
    with pytest.raises(ConfigurationError):
        GPU(CFG).launch(lambda tid, args: iter(()), 0)


class TestComputeTiming:
    def test_single_warp_compute_cycles(self):
        def kernel(tid, args):
            yield Compute(10, tag=0)

        stats = GPU(CFG).launch(kernel, 32)
        assert stats.cycles == pytest.approx(10)
        assert stats.warp_instructions.get("alu") == 10
        assert stats.simt_efficiency == pytest.approx(1.0)

    def test_two_warps_share_issue_port(self):
        def kernel(tid, args):
            yield Compute(10, tag=0)

        stats = GPU(CFG).launch(kernel, 64)
        assert stats.cycles == pytest.approx(20)

    def test_warps_beyond_residency_run_in_waves(self):
        cfg = CFG.with_overrides(max_warps_per_sm=1)

        def kernel(tid, args):
            yield Compute(10, tag=0)

        stats = GPU(cfg).launch(kernel, 64)
        assert stats.cycles == pytest.approx(20)
        assert stats.notes["n_warps"] == 2

    def test_instruction_kinds_tracked(self):
        def kernel(tid, args):
            yield Compute(4, tag=0, kind="alu")
            yield Compute(2, tag=1, kind="control")
            yield Compute(1, tag=2, kind="sfu")

        stats = GPU(CFG).launch(kernel, 32)
        br = stats.instruction_breakdown()
        assert br == {"alu": 4, "control": 2, "sfu": 1}


class TestDivergence:
    def test_branch_divergence_halves_efficiency(self):
        def kernel(tid, args):
            # Half the warp takes tag 1, half takes tag 2: serialized.
            if tid % 2 == 0:
                yield Compute(10, tag=1)
            else:
                yield Compute(10, tag=2)

        stats = GPU(CFG).launch(kernel, 32)
        assert stats.cycles == pytest.approx(20)
        assert stats.simt_efficiency == pytest.approx(0.5)

    def test_reconvergence_after_branch(self):
        def kernel(tid, args):
            if tid % 2 == 0:
                yield Compute(5, tag=1)
            else:
                yield Compute(5, tag=2)
            yield Compute(10, tag=3)  # all threads reconverge here

        stats = GPU(CFG).launch(kernel, 32)
        # 5 + 5 serialized, then 10 converged.
        assert stats.cycles == pytest.approx(20)
        eff = stats.simt_efficiency
        assert 0.7 < eff < 0.8  # (0.5*10 + 1.0*10)/20 = 0.75

    def test_early_exit_reduces_efficiency(self):
        def kernel(tid, args):
            iters = 1 if tid < 16 else 4
            for _ in range(iters):
                yield Compute(10, tag=5)

        stats = GPU(CFG).launch(kernel, 32)
        # Iterations 2-4 run with half the lanes.
        assert stats.simt_efficiency == pytest.approx((1 + 0.5 * 3) / 4)

    def test_lowest_tag_first_matches_structured_control_flow(self):
        order = []

        def kernel(tid, args):
            if tid == 0:
                yield Compute(1, tag=2)
                order.append("late")
            else:
                yield Compute(1, tag=1)
                order.append("early")

        GPU(CFG).launch(kernel, 2)
        assert order[0] == "early"


class TestMemory:
    def test_coalesced_load_one_sector(self):
        def kernel(tid, args):
            yield Load(addr=0, size=4, tag=0)

        stats = GPU(CFG).launch(kernel, 32)
        # All lanes in the same 32B sector? addr identical -> 1 sector.
        assert stats.mem_sectors == 1
        assert stats.warp_instructions.get("mem") == 1

    def test_divergent_load_many_sectors(self):
        def kernel(tid, args):
            yield Load(addr=tid * 128, size=4, tag=0)

        stats = GPU(CFG).launch(kernel, 32)
        assert stats.mem_sectors == 32

    def test_load_blocks_warp(self):
        def kernel(tid, args):
            yield Load(addr=0, size=4, tag=0)
            yield Compute(1, tag=1)

        stats = GPU(CFG).launch(kernel, 32)
        cfg = CFG
        assert stats.cycles > cfg.l2_latency  # cold miss went past L2

    def test_second_access_hits_l1(self):
        def kernel(tid, args):
            yield Load(addr=0, size=4, tag=0)
            yield Load(addr=0, size=4, tag=1)

        stats = GPU(CFG).launch(kernel, 32)
        assert stats.l1_hit_rate > 0

    def test_store_does_not_block(self):
        def kernel(tid, args):
            yield Store(addr=tid * 4, size=4, tag=0)
            yield Compute(1, tag=1)

        stats = GPU(CFG).launch(kernel, 32)
        assert stats.cycles < 50

    def test_dram_utilization_positive_for_streaming(self):
        def kernel(tid, args):
            for i in range(8):
                yield Load(addr=(tid * 8 + i) * 128 + (args or 0), size=32,
                           tag=i)

        stats = GPU(CFG).launch(kernel, 64)
        assert stats.memory["dram_utilization"] > 0.05


class FakeAccel:
    """Counts submissions and answers after a fixed delay."""

    def __init__(self, sm, delay=50):
        self.sm = sm
        self.delay = delay
        self.submitted = []

    def submit(self, now, payloads):
        self.submitted.append(list(payloads))
        signal = self.sm.sim.signal()
        signal.fire_at(now + self.delay, [p * 2 for p in payloads])
        return signal

    def snapshot(self, end):
        return {"queries": sum(len(p) for p in self.submitted)}


class TestAccelCall:
    def test_results_routed_back_per_thread(self):
        echoed = {}

        def kernel(tid, args):
            result = yield AccelCall(payload=tid, tag=0)
            echoed[tid] = result

        stats = GPU(CFG, accelerator_factory=FakeAccel).launch(kernel, 32)
        assert echoed == {tid: tid * 2 for tid in range(32)}
        assert stats.cycles >= 50
        assert stats.warp_instructions.get("tta") == 1
        assert stats.accel_stats["queries"] == 32

    def test_accel_overlaps_with_compute(self):
        def kernel(tid, args):
            if tid < 32:
                yield AccelCall(payload=tid, tag=0)
            else:
                yield Compute(40, tag=1)

        stats = GPU(CFG, accelerator_factory=FakeAccel).launch(kernel, 64)
        # Accel (50 cycles) and the other warp's compute overlap.
        assert stats.cycles < 50 + 40
