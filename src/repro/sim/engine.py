"""Event queue and cooperative processes for cycle-resolution simulation.

The engine is deliberately small: an ordered heap of ``(time, seq,
callback)`` events plus a generator-based process model.  A process is a
Python generator that yields either

* a non-negative number — "suspend me for that many cycles", or
* a :class:`Signal` — "suspend me until someone fires this signal"; the
  fired value is sent back into the generator.

This is sufficient to express every state machine in the paper's system
(traversal loops, memory round trips, pipeline hand-offs) while keeping
the scheduler overhead per event low enough to simulate hundreds of
thousands of node visits in pure Python.
"""

import heapq
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError

Process = Generator[Any, Any, None]


class Signal:
    """A one-shot wake-up channel between processes.

    A process suspends on a signal by yielding it; another component wakes
    it by calling :meth:`fire`.  Multiple processes may wait on the same
    signal; all are resumed with the fired value.  Firing a signal with no
    waiters stores the value so a later waiter resumes immediately — this
    removes the race between a memory response arriving and the consumer
    reaching its ``yield``.
    """

    __slots__ = ("_sim", "_waiters", "_fired", "_value")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._waiters = []
        self._fired = False
        self._value = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        """Wake every waiter (now or as soon as they wait) with ``value``."""
        if self._fired:
            raise SimulationError("signal fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim._resume(process, value)

    def fire_at(self, time: float, value: Any = None) -> None:
        """Schedule :meth:`fire` to happen at absolute ``time``."""
        self._sim.call_at(time, self.fire, value)

    def _add_waiter(self, process: Process) -> bool:
        """Register ``process``; return True if it must actually wait."""
        if self._fired:
            return False
        self._waiters.append(process)
        return True


class Simulator:
    """Discrete-event simulator with an integer-ish cycle clock.

    Times are floats for flexibility but every model in this package
    schedules at whole-cycle resolution.  Events at equal times fire in
    insertion order, which makes runs fully deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = []
        self._seq = 0
        self._events_processed = 0

    # -- event interface -------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def call_after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self.now + delay, fn, *args)

    def signal(self) -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self)

    # -- process interface -----------------------------------------------
    def spawn(self, process: Process) -> Process:
        """Start running a generator-based process at the current time."""
        self.call_at(self.now, self._resume, process, None)
        return process

    def _resume(self, process: Process, value: Any) -> None:
        try:
            yielded = process.send(value)
        except StopIteration:
            return
        self._dispatch(process, yielded)

    def _dispatch(self, process: Process, yielded: Any) -> None:
        if isinstance(yielded, Signal):
            if not yielded._add_waiter(process):
                # Already fired: resume immediately (same cycle).
                self.call_at(self.now, self._resume, process, yielded.value)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process yielded negative delay {yielded}")
            self.call_after(yielded, self._resume, process, None)
        else:
            raise SimulationError(
                f"process yielded unsupported value {yielded!r}; "
                "expected a delay or a Signal"
            )

    # -- main loop ---------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue; return the final simulation time.

        ``until`` caps simulated time, ``max_events`` caps host work (a
        guard against accidental infinite simulations in tests).
        """
        while self._queue:
            time, _seq, fn, args = self._queue[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = time
            fn(*args)
            self._events_processed += 1
            if max_events is not None and self._events_processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}"
                )
        return self.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)
