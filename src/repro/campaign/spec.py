"""Declarative factorial run tables: ``CampaignSpec`` → ``RunSpec`` grid.

A campaign is the cross product of four axes —

* **workload**: one or more workload families, each with a parameter
  grid (list-valued parameters multiply; scalars are held fixed);
* **platform**: the hardware design points to run on;
* **config**: labeled GPU config *policies* (the same policy dicts
  :class:`~repro.exec.spec.RunSpec` carries);
* **rep**: repetition index.  Reps are not re-measurements of one
  deterministic point — the simulator would return the identical result
  — but *dataset resamples*: rep ``r`` offsets the workload ``seed`` by
  ``r``, so each rep builds a different random instance of the same
  workload shape and the spread across reps is real variance.

minus **axis constraints**: platforms a family cannot run on are
dropped automatically (:data:`KIND_PLATFORMS`), and ``exclude`` entries
remove any combination matching a subset of the axis coordinates.

Expansion is pure and deterministic: the same campaign document always
yields the same ordered list of :class:`CampaignPoint`, each wrapping a
content-addressed :class:`~repro.exec.spec.RunSpec`.  That determinism
is what lets N workers on N hosts expand the table independently and
coordinate *only* through the exec cache and the lease directory —
there is no queue server to talk to.
"""

import hashlib
import itertools
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec.spec import KINDS, RunSpec, code_fingerprint, make_spec

#: Platforms each workload family's runner accepts (the CLI ``sweep``
#: command shares this table).
KIND_PLATFORMS = {
    "btree": ("gpu", "tta", "ttaplus"),
    "nbody": ("gpu", "tta", "ttaplus"),
    "rtnn": ("gpu", "rta", "tta", "ttaplus", "ttaplus_opt"),
    "rtree": ("gpu", "tta", "ttaplus"),
    "knn": ("gpu", "tta", "ttaplus"),
    "wknd": ("rta", "ttaplus", "ttaplus_opt"),
    "lumi": ("gpu", "rta", "ttaplus", "ttaplus_opt"),
}

#: Default lease time-to-live: how long a claimed point may sit without
#: its worker finishing before siblings may steal it.
DEFAULT_LEASE_TTL_S = 300.0


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded cell of the run table.

    ``axes`` carries the human-facing coordinates (kind, resolved
    params, platform, config label, rep); ``spec`` is the
    content-addressed work unit whose key doubles as the point's
    identity in the cache, the lease directory, and the manifest.
    """

    axes: Dict[str, Any]
    spec: RunSpec

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def label(self) -> str:
        return (f"{self.spec.label}"
                f"/{self.axes['config']}#r{self.axes['rep']}")


def _as_grid(params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Cross product of the list-valued parameters (scalars fixed)."""
    keys = sorted(params)
    lists = [params[k] if isinstance(params[k], (list, tuple))
             else [params[k]] for k in keys]
    return [dict(zip(keys, combo)) for combo in itertools.product(*lists)]


def _matches(axes: Dict[str, Any], pattern: Dict[str, Any]) -> bool:
    """True when every pattern field equals the point's coordinate.

    Workload parameters are matched through the ``params`` mapping, so
    ``{"kind": "btree", "params": {"n_keys": 512}}`` excludes only the
    512-key cells.
    """
    for field_name, wanted in pattern.items():
        if field_name == "params":
            for pkey, pval in wanted.items():
                if axes["params"].get(pkey) != pval:
                    return False
            continue
        if axes.get(field_name) != wanted:
            return False
    return True


@dataclass
class CampaignSpec:
    """A declarative factorial run table, pure JSON-serializable data."""

    name: str
    workloads: List[Dict[str, Any]]
    platforms: List[str]
    configs: List[Optional[Dict[str, Any]]] = field(
        default_factory=lambda: [None])
    reps: int = 1
    base_seed: int = 0
    exclude: List[Dict[str, Any]] = field(default_factory=list)
    run_kwargs: Dict[str, Any] = field(default_factory=dict)
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigurationError(
                f"campaign name must be a non-empty path-safe string, "
                f"got {self.name!r}")
        if self.reps < 1:
            raise ConfigurationError(f"reps must be >= 1, got {self.reps}")
        if not self.workloads:
            raise ConfigurationError("campaign needs at least one workload")
        if not self.platforms:
            raise ConfigurationError("campaign needs at least one platform")
        for entry in self.workloads:
            kind = entry.get("kind")
            if kind not in KINDS:
                raise ConfigurationError(
                    f"unknown workload kind {kind!r}; pick from {KINDS}")
            if "churn" in entry:
                _check_churn_axis(kind, entry["churn"])
        known = set()
        for kind in (e["kind"] for e in self.workloads):
            known.update(KIND_PLATFORMS[kind])
        bad = [p for p in self.platforms if p not in known]
        if bad:
            raise ConfigurationError(
                f"platform(s) {bad} not valid for any campaign workload")
        if not self.configs:
            raise ConfigurationError(
                "configs cannot be empty; use [null] for runner defaults")

    # -- canonical form / identity --------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workloads": self.workloads,
            "platforms": self.platforms,
            "configs": self.configs,
            "reps": self.reps,
            "base_seed": self.base_seed,
            "exclude": self.exclude,
            "run_kwargs": self.run_kwargs,
            "lease_ttl_s": self.lease_ttl_s,
        }

    def canonical(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def campaign_id(self) -> str:
        """Content address of the run table *under this code version*.

        Folding :func:`code_fingerprint` in means a campaign directory
        can never mix points produced by different simulator revisions:
        a new version is a new campaign.
        """
        body = f"{self.canonical()}|{code_fingerprint()}"
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    @property
    def slug(self) -> str:
        """Directory-name form: ``<name>-<id12>``."""
        return f"{self.name}-{self.campaign_id[:12]}"

    # -- serialization ---------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        try:
            return cls(
                name=data["name"],
                workloads=list(data["workloads"]),
                platforms=list(data["platforms"]),
                configs=list(data.get("configs") or [None]),
                reps=int(data.get("reps", 1)),
                base_seed=int(data.get("base_seed", 0)),
                exclude=list(data.get("exclude") or []),
                run_kwargs=dict(data.get("run_kwargs") or {}),
                lease_ttl_s=float(data.get("lease_ttl_s",
                                           DEFAULT_LEASE_TTL_S)),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"campaign document missing required field {exc}") from None

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            raise ConfigurationError(
                f"campaign file {path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def write(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1,
                                   sort_keys=True) + "\n")
        return path

    # -- expansion -------------------------------------------------------------
    def expand(self) -> List[CampaignPoint]:
        """The full, ordered, constraint-filtered run table."""
        points: List[CampaignPoint] = []
        for entry in self.workloads:
            kind = entry["kind"]
            valid = KIND_PLATFORMS[kind]
            grid_params = dict(entry.get("params") or {})
            if "churn" in entry:
                # Churn is a workload axis like any grid parameter: a
                # list of specs multiplies, and the value rides in the
                # spec's workload params so the factory pre-churns the
                # build (pre-churned builds are never persisted to the
                # exec build cache — see repro.exec.cache.put_build).
                grid_params["churn"] = entry["churn"]
            grid = _as_grid(grid_params)
            for combo in grid:
                for platform in self.platforms:
                    if platform not in valid:
                        continue  # axis constraint: runner would reject
                    for config in self.configs:
                        label, policy = _config_label(config)
                        for rep in range(self.reps):
                            params = dict(combo)
                            # Rep r resamples the dataset: distinct
                            # seed, distinct spec key, real variance.
                            params["seed"] = int(
                                params.get("seed", self.base_seed)) + rep
                            axes = {"kind": kind, "params": params,
                                    "platform": platform, "config": label,
                                    "rep": rep}
                            if any(_matches(axes, pat)
                                   for pat in self.exclude):
                                continue
                            spec = make_spec(
                                kind, params, platform, config=policy,
                                run_kwargs=dict(self.run_kwargs) or None)
                            points.append(CampaignPoint(axes=axes,
                                                        spec=spec))
        if not points:
            raise ConfigurationError(
                "campaign expands to zero points (constraints removed "
                "every cell)")
        seen: Dict[str, CampaignPoint] = {}
        for point in points:
            first = seen.setdefault(point.key, point)
            if first is not point:
                raise ConfigurationError(
                    f"campaign cells {first.label} and {point.label} "
                    f"expand to the same RunSpec; make an axis distinguish "
                    f"them or drop one")
        return points


def _check_churn_axis(kind: str, churn: Any) -> None:
    """Validate a workload entry's ``churn`` axis at spec-build time.

    Only tree-serving kinds accept churn (their workload factories grew
    the ``churn`` kwarg); each spec must parse as ``<mix>@<writes>``.
    """
    from repro.mutation import CHURN_KINDS
    from repro.mutation.stream import parse_churn

    if kind not in CHURN_KINDS:
        raise ConfigurationError(
            f"workload kind {kind!r} does not support the churn axis; "
            f"churnable kinds: {sorted(CHURN_KINDS)}")
    values = churn if isinstance(churn, (list, tuple)) else [churn]
    for value in values:
        if value is None:
            continue   # explicit "no churn" cell in a churn sweep
        parse_churn(value)


def _config_label(config: Optional[Dict[str, Any]]):
    """Split a config axis entry into (label, policy-for-RunSpec)."""
    if config is None:
        return "default", None
    policy = dict(config)
    label = policy.pop("label", None)
    if not policy:
        # A bare {"label": ...} entry means "runner default", labeled.
        return (label or "default"), None
    if label is None:
        label = policy.get("policy", "custom")
        overrides = policy.get("overrides") or {}
        if overrides:
            label += "+" + ",".join(f"{k}={v}"
                                    for k, v in sorted(overrides.items()))
    return label, policy


def worker_order(points: Sequence[CampaignPoint],
                 worker_id: str) -> List[CampaignPoint]:
    """Deterministic per-worker walk order over the shared table.

    Every worker sees all points (any of them may need stealing), but
    each starts at a different, id-derived offset and stride so that
    concurrent workers claim disjoint runs of the table instead of
    racing pairwise on the same next cell.
    """
    n = len(points)
    if n <= 1:
        return list(points)
    digest = hashlib.sha256(worker_id.encode("utf-8")).digest()
    offset = int.from_bytes(digest[:4], "big") % n
    # An odd stride is coprime with any power-of-two n and rarely shares
    # factors otherwise; fall back to 1 when it does.
    stride = int.from_bytes(digest[4:8], "big") % n | 1
    if _gcd(stride, n) != 1:
        stride = 1
    return [points[(offset + i * stride) % n] for i in range(n)]


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
