"""Statistics primitives shared by all timing models.

The paper reports three families of dynamic statistics, all produced by
these trackers:

* utilization of a bandwidth resource (DRAM, Figs. 1/13) — fraction of
  cycles the resource was busy;
* occupancy of a pipeline (intersection / OP units, Figs. 15/18) —
  time-weighted average and peak number of in-flight items;
* latency distributions (average intersection latency, Fig. 18 bottom).
"""

from collections import defaultdict
from typing import Dict, Iterable


class Counter:
    """A named bag of integer counters (dynamic instructions, accesses...)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def total(self, names: Iterable[str] = None) -> float:
        if names is None:
            return sum(self._counts.values())
        return sum(self._counts.get(n, 0) for n in names)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def merge(self, other: "Counter") -> None:
        for name, value in other._counts.items():
            self._counts[name] += value

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({items})"


class OccupancyTracker:
    """Time-weighted occupancy of a unit (how many items are in flight).

    ``enter``/``exit`` must be called with non-decreasing timestamps, which
    the event-driven engine guarantees.  ``average(end)`` integrates the
    occupancy curve up to ``end``; ``peak`` is the maximum instantaneous
    occupancy ever observed.
    """

    __slots__ = ("_current", "_last_time", "_area", "_strict", "peak",
                 "entries")

    def __init__(self, strict: bool = True) -> None:
        self._current = 0
        self._last_time = 0.0
        self._area = 0.0
        self._strict = strict
        self.peak = 0
        self.entries = 0

    def _advance(self, time: float) -> None:
        if time < self._last_time:
            if self._strict:
                # Out-of-order samples can only come from a modelling bug.
                raise ValueError(
                    f"occupancy sample at {time} before {self._last_time}"
                )
            # Relaxed mode (analytic pipeline chains): clamp to last time.
            time = self._last_time
        self._area += self._current * (time - self._last_time)
        self._last_time = time

    def enter(self, time: float, count: int = 1) -> None:
        # _advance inlined: enter/exit fire once per intersection op.
        last = self._last_time
        current = self._current
        if time < last:
            if self._strict:
                raise ValueError(
                    f"occupancy sample at {time} before {last}"
                )
            time = last
        self._area += current * (time - last)
        self._last_time = time
        current += count
        self._current = current
        self.entries += count
        if current > self.peak:
            self.peak = current

    def exit(self, time: float, count: int = 1) -> None:
        last = self._last_time
        current = self._current
        if time < last:
            if self._strict:
                raise ValueError(
                    f"occupancy sample at {time} before {last}"
                )
            time = last
        self._area += current * (time - last)
        self._last_time = time
        current -= count
        self._current = current
        if current < 0:
            raise ValueError("occupancy went negative")

    def pulse(self, t_in: float, t_out: float) -> None:
        """``enter(t_in)`` + ``exit(t_out)`` fused (t_out >= t_in).

        The batched accelerator driver issues an op and drains it at its
        analytic completion time within one event; fusing the two samples
        halves the tracker calls on that path.  Equivalent to the two
        separate calls, including the relaxed-mode clamping.
        """
        last = self._last_time
        current = self._current
        if t_in < last:
            if self._strict:
                raise ValueError(
                    f"occupancy sample at {t_in} before {last}"
                )
            t_in = last
        if t_out < t_in:
            t_out = t_in
        self._area += current * (t_in - last) + (current + 1) * (t_out - t_in)
        self._last_time = t_out
        self._current = current
        self.entries += 1
        if current + 1 > self.peak:
            self.peak = current + 1

    @property
    def current(self) -> int:
        return self._current

    def average(self, end: float) -> float:
        """Mean occupancy over [0, end]."""
        if end <= 0:
            return 0.0
        area = self._area + self._current * max(0.0, end - self._last_time)
        return area / end


class LatencySampler:
    """Streaming mean/min/max over latency samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def sample(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"LatencySampler(count={self.count}, mean={self.mean:.2f}, "
            f"min={self.min}, max={self.max})"
        )
