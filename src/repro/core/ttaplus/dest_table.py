"""OP Dest Tables and Config Regs: the routing state of TTA+.

Before a kernel launch, ``ConfigI``/``ConfigL`` compile the inner- and
leaf-node µop programs into per-unit routing entries: for each (node
type, µop PC) executed on a unit, the table names the next unit's input
port (Fig. 10).  The backend consults the table on every hand-off; a
missing entry is a configuration error, which is exactly the hardware
failure mode of launching with stale Config Regs.
"""

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.core.ttaplus.programs import UopProgram

WRITEBACK_PORT = "writeback"


class OpDestTable:
    """Routing entries: (node_type, pc) -> destination port."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], str] = {}
        self._first: Dict[str, str] = {}
        self.lookups = 0

    def load_program(self, node_type: str, program: UopProgram) -> None:
        """Compile one program's dataflow into table entries."""
        units = [uop.unit for uop in program.uops]
        if not units:
            raise ConfigurationError("cannot load an empty program")
        self._first[node_type] = units[0]
        for pc, unit in enumerate(units):
            nxt = units[pc + 1] if pc + 1 < len(units) else WRITEBACK_PORT
            self._entries[(node_type, pc)] = nxt

    def first_unit(self, node_type: str) -> str:
        try:
            return self._first[node_type]
        except KeyError:
            raise ConfigurationError(
                f"no program configured for node type {node_type!r}"
            )

    def next_port(self, node_type: str, pc: int) -> str:
        self.lookups += 1
        try:
            return self._entries[(node_type, pc)]
        except KeyError:
            raise ConfigurationError(
                f"OP Dest Table has no entry for ({node_type!r}, pc={pc}); "
                "ConfigI/ConfigL not run for this node type"
            )

    @property
    def size(self) -> int:
        return len(self._entries)
