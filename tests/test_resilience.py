"""Tests for the serving failure-semantics layer (``repro.serve.resilience``).

The fault-injection matrix: every serve-path injector in
``$REPRO_FAULTS`` has a test proving its recovery mechanism fires
(retry, circuit breaker, hedge, shed, integrity check), and the SLO
accounting invariant — every measured query lands in exactly one of
served / failed / shed — holds under each of them.  Plus the
transparency contract (resilience off, no faults: stat-for-stat
identical reports) and the overload demo (2x saturation: bounded p99
under ``shed``, unbounded queue growth under ``off``).
"""

import pytest

from repro.errors import (BackendLaunchError, ConfigurationError,
                          FaultInjectionError, InvariantViolation)
from repro.guard import (SERVE_KINDS, ServeFaultPlan, ServeFaults,
                         is_corrupt_result, parse_serve_plans)
from repro.guard.faults import parse_plans
from repro.serve import (
    BatchLaunch,
    BatchPolicy,
    CircuitBreaker,
    EwmaEstimator,
    LaunchBackend,
    LoadProfile,
    ResilienceConfig,
    build_resident_index,
    check_batch_integrity,
    run_loadtest,
)

TINY_POINT = dict(n_keys=512, n_queries=64)

OFF = ResilienceConfig(mode="off")
SHED = ResilienceConfig(mode="shed")
DEGRADE = ResilienceConfig(mode="degrade")
STRICT = ResilienceConfig(mode="strict")


@pytest.fixture(scope="module")
def point_index():
    return build_resident_index("point", TINY_POINT)


def faults(*plans):
    """A fresh armed-fault set (per-test trigger state)."""
    return ServeFaults(list(plans))


def assert_conserved(report):
    """The SLO invariant: offered == served + failed + shed."""
    assert report.offered == report.served + report.failed + report.shed
    slo = report.slo()
    assert slo["accounted"]
    assert slo["admitted"] == report.served + report.failed


# -- config & primitives ------------------------------------------------------------
class TestResilienceConfig:
    def test_mode_flags(self):
        assert not OFF.active and not OFF.sheds and not OFF.degrades
        assert SHED.sheds and not SHED.degrades and not SHED.hedges
        assert DEGRADE.sheds and DEGRADE.degrades and DEGRADE.hedges
        assert STRICT.strict and STRICT.degrades

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(mode="panic")
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_queue=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(deadline_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(ewma_alpha=1.5)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_retries=-1)

    def test_priority_scales_watermarks(self):
        cfg = ResilienceConfig(mode="shed", max_queue=100, backlog_ms=100.0)
        # Point lookups (tier 0) ride out overload that sheds range
        # scans (tier 2) first.
        assert cfg.queue_limit("point") == 100
        assert cfg.queue_limit("knn") == 75
        assert cfg.queue_limit("range") == 50
        assert cfg.backlog_limit_s("point") == pytest.approx(0.1)
        assert cfg.backlog_limit_s("range") == pytest.approx(0.05)
        assert cfg.priority("unheard_of_class") == 1

    def test_backoff_is_exponential_and_deterministic(self):
        cfg = ResilienceConfig(backoff_base_s=1e-4)
        assert cfg.backoff_s(1) == pytest.approx(1e-4)
        assert cfg.backoff_s(2) == pytest.approx(2e-4)
        assert cfg.backoff_s(3) == pytest.approx(4e-4)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESILIENCE", "degrade")
        monkeypatch.setenv("REPRO_RESILIENCE_MAX_QUEUE", "31")
        monkeypatch.setenv("REPRO_RESILIENCE_DEADLINE_MS", "7.5")
        cfg = ResilienceConfig.from_env()
        assert cfg.mode == "degrade"
        assert cfg.max_queue == 31
        assert cfg.deadline_ms == pytest.approx(7.5)

    def test_bad_env_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESILIENCE", "yolo")
        with pytest.raises(ConfigurationError):
            ResilienceConfig.from_env()


class TestEwmaEstimator:
    def test_cold_start_is_none(self):
        est = EwmaEstimator(alpha=0.5)
        assert est.value is None and est.samples == 0

    def test_converges_toward_samples(self):
        est = EwmaEstimator(alpha=0.5)
        assert est.observe(10.0) == 10.0    # first sample seeds
        est.observe(20.0)
        assert est.value == pytest.approx(15.0)
        for _ in range(20):
            est.observe(40.0)
        assert est.value == pytest.approx(40.0, rel=1e-3)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            EwmaEstimator(alpha=0.0)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=1.0)
        assert breaker.allow(0.0)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(0.1)
        assert breaker.record_failure(0.2)       # this one opens it
        assert breaker.opens == 1
        assert not breaker.allow(0.5)            # hard open

    def test_half_open_single_probe_then_close(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.5)
        assert breaker.allow(1.5)                # the half-open probe
        assert not breaker.allow(1.6)            # only ONE probe
        breaker.record_success(1.7)
        assert breaker.allow(1.8)                # closed again
        assert breaker.failures == 0

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        assert breaker.record_failure(1.5)       # probe failed: reopen
        assert breaker.opens == 2
        assert not breaker.allow(2.0)            # cooldown restarts at 1.5
        assert breaker.allow(2.6)


class TestBatchIntegrity:
    def test_sound_batch_passes(self):
        assert check_batch_integrity({0: 1, 1: 2, 2: 3}, 3) is None

    def test_missing_slot_detected(self):
        violation = check_batch_integrity({0: 1, 2: 3}, 3)
        assert violation is not None and "missing" in violation

    def test_garbled_result_detected(self):
        results = {0: 1, 1: 2}
        plan = ServeFaultPlan("corrupt_result", slot=0)
        victim = ServeFaults([plan]).corrupt(results)
        assert victim == 0 and 0 not in results
        assert is_corrupt_result(results[1])
        violation = check_batch_integrity(results, 2)
        assert violation is not None


# -- fault grammar ------------------------------------------------------------------
class TestServeFaultParsing:
    def test_parses_each_kind_with_options(self):
        plans = parse_serve_plans(
            "launch_fail:times=2;slow_backend:factor=8;"
            "shard_blackout:shard=1:at_ms=25;corrupt_result:after=1")
        assert [p.kind for p in plans] == list(SERVE_KINDS)
        assert plans[0].times == 2
        assert plans[1].factor == 8.0
        assert plans[2].shard == 1 and plans[2].at_ms == 25.0
        assert plans[3].after == 1

    def test_layers_split_one_env_string(self):
        """Core installers skip serve kinds and vice versa, so one
        ``$REPRO_FAULTS`` can poison both layers."""
        text = "stall:query=3;launch_fail:times=1"
        core = parse_plans(text)
        serve = parse_serve_plans(text)
        assert [p.kind for p in core] == ["stall"]
        assert [p.kind for p in serve] == ["launch_fail"]

    def test_rejects_unknown_kind_and_option(self):
        with pytest.raises(FaultInjectionError):
            parse_serve_plans("explode")
        with pytest.raises(FaultInjectionError):
            parse_serve_plans("launch_fail:mood=bad")
        with pytest.raises(FaultInjectionError):
            ServeFaultPlan("slow_backend", factor=0.0)

    def test_trigger_consumption(self):
        armed = faults(ServeFaultPlan("launch_fail", after=1, times=2))
        fired = []
        for _ in range(5):
            try:
                armed.fail_launch()
                fired.append(False)
            except BackendLaunchError:
                fired.append(True)
        # Skips one opportunity, fires twice, then disarms.
        assert fired == [False, True, True, False, False]

    def test_times_zero_never_disarms(self):
        armed = faults(ServeFaultPlan("slow_backend", factor=3.0, times=0))
        assert [armed.slow_factor() for _ in range(4)] == [3.0] * 4

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slow_backend:factor=2")
        armed = ServeFaults.from_env()
        assert bool(armed)
        assert armed.slow_factor() == 2.0

    def test_blackouts_skip_missing_shards(self):
        armed = faults(ServeFaultPlan("shard_blackout", shard=1, at_ms=10))
        assert armed.blackouts(1) == {}       # shard 1 doesn't exist
        assert armed.blackouts(2) == {1: pytest.approx(0.010)}


# -- the backend failure stack ------------------------------------------------------
class TestBackendRetry:
    def test_transient_failure_retries_to_fast_engine(self, point_index):
        """``launch_fail:times=1``: bounded retry recovers transparently
        — the batch still completes on the fast engine."""
        backend = LaunchBackend(
            "tta", resilience=OFF,
            faults=faults(ServeFaultPlan("launch_fail", times=1)))
        launch = backend.launch(point_index, [1, 2, 3])
        assert launch.engine == "fast" and not launch.failed
        assert backend.retries == 1
        assert launch.notes["retries"] == 1
        assert launch.backoff_s > 0
        wl = point_index.workload
        for slot, qid in enumerate([1, 2, 3]):
            assert launch.results[slot] == wl.golden[qid]

    def test_exhausted_retries_fail_the_batch(self, point_index):
        backend = LaunchBackend(
            "tta", resilience=OFF,
            faults=faults(ServeFaultPlan("launch_fail", times=0)))
        launch = backend.launch(point_index, [1, 2, 3])
        assert launch.failed and launch.engine == "failed"
        assert launch.results == {}
        assert backend.failed_batches == 1
        assert backend.retries == OFF.max_retries

    def test_exhausted_retries_degrade_under_policy(self, point_index):
        backend = LaunchBackend(
            "tta", resilience=DEGRADE,
            faults=faults(ServeFaultPlan("launch_fail", times=0)))
        launch = backend.launch(point_index, [1, 2, 3])
        assert launch.engine == "legacy" and not launch.failed
        assert launch.notes["degraded_reason"] == "launch_failure"
        assert backend.degraded_reasons == {"launch_failure": 1}
        wl = point_index.workload
        for slot, qid in enumerate([1, 2, 3]):
            assert launch.results[slot] == wl.golden[qid]


class TestBackendBreaker:
    def test_repeated_failures_open_the_breaker(self, point_index):
        cfg = ResilienceConfig(mode="off", max_retries=0,
                               breaker_threshold=2, breaker_cooldown_s=10.0)
        backend = LaunchBackend(
            "tta", resilience=cfg,
            faults=faults(ServeFaultPlan("launch_fail", times=0)))
        assert backend.launch(point_index, [1], now=0.0).failed
        assert backend.launch(point_index, [2], now=1.0).failed
        assert backend.breaker.opens == 1
        # While open, batches are rejected without touching the device.
        launches_before = backend.launches
        rejected = backend.launch(point_index, [3], now=2.0)
        assert rejected.failed and "breaker" in rejected.error
        assert backend.launches == launches_before + 1
        assert backend.faults.fired["launch_fail"] == 2   # no attempt made

    def test_open_breaker_degrades_under_policy(self, point_index):
        cfg = ResilienceConfig(mode="degrade", max_retries=0,
                               breaker_threshold=1, breaker_cooldown_s=10.0)
        backend = LaunchBackend(
            "tta", resilience=cfg,
            faults=faults(ServeFaultPlan("launch_fail", times=1)))
        first = backend.launch(point_index, [1], now=0.0)
        assert first.engine == "legacy"          # retryless: degrade
        second = backend.launch(point_index, [2], now=1.0)
        assert second.engine == "legacy"
        assert second.notes["degraded_reason"] == "breaker_open"

    def test_half_open_probe_recovers(self, point_index):
        cfg = ResilienceConfig(mode="off", max_retries=0,
                               breaker_threshold=1, breaker_cooldown_s=0.5)
        backend = LaunchBackend(
            "tta", resilience=cfg,
            faults=faults(ServeFaultPlan("launch_fail", times=1)))
        assert backend.launch(point_index, [1], now=0.0).failed
        assert backend.launch(point_index, [2], now=0.1).failed  # open
        probe = backend.launch(point_index, [3], now=1.0)        # half-open
        assert probe.engine == "fast"            # fault disarmed: success
        assert backend.breaker.opened_at is None  # closed again


class TestBackendIntegrity:
    def test_corrupt_batch_retries_once(self, point_index):
        backend = LaunchBackend(
            "tta", resilience=OFF,
            faults=faults(ServeFaultPlan("corrupt_result", times=1)))
        launch = backend.launch(point_index, [1, 2, 3])
        assert launch.engine == "fast" and not launch.failed
        assert backend.corrupt_detected == 1
        assert check_batch_integrity(launch.results, 3) is None

    def test_repeat_offender_degrades_even_when_off(self, point_index):
        """Integrity is not a policy knob: detection and the legacy
        fallback run in every mode; only *escalation* is strict-gated."""
        backend = LaunchBackend(
            "tta", resilience=OFF,
            faults=faults(ServeFaultPlan("corrupt_result", times=0)))
        launch = backend.launch(point_index, [1, 2, 3])
        assert launch.engine == "legacy"
        assert launch.notes["degraded_reason"] == "corrupt_result"
        assert backend.corrupt_detected == 2

    def test_repeat_offender_degrades_under_policy(self, point_index):
        backend = LaunchBackend(
            "tta", resilience=DEGRADE,
            faults=faults(ServeFaultPlan("corrupt_result", times=0)))
        launch = backend.launch(point_index, [1, 2, 3])
        assert launch.engine == "legacy"
        assert launch.notes["degraded_reason"] == "corrupt_result"
        # The legacy rerun produced sound results.
        assert check_batch_integrity(launch.results, 3) is None

    def test_repeat_offender_raises_under_strict(self, point_index):
        backend = LaunchBackend(
            "tta", resilience=STRICT,
            faults=faults(ServeFaultPlan("corrupt_result", times=0)))
        with pytest.raises(InvariantViolation):
            backend.launch(point_index, [1, 2, 3])


class TestSlowBackend:
    def test_slow_factor_inflates_time_not_cycles(self, point_index):
        healthy = LaunchBackend("tta", resilience=OFF)
        baseline = healthy.launch(point_index, [1, 2, 3])
        slow = LaunchBackend(
            "tta", resilience=OFF,
            faults=faults(ServeFaultPlan("slow_backend", factor=8.0)))
        launch = slow.launch(point_index, [1, 2, 3])
        # Cycle counts stay truthful (one-shot equivalence holds under
        # chaos); only the service-time occupancy inflates.
        assert launch.cycles == baseline.cycles
        assert launch.slow_factor == 8.0
        from repro.serve import ServiceClock
        clock = ServiceClock()
        assert clock.launch_seconds(launch.cycles, launch.slow_factor) == \
            pytest.approx(8.0 * clock.launch_seconds(baseline.cycles))


# -- the loadtest under faults: conservation matrix ---------------------------------
def _tiny_loadtest(point_index, resilience, fault_plans=(), n_shards=1,
                   qps=400.0, policy=None, seed=5, warmup_s=0.01):
    backend = LaunchBackend("tta", resilience=resilience,
                            faults=faults(*fault_plans))
    profile = LoadProfile(qps=qps, duration_s=0.05, warmup_s=warmup_s,
                          mix={"point": 1.0}, seed=seed)
    return run_loadtest(
        "tta", {"point": point_index}, profile,
        policy=policy or BatchPolicy(max_batch=8, max_wait_s=2e-3),
        n_shards=n_shards, backend=backend, resilience=resilience)


class TestLoadtestFaultMatrix:
    def test_launch_fail_recovers_and_conserves(self, point_index):
        report = _tiny_loadtest(
            point_index, OFF, [ServeFaultPlan("launch_fail", times=1)])
        assert report.retries == 1
        assert report.failed == 0 and report.served == report.offered
        assert_conserved(report)

    def test_launch_fail_storm_accounts_failures(self, point_index):
        report = _tiny_loadtest(
            point_index, OFF, [ServeFaultPlan("launch_fail", times=0)])
        assert report.served == 0 and report.shed == 0
        assert report.failed == report.offered > 0
        assert report.breaker_opens >= 1
        assert_conserved(report)

    def test_breaker_shed_under_shed_policy(self, point_index):
        cfg = ResilienceConfig(mode="shed", max_retries=0,
                               breaker_threshold=2,
                               breaker_cooldown_s=10.0)
        report = _tiny_loadtest(
            point_index, cfg, [ServeFaultPlan("launch_fail", times=0)],
            warmup_s=0.0)
        # Once the breaker opens, arrivals shed at admission instead of
        # being admitted to doomed launches.
        assert report.breaker_opens >= 1
        assert report.shed_reasons.get("breaker", 0) > 0
        assert report.failed > 0 and report.served == 0
        assert_conserved(report)

    def test_launch_fail_storm_degrades_and_serves(self, point_index):
        report = _tiny_loadtest(
            point_index, DEGRADE, [ServeFaultPlan("launch_fail", times=0)])
        assert report.served == report.offered > 0
        assert report.degraded_batches > 0
        assert set(report.degraded_reasons) <= {"launch_failure",
                                                "breaker_open"}
        assert_conserved(report)

    def test_corrupt_result_detected_and_conserves(self, point_index):
        report = _tiny_loadtest(
            point_index, OFF, [ServeFaultPlan("corrupt_result", times=1)])
        assert report.corrupt_results == 1
        assert report.served == report.offered
        assert_conserved(report)

    def _blackout_loadtest(self, point_index, resilience):
        # Millisecond-scale service times guarantee a launch is in
        # flight on shard 1 when it goes dark at t=20ms.
        stub = _SlowStub(cycles=4_095_000.0)  # 3ms per shard launch
        stub.faults = faults(
            ServeFaultPlan("shard_blackout", shard=1, at_ms=20.0))
        profile = LoadProfile(qps=400.0, duration_s=0.05, warmup_s=0.0,
                              mix={"point": 1.0}, seed=5)
        return run_loadtest(
            "tta", {"point": point_index}, profile,
            policy=BatchPolicy(max_batch=8, max_wait_s=2e-3),
            n_shards=2, backend=stub, resilience=resilience)

    def test_blackout_without_hedging_fails_queries(self, point_index):
        report = self._blackout_loadtest(point_index, OFF)
        assert report.hedges == 0
        assert report.failed > 0              # the hung shard's queries
        assert report.served > 0              # device 0 kept serving
        assert_conserved(report)

    def test_blackout_with_hedging_re_dispatches(self, point_index):
        report = self._blackout_loadtest(point_index, DEGRADE)
        assert report.hedges >= 1
        assert report.failed == 0
        assert report.served == report.offered
        assert_conserved(report)

    def test_slow_backend_inflates_latency_not_cycles(self, point_index):
        baseline = _tiny_loadtest(point_index, OFF)
        slowed = _tiny_loadtest(
            point_index, OFF,
            [ServeFaultPlan("slow_backend", factor=16.0, times=0)])
        assert slowed.sim_cycles == baseline.sim_cycles
        assert max(slowed.all_latencies_ms()) > \
            max(baseline.all_latencies_ms())
        assert_conserved(slowed)

    def test_strict_escalates_persistent_corruption(self, point_index):
        with pytest.raises(InvariantViolation):
            _tiny_loadtest(
                point_index, STRICT,
                [ServeFaultPlan("corrupt_result", times=0)])


# -- deadlines & admission ----------------------------------------------------------
class TestDeadlines:
    def test_expired_queries_are_shed_at_dispatch(self, point_index):
        # Deadline shorter than the batch wait: every timeout-closed
        # batch expires its stragglers; EWMA then sheds at admission.
        cfg = ResilienceConfig(mode="shed", deadline_ms=0.5)
        report = _tiny_loadtest(
            point_index, cfg, qps=300.0,
            policy=BatchPolicy(max_batch=64, max_wait_s=5e-3))
        assert report.shed > 0
        assert set(report.shed_reasons) <= {"expired", "deadline"}
        assert_conserved(report)

    def test_generous_deadline_sheds_nothing(self, point_index):
        cfg = ResilienceConfig(mode="shed", deadline_ms=10_000.0)
        report = _tiny_loadtest(point_index, cfg)
        assert report.shed == 0 and report.deadline_misses == 0
        assert_conserved(report)

    def test_deadline_misses_counted_for_goodput(self, point_index):
        # Deadline between the batch wait and the service time: queries
        # are admitted (cold EWMA), served, but miss their budget.
        cfg = ResilienceConfig(mode="shed", deadline_ms=1.0, ewma_alpha=1e-9)
        report = _tiny_loadtest(
            point_index, cfg, qps=300.0,
            policy=BatchPolicy(max_batch=4, max_wait_s=5e-4))
        slo = report.slo()
        if report.deadline_misses:
            assert slo["goodput_qps"] < report.achieved_qps
        assert_conserved(report)


class _SlowStub:
    """Fixed-cost backend double: saturates at a known capacity."""

    def __init__(self, platform="tta", cycles=6_825_000.0):  # 5ms @ 1365MHz
        self.platform = platform
        self.cycles = cycles
        self.launches = 0
        self.degraded = 0

    def launch(self, index, qids, now=0.0):
        self.launches += 1
        return BatchLaunch(self.platform, index.query_class, len(qids),
                           self.cycles, {i: True for i in range(len(qids))},
                           stats=None)


class TestOverload:
    """The overload demo: 2x saturation, bounded p99 under ``shed``."""

    # 5ms service per batch of <= 8 on one device ~= 1600 qps capacity;
    # offer 2x that.
    QPS = 3200.0

    def _run(self, point_index, resilience, seed=9):
        profile = LoadProfile(qps=self.QPS, duration_s=0.5, warmup_s=0.05,
                              mix={"point": 1.0}, seed=seed)
        return run_loadtest(
            "tta", {"point": point_index}, profile,
            policy=BatchPolicy(max_batch=8, max_wait_s=2e-3),
            backend=_SlowStub(), resilience=resilience)

    def test_shed_bounds_p99_where_off_grows_unbounded(self, point_index):
        off = self._run(point_index, OFF)
        shed = self._run(point_index, SHED)
        off_p99 = off.slo()["p99_admitted_ms"]
        shed_p99 = shed.slo()["p99_admitted_ms"]
        # Without admission control the queue grows for the whole run:
        # p99 is a large fraction of the 500ms window.
        assert off_p99 > 100.0
        assert off.shed == 0
        # Shedding keeps admitted latency bounded near the deadline and
        # refuses a meaningful slice of the offered load.
        assert shed.shed > 0
        assert shed.slo()["shed_fraction"] > 0.2
        assert shed_p99 < off_p99 / 2
        assert_conserved(off)
        assert_conserved(shed)

    def test_overload_reports_are_deterministic(self, point_index):
        first = self._run(point_index, SHED)
        second = self._run(point_index, SHED)
        assert first.to_dict() == second.to_dict()

    def test_priority_sheds_bulk_classes_first(self):
        range_index = build_resident_index(
            "range", dict(n_rects=512, n_queries=32))
        point_index = build_resident_index("point", TINY_POINT)
        profile = LoadProfile(qps=self.QPS, duration_s=0.5, warmup_s=0.05,
                              mix={"point": 1.0, "range": 1.0}, seed=9)
        report = run_loadtest(
            "tta", {"point": point_index, "range": range_index}, profile,
            policy=BatchPolicy(max_batch=8, max_wait_s=2e-3),
            backend=_SlowStub(), resilience=SHED)
        assert report.shed > 0
        point_served = report.classes.get("point")
        range_served = report.classes.get("range")
        # Tier-0 point lookups survive overload better than tier-2
        # range scans (watermarks scale by priority share).
        assert point_served is not None and point_served.served > 0
        if range_served is not None:
            assert point_served.served > range_served.served
        assert_conserved(report)


# -- transparency -------------------------------------------------------------------
class TestTransparency:
    """Resilience off + no faults => stat-for-stat identical serving."""

    KEYS = ("offered", "served", "rejected", "batches", "degraded_batches",
            "mean_batch_size", "sim_cycles", "latency_ms", "classes")

    def _core(self, report):
        d = report.to_dict()
        return {k: d[k] for k in self.KEYS}

    def test_off_mode_matches_default_env(self, point_index, monkeypatch):
        monkeypatch.delenv("REPRO_RESILIENCE", raising=False)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        default = _tiny_loadtest(point_index, None)
        explicit = _tiny_loadtest(point_index, OFF)
        assert self._core(default) == self._core(explicit)
        assert default.resilience_mode == "off"
        assert default.shed == 0 and default.failed == 0
        # No resilience metrics leak into an off-mode snapshot.
        assert not [name for name in default.metrics.scalars
                    if name.startswith("serve.resilience.")]
        assert default.metrics.scalars == explicit.metrics.scalars

    def test_untriggered_shed_matches_off(self, point_index):
        """A shed policy whose watermarks never trip serves the exact
        same schedule as no policy at all."""
        generous = ResilienceConfig(mode="shed", max_queue=10 ** 6,
                                    deadline_ms=10_000.0,
                                    backlog_ms=10_000.0)
        off = _tiny_loadtest(point_index, OFF)
        armed = _tiny_loadtest(point_index, generous)
        assert self._core(off) == self._core(armed)
        assert armed.shed == 0
