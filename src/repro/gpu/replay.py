"""Instruction-stream replay for value-independent baseline kernels.

The software-traversal (baseline GPU) kernels are *pure* generators:
their op stream is a function of ``(tid, args)`` alone — they never use
the value sent back into a ``yield`` and never read simulator state.
For those kernels the stream can be recorded once by running the
generator to exhaustion up front, then replayed from a flat list on
every launch over the same workload: the SIMT timing model consumes the
identical op sequence, so cycles and statistics are byte-identical,
but repeat runs (parameter sweeps, figure reruns, benchmark reps) skip
the kernel body, the ``yield from`` delegation, and every descriptor
allocation.

Kernels opt in with the :func:`value_independent` decorator; workloads
opt in by passing a persistent ``stream_cache`` dict through their
kernel-args object.  Kernels that bind a yield result (the ``AccelCall``
kernels) must never be marked — the recorder sends ``None`` for every
yield.
"""

import dataclasses
import os
import pickle
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.gpu.isa import Compute, Load, Store
from repro.memsys.coalescer import coalesce_sectors

#: Distinguishes "kernel wrote no result for this tid" from a None result.
_MISSING = object()

#: One recorded thread: (op stream, functional result or _MISSING).
Recording = Tuple[List[Any], Any]


def value_independent(kernel: Callable) -> Callable:
    """Mark ``kernel`` as ignoring values sent into its yields."""
    kernel.value_independent = True
    return kernel


class ReplayStream:
    """Generator stand-in that replays a recorded op stream.

    Quacks like a thread generator for :class:`~repro.gpu.warp.Warp`
    (which only calls ``send``); values sent in are ignored, exactly as
    the recorded kernel ignored them.  On exhaustion the recorded
    functional result is written into *this launch's* results dict
    before ``StopIteration`` propagates, matching the side effect the
    kernel body performed when it was recorded.
    """

    __slots__ = ("_ops", "_i", "_n", "_tid", "_result", "_results")

    def __init__(self, ops: List[Any], tid: int, result: Any,
                 results: dict):
        self._ops = ops
        self._i = 0
        self._n = len(ops)
        self._tid = tid
        self._result = result
        self._results = results

    def send(self, value: Any) -> Any:
        i = self._i
        if i == self._n:
            if self._result is not _MISSING:
                self._results[self._tid] = self._result
            raise StopIteration
        self._i = i + 1
        return self._ops[i]


def record_stream(kernel: Callable[[int, Any], Generator], tid: int,
                  args: Any) -> Recording:
    """Run ``kernel(tid, args)`` to exhaustion, collecting its ops."""
    ops: List[Any] = []
    append = ops.append
    send = kernel(tid, args).send
    try:
        while True:
            append(send(None))
    except StopIteration:
        pass
    return ops, args.results.get(tid, _MISSING)


def replay_threads(kernel: Callable[[int, Any], Generator],
                   thread_ids: Sequence[int], args: Any,
                   cache: Dict[int, Recording]) -> List[ReplayStream]:
    """Replay threads for a warp, recording any tid seen for the first time."""
    results = args.results
    threads = []
    append = threads.append
    get = cache.get
    for tid in thread_ids:
        rec = get(tid)
        if rec is None:
            rec = cache[tid] = record_stream(kernel, tid, args)
        append(ReplayStream(rec[0], tid, rec[1], results))
    return threads


class WarpTrace:
    """The precomputed group-level schedule of one warp of replayed threads.

    Because every op stream in the warp is fixed, the SIMT regrouping
    (bucket live lanes by tag, issue the lowest tag) is fixed too: the
    whole warp reduces to a flat list of macro steps the SM can time
    without touching a generator.  Step layouts:

    * ``(0, active, max_n, kind, first_n)`` — a :class:`Compute` group;
      ``max_n`` is the widest lane (issue cost), ``first_n`` the lowest
      lane's ``n`` (what ``simt_issue`` samples, as in the live path).
    * ``(1, active, sectors)`` — a :class:`Load` group with its lane
      requests already coalesced into a sector tuple.
    * ``(2, active, n_sectors)`` — a :class:`Store` group (fire-and-
      forget: only the sector count matters).

    ``writes`` holds the recorded functional results to apply to each
    launch's results dict.
    """

    __slots__ = ("steps", "writes")

    def __init__(self, steps: List[tuple], writes: Tuple[tuple, ...]):
        self.steps = steps
        self.writes = writes


def warp_trace(kernel: Callable[[int, Any], Generator],
               thread_ids: Sequence[int], args: Any,
               cache: Dict[Any, Any], sector_size: int) -> WarpTrace:
    """Build (or fetch) the macro-step trace of one warp.

    Cached under a tuple key alongside the per-tid recordings (tids are
    ints, so the key spaces cannot collide); keyed on the sector size
    because the pre-coalesced load/store groups depend on it.
    """
    key = ("__warp__", thread_ids[0], thread_ids[-1], sector_size)
    trace = cache.get(key)
    if trace is None:
        trace = cache[key] = _build_trace(kernel, thread_ids, args, cache,
                                          sector_size)
    return trace


def _build_trace(kernel, thread_ids, args, cache, sector_size) -> WarpTrace:
    streams = []
    writes = []
    get = cache.get
    for tid in thread_ids:
        rec = get(tid)
        if rec is None:
            rec = cache[tid] = record_stream(kernel, tid, args)
        streams.append(rec[0])
        if rec[1] is not _MISSING:
            writes.append((tid, rec[1]))

    # Replay the warp executor's regrouping rule over the fixed streams:
    # at every step the live lanes are bucketed by tag and the lowest
    # tag issues (see Warp.min_group); lanes advance past the issued op.
    lengths = [len(ops) for ops in streams]
    idx = [0] * len(streams)
    steps: List[tuple] = []
    while True:
        best = None
        members = None
        for lane, ops in enumerate(streams):
            i = idx[lane]
            if i == lengths[lane]:
                continue
            tag = ops[i].tag
            if best is None or tag < best:
                best = tag
                members = [lane]
            elif tag == best:
                members.append(lane)
        if best is None:
            break
        first = streams[members[0]][idx[members[0]]]
        cls = first.__class__
        active = len(members)
        if cls is Compute:
            n = first.n
            if active > 1:
                for lane in members:
                    m = streams[lane][idx[lane]].n
                    if m > n:
                        n = m
            steps.append((0, active, n, first.kind, first.n))
        elif cls is Load:
            requests = [(streams[lane][idx[lane]].addr,
                         streams[lane][idx[lane]].size) for lane in members]
            steps.append((1, active,
                          tuple(coalesce_sectors(requests, sector_size))))
        elif cls is Store:
            requests = [(streams[lane][idx[lane]].addr,
                         streams[lane][idx[lane]].size) for lane in members]
            steps.append((2, active,
                          len(coalesce_sectors(requests, sector_size))))
        else:
            raise SimulationError(
                f"value-independent kernel yielded {first!r}; only "
                "Compute/Load/Store streams can be replayed (AccelCall "
                "kernels must not be marked value_independent)"
            )
        for lane in members:
            idx[lane] += 1
    return WarpTrace(steps, tuple(writes))


# -- launch-level replay -----------------------------------------------------------
#
# The warp-trace machinery above only helps *baseline SIMT* kernels.
# Accelerated (TTA/TTA+) launches spend their time inside the batched
# driver, which the per-thread streams never see.  But on the fast
# engine a whole launch is a pure function of (kernel, thread count,
# GPU config, accelerator parameters, args content): the simulator is
# deterministic, every latency is analytic, and nothing reads wall
# clocks.  So a launch can be recorded once — final KernelStats plus
# the functional results — and replayed on every identical relaunch
# (benchmark reps, figure sweeps over the same workload object),
# skipping the simulation entirely.  Stats come back from a pickle
# blob, deserialized fresh per replay so callers can mutate them.

#: Records kept per (kernel, n_threads, config, accel) key; a workload
#: rarely relaunches more than a couple of distinct args shapes.
_LAUNCH_RECORD_CAP = 4


def launch_replayable(kernel: Callable) -> Callable:
    """Mark ``kernel`` as deterministic at launch granularity.

    A marked kernel's *entire launch* — timing and results — depends
    only on its arguments object's contents (not on values produced
    mid-simulation), so :class:`~repro.gpu.device.GPU` may serve repeat
    launches from a :class:`LaunchRecord`.  Kernels whose ops depend on
    simulator state must never be marked.
    """
    kernel.launch_replayable = True
    return kernel


class LaunchRecord:
    """One recorded launch: args identity, pickled stats, results.

    ``refs`` holds strong references to every object whose ``id()``
    appears in the identity tuple, so a dead object's id can never be
    recycled into a false match.
    """

    __slots__ = ("identity", "refs", "stats_blob", "results")

    def __init__(self, identity: tuple, refs: tuple, stats_blob: bytes,
                 results: dict):
        self.identity = identity
        self.refs = refs
        self.stats_blob = stats_blob
        self.results = results


def launch_identity(args: Any) -> Optional[Tuple[tuple, tuple]]:
    """Content identity of a kernel-args dataclass, or None if unknown.

    Scalars compare by value; sequences compare element-wise by object
    identity (workloads memoize their job/query objects, so identical
    relaunches share elements even when the list wrapper is rebuilt);
    everything else compares by object identity.  ``results`` (an
    output) and ``stream_cache`` (the cache itself) are excluded.
    """
    if not dataclasses.is_dataclass(args) or isinstance(args, type):
        return None
    ident: List[tuple] = []
    refs: List[Any] = []
    for f in sorted(dataclasses.fields(args), key=lambda f: f.name):
        if f.name in ("results", "stream_cache"):
            continue
        value = getattr(args, f.name)
        if value is None or isinstance(value, (int, float, str, bool)):
            ident.append((f.name, value))
        elif isinstance(value, (list, tuple)):
            ident.append((f.name, tuple(id(item) for item in value)))
            refs.append(tuple(value))
        else:
            ident.append((f.name, id(value)))
            refs.append(value)
    return tuple(ident), tuple(refs)


def launch_replay_enabled() -> bool:
    """May launches be served from records under the current environment?

    Replay must be gated off whenever a launch is *not* a pure function
    of its arguments: the legacy engine (its heap scheduling is the
    oracle being differentially tested), armed fault injection, and any
    guard override from the environment (tests tighten guard thresholds
    to force failures mid-run).
    """
    if os.environ.get("REPRO_FAULTS"):
        return False
    for key in os.environ:
        if key.startswith("REPRO_GUARD"):
            return False
    from repro.sim import core_mode
    return core_mode() != "legacy"


def replay_launch(cache: dict, key: tuple, args: Any):
    """Return recorded (stats, results) for ``key`` + ``args``, or None."""
    records = cache.get(key)
    if not records:
        return None
    identity = launch_identity(args)
    if identity is None:
        return None
    ident = identity[0]
    for record in records:
        if record.identity == ident:
            stats = pickle.loads(record.stats_blob)
            args.results.update(record.results)
            return stats
    return None


def record_launch(cache: dict, key: tuple, args: Any, stats: Any) -> None:
    """Store a completed launch for replay; silently skip if unpicklable."""
    identity = launch_identity(args)
    if identity is None:
        return
    try:
        blob = pickle.dumps(stats)
    except Exception:
        return
    records = cache.setdefault(key, [])
    records.append(LaunchRecord(identity[0], identity[1], blob,
                                dict(args.results)))
    if len(records) > _LAUNCH_RECORD_CAP:
        records.pop(0)
