"""Triangles and the Möller-Trumbore intersection test (Fig. 5 right)."""

from typing import NamedTuple, Optional

from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.vec import Vec3, cross, dot

_EPSILON = 1e-9


class TriangleHit(NamedTuple):
    """Result of a Ray-Triangle intersection.

    ``t`` is the hit distance along the ray; ``u``/``v`` are the
    barycentric coordinates the RTA returns to the shader stages.
    """

    t: float
    u: float
    v: float


class Triangle:
    """A triangle primitive stored as three vertices."""

    __slots__ = ("v0", "v1", "v2", "prim_id")

    def __init__(self, v0: Vec3, v1: Vec3, v2: Vec3, prim_id: int = -1):
        self.v0 = v0
        self.v1 = v1
        self.v2 = v2
        self.prim_id = prim_id

    def bounds(self) -> AABB:
        lo = self.v0.min_with(self.v1).min_with(self.v2)
        hi = self.v0.max_with(self.v1).max_with(self.v2)
        return AABB(lo, hi)

    def centroid(self) -> Vec3:
        return (self.v0 + self.v1 + self.v2) * (1.0 / 3.0)

    def __repr__(self) -> str:
        return f"Triangle(id={self.prim_id})"


def ray_triangle_intersect(ray: Ray, tri: Triangle) -> Optional[TriangleHit]:
    """Möller-Trumbore ray/triangle test.

    Follows the exact operation sequence of the 37-cycle fixed-function
    pipeline: edge vectors, a cross product, a dot product, one
    reciprocal, then barycentric coordinates via two more cross/dot
    pairs, with the same rejection order as the classic algorithm.
    """
    edge1 = tri.v1 - tri.v0
    edge2 = tri.v2 - tri.v0
    pvec = cross(ray.direction, edge2)
    det = dot(edge1, pvec)
    if abs(det) < _EPSILON:
        return None  # Ray parallel to the triangle plane.
    inv_det = 1.0 / det

    tvec = ray.origin - tri.v0
    u = dot(tvec, pvec) * inv_det
    if u < 0.0 or u > 1.0:
        return None

    qvec = cross(tvec, edge1)
    v = dot(ray.direction, qvec) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None

    t = dot(edge2, qvec) * inv_det
    if t < ray.tmin or t > ray.tmax:
        return None
    return TriangleHit(t=t, u=u, v=v)
