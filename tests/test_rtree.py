"""Unit and property tests for the R-Tree spatial index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3
from repro.trees.rtree import RectEntry, RTree, make_rect


def random_entries(n, seed=0, span=100.0):
    rng = random.Random(seed)
    entries = []
    for i in range(n):
        x, y = rng.uniform(0, span), rng.uniform(0, span)
        entries.append(RectEntry(
            make_rect(x, y, x + rng.uniform(0.1, 3), y + rng.uniform(0.1, 3)),
            i))
    return entries


def brute_force(entries, window):
    out = []
    for entry in entries:
        r = entry.rect
        if (r.lo.x <= window.hi.x and window.lo.x <= r.hi.x
                and r.lo.y <= window.hi.y and window.lo.y <= r.hi.y):
            out.append(entry.data_id)
    return tuple(sorted(out))


class TestMakeRect:
    def test_normalizes_corners(self):
        r = make_rect(5, 7, 1, 2)
        assert r.lo == Vec3(1, 2, 0)
        assert r.hi == Vec3(5, 7, 0)


class TestBulkLoad:
    def test_invariants_and_count(self):
        entries = random_entries(1000, seed=1)
        tree = RTree.bulk_load(entries)
        tree.check_invariants()
        assert len(tree) == 1000

    def test_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert tree.range_query(make_rect(0, 0, 10, 10)).ids == ()

    def test_height_logarithmic(self):
        small = RTree.bulk_load(random_entries(50))
        large = RTree.bulk_load(random_entries(5000))
        assert small.height() <= large.height() <= 6

    def test_str_packing_dense(self):
        tree = RTree.bulk_load(random_entries(900))
        leaves = [n for n in tree.nodes() if n.is_leaf]
        mean_fill = sum(n.width for n in leaves) / len(leaves)
        assert mean_fill > 0.7 * tree.max_entries


class TestRangeQuery:
    def test_matches_brute_force(self):
        entries = random_entries(800, seed=2)
        tree = RTree.bulk_load(entries)
        rng = random.Random(3)
        for _ in range(50):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            window = make_rect(x, y, x + rng.uniform(1, 20),
                               y + rng.uniform(1, 20))
            assert tree.range_query(window).ids == \
                brute_force(entries, window)

    def test_empty_window_far_away(self):
        tree = RTree.bulk_load(random_entries(100))
        result = tree.range_query(make_rect(10_000, 10_000, 10_001, 10_001))
        assert result.ids == ()
        assert len(result.visits) == 1  # root only

    def test_visit_trace_kinds(self):
        tree = RTree.bulk_load(random_entries(500, seed=4))
        result = tree.range_query(make_rect(0, 0, 100, 100))
        kinds = {v.kind for v in result.visits}
        assert kinds == {"inner", "leaf"}
        # A window covering everything returns every id.
        assert len(result.ids) == 500


class TestInsert:
    def test_insert_then_query(self):
        entries = random_entries(300, seed=5)
        tree = RTree()
        for entry in entries:
            tree.insert(entry.rect, entry.data_id)
        tree.check_invariants()
        window = make_rect(20, 20, 60, 60)
        assert tree.range_query(window).ids == brute_force(entries, window)

    def test_split_keeps_min_fill(self):
        tree = RTree(max_entries=4)
        for entry in random_entries(100, seed=6):
            tree.insert(entry.rect, entry.data_id)
        tree.check_invariants()

    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            RTree(max_entries=3)


class TestRunner:
    def test_end_to_end_platforms(self):
        from repro.harness.runner import run_rtree, scaled_config_for
        from repro.workloads import make_rtree_workload

        wl = make_rtree_workload(n_rects=1024, n_queries=256, seed=7)
        cfg = scaled_config_for(wl.image.size_bytes)
        base = run_rtree(wl, "gpu", config=cfg)
        tta = run_rtree(wl, "tta", config=cfg)
        tp = run_rtree(wl, "ttaplus", config=cfg)
        # Same story as B-Trees: the accelerators win, TTA+ trades a
        # little performance for programmability.
        assert tta.speedup_over(base) > 1.0
        assert tp.speedup_over(base) > 0.8

    def test_bad_platform(self):
        from repro.harness.runner import run_rtree
        from repro.workloads import make_rtree_workload
        wl = make_rtree_workload(n_rects=64, n_queries=8)
        with pytest.raises(ConfigurationError):
            run_rtree(wl, "rta")


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_property_bulk_load_query_correct(n, seed):
    entries = random_entries(n, seed=seed)
    tree = RTree.bulk_load(entries)
    tree.check_invariants()
    rng = random.Random(seed + 1)
    x, y = rng.uniform(0, 100), rng.uniform(0, 100)
    window = make_rect(x, y, x + 15, y + 15)
    assert tree.range_query(window).ids == brute_force(entries, window)


@given(st.integers(min_value=5, max_value=120),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_property_insert_invariants(n, seed):
    tree = RTree(max_entries=5)
    for entry in random_entries(n, seed=seed):
        tree.insert(entry.rect, entry.data_id)
    tree.check_invariants()
