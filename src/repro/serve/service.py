"""Asyncio serving facade: real-time query API over resident indexes.

:class:`ServeService` is the interactive counterpart of the
virtual-time loadtest: the same resident indexes, the same
:class:`~repro.serve.batcher.BatchPolicy` semantics, the same
per-platform :class:`~repro.serve.backends.LaunchBackend` — but driven
by real callers on a real event loop.  One collector task per query
class pulls requests off an :class:`asyncio.Queue` and closes batches
timeout-or-size (``asyncio.wait_for`` plays the role the deadline heap
plays in the loadtest); launches run in the default executor so a
multi-millisecond simulated kernel never blocks the loop.

Used by ``repro serve`` (JSON-lines over stdin/stdout) and directly
embeddable::

    service = ServeService(indexes, platform="tta")
    async with service:
        response = await service.query("point", qid=17)

The virtual-time loadtest remains the *measured* path — wall-clock
latency through asyncio depends on host scheduling and is reported here
for operational visibility, not for the paper's figures.
"""

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import (BackendLaunchError, ConfigurationError,
                          DeadlineExceededError, OverloadShedError)
from repro.serve.backends import LaunchBackend
from repro.serve.batcher import BatchPolicy
from repro.serve.clock import DEFAULT_CLOCK, ServiceClock
from repro.serve.index import ResidentIndex
from repro.serve.resilience import ResilienceConfig, default_config

if TYPE_CHECKING:
    from repro.mutation import MutationConfig

_CLOSE = object()   # queue sentinel: collector drains and exits


@dataclass
class QueryResponse:
    """One served query."""

    query_class: str
    qid: Optional[int]
    result: Any
    batch_size: int
    cycles: float               # simulated cycles of the batch's launch
    sim_seconds: float          # cycles through the service clock
    engine: str                 # "fast" | "legacy" (guard degradation)
    latency_s: float            # wall-clock submit -> resolve
    error: Optional[str] = None


@dataclass
class _Pending:
    query_class: str
    qid: Optional[int]
    payload: Any
    future: "asyncio.Future[QueryResponse]"
    t_submit: float = field(default_factory=time.monotonic)
    deadline: Optional[float] = None    # absolute, time.monotonic domain


class ServeService:
    """Resident-index query service with per-class micro-batching."""

    def __init__(self, indexes: Dict[str, ResidentIndex],
                 platform: str = "tta",
                 policy: Optional[BatchPolicy] = None,
                 clock: ServiceClock = DEFAULT_CLOCK,
                 guard=None,
                 backend: Optional[LaunchBackend] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 mutation: Optional["MutationConfig"] = None):
        if not indexes:
            raise ConfigurationError("ServeService needs >= 1 index")
        self.indexes = dict(indexes)
        self.platform = platform
        self.policy = policy or BatchPolicy()
        self.clock = clock
        if resilience is None:
            resilience = backend.resilience if backend is not None \
                else default_config()
        self.resilience = resilience
        self.backend = backend or LaunchBackend(platform, guard=guard,
                                                resilience=resilience)
        for cls, index in self.indexes.items():
            if self.policy.max_batch > index.capacity:
                raise ConfigurationError(
                    f"max_batch {self.policy.max_batch} exceeds the "
                    f"{cls!r} index's capacity {index.capacity}")
        self._queues: Dict[str, asyncio.Queue] = {}
        self._collectors: List[asyncio.Task] = []
        self._running = False
        self.queries_served = 0
        self.batches_served = 0
        self.queries_shed = 0
        self.queries_expired = 0
        self.queries_failed = 0
        # -- optional write path (repro.mutation); None = read-only
        # service, stats() and dispatch unchanged.
        self.mutables = None
        self._write_rng: Optional[random.Random] = None
        self._write_seq = 0
        self._mutation_lock: Optional[asyncio.Lock] = None
        if mutation is not None:
            from repro.mutation import MutableResidentIndex

            self.mutables = {
                cls: MutableResidentIndex(
                    index, policy=mutation.policy,
                    refit_threshold=mutation.refit_threshold, clock=clock)
                for cls, index in self.indexes.items()}
            self._write_rng = random.Random(mutation.write.seed + 0x5EED)
            self._mutation_lock = asyncio.Lock()

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        for cls in self.indexes:
            queue: asyncio.Queue = asyncio.Queue()
            self._queues[cls] = queue
            self._collectors.append(
                asyncio.create_task(self._collect(cls, queue),
                                    name=f"serve-{cls}"))

    async def stop(self) -> None:
        """Drain open batches and stop the collectors."""
        if not self._running:
            return
        self._running = False
        for queue in self._queues.values():
            queue.put_nowait(_CLOSE)
        await asyncio.gather(*self._collectors, return_exceptions=True)
        self._collectors.clear()
        self._queues.clear()

    async def __aenter__(self) -> "ServeService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- the query API -----------------------------------------------------------
    async def query(self, query_class: str, qid: Optional[int] = None,
                    payload: Any = None) -> QueryResponse:
        """Submit one query and await its batched result.

        Either ``qid`` (an index into the class's canonical stream) or
        a raw ``payload`` (a key / window / point in the class's native
        shape) — canonical ids hit the index's memoized job lowering.
        """
        if not self._running:
            raise ConfigurationError("service is not running (use start())")
        index = self.indexes.get(query_class)
        if index is None:
            raise ConfigurationError(
                f"no resident index for query class {query_class!r}; "
                f"serving: {sorted(self.indexes)}")
        if qid is None and payload is None:
            raise ConfigurationError("query needs a qid or a payload")
        if qid is not None and not 0 <= qid < index.n_canonical:
            raise ConfigurationError(
                f"qid {qid} out of range for {query_class!r} "
                f"(canonical stream has {index.n_canonical})")
        deadline = None
        if self.resilience.sheds:
            depth = sum(q.qsize() for q in self._queues.values())
            if depth >= self.resilience.queue_limit(query_class):
                self.queries_shed += 1
                raise OverloadShedError(
                    f"{query_class!r} query shed: {depth} queued >= "
                    f"limit {self.resilience.queue_limit(query_class)}",
                    reason="queue")
            if self.resilience.deadline_s is not None:
                deadline = time.monotonic() + self.resilience.deadline_s
        future: "asyncio.Future[QueryResponse]" = \
            asyncio.get_running_loop().create_future()
        await self._queues[query_class].put(
            _Pending(query_class, qid, payload, future, deadline=deadline))
        return await future

    # -- the write API -----------------------------------------------------------
    async def write(self, query_class: str, op: str = "insert") -> Dict[str, Any]:
        """Apply one live write to a class's resident index.

        Only available when the service was constructed with a
        ``mutation`` config; writes are serialized with batch launches
        so a kernel never walks a tree mid-mutation.  Returns the
        effective op (floor degradation may turn a delete into an
        insert) and the class's mutation counters.
        """
        from repro.mutation.stream import WRITE_OPS, WriteEvent

        if self.mutables is None:
            raise ConfigurationError(
                "service is read-only (no mutation config); "
                "writes are not accepted")
        if query_class not in self.mutables:
            raise ConfigurationError(
                f"no resident index for query class {query_class!r}; "
                f"serving: {sorted(self.indexes)}")
        if op not in WRITE_OPS:
            raise ConfigurationError(
                f"unknown write op {op!r}; expected one of {WRITE_OPS}")
        mutable = self.mutables[query_class]
        async with self._mutation_lock:
            self._write_seq += 1
            event = WriteEvent(t=time.monotonic(), query_class=query_class,
                               op=op, seq=self._write_seq, measured=True)
            cycles = mutable.apply(event, self._write_rng)
        return {
            "query_class": query_class,
            "op": op,
            "cycles": cycles,
            "sim_seconds": self.clock.seconds(cycles),
            "counters": mutable.counters(),
        }

    # -- batching ----------------------------------------------------------------
    async def _collect(self, cls: str, queue: asyncio.Queue) -> None:
        closing = False
        while not closing:
            first = await queue.get()
            if first is _CLOSE:
                break
            batch: List[_Pending] = [first]
            deadline = time.monotonic() + self.policy.max_wait_s
            while len(batch) < self.policy.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if item is _CLOSE:
                    closing = True
                    break
                batch.append(item)
            await self._dispatch(cls, batch)

    async def _dispatch(self, cls: str, batch: List[_Pending]) -> None:
        index = self.indexes[cls]
        if self.resilience.sheds:
            # Expire queries whose deadline passed during batching so a
            # doomed slot never occupies the accelerator.
            now = time.monotonic()
            live: List[_Pending] = []
            for pending in batch:
                if pending.deadline is not None and now >= pending.deadline:
                    self.queries_expired += 1
                    if not pending.future.done():
                        pending.future.set_exception(DeadlineExceededError(
                            f"{cls!r} query missed its "
                            f"{self.resilience.deadline_ms}ms deadline "
                            f"while batching"))
                else:
                    live.append(pending)
            batch = live
            if not batch:
                return
        loop = asyncio.get_running_loop()
        try:
            if self.mutables is not None:
                # Serialize with the write path: install any finished
                # rebuild, refresh the image, and hold writes off until
                # the launch returns.
                async with self._mutation_lock:
                    self.mutables[cls].ensure_ready(time.monotonic())
                    launch = await loop.run_in_executor(
                        None, self._launch_sync, index, batch)
            else:
                launch = await loop.run_in_executor(
                    None, self._launch_sync, index, batch)
        except Exception as exc:  # noqa: BLE001 — fail the batch, not the loop
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        if launch.failed:
            self.queries_failed += len(batch)
            error = BackendLaunchError(
                f"batch launch failed: {launch.error}")
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(error)
            return
        self.batches_served += 1
        now = time.monotonic()
        for slot, pending in enumerate(batch):
            if pending.future.done():      # caller went away
                continue
            self.queries_served += 1
            pending.future.set_result(QueryResponse(
                query_class=cls,
                qid=pending.qid,
                result=launch.results.get(slot),
                batch_size=len(batch),
                cycles=launch.cycles,
                sim_seconds=self.clock.launch_seconds(launch.cycles),
                engine=launch.engine,
                latency_s=now - pending.t_submit,
                error=launch.error,
            ))

    def _launch_sync(self, index: ResidentIndex, batch: List[_Pending]):
        now = time.monotonic()
        if all(p.qid is not None for p in batch):
            return self.backend.launch(index, [p.qid for p in batch], now)
        payloads = [index.payload(p.qid) if p.qid is not None else p.payload
                    for p in batch]
        return self.backend.launch_payloads(index, payloads, now)

    # -- introspection -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out = {
            "platform": self.platform,
            "classes": sorted(self.indexes),
            "queries_served": self.queries_served,
            "batches_served": self.batches_served,
            "degraded_batches": self.backend.degraded,
            "launches": self.backend.launches,
            "policy": {"max_batch": self.policy.max_batch,
                       "max_wait_s": self.policy.max_wait_s},
            "resilience": {
                "mode": self.resilience.mode,
                "queries_shed": self.queries_shed,
                "queries_expired": self.queries_expired,
                "queries_failed": self.queries_failed,
                "retries": self.backend.retries,
                "breaker_opens": self.backend.breaker.opens,
                "degraded_reasons": dict(
                    sorted(self.backend.degraded_reasons.items())),
                "corrupt_results": self.backend.corrupt_detected,
            },
        }
        if self.mutables is not None:
            out["mutation"] = {cls: mutable.counters()
                               for cls, mutable in sorted(self.mutables.items())}
        return out
