"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, cmd_list, cmd_run, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig13", "fig12", "--scale", "smoke",
             "--csv-dir", str(tmp_path)])
        assert args.experiments == ["fig13", "fig12"]
        assert args.scale == "smoke"

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig13", "--scale", "huge"])


class TestCommands:
    def test_list_prints_everything(self, capsys):
        assert cmd_list() == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert cmd_run(["fig99"], "smoke", None) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_writes_csv(self, tmp_path, capsys):
        from repro.harness import experiments
        experiments.clear_cache()
        code = main(["run", "fig13", "--scale", "smoke",
                     "--csv-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out
        csv = (tmp_path / "fig13.csv").read_text()
        assert csv.startswith("workload,")
        experiments.clear_cache()

    def test_all_expands(self):
        # 'all' must expand to exactly the registered experiments.
        names = sorted(EXPERIMENTS)
        assert "fig12" in names and len(names) == 12
