"""One experiment per paper figure/table.

Each ``figNN`` function runs the relevant workloads at the requested
scale ("smoke" for tests, "small" for default benches, "large" for
longer, closer-to-paper runs — also selectable via the ``REPRO_SCALE``
environment variable) and returns a :class:`~repro.harness.results.Table`
shaped like the paper's figure, with paper-reported values alongside.
"""

import os
from typing import Dict, Optional

from repro.exec import get_service, make_spec
from repro.gpu.config import DEFAULT_CONFIG
from repro.harness import paper
from repro.harness.results import Table, geomean
from repro.harness.runner import RunResult
from repro.workloads import LUMIBENCH_SUITE

#: Per-scale workload parameters.  "small" keeps every figure's bench
#: under a couple of minutes; "large" roughly quadruples the work.
SCALES: Dict[str, Dict] = {
    "smoke": dict(
        btree_sweep=[(2048, 2048)],
        btree_main=(2048, 2048),
        nbody_bodies=384,
        rtnn=(2048, 384),
        lumi_res=8,
        wknd=dict(res=8, spheres=160, bounces=1),
    ),
    "small": dict(
        btree_sweep=[(4096, 16384), (16384, 8192), (65536, 8192)],
        btree_main=(16384, 8192),
        nbody_bodies=1024,
        rtnn=(8192, 1024),
        lumi_res=12,
        wknd=dict(res=16, spheres=420, bounces=2),
    ),
    "large": dict(
        btree_sweep=[(4096, 32768), (16384, 16384), (65536, 16384),
                     (262144, 16384)],
        btree_main=(65536, 16384),
        nbody_bodies=2048,
        rtnn=(16384, 2048),
        lumi_res=16,
        wknd=dict(res=20, spheres=640, bounces=2),
    ),
}

#: Cache geometry used for the ray-tracing workloads: procedural scenes
#: are far smaller than LumiBench assets, so the caches shrink with them
#: to keep node fetches memory-dominated (DESIGN.md §6).
RT_OVERRIDES = dict(l1_size=512, l2_size=4096, l2_assoc=8)
RT_CONFIG = DEFAULT_CONFIG.with_overrides(**RT_OVERRIDES)

#: Spec config policies matching the historical per-family defaults.
_SCALED = {"policy": "scaled"}
_RT_POLICY = {"policy": "default", "overrides": RT_OVERRIDES}


def params(scale: Optional[str] = None) -> Dict:
    scale = scale or os.environ.get("REPRO_SCALE", "small")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; pick from {sorted(SCALES)}")
    return SCALES[scale]


def clear_cache() -> None:
    """Drop all in-memory memoization (run results and built workloads).

    The on-disk result cache, when enabled, is *not* touched — use
    ``python -m repro cache clear`` for that.
    """
    from repro.harness import runner
    runner.clear_workload_cache()
    get_service().clear_memory()


def default_config_policy(kind: str) -> Optional[Dict]:
    """The config policy each workload family's figures historically use."""
    return {
        "btree": dict(_SCALED),
        "nbody": dict(_SCALED),
        "rtnn": {"policy": "scaled", "pressure": 20.0},
        "rtree": dict(_SCALED),
        "knn": dict(_SCALED),
        "wknd": dict(_RT_POLICY),
        "lumi": dict(_RT_POLICY),
    }[kind]


# -- shared runs --------------------------------------------------------------------
#
# Each helper builds a declarative RunSpec and hands it to the global
# execution service, which memoizes in-process, consults the on-disk
# cache, and (under ``--jobs N``) executes missing points on the worker
# pool.  The workload seeds are part of the spec, so the content
# address covers everything that determines the simulation's outcome.

def _run(kind: str, workload: Dict, platform: str, config=None,
         **run_kwargs) -> RunResult:
    spec = make_spec(kind, workload, platform,
                     config=config if config is not None
                     else default_config_policy(kind),
                     run_kwargs=run_kwargs)
    return get_service().run(spec)


def _btree_run(variant: str, n_keys: int, n_queries: int, platform: str,
               config_overrides: Optional[Dict] = None,
               **kw) -> RunResult:
    config = default_config_policy("btree")
    if config_overrides:
        config["overrides"] = dict(config_overrides)
    return _run("btree",
                dict(variant=variant, n_keys=n_keys, n_queries=n_queries,
                     seed=1),
                platform, config=config, **kw)


def _nbody_run(dims: int, n_bodies: int, platform: str,
               fused: int = 0) -> RunResult:
    return _run("nbody", dict(n_bodies=n_bodies, dims=dims, seed=2,
                              theta=0.6),
                platform, fused_post_insts=fused)


def _rtnn_run(n_points: int, n_queries: int, platform: str) -> RunResult:
    return _run("rtnn", dict(n_points=n_points, n_queries=n_queries,
                             radius=1.0, seed=3),
                platform)


def _wknd_run(platform: str, scale: Dict, **kw) -> RunResult:
    w = scale["wknd"]
    return _run("wknd", dict(width=w["res"], height=w["res"],
                             n_spheres=w["spheres"], bounces=w["bounces"]),
                platform, **kw)


def _lumi_run(name: str, platform: str, res: int) -> RunResult:
    return _run("lumi", dict(name=name, width=res, height=res), platform)


# -- Fig. 1: motivation -------------------------------------------------------------
def fig01_motivation(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    table = Table(
        "Fig. 1 — SIMT efficiency and DRAM bandwidth utilization",
        ["workload", "simt_eff(gpu)", "simt_eff(paper)",
         "dram(gpu)", "dram(gpu,paper)", "dram(+tta)", "dram(+tta,paper)"],
    )
    rows = [("btree", lambda pl: _btree_run("btree", nk, nq, pl)),
            ("bstar", lambda pl: _btree_run("bstar", nk, nq, pl)),
            ("bplus", lambda pl: _btree_run("bplus", nk, nq, pl)),
            ("nbody2d", lambda pl: _nbody_run(2, p["nbody_bodies"], pl)),
            ("nbody3d", lambda pl: _nbody_run(3, p["nbody_bodies"], pl))]
    for name, runner in rows:
        base = runner("gpu")
        tta = runner("tta")
        table.add_row(
            name, base.simt_efficiency,
            paper.FIG1_SIMT_EFFICIENCY[name],
            base.metric("memsys.dram.utilization"),
            paper.FIG1_DRAM_UTIL_GPU[name],
            tta.metric("memsys.dram.utilization"),
            paper.FIG1_DRAM_UTIL_TTA[name],
        )
    # The paper's rightmost bars: ray tracing, where the RTA already
    # fixes the divergence (software traversal vs hardware traceRay).
    sw = _lumi_run("BUNNY_SH", "gpu", p["lumi_res"])
    hw = _lumi_run("BUNNY_SH", "rta", p["lumi_res"])
    table.add_row("raytrace", sw.simt_efficiency, 0.45,
                  sw.metric("memsys.dram.utilization"), 0.15,
                  hw.metric("memsys.dram.utilization"), 0.30)
    return table


# -- Fig. 6: roofline ---------------------------------------------------------------
def fig06_roofline(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    cfg = DEFAULT_CONFIG
    peak_flops_per_cycle = cfg.n_sms * cfg.warp_size  # 1 FMA lane each
    table = Table(
        "Fig. 6 — roofline placement of tree traversal workloads",
        ["workload", "flops/byte", "achieved_ops_per_cycle",
         "peak_ops_per_cycle", "bw_roof_ops_per_cycle", "bound"],
    )
    runs = [("btree", _btree_run("btree", nk, nq, "gpu")),
            ("bplus", _btree_run("bplus", nk, nq, "gpu")),
            ("nbody3d", _nbody_run(3, p["nbody_bodies"], "gpu")),
            ("rtnn", _rtnn_run(*p["rtnn"], "gpu"))]
    for name, run in runs:
        flops = run.stats.thread_instructions.get("alu") + \
            run.stats.thread_instructions.get("sfu")
        dram_bytes = max(1.0, run.stats.memory["dram_bytes"])
        intensity = flops / dram_bytes
        achieved = flops / run.cycles
        bw_roof = intensity * DEFAULT_CONFIG.dram_bytes_per_cycle
        bound = "memory" if bw_roof < peak_flops_per_cycle else "compute"
        table.add_row(name, intensity, achieved, peak_flops_per_cycle,
                      bw_roof, bound)
    return table


# -- Fig. 12: speedups ------------------------------------------------------------
def fig12_speedup(scale: Optional[str] = None) -> Table:
    p = params(scale)
    table = Table(
        "Fig. 12 — speedup over baseline (CUDA apps vs GPU, RT apps vs RTA)",
        ["workload", "config", "tta", "ttaplus", "paper_range"],
    )
    tta_speedups = []
    for variant in ("btree", "bstar", "bplus"):
        for nk, nq in p["btree_sweep"]:
            base = _btree_run(variant, nk, nq, "gpu")
            tta = _btree_run(variant, nk, nq, "tta")
            tp = _btree_run(variant, nk, nq, "ttaplus")
            s_tta = tta.speedup_over(base)
            tta_speedups.append(s_tta)
            table.add_row(variant, f"{nk}k/{nq}q", s_tta,
                          tp.speedup_over(base),
                          str(paper.FIG12_SPEEDUP_TTA[variant]))
    for dims in (2, 3):
        base = _nbody_run(dims, p["nbody_bodies"], "gpu")
        tta = _nbody_run(dims, p["nbody_bodies"], "tta")
        tp = _nbody_run(dims, p["nbody_bodies"], "ttaplus")
        table.add_row(f"nbody{dims}d", f"{p['nbody_bodies']}b",
                      tta.speedup_over(base), tp.speedup_over(base),
                      str(paper.FIG12_SPEEDUP_TTA[f"nbody{dims}d"]))
    # RT apps: relative to the baseline RTA implementation (RTNN).
    rta = _rtnn_run(*p["rtnn"], "rta")
    for label, platform, key in (
            ("rtnn(tta)", "tta", "rtnn_tta"),
            ("rtnn(naive)", "ttaplus", "rtnn_ttaplus_naive"),
            ("*rtnn", "ttaplus_opt", "rtnn_ttaplus_opt")):
        run = _rtnn_run(*p["rtnn"], platform)
        table.add_row(label, f"{p['rtnn'][0]}pts", run.speedup_over(rta),
                      float("nan"),
                      str(paper.FIG12_RT_SPEEDUP_OVER_RTA[key]))
    table.rows.append(["geomean(btree family, tta)", "", geomean(tta_speedups),
                       "", str(paper.HEADLINES["btree_family_speedup_geomean"])])
    return table


# -- Fig. 13: DRAM utilization ------------------------------------------------------
#
# Figs. 13/15/18 read the repro.obs metrics registry
# (``run.metric("memsys.dram.utilization")`` and friends) rather than
# raw stat dicts or accelerator snapshot keys: the registry owns the
# naming and the per-accelerator merging.

_DRAM_UTIL = "memsys.dram.utilization"


def fig13_dram(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    table = Table(
        "Fig. 13 — DRAM bandwidth utilization per platform",
        ["workload", "gpu", "rta", "tta", "ttaplus"],
    )
    for variant in ("btree", "bstar", "bplus"):
        table.add_row(
            variant,
            _btree_run(variant, nk, nq, "gpu").metric(_DRAM_UTIL),
            float("nan"),  # baseline RTA cannot run B-Tree queries
            _btree_run(variant, nk, nq, "tta").metric(_DRAM_UTIL),
            _btree_run(variant, nk, nq, "ttaplus").metric(_DRAM_UTIL),
        )
    for dims in (2, 3):
        table.add_row(
            f"nbody{dims}d",
            _nbody_run(dims, p["nbody_bodies"], "gpu").metric(_DRAM_UTIL),
            float("nan"),
            _nbody_run(dims, p["nbody_bodies"], "tta").metric(_DRAM_UTIL),
            _nbody_run(dims, p["nbody_bodies"], "ttaplus").metric(_DRAM_UTIL),
        )
    table.add_row(
        "rtnn",
        _rtnn_run(*p["rtnn"], "gpu").metric(_DRAM_UTIL),
        _rtnn_run(*p["rtnn"], "rta").metric(_DRAM_UTIL),
        _rtnn_run(*p["rtnn"], "tta").metric(_DRAM_UTIL),
        _rtnn_run(*p["rtnn"], "ttaplus_opt").metric(_DRAM_UTIL),
    )
    return table


# -- Fig. 14: TTA sensitivity ---------------------------------------------------------
def fig14_sensitivity(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    table = Table(
        "Fig. 14 — B-Tree TTA sensitivity to warp buffer size and latency",
        ["variant", "knob", "value", "speedup_vs_gpu"],
    )
    for variant in ("btree", "bstar", "bplus"):
        base = _btree_run(variant, nk, nq, "gpu")
        for warps in (1, 2, 4, 8, 16):
            run = _btree_run(variant, nk, nq, "tta",
                             config_overrides={"warp_buffer_warps": warps},
                             verify=False)
            table.add_row(variant, "warp_buffer", warps,
                          run.speedup_over(base))
        for latency, label in ((3, "minmax-only(3cy)"), (13, "default(13cy)"),
                               (130, "10x(130cy)")):
            run = _btree_run(variant, nk, nq, "tta",
                             tta_latency_overrides={"query_key": latency},
                             verify=False)
            table.add_row(variant, "isect_latency", label,
                          base.cycles / run.cycles)
    return table


# -- Fig. 15: TTA intersection unit utilization -----------------------------------------
def fig15_unit_util(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    table = Table(
        "Fig. 15 — TTA intersection-unit concurrency (avg / peak in flight)",
        ["workload", "unit", "avg_inflight", "peak_inflight"],
    )
    runs = [("btree", _btree_run("btree", nk, nq, "tta"), ["query_key"]),
            ("nbody3d", _nbody_run(3, p["nbody_bodies"], "tta"),
             ["point_dist"]),
            ("rtnn", _rtnn_run(*p["rtnn"], "tta"),
             ["box", "point_dist"])]
    for name, run, units in runs:
        for unit in units:
            table.add_row(name, unit,
                          run.metric(f"rta.unit.{unit}.occupancy_avg"),
                          run.metric(f"rta.unit.{unit}.occupancy_peak"))
    return table


# -- Fig. 16: LumiBench on TTA+ ---------------------------------------------------------
def fig16_lumibench(scale: Optional[str] = None) -> Table:
    p = params(scale)
    res = p["lumi_res"]
    table = Table(
        "Fig. 16 — ray tracing on TTA+ relative to baseline RTA",
        ["workload", "ttaplus/rta", "optimized/rta", "paper"],
    )
    ratios = []
    for spec in LUMIBENCH_SUITE:
        rta = _lumi_run(spec.name, "rta", res)
        tp = _lumi_run(spec.name, "ttaplus", res)
        ratio = rta.cycles / tp.cycles
        ratios.append(ratio)
        opt = float("nan")
        if spec.sato_capable:
            opt = rta.cycles / _lumi_run(spec.name, "ttaplus_opt", res).cycles
        table.add_row(spec.name, ratio, opt, "~0.92 mean")
    wk_rta = _wknd_run("rta", p)
    wk_tp = _wknd_run("ttaplus", p)
    wk_opt = _wknd_run("ttaplus_opt", p)
    table.add_row("WKND_PT", wk_rta.cycles / wk_tp.cycles,
                  wk_rta.cycles / wk_opt.cycles,
                  f"opt = {paper.HEADLINES['wknd_opt_improvement']}x naive")
    ratios.append(wk_rta.cycles / wk_tp.cycles)
    table.add_row("geomean", geomean(ratios), float("nan"),
                  str(paper.HEADLINES["lumibench_ttaplus_slowdown"]))
    return table


# -- Fig. 17: limit study ----------------------------------------------------------------
def fig17_limit_study(scale: Optional[str] = None) -> Table:
    p = params(scale)
    table = Table(
        "Fig. 17 — WKND_PT limit study on TTA+ (relative to baseline RTA)",
        ["config", "WKND_PT", "*WKND_PT"],
    )
    rta = _wknd_run("rta", p)

    def rel(platform, **kw):
        return rta.cycles / _wknd_run(platform, p, **kw).cycles

    table.add_row("TTA+", rel("ttaplus"), rel("ttaplus_opt"))
    table.add_row("Perf. RT (zero-latency node fetch)",
                  rel("ttaplus", perfect_node_fetch=True),
                  rel("ttaplus_opt", perfect_node_fetch=True))
    table.add_row("Perf. Mem (zero-latency memory)",
                  rel("ttaplus", perfect_mem=True),
                  rel("ttaplus_opt", perfect_mem=True))
    return table


# -- Fig. 18: OP unit utilization and intersection latency --------------------------------
def fig18_opunits(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    table = Table(
        "Fig. 18 — TTA+ OP-unit utilization (top) / intersection latency "
        "(bottom)",
        ["workload", "kind", "name", "value"],
    )
    runs = [("btree", _btree_run("btree", nk, nq, "ttaplus")),
            ("nbody3d", _nbody_run(3, p["nbody_bodies"], "ttaplus")),
            ("*rtnn", _rtnn_run(*p["rtnn"], "ttaplus_opt")),
            ("wknd", _wknd_run("ttaplus_opt", p))]
    for name, run in runs:
        metrics = run.metrics
        for op, value in sorted(metrics.group("ttaplus.op_util").items()):
            if value > 0:
                table.add_row(name, "util", op, value)
        for test, value in sorted(
                metrics.group("ttaplus.test_latency").items()):
            if value > 0:
                table.add_row(name, "latency", test, value)
    return table


# -- Fig. 19: energy -------------------------------------------------------------------
def fig19_energy(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    table = Table(
        "Fig. 19 — energy normalized to the baseline GPU (BASE)",
        ["workload", "platform", "compute_core", "warp_buffer",
         "intersection", "total"],
    )

    def add(name, base_run, run, platform):
        norm = run.energy.normalized_to(base_run.energy)
        table.add_row(name, platform, norm["compute_core"],
                      norm["warp_buffer"], norm["intersection"],
                      norm["total"])

    for variant in ("btree", "bstar", "bplus"):
        base = _btree_run(variant, nk, nq, "gpu")
        add(variant, base, base, "base")
        add(variant, base, _btree_run(variant, nk, nq, "tta"), "tta")
        add(variant, base, _btree_run(variant, nk, nq, "ttaplus"), "ttaplus")
    for dims in (2, 3):
        base = _nbody_run(dims, p["nbody_bodies"], "gpu")
        add(f"nbody{dims}d", base, base, "base")
        add(f"nbody{dims}d", base, _nbody_run(dims, p["nbody_bodies"], "tta"),
            "tta")
        add(f"nbody{dims}d", base,
            _nbody_run(dims, p["nbody_bodies"], "ttaplus"), "ttaplus")
    rta = _rtnn_run(*p["rtnn"], "rta")
    add("rtnn", rta, rta, "rta(base)")
    add("rtnn", rta, _rtnn_run(*p["rtnn"], "tta"), "tta")
    add("rtnn", rta, _rtnn_run(*p["rtnn"], "ttaplus_opt"), "*rtnn")
    return table


# -- Fig. 20: dynamic instruction breakdown ------------------------------------------------
def fig20_instructions(scale: Optional[str] = None) -> Table:
    p = params(scale)
    nk, nq = p["btree_main"]
    table = Table(
        "Fig. 20 — dynamically executed warp instructions (normalized)",
        ["workload", "platform", "alu", "control", "sfu", "mem", "tta",
         "total_vs_base"],
    )
    cases = [("btree", lambda pl: _btree_run("btree", nk, nq, pl)),
             ("bstar", lambda pl: _btree_run("bstar", nk, nq, pl)),
             ("bplus", lambda pl: _btree_run("bplus", nk, nq, pl)),
             ("nbody3d", lambda pl: _nbody_run(3, p["nbody_bodies"], pl))]
    reductions = []
    for name, runner in cases:
        base = runner("gpu")
        base_total = base.stats.total_warp_instructions
        for platform in ("gpu", "tta", "ttaplus"):
            run = runner(platform)
            br = run.stats.warp_instructions
            total = run.stats.total_warp_instructions
            table.add_row(name, platform,
                          br.get("alu") / base_total,
                          br.get("control") / base_total,
                          br.get("sfu") / base_total,
                          br.get("mem") / base_total,
                          br.get("tta") / base_total,
                          total / base_total)
            if platform == "tta":
                reductions.append(1.0 - total / base_total)
    table.add_row("mean reduction (tta)", "", float("nan"), float("nan"),
                  float("nan"), float("nan"), float("nan"),
                  sum(reductions) / len(reductions))
    return table


# -- N-Body kernel fusion (§V-A text) --------------------------------------------------
def nbody_fusion(scale: Optional[str] = None) -> Table:
    p = params(scale)
    table = Table(
        "§V-A — N-Body traversal/post-processing kernel fusion on TTA+",
        ["config", "speedup_vs_gpu", "paper"],
    )
    post = 120  # post-processing instructions per body (integration etc.)
    base = _nbody_run(3, p["nbody_bodies"], "gpu", fused=post)
    separate = _nbody_run(3, p["nbody_bodies"], "ttaplus", fused=0)
    fused = _nbody_run(3, p["nbody_bodies"], "ttaplus", fused=post)
    # The separate-kernels configuration pays the post-processing serially
    # on the cores after the traversal kernel completes.
    separate_total = separate.cycles + (base.cycles * 0.25)
    table.add_row("TTA+ separate kernels", base.cycles / separate_total, "-")
    table.add_row("TTA+ fused", base.cycles / fused.cycles,
                  str(paper.HEADLINES["nbody_fused_speedup"]))
    return table
