"""Area, power and energy models (§IV-B, §V-C).

Area and power constants are the paper's FreePDK45 synthesis results
(Table IV and §V-C1); activity counts (unit-busy cycles, warp-buffer
accesses, dynamic instructions, DRAM bytes) come from the simulator,
mirroring the paper's CACTI7 + AccelWattch methodology.
"""

from repro.energy.area import (
    AreaReport,
    baseline_rta_area_um2,
    tta_area_report,
    ttaplus_area_report,
)
from repro.energy.model import EnergyBreakdown, energy_report
from repro.energy.power import UNIT_POWER_MW

__all__ = [
    "AreaReport",
    "baseline_rta_area_um2",
    "tta_area_report",
    "ttaplus_area_report",
    "EnergyBreakdown",
    "energy_report",
    "UNIT_POWER_MW",
]
