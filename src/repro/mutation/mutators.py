"""Per-flavor mutators: apply write ops to a resident workload while
keeping its golden reference consistent.

A mutator owns the *workload-level* consistency contract that makes
mixed read/write serving verifiable: every insert/delete/update updates
both the tree structure (via the trees' online mutation paths) and
whatever the workload's golden oracle reads (the B-Tree membership
list, the R-Tree entry list, the point-cloud tombstone set), so
``LaunchBackend``'s per-launch verification and the refit/rebuild
equivalence tests hold at any point in the write stream.

All randomness comes from the caller's ``random.Random`` — mutators are
deterministic transformers of (workload, op stream).
"""

import random
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.geometry.sphere import Sphere
from repro.geometry.vec import Vec3
from repro.mutation.quality import (
    btree_quality,
    bvh_quality,
    kdtree_quality,
    rtree_quality,
)
from repro.trees.bvh import BVH
from repro.trees.kdtree import KDTree
from repro.trees.rtree import RectEntry, RTree, make_rect


class _LivePool:
    """O(1) uniform pick / add / remove over the live id set.

    Swap-pop keeps selection deterministic under a seeded rng without
    per-op sorting — the trick loadgen uses for hit-key draws.
    """

    __slots__ = ("_items", "_pos")

    def __init__(self, items):
        self._items = list(items)
        self._pos = {x: i for i, x in enumerate(self._items)}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, x) -> bool:
        return x in self._pos

    def add(self, x) -> None:
        self._pos[x] = len(self._items)
        self._items.append(x)

    def remove(self, x) -> None:
        i = self._pos.pop(x)
        last = self._items.pop()
        if last != x:
            self._items[i] = last
            self._pos[last] = i

    def pick(self, rng: random.Random):
        return self._items[rng.randrange(len(self._items))]

    def items(self) -> List:
        return list(self._items)


class Mutator:
    """Base: op dispatch with a live-set floor.

    Below ``floor`` live items, deletes and updates degrade to inserts
    (deterministically — same decision for the same stream position),
    so churn can never starve an index below what its queries need.
    ``apply`` returns ``(effective_op, nodes_touched)``.
    """

    flavor = ""
    floor = 16

    def apply(self, op: str, rng: random.Random) -> Tuple[str, int]:
        if op not in ("insert", "delete", "update"):
            raise ConfigurationError(f"unknown write op {op!r}")
        if op != "insert" and self.live_size <= self.floor:
            op = "insert"
        return op, getattr(self, "_" + op)(rng)

    @property
    def live_size(self) -> int:
        raise NotImplementedError

    def refit(self) -> int:
        raise NotImplementedError

    def rebuild(self) -> None:
        raise NotImplementedError

    def fresh_tree(self):
        """A from-scratch bulk build over the current live set — the
        oracle the refit/rebuild equivalence tests compare against."""
        raise NotImplementedError

    def quality(self) -> Dict[str, float]:
        raise NotImplementedError


class BTreeMutator(Mutator):
    """Point class: key insert/delete/move against the B-Tree variants.

    The workload's ``golden`` list is membership per query, so the
    mutator keeps a key -> query-index map and flips entries as keys
    enter and leave the live set.
    """

    flavor = "point"

    def __init__(self, workload):
        self.wl = workload
        live = workload.tree.keys_in_order()
        self.pool = _LivePool(live)
        top = max(live) if live else 0
        self.key_space = max(4 * len(live), top + 1)
        self._qids: Dict[int, List[int]] = {}
        for qid, key in enumerate(workload.queries):
            self._qids.setdefault(key, []).append(qid)
        self._rebuild_seed = 1

    @property
    def live_size(self) -> int:
        return len(self.pool)

    def _set_golden(self, key: int, present: bool) -> None:
        for qid in self._qids.get(key, ()):
            self.wl.golden[qid] = present

    def _draw_new_key(self, rng: random.Random) -> int:
        while True:
            key = rng.randrange(self.key_space)
            if key not in self.pool:
                return key

    def _insert(self, rng: random.Random) -> int:
        key = self._draw_new_key(rng)
        self.wl.tree.insert(key)
        self.pool.add(key)
        self._set_golden(key, True)
        return self.wl.tree.height()

    def _delete(self, rng: random.Random) -> int:
        key = self.pool.pick(rng)
        self.wl.tree.delete(key)
        self.pool.remove(key)
        self._set_golden(key, False)
        return self.wl.tree.height()

    def _update(self, rng: random.Random) -> int:
        # A "move": one key leaves, a fresh one lands.
        return self._delete(rng) + self._insert(rng)

    def refit(self) -> int:
        # Fence keys are maintained exactly by insert/delete — there is
        # nothing to recompute, so a B-Tree refit is free.
        return 0

    def rebuild(self) -> None:
        tree = self.wl.tree
        self.wl.tree = type(tree).bulk_load(
            sorted(self.pool.items()), order=tree.order,
            seed=self._rebuild_seed)
        self._rebuild_seed += 1

    def fresh_tree(self):
        tree = self.wl.tree
        return type(tree).bulk_load(sorted(self.pool.items()),
                                    order=tree.order, seed=0)

    def quality(self) -> Dict[str, float]:
        return btree_quality(self.wl.tree)


class RTreeMutator(Mutator):
    """Range class: rectangle insert/delete/move.

    ``workload.entries`` is the brute-force golden set; the mutator
    keeps it in lockstep with the tree using the same swap-pop trick as
    the live pool (golden iterates the whole list, so order is free).
    """

    flavor = "range"

    def __init__(self, workload):
        self.wl = workload
        self._pos: Dict[int, int] = {
            e.data_id: i for i, e in enumerate(workload.entries)}
        self.next_id = 1 + max(
            (e.data_id for e in workload.entries), default=0)
        span = 0.0
        for e in workload.entries:
            span = max(span, e.rect.hi.x, e.rect.hi.y)
        self.span = max(span, 1.0)

    @property
    def live_size(self) -> int:
        return len(self.wl.entries)

    def _draw_rect(self, rng: random.Random):
        x, y = rng.uniform(0, self.span), rng.uniform(0, self.span)
        w, h = rng.uniform(0.2, 4.0), rng.uniform(0.2, 4.0)
        return make_rect(x, y, x + w, y + h)

    def _insert(self, rng: random.Random) -> int:
        rect = self._draw_rect(rng)
        data_id = self.next_id
        self.next_id += 1
        self.wl.tree.insert(rect, data_id)
        self._pos[data_id] = len(self.wl.entries)
        self.wl.entries.append(RectEntry(rect, data_id))
        return self.wl.tree.height()

    def _delete(self, rng: random.Random) -> int:
        entries = self.wl.entries
        i = rng.randrange(len(entries))
        entry = entries[i]
        self.wl.tree.delete(entry.data_id, entry.rect)
        last = entries.pop()
        if last.data_id != entry.data_id:
            entries[i] = last
            self._pos[last.data_id] = i
        del self._pos[entry.data_id]
        return self.wl.tree.height()

    def _update(self, rng: random.Random) -> int:
        entries = self.wl.entries
        i = rng.randrange(len(entries))
        old = entries[i]
        rect = self._draw_rect(rng)
        self.wl.tree.delete(old.data_id, old.rect)
        self.wl.tree.insert(rect, old.data_id)
        # delete() may have condensed/reinserted and moved other
        # entries — only the rect changes; position map is untouched.
        entries[self._pos[old.data_id]] = RectEntry(rect, old.data_id)
        return 2 * self.wl.tree.height()

    def refit(self) -> int:
        # Bottom-up exact MBR sweep.  Guttman insert/delete already keep
        # MBRs exact, so this is the bookkeeping pass the scheduler
        # charges, not a correctness requirement.
        nodes = self.wl.tree.nodes()
        for node in reversed(nodes):
            node.recompute_mbr()
        tree = self.wl.tree
        tree.mutation_epoch = getattr(tree, "mutation_epoch", 0) + 1
        return len(nodes)

    def rebuild(self) -> None:
        tree = self.wl.tree
        self.wl.tree = RTree.bulk_load(
            sorted(self.wl.entries, key=lambda e: e.data_id),
            max_entries=tree.max_entries)

    def fresh_tree(self):
        return RTree.bulk_load(
            sorted(self.wl.entries, key=lambda e: e.data_id),
            max_entries=self.wl.tree.max_entries)

    def quality(self) -> Dict[str, float]:
        return rtree_quality(self.wl.tree)


class KDTreeMutator(Mutator):
    """kNN class: point insert/delete/move with stable ids.

    The golden oracle (``brute_force_knn``) reads the tree's tombstone
    set directly, so consistency is free; the floor tracks ``k`` so a
    query can always fill its result list.
    """

    flavor = "knn"

    def __init__(self, workload):
        self.wl = workload
        self.pool = _LivePool(workload.tree.live_point_ids())
        self.floor = max(16, workload.k)
        pts = [workload.tree.points[i] for i in self.pool.items()]
        self.lo = Vec3(min(p.x for p in pts), min(p.y for p in pts),
                       min(p.z for p in pts))
        self.hi = Vec3(max(p.x for p in pts), max(p.y for p in pts),
                       max(p.z for p in pts))

    @property
    def live_size(self) -> int:
        return len(self.pool)

    def _draw_point(self, rng: random.Random) -> Vec3:
        return Vec3(rng.uniform(self.lo.x, self.hi.x),
                    rng.uniform(self.lo.y, self.hi.y),
                    rng.uniform(self.lo.z, self.hi.z))

    def _insert(self, rng: random.Random) -> int:
        point = self._draw_point(rng)
        depth = self.wl.tree.depth()
        pid = self.wl.tree.insert_point(point)
        self.pool.add(pid)
        return depth

    def _delete(self, rng: random.Random) -> int:
        pid = self.pool.pick(rng)
        self.wl.tree.delete_point(pid)
        self.pool.remove(pid)
        return self.wl.tree.depth()

    def _update(self, rng: random.Random) -> int:
        return self._delete(rng) + self._insert(rng)

    def refit(self) -> int:
        return self.wl.tree.refit()

    def rebuild(self) -> None:
        tree = self.wl.tree
        self.wl.tree = KDTree.rebuilt(
            tree.points, self.pool.items(),
            max_leaf_size=tree.max_leaf_size, dims=tree.dims)

    def fresh_tree(self):
        tree = self.wl.tree
        return KDTree.rebuilt(tree.points, self.pool.items(),
                              max_leaf_size=tree.max_leaf_size,
                              dims=tree.dims)

    def quality(self) -> Dict[str, float]:
        return kdtree_quality(self.wl.tree)


class BVHMutator(Mutator):
    """Radius class: sphere insert/delete/move over the RTNN cloud.

    Deletes tombstone the point both in the BVH (slice removal) and in
    the workload (``_dead_points``, which the brute-force golden
    filters); inserts and moves invalidate the memoized points SoA.
    """

    flavor = "radius"

    def __init__(self, workload):
        self.wl = workload
        self.pool = _LivePool(workload.bvh.live_prim_ids())
        root = workload.bvh.root.bounds
        self.lo, self.hi = root.lo, root.hi

    @property
    def live_size(self) -> int:
        return len(self.pool)

    def _draw_point(self, rng: random.Random) -> Vec3:
        return Vec3(rng.uniform(self.lo.x, self.hi.x),
                    rng.uniform(self.lo.y, self.hi.y),
                    rng.uniform(self.lo.z, self.hi.z))

    def _insert(self, rng: random.Random) -> int:
        point = self._draw_point(rng)
        pid = len(self.wl.points)
        self.wl.points.append(point)
        self.wl._points_soa = None
        touched = self.wl.bvh.insert(
            Sphere(point, self.wl.radius, prim_id=pid))
        self.pool.add(pid)
        return touched

    def _delete(self, rng: random.Random) -> int:
        pid = self.pool.pick(rng)
        touched = self.wl.bvh.remove(pid)
        self.pool.remove(pid)
        self.wl._dead_points.add(pid)
        return touched

    def _update(self, rng: random.Random) -> int:
        pid = self.pool.pick(rng)
        point = self._draw_point(rng)
        self.wl.points[pid] = point
        self.wl._points_soa = None
        return self.wl.bvh.update(
            pid, Sphere(point, self.wl.radius, prim_id=pid))

    def refit(self) -> int:
        return self.wl.bvh.refit()

    def rebuild(self) -> None:
        self.wl.bvh = self.fresh_tree()

    def fresh_tree(self):
        spheres = [Sphere(self.wl.points[i], self.wl.radius, prim_id=i)
                   for i in sorted(self.pool.items())]
        return BVH(spheres, max_leaf_size=self.wl.bvh.max_leaf_size,
                   method="sah")

    def quality(self) -> Dict[str, float]:
        return bvh_quality(self.wl.bvh)


_MUTATORS = {
    "point": BTreeMutator,
    "range": RTreeMutator,
    "knn": KDTreeMutator,
    "radius": BVHMutator,
}


def make_mutator(query_class: str, workload) -> Mutator:
    """The mutator for one resident index's query class."""
    try:
        cls = _MUTATORS[query_class]
    except KeyError:
        raise ConfigurationError(
            f"no mutator for query class {query_class!r}; "
            f"choose from {sorted(_MUTATORS)}")
    return cls(workload)
