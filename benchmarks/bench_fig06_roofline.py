"""Fig. 6 — roofline placement of the tree-traversal workloads."""

from repro.harness import experiments


def test_fig06_roofline(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig06_roofline(scale), rounds=1, iterations=1)
    save_table("fig06_roofline", table)
    # Fig. 6's point: every tree-traversal workload sits far below both
    # roofs (under-utilized bandwidth, limited data reuse).
    for row in table.rows:
        name, intensity, achieved, peak, bw_roof, bound = row
        assert achieved < 0.5 * peak, f"{name} too close to compute roof"
