"""Per-warp memory coalescing into sectors.

A warp-level load touches one address per active lane; the coalescer
merges them into the minimal set of aligned sectors (32B on modern
GPUs), which is the unit the L1/L2/DRAM hierarchy moves.  Divergent
tree traversals produce near-worst-case sector counts — the memory
divergence the paper's Fig. 1 highlights.
"""

from typing import Iterable, List, Tuple

SECTOR_SIZE = 32


def coalesce_sectors(requests: Iterable[Tuple[int, int]],
                     sector_size: int = SECTOR_SIZE) -> List[int]:
    """Coalesce ``(address, size)`` pairs into unique aligned sector addresses.

    Returns the sorted list of sector base addresses covering every
    requested byte.  The cover is minimal (only sectors that contain at
    least one requested byte) and complete (every requested byte is in
    some returned sector) — properties the tests verify.
    """
    sectors = set()
    for addr, size in requests:
        if size <= 0:
            raise ValueError(f"request size must be positive, got {size}")
        first = addr - (addr % sector_size)
        last = (addr + size - 1) - ((addr + size - 1) % sector_size)
        for base in range(first, last + sector_size, sector_size):
            sectors.add(base)
    return sorted(sectors)
