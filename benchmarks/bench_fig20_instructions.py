"""Fig. 20 — dynamic instruction breakdown: 91% eliminated by offload."""

from repro.harness import experiments


def test_fig20_instructions(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig20_instructions(scale), rounds=1, iterations=1)
    save_table("fig20_instructions", table)
    rows = {(r[0], r[1]): r for r in table.rows}
    mean_reduction = [r for r in table.rows
                      if r[0] == "mean reduction (tta)"][0][7]
    # Paper: a single TTA instruction replaces the traversal loop,
    # eliminating ~91% of dynamic instructions on average.
    assert mean_reduction > 0.80, f"only {mean_reduction:.0%} eliminated"
    for name in ("btree", "bstar", "bplus", "nbody3d"):
        tta_row = rows[(name, "tta")]
        # TTA instructions are a tiny share of the baseline total
        # (paper: ~2%).
        assert tta_row[6] < 0.05, f"{name}: TTA insts {tta_row[6]:.2%}"
        # The baseline's instruction mix is dominated by ALU + control.
        base = rows[(name, "gpu")]
        assert base[2] + base[3] > base[5], f"{name}: mem-dominated baseline"
