"""Deterministic fault injection into the simulation's failure seams.

The watchdog and the conservation invariants are only worth their
overhead if they demonstrably fire, so this module can break a run in
precisely the ways ``repro.guard`` claims to catch.  Faults are
installed by wrapping methods on *one accelerator instance* (never a
class), so a faulted core sits next to healthy ones in the same GPU and
nothing leaks between launches.

Fault kinds (:data:`KINDS`):

``drop_wake``
    The victim job's next wake-up is parked in a wake bucket whose
    drain event is never scheduled — the exact bug class the batched
    driver's per-(core, cycle) buckets make possible.  The simulation
    goes quiet with the job in flight; the guard's quiescence check (or
    the parked-work scan, if other work keeps the clock moving past the
    bucket's cycle) reports it.
``stall``
    The victim job re-parks itself forever without advancing its
    traversal: an endless stream of drain events with a frozen progress
    token.  Caught by the watchdog's no-progress budget.
``dup_complete``
    The victim job's completion runs twice.  Caught immediately by the
    at-most-once check in ``RTACore._finish_job``.
``lost_fetch``
    One node fetch's response "never" arrives (completion pushed
    ~1e12 cycles out).  Caught by the ``max_cycles`` budget — set one
    when using this fault, otherwise the run terminates with an absurd
    cycle count instead of aborting.
``lost_response``
    The memory system records a sector request whose response vanishes.
    Caught by the end-of-run request/response balance invariant.

Faults on these seams only exist on the *batched fast path*, so the
legacy engine (``REPRO_SIM_CORE=legacy``) is naturally immune — which
is what makes ``repro.exec``'s quarantine-then-retry-on-legacy
degradation a genuine recovery, and what the exec-layer tests exploit.

Entry points: :func:`install_fault` (one core, one plan),
:func:`faulty_factory` (wrap an ``accelerator_factory``),
:func:`install_env_faults` (parse ``$REPRO_FAULTS``, applied by
``RTACore.__init__`` so faults reach worker processes through the
environment), and :func:`corrupt_cache_entry` (damage a stored result
so the exec cache's validate-on-read path can be exercised).

``$REPRO_FAULTS`` grammar: semicolon-separated plans, each
``kind[:query=<id>][:after=<n>][:sm=<id>|all]`` — e.g.
``stall:query=7:sm=0`` or ``drop_wake;lost_response:sm=all``.

**Serve-path injectors** (:data:`SERVE_KINDS`) break the *serving*
stack (``repro.serve``) rather than a simulation core, so the
``repro.serve.resilience`` mechanisms — bounded retry, circuit
breaker, hedged re-dispatch, shed-on-overload, result-integrity
checks — are provable the same way the watchdog is:

``launch_fail``
    The next ``times`` batch launches abort with a
    :class:`~repro.errors.BackendLaunchError` before the kernel runs.
    Caught by the backend's bounded retry-with-backoff; enough
    consecutive failures open the circuit breaker.
``slow_backend``
    Batch launches report ``factor``× their simulated service time on
    the loadtest's wall-clock timeline (contention on the device — the
    kernel's *cycle count* is untouched, so one-shot equivalence
    holds).  Caught by deadline-aware admission: the class's EWMA
    service time inflates and infeasible arrivals shed.
``shard_blackout``
    Simulated device ``shard`` dies at ``at_ms`` virtual milliseconds:
    in-flight launches never complete and the shard takes no new work.
    Caught by hedged re-dispatch onto a healthy shard (``degrade``/
    ``strict`` policies); with resilience off the batch's queries are
    lost and accounted as failed.
``corrupt_result``
    One launch comes back with a result slot missing and another
    garbled.  Caught by the batch-integrity invariant (every query
    must have exactly one well-formed result); the launch is retried
    and counted under ``serve.resilience.corrupt_results``.

Serve plans share the ``$REPRO_FAULTS`` grammar with extra options:
``launch_fail:times=2``, ``slow_backend:factor=8``,
``shard_blackout:shard=1:at_ms=25``, ``corrupt_result:after=1``.
Core installers skip serve kinds and vice versa, so one environment
string can poison both layers at once.
"""

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.errors import BackendLaunchError, FaultInjectionError

FAULTS_ENV = "REPRO_FAULTS"

#: Simulation-core fault kinds (installed on accelerator instances).
CORE_KINDS = ("drop_wake", "stall", "dup_complete", "lost_fetch",
              "lost_response")

#: Serving-path fault kinds (consumed by ``repro.serve``).
SERVE_KINDS = ("launch_fail", "slow_backend", "shard_blackout",
               "corrupt_result")

KINDS = CORE_KINDS

#: Cycles between re-parks of a ``stall``\ ed job (arbitrary; small
#: enough that the no-progress budget is reached quickly).
STALL_REPARK_CYCLES = 64

#: How far a ``lost_fetch`` pushes the response: far beyond any real
#: run, but finite so an unguarded simulation still terminates.
LOST_FETCH_DELAY = 10 ** 12


@dataclass
class FaultPlan:
    """One fault: what to break, which job, and when.

    ``query_id=None`` locks onto the first job to cross the seam;
    ``after`` skips that many matching crossings first.  ``sm`` selects
    which SM's accelerator the environment installer targets ("all"
    for every core).
    """

    kind: str
    query_id: Optional[int] = None
    after: int = 0
    sm: Union[int, str] = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.after < 0:
            raise FaultInjectionError(f"after={self.after} must be >= 0")

    def applies_to_sm(self, sm_id: int) -> bool:
        return self.sm == "all" or self.sm == sm_id


def _tokenize_plan(text: str):
    """``kind[:key=value]...`` -> ``(kind, {key: raw value})``."""
    parts = [p.strip() for p in text.strip().split(":") if p.strip()]
    if not parts:
        raise FaultInjectionError(f"empty fault plan in {text!r}")
    kind, options = parts[0], {}
    if kind not in CORE_KINDS and kind not in SERVE_KINDS:
        raise FaultInjectionError(
            f"unknown fault kind {kind!r}; expected one of "
            f"{CORE_KINDS + SERVE_KINDS}")
    for part in parts[1:]:
        if "=" not in part:
            raise FaultInjectionError(
                f"fault option {part!r} is not key=value (in {text!r})")
        name, _, value = part.partition("=")
        options[name] = value
    return kind, options


def parse_plan(text: str) -> FaultPlan:
    """Parse one *core* ``kind[:key=value]...`` plan from ``$REPRO_FAULTS``."""
    kind, options = _tokenize_plan(text)
    kwargs = {}
    for name, value in options.items():
        if name == "query":
            kwargs["query_id"] = int(value)
        elif name == "after":
            kwargs["after"] = int(value)
        elif name == "sm":
            kwargs["sm"] = "all" if value == "all" else int(value)
        else:
            raise FaultInjectionError(
                f"unknown fault option {name!r} (in {text!r})")
    return FaultPlan(kind, **kwargs)


def parse_plans(text: str):
    """Core-kind plans in ``text``; serve-kind plans are skipped (they
    are consumed by :func:`parse_serve_plans` on the serving layer)."""
    plans = []
    for chunk in text.split(";"):
        if not chunk.strip():
            continue
        kind, _options = _tokenize_plan(chunk)
        if kind in CORE_KINDS:
            plans.append(parse_plan(chunk))
    return plans


# -- per-seam installers ----------------------------------------------------------
def _match_job(plan: FaultPlan, core, slot: int, state: dict) -> bool:
    """Does this seam crossing belong to the victim job?

    ``slot`` indexes the core's struct-of-arrays job table
    (``core._jobs``), where the batched driver keeps per-job state.
    Locks onto one query id on the first match so repeated-trigger
    faults (``stall``) keep hitting the same job.
    """
    query_id = core._jobs.job[slot].query_id
    locked = state.get("locked")
    if locked is not None:
        return query_id == locked
    if plan.query_id is not None and query_id != plan.query_id:
        return False
    if state["skip"] > 0:
        state["skip"] -= 1
        return False
    state["locked"] = query_id
    return True


def _install_drop_wake(core, plan: FaultPlan, state: dict) -> None:
    orig = core._wake_at

    def wake_at(time, slot):
        if state["armed"] and _match_job(plan, core, slot, state):
            state["armed"] = False
            core._jobs.at[slot] = time
            # Park in a bucket with no drain event scheduled: the
            # dropped wake.  An unoccupied cycle is chosen so that an
            # already-scheduled drain cannot rescue the job (a later
            # legitimate wake landing in this bucket is collateral —
            # also dropped — which only deepens the stall).
            cycle = int(time) + 1
            while cycle in core._wake:
                cycle += 1
            core._wake[cycle] = [slot]
            return
        orig(time, slot)

    core._wake_at = wake_at


def _install_stall(core, plan: FaultPlan, state: dict) -> None:
    orig = core._advance_job

    def advance(slot):
        if _match_job(plan, core, slot, state):
            # Livelock: keep re-parking without touching the traversal,
            # so events flow but the progress token never moves.
            core._wake_at(float(core._jobs.at[slot]) + STALL_REPARK_CYCLES,
                          slot)
            return
        orig(slot)

    core._advance_job = advance


def _install_dup_complete(core, plan: FaultPlan, state: dict) -> None:
    orig = core._finish_job

    def finish(slot):
        orig(slot)
        if state["armed"] and _match_job(plan, core, slot, state):
            state["armed"] = False
            orig(slot)  # the duplicated completion

    core._finish_job = finish


def _install_lost_fetch(core, plan: FaultPlan, state: dict) -> None:
    orig = core.mem.fetch

    def fetch(now, address, size):
        if state["armed"]:
            if state["skip"] > 0:
                state["skip"] -= 1
            else:
                state["armed"] = False
                return now + LOST_FETCH_DELAY
        return orig(now, address, size)

    core.mem.fetch = fetch


def _install_lost_response(core, plan: FaultPlan, state: dict) -> None:
    orig = core.mem.fetch

    def fetch(now, address, size):
        done = orig(now, address, size)
        if state["armed"]:
            if state["skip"] > 0:
                state["skip"] -= 1
            else:
                state["armed"] = False
                # A request went out whose response vanished: the
                # request/response balance invariant must notice.
                core.mem.hierarchy.sector_requests += 1
        return done

    core.mem.fetch = fetch


_INSTALLERS = {
    "drop_wake": _install_drop_wake,
    "stall": _install_stall,
    "dup_complete": _install_dup_complete,
    "lost_fetch": _install_lost_fetch,
    "lost_response": _install_lost_response,
}


# -- public entry points -----------------------------------------------------------
def install_fault(core, plan: FaultPlan) -> None:
    """Arm one fault on one accelerator core (instance-level wrap)."""
    if getattr(core, "_legacy", False):
        # The seams being broken do not exist on the legacy per-job
        # generator path; installing there would silently test nothing.
        return
    state = {"armed": True, "skip": plan.after, "locked": None}
    _INSTALLERS[plan.kind](core, plan, state)


def faulty_factory(base_factory, *plans: FaultPlan):
    """Wrap an ``accelerator_factory`` so matching SMs get faulted cores.

    Use with :class:`repro.gpu.GPU`::

        gpu = GPU(cfg, accelerator_factory=faulty_factory(
            make_rta_factory(), FaultPlan("stall", query_id=3)))
    """

    def factory(sm):
        core = base_factory(sm)
        for plan in plans:
            if plan.applies_to_sm(sm.sm_id):
                install_fault(core, plan)
        return core

    return factory


def install_env_faults(core) -> None:
    """Apply ``$REPRO_FAULTS`` plans to a freshly built core (called by
    ``RTACore.__init__`` so faults propagate into exec workers)."""
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return
    for plan in parse_plans(text):
        if plan.applies_to_sm(core.sm.sm_id):
            install_fault(core, plan)


# -- serve-path fault injection ----------------------------------------------------
@dataclass
class ServeFaultPlan:
    """One serving-layer fault: what to break and how often.

    ``after`` skips that many trigger opportunities first; ``times``
    bounds how many triggers fire before the plan disarms (so a
    ``launch_fail:times=2`` provably exercises *bounded* retry: the
    third attempt succeeds).  ``times=0`` never disarms.
    """

    kind: str
    after: int = 0
    times: int = 1
    factor: float = 4.0          # slow_backend: service-time multiplier
    shard: int = 0               # shard_blackout: victim device index
    at_ms: float = 0.0           # shard_blackout: death time (virtual ms)
    slot: int = 0                # corrupt_result: victim result slot

    def __post_init__(self) -> None:
        if self.kind not in SERVE_KINDS:
            raise FaultInjectionError(
                f"unknown serve fault kind {self.kind!r}; "
                f"expected one of {SERVE_KINDS}")
        if self.after < 0 or self.times < 0:
            raise FaultInjectionError(
                f"after/times must be >= 0 in {self!r}")
        if self.factor <= 0:
            raise FaultInjectionError(
                f"slow_backend factor must be positive, got {self.factor}")
        if self.shard < 0 or self.slot < 0:
            raise FaultInjectionError(
                f"shard/slot must be >= 0 in {self!r}")


_SERVE_OPTION_CASTS = {
    "after": int, "times": int, "shard": int, "slot": int,
    "factor": float, "at_ms": float,
}


def parse_serve_plan(text: str) -> ServeFaultPlan:
    """Parse one *serve* plan (same grammar as the core plans)."""
    kind, options = _tokenize_plan(text)
    kwargs = {}
    for name, value in options.items():
        cast = _SERVE_OPTION_CASTS.get(name)
        if cast is None:
            raise FaultInjectionError(
                f"unknown serve fault option {name!r} (in {text!r})")
        try:
            kwargs[name] = cast(value)
        except ValueError:
            raise FaultInjectionError(
                f"bad value for {name!r} in {text!r}") from None
    return ServeFaultPlan(kind, **kwargs)


def parse_serve_plans(text: str) -> List[ServeFaultPlan]:
    """Serve-kind plans in ``text``; core-kind plans are skipped."""
    plans = []
    for chunk in text.split(";"):
        if not chunk.strip():
            continue
        kind, _options = _tokenize_plan(chunk)
        if kind in SERVE_KINDS:
            plans.append(parse_serve_plan(chunk))
    return plans


class _ArmedServePlan:
    """Mutable trigger state for one :class:`ServeFaultPlan`."""

    __slots__ = ("plan", "skip", "remaining")

    def __init__(self, plan: ServeFaultPlan):
        self.plan = plan
        self.skip = plan.after
        self.remaining = plan.times if plan.times > 0 else None

    def take(self) -> bool:
        """Consume one trigger opportunity; True if the fault fires."""
        if self.remaining == 0:
            return False
        if self.skip > 0:
            self.skip -= 1
            return False
        if self.remaining is not None:
            self.remaining -= 1
        return True


class ServeFaults:
    """Armed serve-path faults for one backend / loadtest instance.

    Each consumer (a :class:`~repro.serve.backends.LaunchBackend`, a
    loadtest's device pool) builds its own instance so trigger state
    never leaks between tests or platforms — mirroring how core faults
    are installed per accelerator instance, never per class.
    """

    def __init__(self, plans: Optional[List[ServeFaultPlan]] = None):
        plans = list(plans or [])
        self._armed: Dict[str, List[_ArmedServePlan]] = {}
        for plan in plans:
            self._armed.setdefault(plan.kind, []).append(
                _ArmedServePlan(plan))
        self.fired: Dict[str, int] = {}

    @classmethod
    def from_env(cls) -> "ServeFaults":
        text = os.environ.get(FAULTS_ENV)
        return cls(parse_serve_plans(text) if text else None)

    def __bool__(self) -> bool:
        return bool(self._armed)

    def _take(self, kind: str) -> Optional[ServeFaultPlan]:
        for armed in self._armed.get(kind, ()):
            if armed.take():
                self.fired[kind] = self.fired.get(kind, 0) + 1
                return armed.plan
        return None

    # -- the four seams ----------------------------------------------------
    def fail_launch(self) -> None:
        """Raise if an armed ``launch_fail`` consumes this attempt."""
        if self._take("launch_fail") is not None:
            raise BackendLaunchError(
                "injected launch failure (launch_fail fault)")

    def slow_factor(self) -> float:
        """Service-time multiplier for this launch (1.0 = healthy)."""
        plan = self._take("slow_backend")
        return plan.factor if plan is not None else 1.0

    def corrupt(self, results: Dict[int, object]) -> Optional[int]:
        """Damage one launch's results dict in place.

        Deletes the victim slot (a lost result — the conservation
        break) and garbles its neighbour when one exists.  Returns the
        victim slot, or None if no fault fired.
        """
        plan = self._take("corrupt_result")
        if plan is None or not results:
            return None
        slot = plan.slot if plan.slot in results else min(results)
        results.pop(slot, None)
        neighbour = slot + 1
        if neighbour in results:
            results[neighbour] = _CorruptResult(results[neighbour])
        return slot

    def blackouts(self, n_shards: int) -> Dict[int, float]:
        """``{device index: death time (virtual seconds)}`` for every
        armed ``shard_blackout`` that targets an existing shard."""
        out: Dict[int, float] = {}
        for armed in self._armed.get("shard_blackout", ()):
            plan = armed.plan
            if plan.shard < n_shards and armed.take():
                out[plan.shard] = plan.at_ms / 1e3
        return out


class _CorruptResult:
    """Sentinel wrapper marking a garbled result value.

    Wrapping (rather than e.g. bit-flipping an int) keeps detection
    independent of the query class's value domain: the integrity check
    rejects any result of this type, and *any* downstream consumer that
    touches one without checking trips over an unexpected type.
    """

    __slots__ = ("original",)

    def __init__(self, original):
        self.original = original

    def __repr__(self) -> str:
        return f"<corrupt:{self.original!r}>"


def is_corrupt_result(value) -> bool:
    """True if ``value`` is a fault-injected garbled result."""
    return isinstance(value, _CorruptResult)


def corrupt_cache_entry(cache, spec, payload: bytes = b"\x00corrupt") -> str:
    """Overwrite a stored result's pickle with garbage bytes.

    Returns the damaged path (as str).  The exec cache's validate-on-
    read must quarantine the entry and report a miss.
    """
    key = spec if isinstance(spec, str) else spec.key
    pkl, _meta = cache._paths(key)
    if not pkl.exists():
        raise FaultInjectionError(f"no cache entry to corrupt for {key}")
    with open(pkl, "wb") as fh:
        fh.write(payload)
    return str(pkl)
