"""Synthetic LiDAR-like point clouds (the KITTI [23] substitution).

The paper evaluates RTNN radius search on 32k-128k-point KITTI scans.
KITTI itself is a large proprietary-licensed download, so this
generator produces clouds with the same traversal-relevant structure
(documented in DESIGN.md §2): a dense ground plane whose density falls
off with range, plus clustered vertical objects (vehicles, poles),
plus sparse outliers — giving the BVH the same mix of dense shallow
regions and deep clustered regions a real scan produces.
"""

import math
import random
from typing import List

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec3


def synth_lidar_cloud(n_points: int = 32_768, seed: int = 0,
                      max_range: float = 60.0,
                      n_objects: int = 24) -> List[Vec3]:
    """Generate a LiDAR-like point cloud centered on the sensor origin."""
    if n_points < 16:
        raise ConfigurationError("need at least 16 points")
    rng = random.Random(seed)
    points: List[Vec3] = []

    n_ground = int(n_points * 0.55)
    n_cluster = int(n_points * 0.40)
    n_outlier = n_points - n_ground - n_cluster

    # Ground plane: density ~ 1/r (closer rings denser), slight roughness.
    for _ in range(n_ground):
        r = max_range * rng.random() ** 2.0  # quadratic bias toward sensor
        phi = rng.uniform(0, 2 * math.pi)
        points.append(Vec3(r * math.cos(phi), r * math.sin(phi),
                           rng.gauss(0.0, 0.05)))

    # Clustered objects: box-shaped shells at random ranges.
    objects = []
    for _ in range(n_objects):
        r = rng.uniform(3.0, max_range * 0.8)
        phi = rng.uniform(0, 2 * math.pi)
        center = Vec3(r * math.cos(phi), r * math.sin(phi), 0.0)
        size = Vec3(rng.uniform(0.5, 2.5), rng.uniform(0.5, 2.5),
                    rng.uniform(0.5, 2.0))
        objects.append((center, size))
    for _ in range(n_cluster):
        center, size = objects[rng.randrange(n_objects)]
        points.append(Vec3(
            center.x + rng.gauss(0, size.x / 2),
            center.y + rng.gauss(0, size.y / 2),
            abs(rng.gauss(size.z / 2, size.z / 3)),
        ))

    # Sparse outliers (vegetation, noise).
    for _ in range(n_outlier):
        r = rng.uniform(0, max_range)
        phi = rng.uniform(0, 2 * math.pi)
        points.append(Vec3(r * math.cos(phi), r * math.sin(phi),
                           rng.uniform(0, 6.0)))

    rng.shuffle(points)
    return points[:n_points]
