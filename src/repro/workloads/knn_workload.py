"""kNN workloads: k-d tree neighbor queries on LiDAR-like clouds."""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec3
from repro.kernels.knn_search import KNNKernelArgs, build_knn_jobs
from repro.memsys.memory_image import AddressSpace
from repro.rta.traversal import TraversalJob
from repro.trees.kdtree import KDTree
from repro.trees.layout import TreeImage
from repro.workloads.pointcloud import synth_lidar_cloud


@dataclass
class KNNWorkload:
    tree: KDTree
    queries: List[Vec3]
    k: int
    image: TreeImage
    space: AddressSpace
    query_buf: int
    result_buf: int
    # Job lowering is pure per (tree, queries, k, flavor); cache it
    # across repeated runs of the same workload object.
    _jobs_cache: Dict[str, List[TraversalJob]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _stream_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False)
    #: bumped by every image refresh after structural mutation; the exec
    #: build cache refuses to persist a workload with nonzero epoch.
    mutation_epoch: int = field(default=0, init=False, compare=False)

    def kernel_args(self, jobs: Sequence[TraversalJob] = ()) -> KNNKernelArgs:
        return KNNKernelArgs(
            tree=self.tree,
            queries=self.queries,
            k=self.k,
            query_buf=self.query_buf,
            result_buf=self.result_buf,
            jobs=list(jobs),
            stream_cache=self._stream_cache,
        )

    def jobs(self, flavor: str) -> List[TraversalJob]:
        cached = self._jobs_cache.get(flavor)
        if cached is None:
            cached = self._jobs_cache[flavor] = build_knn_jobs(
                self.tree, self.queries, self.k, flavor=flavor)
        return cached

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def golden(self, query: Vec3) -> Tuple[int, ...]:
        return self.tree.brute_force_knn(query, self.k)


def make_knn_workload(n_points: int = 8192, n_queries: int = 1024,
                      k: int = 8, seed: int = 0, max_leaf_size: int = 8,
                      churn: Optional[str] = None) -> KNNWorkload:
    """``churn`` (``<mix>@<writes>``) pre-ages the tree with a seeded
    write burst before serving — see :mod:`repro.mutation`."""
    if k < 1 or k > n_points:
        raise ConfigurationError("need 1 <= k <= n_points")
    points = synth_lidar_cloud(n_points, seed=seed)
    tree = KDTree(points, max_leaf_size=max_leaf_size)
    rng = random.Random(seed + 1)
    queries = [points[rng.randrange(n_points)] for _ in range(n_queries)]

    space = AddressSpace()
    image = space.place_tree(tree.nodes())
    query_buf = space.alloc(12 * n_queries, align=128)
    result_buf = space.alloc(4 * k * n_queries, align=128)
    workload = KNNWorkload(tree, queries, k, image, space, query_buf,
                           result_buf)
    if churn is not None:
        from repro.mutation import apply_churn
        apply_churn(workload, "knn", churn, seed=seed + 7)
    return workload
