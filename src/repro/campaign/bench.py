"""``repro bench``: diff BENCH_*.json documents, gate CI on regressions.

The repo records performance baselines as nested JSON (``BENCH_core``,
``BENCH_obs``, ``BENCH_serve``, ``BENCH_campaign``).  This module
flattens two such documents to dotted numeric leaves, classifies each
leaf's *direction* (is bigger better or worse?), and reports relative
deltas.  Two things keep the comparison honest:

**Direction awareness** — ``fast_s`` growing 30% is a regression;
``speedup`` growing 30% is a win; ``n_procs`` growing 30% means the
benchmark config changed and is neither (reported, never gated).

**Noise awareness** — wherever the baseline recorded per-rep samples
(``<stem>_reps`` arrays next to the chosen ``<stem>_s`` value), the
gate threshold for that leaf is widened to
``max(threshold_pct, noise_factor × cv%)`` where cv is the baseline's
own coefficient of variation.  A leaf whose reps historically scatter
±15% cannot trip a 10% gate on scatter alone; a tight leaf keeps the
tight gate.

``--check`` turns regressions into a non-zero exit for CI.  Metadata
leaves (timestamps, versions, host info) and structurally missing/added
leaves never gate — growing a benchmark must not fail the build.
"""

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Top-level keys that describe the measurement, not the measurement's
#: outcome; never compared.
METADATA_KEYS = frozenset({
    "schema", "generated_unix", "package_version", "scheduler_fingerprint",
    "python", "platform", "scale", "reps", "sample_rate", "bounds",
    "build_fingerprint", "host",
})

#: Leaf-name fragments whose metric improves downward.
_LOWER_BETTER = (
    "_s", "_ms", "_us", "_ns", "seconds", "_ns_per_test", "wall",
    "overhead_pct", "latency", "p50", "p95", "p99", "misses", "fraction",
    "dropped", "failed", "shed", "expired", "corrupt", "rss",
)
#: Leaf-name fragments whose metric improves upward.
_HIGHER_BETTER = (
    "speedup", "per_sec", "qps", "hit_rate", "goodput", "throughput",
    "capacity", "events_kept",
)


def classify(path: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` / None (informational) for one leaf."""
    leaf = path.rsplit(".", 1)[-1].lower()
    # Higher-better tokens win ties: "speedup_s" style names don't
    # exist, but "goodput_qps" contains no lower token anyway; check
    # the emphatic direction first.
    for token in _HIGHER_BETTER:
        if token in leaf:
            return "higher"
    for token in _LOWER_BETTER:
        if leaf.endswith(token) or token in leaf:
            return "lower"
    return None


def flatten(doc: Any, prefix: str = "") -> Dict[str, float]:
    """Dotted-path → numeric-leaf mapping; rep arrays are skipped here
    (they feed :func:`noise_pct`, not the comparison itself)."""
    flat: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            if not prefix and key in METADATA_KEYS:
                continue
            if key.endswith("_reps"):
                continue
            flat.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)) and math.isfinite(doc):
        flat[prefix[:-1]] = float(doc)
    return flat


def _rep_arrays(doc: Any, prefix: str = "") -> Dict[str, List[float]]:
    reps: Dict[str, List[float]] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            if key.endswith("_reps") and isinstance(value, (list, tuple)):
                samples = [float(v) for v in value
                           if isinstance(v, (int, float))]
                if len(samples) >= 2:
                    reps[f"{prefix}{key}"] = samples
            else:
                reps.update(_rep_arrays(value, f"{prefix}{key}."))
    return reps


def noise_pct(path: str, rep_arrays: Dict[str, List[float]]
              ) -> Optional[float]:
    """Baseline coefficient of variation (%) for ``path``, when its
    sibling ``<stem>_reps`` samples were recorded."""
    head, _, leaf = path.rpartition(".")
    # "fast_s" samples live in "fast_reps"; other leaves may record
    # reps under their full name ("<leaf>_reps").
    stem = leaf[:-2] if leaf.endswith("_s") else leaf
    prefix = f"{head}." if head else ""
    candidates = [f"{prefix}{stem}_reps", f"{prefix}{leaf}_reps"]
    for name in candidates:
        samples = rep_arrays.get(name)
        if samples:
            mean = sum(samples) / len(samples)
            if mean == 0:
                return None
            var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
            return 100.0 * math.sqrt(var) / abs(mean)
    return None


@dataclass
class Delta:
    """One compared leaf."""

    path: str
    baseline: float
    candidate: float
    pct: float                    # signed relative change, %
    direction: Optional[str]      # lower / higher / None
    threshold_pct: float          # effective gate for this leaf
    noise_pct: Optional[float]    # baseline cv%, when reps existed

    @property
    def regression(self) -> bool:
        if self.direction == "lower":
            return self.pct > self.threshold_pct
        if self.direction == "higher":
            return self.pct < -self.threshold_pct
        return False

    @property
    def improvement(self) -> bool:
        if self.direction == "lower":
            return self.pct < -self.threshold_pct
        if self.direction == "higher":
            return self.pct > self.threshold_pct
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "baseline": self.baseline,
            "candidate": self.candidate, "pct": self.pct,
            "direction": self.direction,
            "threshold_pct": self.threshold_pct,
            "noise_pct": self.noise_pct,
            "regression": self.regression,
            "improvement": self.improvement,
        }


@dataclass
class BenchDiff:
    """Full comparison of two BENCH documents."""

    baseline_path: str
    candidate_path: str
    deltas: List[Delta]
    missing: List[str]            # in baseline, absent from candidate
    added: List[str]              # new in candidate

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regression]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.improvement]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_path,
            "candidate": self.candidate_path,
            "compared": len(self.deltas),
            "regressions": [d.to_dict() for d in self.regressions],
            "improvements": [d.to_dict() for d in self.improvements],
            "missing": self.missing,
            "added": self.added,
        }

    def summary(self, limit: int = 10) -> str:
        lines = [f"[bench] {len(self.deltas)} leaves compared "
                 f"({self.baseline_path} -> {self.candidate_path}): "
                 f"{len(self.regressions)} regression(s), "
                 f"{len(self.improvements)} improvement(s), "
                 f"{len(self.missing)} missing, {len(self.added)} added"]
        worst = sorted(self.regressions, key=lambda d: -abs(d.pct))
        for delta in worst[:limit]:
            noise = (f", noise cv {delta.noise_pct:.1f}%"
                     if delta.noise_pct is not None else "")
            lines.append(
                f"[bench]   REGRESSION {delta.path}: "
                f"{delta.baseline:.6g} -> {delta.candidate:.6g} "
                f"({delta.pct:+.1f}%, gate ±{delta.threshold_pct:.1f}%"
                f"{noise})")
        best = sorted(self.improvements, key=lambda d: -abs(d.pct))
        for delta in best[:limit]:
            lines.append(
                f"[bench]   improvement {delta.path}: "
                f"{delta.baseline:.6g} -> {delta.candidate:.6g} "
                f"({delta.pct:+.1f}%)")
        return "\n".join(lines)


def load_bench(path) -> Dict[str, Any]:
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read benchmark file {path}: {exc}") \
            from None
    if not isinstance(doc, dict):
        raise ValueError(f"benchmark file {path} is not a JSON object")
    return doc


def compare(baseline: Dict[str, Any], candidate: Dict[str, Any],
            baseline_path: str = "baseline",
            candidate_path: str = "candidate",
            threshold_pct: float = 10.0,
            noise_factor: float = 3.0) -> BenchDiff:
    """Noise- and direction-aware comparison of two BENCH documents."""
    base_flat = flatten(baseline)
    cand_flat = flatten(candidate)
    reps = _rep_arrays(baseline)
    deltas: List[Delta] = []
    for path in sorted(set(base_flat) & set(cand_flat)):
        base, cand = base_flat[path], cand_flat[path]
        if base == 0:
            pct = 0.0 if cand == 0 else math.copysign(math.inf, cand)
        else:
            pct = 100.0 * (cand - base) / abs(base)
        cv = noise_pct(path, reps)
        threshold = threshold_pct if cv is None \
            else max(threshold_pct, noise_factor * cv)
        deltas.append(Delta(path, base, cand, pct, classify(path),
                            threshold, cv))
    return BenchDiff(
        baseline_path=baseline_path, candidate_path=candidate_path,
        deltas=deltas,
        missing=sorted(set(base_flat) - set(cand_flat)),
        added=sorted(set(cand_flat) - set(base_flat)),
    )


def compare_files(baseline, candidate, threshold_pct: float = 10.0,
                  noise_factor: float = 3.0) -> BenchDiff:
    return compare(load_bench(baseline), load_bench(candidate),
                   str(baseline), str(candidate),
                   threshold_pct=threshold_pct, noise_factor=noise_factor)


def check(diff: BenchDiff) -> Tuple[int, str]:
    """(exit code, verdict line) for ``repro bench --check``."""
    if diff.regressions:
        return 1, (f"[bench] CHECK FAILED: {len(diff.regressions)} "
                   f"perf regression(s) beyond the noise gate")
    return 0, "[bench] check passed: no gated regression"
