"""Set-associative LRU cache model (functional tags only).

Timing is applied by :class:`~repro.memsys.hierarchy.MemoryHierarchy`;
this class answers hit/miss and maintains replacement state.  A fully
associative cache (the paper's L1 data cache) is a single set.
"""

from collections import OrderedDict
from typing import List

from repro.errors import ConfigurationError


class Cache:
    """LRU cache tags over fixed-size lines."""

    __slots__ = ("name", "line_size", "assoc", "n_sets", "_sets",
                 "accesses", "hits")

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_size: int = 128):
        if size_bytes <= 0 or line_size <= 0:
            raise ConfigurationError(f"{name}: sizes must be positive")
        lines = size_bytes // line_size
        if lines == 0:
            raise ConfigurationError(f"{name}: smaller than one line")
        if assoc <= 0 or assoc == -1:
            assoc = lines  # fully associative
        assoc = min(assoc, lines)
        if lines % assoc != 0:
            raise ConfigurationError(
                f"{name}: {lines} lines not divisible by assoc {assoc}"
            )
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = lines // assoc
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.accesses = 0
        self.hits = 0

    def _set_for(self, line_addr: int) -> OrderedDict:
        return self._sets[(line_addr // self.line_size) % self.n_sets]

    def line_of(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def lookup(self, addr: int) -> bool:
        """Probe and update LRU; returns True on hit."""
        line = self.line_of(addr)
        cache_set = self._set_for(line)
        self.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        return False

    def touch(self, addr: int) -> bool:
        """Combined probe-and-fill: ``lookup`` plus, on a miss, ``fill``.

        The hierarchy installs the line in every probed cache on a miss
        anyway, so fusing the two walks halves the per-sector dict work
        on the hot path.  Returns True on hit.
        """
        line = addr - addr % self.line_size
        cache_set = self._sets[(line // self.line_size) % self.n_sets]
        self.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
        cache_set[line] = True
        return False

    def fill(self, addr: int) -> None:
        """Install the line containing ``addr``, evicting LRU if needed."""
        line = self.line_of(addr)
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            return
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
        cache_set[line] = True

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, sets={self.n_sets}, assoc={self.assoc}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
