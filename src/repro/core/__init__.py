"""The paper's contribution: TTA and TTA+ on top of the RTA substrate.

* :mod:`~repro.core.layouts` — programmer-defined ray/node data layouts
  (the ``DecodeR``/``DecodeI``/``DecodeL`` configuration state).
* :mod:`~repro.core.querykey` — the 9-wide Query-Key comparison built
  from the Ray-Box unit's min/max network (Figs. 8-9, Algorithm 1).
* :mod:`~repro.core.pointdist` — the Point-to-Point distance datapath
  added to the Ray-Triangle unit (Algorithm 2).
* :mod:`~repro.core.api` — the Vulkan-style programming model of
  Listing 1 (``TTAPipeline``, ``config_i``/``config_l``,
  ``config_terminate``, ``traverse_tree_tta``).
* :mod:`~repro.core.ttaplus` — the modular TTA+ design: Table I OP
  units, the 16x16 crossbar, and µop intersection-test programs.
"""

from repro.core.api import TTAPipeline, traverse_tree_tta
from repro.core.layouts import DataLayout, Field
from repro.core.pointdist import PointDistanceUnit
from repro.core.querykey import QueryKeyComparator, QueryKeyResult

__all__ = [
    "TTAPipeline",
    "traverse_tree_tta",
    "DataLayout",
    "Field",
    "QueryKeyComparator",
    "QueryKeyResult",
    "PointDistanceUnit",
]
