"""The campaign worker: drain the shared run table until it is empty.

A worker is a plain process (spawned locally by the orchestrator, or
joined from another host with ``repro campaign worker --join <dir>``)
that expands the campaign document *itself*, walks the table in its own
id-derived order, and for each unresolved point either

* observes a **record** (someone finished it — skip),
* observes a **cache hit** (a previous campaign or a sibling already
  produced the result — write a ``cached`` record, no simulation),
* **acquires the lease** and runs the point through a serial
  :class:`~repro.exec.service.ExecutionService` (which brings the memo,
  the content-addressed cache write, guard quarantine with the one
  legacy-engine retry, and the metrics sidecar along for free), or
* finds the lease held by someone else and moves on.

When a full pass over the table resolves nothing and unresolved points
remain, the worker sleeps briefly and retries: either a sibling will
finish the leased points, or their leases will expire and this worker
steals them.  A crashed worker therefore costs at most one lease TTL of
latency, never lost work — its completed points are already in the
cache, and its in-flight point is re-run from scratch (deterministic,
so the result is identical).

Every resolution writes an atomic per-point **record** under
``<campaign_dir>/records/`` carrying the run's resource metrics: wall
seconds, peak RSS, cache hit/miss, which engine produced the result,
and whether the guard degraded it.  Records are the resumability
ledger (a point with a record is never re-attempted) and the raw
material :func:`repro.campaign.orchestrator.finalize` folds into the
campaign manifest.
"""

import json
import os
import pathlib
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exec.cache import ResultCache
from repro.exec.service import (
    STATUS_CACHED,
    STATUS_EXECUTED,
    STATUS_FAILED,
    STATUS_QUARANTINED,
    ExecutionService,
)
from repro.campaign.leases import LeaseBoard
from repro.campaign.spec import CampaignPoint, CampaignSpec, worker_order

#: File names inside a campaign directory.
CAMPAIGN_FILE = "campaign.json"
RECORDS_DIR = "records"
LEASES_DIR = "leases"
WORKERS_DIR = "workers"
MANIFEST_FILE = "manifest.json"

#: How long an idle pass sleeps before rescanning leased points.
_POLL_S = 0.05


def peak_rss_kb() -> float:
    """This process's lifetime peak resident set, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalized here
    so records compare across hosts.  0.0 where ``resource`` is
    unavailable (non-POSIX) — the field is observability, never load-
    bearing.
    """
    try:
        import resource
    except ImportError:
        return 0.0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss / 1024.0 if sys.platform == "darwin" else float(rss)


def _atomic_write_json(path: pathlib.Path, doc: Dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(doc, indent=1, sort_keys=True,
                              default=str) + "\n")
    os.replace(tmp, path)


@dataclass
class WorkerReport:
    """One worker's account of its share of the campaign."""

    worker_id: str
    executed: int = 0
    cached: int = 0
    failed: int = 0
    quarantined: int = 0
    stolen: int = 0
    skipped: int = 0
    wall_seconds: float = 0.0
    peak_rss_kb: float = 0.0
    #: True when the worker stopped early (``max_points`` reached or
    #: the wait budget expired), leaving unresolved points behind.
    partial: bool = False
    errors: List[str] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        return self.executed + self.cached + self.failed + self.quarantined

    def to_dict(self) -> Dict[str, Any]:
        doc = {k: getattr(self, k) for k in
               ("worker_id", "executed", "cached", "failed", "quarantined",
                "stolen", "skipped", "wall_seconds", "peak_rss_kb",
                "partial", "errors")}
        doc["finished_unix"] = time.time()
        return doc


class CampaignWorker:
    """Work-stealing executor of one campaign's run table."""

    def __init__(self, campaign_dir, worker_id: Optional[str] = None,
                 cache: Optional[ResultCache] = None,
                 max_points: Optional[int] = None,
                 max_wait_s: Optional[float] = None,
                 quiet: bool = False) -> None:
        self.dir = pathlib.Path(campaign_dir)
        self.spec = CampaignSpec.from_file(self.dir / CAMPAIGN_FILE)
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.cache = cache if cache is not None else ResultCache()
        self.max_points = max_points
        self.max_wait_s = max_wait_s
        self.quiet = quiet
        self.records_dir = self.dir / RECORDS_DIR
        self.records_dir.mkdir(parents=True, exist_ok=True)
        (self.dir / WORKERS_DIR).mkdir(parents=True, exist_ok=True)
        self.board = LeaseBoard(self.dir / LEASES_DIR, self.worker_id,
                                ttl_s=self.spec.lease_ttl_s)
        # jobs=1: the *campaign* is the parallelism layer; each worker
        # simulates one point at a time in-process.
        self.service = ExecutionService(jobs=1, cache=self.cache)

    # -- records ---------------------------------------------------------------
    def _record_path(self, key: str) -> pathlib.Path:
        return self.records_dir / f"{key}.json"

    def has_record(self, key: str) -> bool:
        return self._record_path(key).exists()

    def _write_record(self, point: CampaignPoint, status: str,
                      wall_s: float, engine: str = "fast",
                      error: Optional[str] = None,
                      stolen: bool = False) -> None:
        self._write_record_doc(point, {
            "key": point.key,
            "label": point.label,
            "axes": point.axes,
            "status": status,
            "engine": engine,
            "wall_s": wall_s,
            "peak_rss_kb": peak_rss_kb(),
            "cache_hit": status == STATUS_CACHED,
            "stolen_lease": stolen,
            "worker": self.worker_id,
            "error": error,
            "finished_unix": time.time(),
        })

    def _write_record_doc(self, point: CampaignPoint,
                          doc: Dict[str, Any]) -> None:
        _atomic_write_json(self._record_path(point.key), doc)

    # -- one point -------------------------------------------------------------
    def _resolve(self, point: CampaignPoint, report: WorkerReport,
                 stolen: bool) -> None:
        """Run (or cache-hit) one claimed point and write its record."""
        started = time.monotonic()
        error: Optional[str] = None
        try:
            self.service.run(point.spec)
        except Exception as exc:  # noqa: BLE001 — one cell, not the sweep
            error = f"{type(exc).__name__}: {exc}"
        wall = time.monotonic() - started
        record = self.service.manifest.records.get(point.key)
        if error is not None:
            status, engine = STATUS_FAILED, "fast"
            if record is not None:
                engine = record.engine
            report.failed += 1
            report.errors.append(f"{point.label}: {error}")
        else:
            status = record.status if record is not None else STATUS_EXECUTED
            engine = record.engine if record is not None else "fast"
            if status == STATUS_CACHED:
                report.cached += 1
            elif status == STATUS_QUARANTINED:
                report.quarantined += 1
            else:
                report.executed += 1
        self._write_record(point, status, wall, engine=engine, error=error,
                           stolen=stolen)
        if stolen:
            report.stolen += 1
        if not self.quiet:
            print(f"[campaign] {self.worker_id} {status} {point.label} "
                  f"({wall:.2f}s{', stolen' if stolen else ''})",
                  file=sys.stderr)

    # -- the loop --------------------------------------------------------------
    def run(self) -> WorkerReport:
        report = WorkerReport(self.worker_id)
        started = time.monotonic()
        points = worker_order(self.spec.expand(), self.worker_id)
        resolved_keys = set()
        try:
            while True:
                progress = False
                leased_elsewhere: List[CampaignPoint] = []
                for point in points:
                    if point.key in resolved_keys:
                        continue
                    if self.has_record(point.key):
                        resolved_keys.add(point.key)
                        report.skipped += 1
                        continue
                    if report.resolved >= (self.max_points
                                           if self.max_points is not None
                                           else float("inf")):
                        report.partial = True
                        return report
                    stole_before = self.board.stolen
                    if not self.board.acquire(point.key):
                        leased_elsewhere.append(point)
                        continue
                    stolen = self.board.stolen > stole_before
                    try:
                        if self.has_record(point.key):
                            # Raced a sibling that finished between our
                            # record check and the (stolen) acquire.
                            report.skipped += 1
                        else:
                            self._resolve(point, report, stolen)
                    finally:
                        self.board.release(point.key)
                    resolved_keys.add(point.key)
                    progress = True
                if not leased_elsewhere:
                    return report
                if not progress:
                    if self.max_wait_s is not None and \
                            time.monotonic() - started > self.max_wait_s:
                        report.partial = True
                        return report
                    time.sleep(_POLL_S)
        finally:
            report.wall_seconds = time.monotonic() - started
            report.peak_rss_kb = peak_rss_kb()
            _atomic_write_json(
                self.dir / WORKERS_DIR / f"{self.worker_id}.json",
                report.to_dict())


def run_worker(campaign_dir, worker_id: Optional[str] = None,
               cache: Optional[ResultCache] = None,
               max_points: Optional[int] = None,
               max_wait_s: Optional[float] = None,
               quiet: bool = False) -> WorkerReport:
    """Convenience wrapper: build a :class:`CampaignWorker` and run it."""
    return CampaignWorker(campaign_dir, worker_id=worker_id, cache=cache,
                          max_points=max_points, max_wait_s=max_wait_s,
                          quiet=quiet).run()
