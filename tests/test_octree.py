"""Unit and property tests for the Barnes-Hut tree."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry import Vec3
from repro.trees import BarnesHutTree
from repro.trees.octree import make_body


def random_bodies(n, dims=3, seed=0, span=10.0):
    rng = random.Random(seed)
    bodies = []
    for i in range(n):
        pos = Vec3(rng.uniform(-span, span), rng.uniform(-span, span),
                   rng.uniform(-span, span) if dims == 3 else 0.0)
        bodies.append(make_body(pos, rng.uniform(0.5, 2.0), i))
    return bodies


class TestConstruction:
    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            BarnesHutTree(random_bodies(4), dims=4)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BarnesHutTree([], dims=3)

    def test_rejects_bad_theta(self):
        with pytest.raises(ConfigurationError):
            BarnesHutTree(random_bodies(4), theta=0)

    @pytest.mark.parametrize("dims", [2, 3])
    def test_mass_conserved(self, dims):
        bodies = random_bodies(100, dims=dims)
        tree = BarnesHutTree(bodies, dims=dims)
        assert tree.root.mass == pytest.approx(sum(b.mass for b in bodies))

    @pytest.mark.parametrize("dims", [2, 3])
    def test_counts_conserved(self, dims):
        bodies = random_bodies(64, dims=dims, seed=1)
        tree = BarnesHutTree(bodies, dims=dims)
        assert tree.root.count == 64
        leaf_bodies = sum(len(n.bodies) for n in tree.nodes() if n.is_leaf)
        assert leaf_bodies == 64

    def test_com_is_weighted_mean(self):
        bodies = [make_body(Vec3(0, 0, 0), 1.0, 0),
                  make_body(Vec3(4, 0, 0), 3.0, 1)]
        tree = BarnesHutTree(bodies, dims=3)
        assert tree.root.com.x == pytest.approx(3.0)

    def test_coincident_bodies_handled(self):
        bodies = [make_body(Vec3(1, 1, 1), 1.0, i) for i in range(4)]
        bodies.append(make_body(Vec3(-1, -1, -1), 1.0, 4))
        tree = BarnesHutTree(bodies, dims=3)
        assert tree.root.count == 5

    def test_bodies_inside_their_cells(self):
        tree = BarnesHutTree(random_bodies(128, seed=2), dims=3)
        for node in tree.nodes():
            for b in node.bodies:
                assert abs(b.position.x - node.center.x) <= node.half * 1.0001
                assert abs(b.position.y - node.center.y) <= node.half * 1.0001
                assert abs(b.position.z - node.center.z) <= node.half * 1.0001


class TestForces:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_barnes_hut_close_to_direct(self, dims):
        bodies = random_bodies(200, dims=dims, seed=3)
        tree = BarnesHutTree(bodies, dims=dims, theta=0.4)
        worst = 0.0
        for body in bodies[:40]:
            approx = tree.force_on(body).acceleration
            exact = tree.direct_force_on(body)
            scale = max(exact.length(), 1e-9)
            worst = max(worst, (approx - exact).length() / scale)
        assert worst < 0.15, f"Barnes-Hut error too large: {worst}"

    def test_theta_zero_limit_equals_direct(self):
        # Tiny theta forces every cell open -> exact summation.
        bodies = random_bodies(50, seed=4)
        tree = BarnesHutTree(bodies, theta=1e-6)
        for body in bodies[:10]:
            approx = tree.force_on(body).acceleration
            exact = tree.direct_force_on(body)
            assert (approx - exact).length() < 1e-9

    def test_larger_theta_visits_fewer_nodes(self):
        bodies = random_bodies(300, seed=5)
        tight = BarnesHutTree(bodies, theta=0.2)
        loose = BarnesHutTree(bodies, theta=1.0)
        body = bodies[0]
        assert len(loose.force_on(body).visits) < len(tight.force_on(body).visits)

    def test_self_force_excluded(self):
        bodies = [make_body(Vec3(0, 0, 0), 1.0, 0)]
        tree = BarnesHutTree(bodies)
        acc = tree.force_on(bodies[0]).acceleration
        assert acc.length() == 0.0

    def test_two_body_newton(self):
        bodies = [make_body(Vec3(0, 0, 0), 1.0, 0),
                  make_body(Vec3(2, 0, 0), 1.0, 1)]
        tree = BarnesHutTree(bodies, softening=0.0)
        acc = tree.force_on(bodies[0]).acceleration
        assert acc.x == pytest.approx(1.0 / 4.0)
        assert acc.y == pytest.approx(0.0)

    def test_visit_trace_kinds(self):
        bodies = random_bodies(100, seed=6)
        tree = BarnesHutTree(bodies, theta=0.5)
        visits = tree.force_on(bodies[0]).visits
        kinds = {v.kind for v in visits}
        assert kinds <= {"inner", "leaf"}
        assert "inner" in kinds


@given(st.integers(min_value=2, max_value=80),
       st.integers(min_value=0, max_value=10**6),
       st.sampled_from([2, 3]))
@settings(max_examples=25, deadline=None)
def test_property_force_error_bounded(n, seed, dims):
    bodies = random_bodies(n, dims=dims, seed=seed, span=5.0)
    tree = BarnesHutTree(bodies, dims=dims, theta=0.3, softening=0.05)
    body = bodies[seed % n]
    approx = tree.force_on(body).acceleration
    exact = tree.direct_force_on(body)
    scale = max(exact.length(), 1e-6)
    assert (approx - exact).length() / scale < 0.35


@given(st.integers(min_value=1, max_value=120),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_property_mass_and_count_conserved(n, seed):
    bodies = random_bodies(n, seed=seed)
    tree = BarnesHutTree(bodies)
    assert tree.root.count == n
    assert tree.root.mass == pytest.approx(sum(b.mass for b in bodies))
