"""repro.obs — cycle-domain tracing, metrics registry, exporters.

The observability subsystem has three parts:

* :mod:`repro.obs.tracer` — a zero-cost-when-off structured event
  tracer.  ``GPU.launch`` attaches :func:`active_tracer` to
  ``sim.tracer``; the engine, SMs, RTA cores/unit pools, and the memory
  hierarchy emit ring-buffered ``(category, unit, name, ts, dur, arg)``
  records behind one is-None branch each.
* :mod:`repro.obs.metrics` — the metrics registry.  After every launch
  :func:`build_metrics` folds model counters into a namespaced
  :class:`MetricsSnapshot` on ``KernelStats.metrics``; Figs. 13/15/18
  read it instead of parsing accelerator snapshot keys.
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace.json``, flat
  metrics JSON, terminal summaries, and ``$REPRO_OBS_DIR`` guard
  diagnostic dumps.

Overhead contract (checked by ``benchmarks/bench_obs.py``): tracing off
costs <= 1% on the ``bench_perf_core`` workload points; sampled tracing
(rate >= 16) costs <= 10%.
"""

from repro.obs.export import (
    OBS_DIR_ENV,
    chrome_trace,
    dump_diagnostics,
    summarize_metrics,
    summarize_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    DEFAULT_MAX_BUCKETS,
    EMPTY_METRICS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    TimeSeries,
    build_metrics,
)
from repro.obs.tracer import (
    CATEGORIES,
    DEFAULT_CAPACITY,
    TRACE_CATEGORIES_ENV,
    TRACE_ENV,
    TRACE_EVENTS_ENV,
    TRACE_RATE_ENV,
    Tracer,
    active_tracer,
    enable,
    install,
    reset,
    trace_enabled,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_CAPACITY",
    "DEFAULT_MAX_BUCKETS",
    "EMPTY_METRICS",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "OBS_DIR_ENV",
    "TRACE_CATEGORIES_ENV",
    "TRACE_ENV",
    "TRACE_EVENTS_ENV",
    "TRACE_RATE_ENV",
    "TimeSeries",
    "Tracer",
    "active_tracer",
    "build_metrics",
    "chrome_trace",
    "dump_diagnostics",
    "enable",
    "install",
    "reset",
    "summarize_metrics",
    "summarize_trace",
    "trace_enabled",
    "write_chrome_trace",
    "write_metrics_json",
]
