#!/usr/bin/env python3
"""Overhead benchmark of repro.obs tracing → ``BENCH_obs.json``.

Measures the Fig. 12 workload points (the same set as
``bench_perf_core.py``, steady-state fast-engine regime) under three
tracing regimes:

* ``off_s`` — tracing disabled: the emit points cost one is-None
  branch each.  The **overhead contract** bounds this at ≤ 1% against
  the pre-obs ``BENCH_core.json`` baseline (``--baseline``; CI
  compares against a fresh ``BENCH_core_ci.json`` measured on the same
  machine in the same job).
* ``sampled_s`` — tracing on at rate 16 (keep every 16th event):
  bounded at ≤ 10% over this run's own ``off_s``.
* ``full_s`` — tracing on, every event kept: reported for reference,
  not bounded.

The minimum over repetitions is reported, regimes interleaved within
each repetition, so machine drift cannot bias the comparison.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --out BENCH_obs.json --scale smoke --reps 3 \
        --baseline BENCH_core.json --assert-off --assert-sampled
"""

import argparse
import json
import pathlib
import platform
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(_ROOT / "src"))
if str(_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(_ROOT / "benchmarks"))

from bench_perf_core import SCALES, _points, _timed  # noqa: E402

from repro import __version__, obs  # noqa: E402
from repro.sim import scheduler_fingerprint  # noqa: E402

#: The contract's sampled-tracing rate.
SAMPLE_RATE = 16


def bench_points(scale: str, reps: int) -> dict:
    out = {}
    for name, make, run in _points(SCALES[scale]):
        wl = make()
        run(wl)  # populate the replay/lowering caches (untimed)
        off, sampled, full = [], [], []
        events_kept = [0]

        def run_off():
            obs.reset()
            off.append(_timed(lambda: run(wl)))

        def run_sampled():
            obs.enable(rate=SAMPLE_RATE)
            try:
                sampled.append(_timed(lambda: run(wl)))
            finally:
                obs.reset()

        def run_full():
            tracer = obs.enable()
            try:
                full.append(_timed(lambda: run(wl)))
                events_kept[0] = tracer.events_kept
            finally:
                obs.reset()

        # Rotate the regime order every repetition: a machine that is
        # monotonically slowing down (thermal throttling, noisy
        # neighbours) would otherwise systematically inflate whichever
        # regime always ran last within the rep.
        regimes = (run_off, run_sampled, run_full)
        for rep in range(reps):
            for k in range(3):
                regimes[(rep + k) % 3]()
        events_kept = events_kept[0]
        entry = {
            "off_s": min(off),
            "sampled_s": min(sampled),
            "full_s": min(full),
            "off_reps": off,
            "sampled_reps": sampled,
            "full_reps": full,
            "full_events": events_kept,
        }
        entry["sampled_overhead_pct"] = \
            (entry["sampled_s"] / entry["off_s"] - 1.0) * 100.0
        entry["full_overhead_pct"] = \
            (entry["full_s"] / entry["off_s"] - 1.0) * 100.0
        out[name] = entry
        print(f"{name:16s} off {entry['off_s']:.3f}s  "
              f"sampled {entry['sampled_s']:.3f}s "
              f"(+{entry['sampled_overhead_pct']:.1f}%)  "
              f"full {entry['full_s']:.3f}s "
              f"(+{entry['full_overhead_pct']:.1f}%, "
              f"{events_kept} events)", file=sys.stderr)
    return out


def fold_baseline(points: dict, baseline_path: pathlib.Path) -> dict:
    """Per-point and total off-overhead vs a BENCH_core ``fast_s`` run.

    Returns an empty dict (and prints a note) when the baseline file is
    missing or its points don't match — the off/sampled comparison
    within this run still stands on its own.
    """
    try:
        doc = json.loads(baseline_path.read_text())
        base_points = doc["fig12_points"]
    except (OSError, ValueError, KeyError):
        print(f"[bench_obs] no usable baseline at {baseline_path}; "
              f"skipping tracing-off comparison", file=sys.stderr)
        return {}
    shared = [n for n in points if n in base_points]
    if not shared:
        print(f"[bench_obs] baseline {baseline_path} shares no points; "
              f"skipping tracing-off comparison", file=sys.stderr)
        return {}
    for name in shared:
        base = base_points[name]["fast_s"]
        points[name]["baseline_fast_s"] = base
        points[name]["off_overhead_pct"] = \
            (points[name]["off_s"] / base - 1.0) * 100.0
    off_total = sum(points[n]["off_s"] for n in shared)
    base_total = sum(points[n]["baseline_fast_s"] for n in shared)
    return {
        "path": str(baseline_path),
        "points_compared": len(shared),
        "baseline_total_s": base_total,
        "off_total_s": off_total,
        "off_overhead_pct": (off_total / base_total - 1.0) * 100.0,
    }


def aggregate(points: dict) -> dict:
    off = sum(p["off_s"] for p in points.values())
    sampled = sum(p["sampled_s"] for p in points.values())
    full = sum(p["full_s"] for p in points.values())
    return {
        "off_total_s": off,
        "sampled_total_s": sampled,
        "full_total_s": full,
        "sampled_overhead_pct": (sampled / off - 1.0) * 100.0,
        "full_overhead_pct": (full / off - 1.0) * 100.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(_ROOT / "BENCH_obs.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per regime (min is reported)")
    parser.add_argument("--baseline",
                        default=str(_ROOT / "BENCH_core.json"),
                        help="BENCH_core.json to compare tracing-off "
                             "against (default: repo root)")
    parser.add_argument("--assert-off", action="store_true",
                        help="exit 1 when tracing-off overhead vs the "
                             "baseline exceeds --off-bound")
    parser.add_argument("--assert-sampled", action="store_true",
                        help="exit 1 when sampled-tracing overhead "
                             "exceeds --sampled-bound")
    parser.add_argument("--off-bound", type=float, default=1.0,
                        metavar="PCT", help="tracing-off bound (default 1)")
    parser.add_argument("--sampled-bound", type=float, default=10.0,
                        metavar="PCT",
                        help="sampled-tracing bound (default 10)")
    args = parser.parse_args(argv)

    points = bench_points(args.scale, args.reps)
    agg = aggregate(points)
    baseline = fold_baseline(points, pathlib.Path(args.baseline))
    report = {
        "schema": 1,
        "generated_unix": time.time(),
        "package_version": __version__,
        "scheduler_fingerprint": scheduler_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": args.scale,
        "reps": args.reps,
        "sample_rate": SAMPLE_RATE,
        "bounds": {"off_pct": args.off_bound,
                   "sampled_pct": args.sampled_bound},
        "points": points,
        "aggregate": agg,
        "baseline": baseline,
    }
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    summary = (f"total: off {agg['off_total_s']:.3f}s  "
               f"sampled +{agg['sampled_overhead_pct']:.1f}%  "
               f"full +{agg['full_overhead_pct']:.1f}%")
    if baseline:
        summary += f"  off-vs-baseline {baseline['off_overhead_pct']:+.1f}%"
    print(summary, file=sys.stderr)
    print(f"wrote {args.out}", file=sys.stderr)

    failed = False
    if args.assert_off:
        if not baseline:
            print("[bench_obs] --assert-off needs a usable --baseline",
                  file=sys.stderr)
            failed = True
        elif baseline["off_overhead_pct"] > args.off_bound:
            print(f"[bench_obs] FAIL tracing-off overhead "
                  f"{baseline['off_overhead_pct']:.2f}% > "
                  f"{args.off_bound}%", file=sys.stderr)
            failed = True
    if args.assert_sampled and \
            agg["sampled_overhead_pct"] > args.sampled_bound:
        print(f"[bench_obs] FAIL sampled-tracing overhead "
              f"{agg['sampled_overhead_pct']:.2f}% > "
              f"{args.sampled_bound}%", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
