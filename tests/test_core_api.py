"""Tests for data layouts, the Point-to-Point unit, and the TTA API."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataLayout, PointDistanceUnit, TTAPipeline
from repro.core.api import traverse_tree_tta, vk_create_tta_pipeline
from repro.core.layouts import (
    btree_node_layout,
    btree_query_layout,
    nbody_node_layout,
    ray_tracing_ray_layout,
)
from repro.core.ttaplus import UopProgram
from repro.core.ttaplus.uop import Uop
from repro.errors import ConfigurationError, LayoutError
from repro.geometry import Vec3


class TestDataLayout:
    def test_from_sizes_listing1(self):
        layout = DataLayout.from_sizes([12, 12, 4, 4], name="inner")
        assert layout.size == 32
        assert [f.type for f in layout.fields] == ["vec3", "vec3", "float",
                                                   "float"]

    def test_offsets_accumulate(self):
        layout = DataLayout([("a", "vec3"), ("b", "float"), ("c", "u32")])
        assert [f.offset for f in layout.fields] == [0, 12, 16]
        assert layout.size == 20

    def test_pack_unpack_round_trip(self):
        layout = DataLayout([("origin", "vec3"), ("tmin", "float"),
                             ("flags", "u32")])
        values = {"origin": (1.0, 2.0, 3.0), "tmin": 0.5, "flags": 7}
        assert layout.unpack(layout.pack(values)) == values

    def test_field_lookup(self):
        layout = btree_query_layout()
        assert layout.field("query").offset == 0
        assert layout.field_at(4).name == "next_child"
        with pytest.raises(LayoutError):
            layout.field("nope")
        with pytest.raises(LayoutError):
            layout.field_at(3)

    def test_exceeds_warp_buffer_entry(self):
        with pytest.raises(LayoutError):
            DataLayout([(f"v{i}", "vec3") for i in range(6)])

    def test_bad_inputs(self):
        with pytest.raises(LayoutError):
            DataLayout.from_sizes([8])
        with pytest.raises(LayoutError):
            DataLayout([("a", "quat")])
        with pytest.raises(LayoutError):
            DataLayout([("a", "float"), ("a", "float")])
        with pytest.raises(LayoutError):
            DataLayout([])

    def test_stock_layouts_fit(self):
        for layout in (ray_tracing_ray_layout(), btree_query_layout(),
                       btree_node_layout(), nbody_node_layout()):
            assert layout.size <= 64

    @given(st.lists(st.sampled_from([4, 12]), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_property_size_is_sum(self, sizes):
        layout = DataLayout.from_sizes(sizes)
        assert layout.size == sum(sizes)

    @given(st.tuples(st.floats(-1e3, 1e3, width=32),
                     st.floats(-1e3, 1e3, width=32),
                     st.floats(-1e3, 1e3, width=32)),
           st.floats(0, 1e3, width=32), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_codec_round_trip(self, vec, f, u):
        layout = DataLayout([("v", "vec3"), ("f", "float"), ("u", "u32")])
        out = layout.unpack(layout.pack({"v": vec, "f": f, "u": u}))
        assert out["u"] == u
        assert out["f"] == pytest.approx(f, rel=1e-6)


class TestPointDistanceUnit:
    UNIT = PointDistanceUnit()

    def test_matches_algorithm2(self):
        rng = random.Random(0)
        for _ in range(200):
            a = Vec3(rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5))
            b = Vec3(rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5))
            threshold = rng.uniform(0, 10)
            result = self.UNIT.test(a, b, threshold)
            expected = (b - a).length() < threshold or \
                math.isclose((b - a).length(), threshold) and False
            assert result.below == ((b - a).length_squared()
                                    < threshold * threshold)

    def test_distance_squared_exact(self):
        r = self.UNIT.test(Vec3(0, 0, 0), Vec3(3, 4, 0), 10.0)
        assert r.distance_squared == 25.0
        assert r.below


class TestTTAPipeline:
    def complete_tta(self):
        p = TTAPipeline(flavor="tta")
        p.decode_r(btree_query_layout())
        p.decode_i(btree_node_layout())
        p.decode_l(btree_node_layout())
        p.config_i("query_key")
        p.config_l("query_key")
        return p

    def test_valid_pipeline_passes(self):
        p = vk_create_tta_pipeline(self.complete_tta())
        assert p.inner_op == "query_key"
        assert p.leaf_op == "query_key"

    def test_missing_config_rejected(self):
        p = TTAPipeline(flavor="tta")
        p.decode_r(btree_query_layout())
        with pytest.raises(ConfigurationError, match="DecodeI"):
            p.validate()

    def test_bad_flavor_rejected(self):
        with pytest.raises(ConfigurationError):
            TTAPipeline(flavor="gpu")

    def test_tta_rejects_custom_programs(self):
        p = TTAPipeline(flavor="tta")
        with pytest.raises(ConfigurationError):
            p.config_i(UopProgram("custom", [Uop("mul")]))

    def test_ttaplus_accepts_named_programs(self):
        p = TTAPipeline(flavor="ttaplus")
        p.config_i("raybox")
        p.config_l("uop:raytri")
        assert p._inner_op == "uop:raybox"
        assert p._leaf_op == "uop:raytri"

    def test_ttaplus_registers_custom_program(self):
        p = TTAPipeline(flavor="ttaplus")
        prog = UopProgram("my_test_prog", [Uop("mul"), Uop("sqrt")])
        p.config_l(prog)
        assert p._leaf_op == "uop:my_test_prog"

    def test_ttaplus_unknown_program_rejected(self):
        p = TTAPipeline(flavor="ttaplus")
        with pytest.raises(ConfigurationError):
            p.config_i("no_such_program")

    def test_config_terminate_requires_layout(self):
        p = TTAPipeline(flavor="tta")
        with pytest.raises(ConfigurationError):
            p.config_terminate("ray", 0, "float", "leaf", 2)
        p.decode_r(btree_query_layout())
        p.config_terminate("ray", 4, "u32", "leaf", 2)
        assert p.terminate.offset == 4

    def test_config_terminate_bad_offset(self):
        p = TTAPipeline(flavor="tta")
        p.decode_r(btree_query_layout())
        with pytest.raises(LayoutError):
            p.config_terminate("ray", 3, "u32", "leaf", 2)

    def test_launch_via_api(self):
        from repro.gpu import GPUConfig
        from repro.gpu.isa import AccelCall
        from repro.rta import Step, TraversalJob

        jobs = [TraversalJob(i, [Step(0x1000 + 64 * i, 64, "query_key")], i)
                for i in range(32)]
        out = {}

        def kernel(tid, args):
            result = yield AccelCall(jobs[tid], tag=1)
            args[tid] = result

        stats = traverse_tree_tta(self.complete_tta(), kernel, 32, args=out,
                                  config=GPUConfig(n_sms=1))
        assert out == {i: i for i in range(32)}
        assert stats.accel_stats["query_key_ops"] == 32


class TestCommandBuffer:
    def _pipeline(self):
        p = TTAPipeline(flavor="tta")
        p.decode_r(btree_query_layout())
        p.decode_i(btree_node_layout())
        p.decode_l(btree_node_layout())
        p.config_i("query_key")
        p.config_l("query_key")
        return p

    def _kernel_and_jobs(self, n):
        from repro.gpu.isa import AccelCall
        from repro.rta import Step, TraversalJob

        jobs = [TraversalJob(i, [Step(0x1000 + 64 * i, 64, "query_key")], i)
                for i in range(n)]

        def kernel(tid, args):
            result = yield AccelCall(jobs[tid], tag=1)
            args[tid] = result

        return kernel

    def test_record_and_submit(self):
        from repro.core.api import CommandBuffer, TTADevice
        from repro.gpu import GPUConfig

        device = TTADevice(GPUConfig(n_sms=1))
        buffer = CommandBuffer()
        out1, out2 = {}, {}
        buffer.cmd_traverse_tree(self._pipeline(), self._kernel_and_jobs(32),
                                 32, args=out1)
        buffer.cmd_traverse_tree(self._pipeline(), self._kernel_and_jobs(16),
                                 16, args=out2)
        results = device.submit(buffer)
        assert len(results) == 2
        assert device.launches == 2
        assert out1 == {i: i for i in range(32)}
        assert out2 == {i: i for i in range(16)}

    def test_empty_submit_rejected(self):
        from repro.core.api import CommandBuffer, TTADevice

        with pytest.raises(ConfigurationError):
            TTADevice().submit(CommandBuffer())

    def test_resubmission_rejected(self):
        from repro.core.api import CommandBuffer, TTADevice
        from repro.gpu import GPUConfig

        device = TTADevice(GPUConfig(n_sms=1))
        buffer = CommandBuffer()
        buffer.cmd_traverse_tree(self._pipeline(), self._kernel_and_jobs(4),
                                 4, args={})
        device.submit(buffer)
        with pytest.raises(ConfigurationError):
            buffer.cmd_traverse_tree(self._pipeline(),
                                     self._kernel_and_jobs(4), 4, args={})

    def test_invalid_pipeline_rejected_at_record(self):
        from repro.core.api import CommandBuffer

        buffer = CommandBuffer()
        with pytest.raises(ConfigurationError):
            buffer.cmd_traverse_tree(TTAPipeline(), lambda t, a: iter(()), 4)
