"""§V-A — N-Body traversal + post-processing kernel fusion on TTA+."""

from repro.harness import experiments


def test_nbody_fusion(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.nbody_fusion(scale), rounds=1, iterations=1)
    save_table("nbody_fusion", table)
    rows = {r[0]: r for r in table.rows}
    fused = rows["TTA+ fused"][1]
    separate = rows["TTA+ separate kernels"][1]
    # Fusing lets the accelerator and the cores overlap (paper: 1.2x
    # further improvement, to 1.9x overall).
    assert fused > separate, "fusion did not help"
