"""Cycle → wall-clock mapping for the serving layer.

The simulator is a cycle-domain model; a serving system lives in
seconds.  :class:`ServiceClock` bridges the two: simulated launch
durations (cycles at the Table II core clock, 1365 MHz) become
wall-clock time on the service's virtual timeline, plus a fixed
host-side launch overhead per kernel dispatch (driver + queue push; the
paper's one-shot experiments never pay it because they measure a single
launch, but a serving path pays it per batch).

Everything here is pure arithmetic — the clock never reads real time,
so loadtests are deterministic and replayable.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Table II compute clock.
DEFAULT_CORE_MHZ = 1365.0

#: Host-side cost of one kernel dispatch, seconds (~5µs: stream push +
#: driver submit on a warm context).
DEFAULT_LAUNCH_OVERHEAD_S = 5e-6


@dataclass(frozen=True)
class ServiceClock:
    """Maps simulated cycles onto the service's wall-clock timeline."""

    core_mhz: float = DEFAULT_CORE_MHZ
    launch_overhead_s: float = DEFAULT_LAUNCH_OVERHEAD_S

    def __post_init__(self) -> None:
        if self.core_mhz <= 0:
            raise ConfigurationError(
                f"core clock must be positive, got {self.core_mhz}")
        if self.launch_overhead_s < 0:
            raise ConfigurationError("launch overhead cannot be negative")

    @property
    def hz(self) -> float:
        return self.core_mhz * 1e6

    def seconds(self, cycles: float) -> float:
        """Pure cycle time, no dispatch overhead."""
        return cycles / self.hz

    def launch_seconds(self, cycles: float, slow_factor: float = 1.0)\
            -> float:
        """Wall-clock cost of one kernel dispatch of ``cycles`` cycles.

        ``slow_factor`` scales the whole dispatch (device contention /
        the ``slow_backend`` fault injector): simulated cycle *counts*
        stay truthful while the occupancy on the service timeline
        inflates.
        """
        return (self.launch_overhead_s + cycles / self.hz) * slow_factor

    def cycles(self, seconds: float) -> float:
        """Inverse mapping (used to place serve events on the cycle
        timeline for the tracer)."""
        return seconds * self.hz


DEFAULT_CLOCK = ServiceClock()
