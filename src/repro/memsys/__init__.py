"""GPU memory system model: caches, DRAM, coalescing, address space.

The hierarchy follows the Table II configuration of the paper's
Vulkan-Sim setup: per-SM L1 (fully associative LRU), a shared
set-associative L2, and DRAM modelled as a bandwidth-limited resource
whose busy fraction is the paper's "DRAM bandwidth utilization" metric
(Figs. 1 and 13).
"""

from repro.memsys.cache import Cache
from repro.memsys.coalescer import coalesce_sectors
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.memory_image import AddressSpace

__all__ = [
    "Cache",
    "coalesce_sectors",
    "MemoryHierarchy",
    "AddressSpace",
]
