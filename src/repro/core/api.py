"""The TTA / TTA+ programming model (Listing 1).

The paper replaces Vulkan's ``traceRayEXT`` / ``vkCmdTraceRaysKHR`` with
``traverseTreeTTA`` / ``vkCmdTraverseTree`` and adds configuration calls
for data layouts (``DecodeR``/``DecodeI``/``DecodeL``), intersection
tests (``ConfigI``/``ConfigL``) and the termination condition
(``ConfigTerminate``).  :class:`TTAPipeline` is that configuration
state; :func:`traverse_tree_tta` is the launch.

Example (B-Tree search, compare with Listing 1)::

    pipeline = TTAPipeline(flavor="tta")
    pipeline.decode_r(btree_query_layout())
    pipeline.decode_i(btree_node_layout())
    pipeline.decode_l(btree_node_layout())
    pipeline.config_i("query_key")
    pipeline.config_l("query_key")
    pipeline.config_terminate("ray", offset=4, dtype="u32",
                              program="leaf", pc=2)
    stats = traverse_tree_tta(pipeline, kernel, n_threads, args)
"""

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.core.layouts import DataLayout
from repro.core.ttaplus.programs import (
    PROGRAMS,
    UopProgram,
    register_program,
)
from repro.gpu.config import DEFAULT_CONFIG, GPUConfig
from repro.gpu.device import GPU, KernelStats

#: operations a TTA's fixed-function (modified) units can run
TTA_FIXED_OPS = ("box", "tri", "xform", "query_key", "point_dist")


@dataclass
class TerminateCondition:
    """ConfigTerminate state: which field to check at which program PC."""

    source: str        # "ray" | "inner" | "leaf"
    offset: int        # byte offset of the checked field
    dtype: str         # "float" | "u32"
    program: str       # "inner" | "leaf"
    pc: int            # µop PC at which the check fires


class TTAPipeline:
    """Accumulates Listing 1's configuration calls and validates them."""

    def __init__(self, flavor: str = "tta"):
        if flavor not in ("tta", "ttaplus"):
            raise ConfigurationError(
                f"flavor must be 'tta' or 'ttaplus', got {flavor!r}"
            )
        self.flavor = flavor
        self.ray_layout: Optional[DataLayout] = None
        self.inner_layout: Optional[DataLayout] = None
        self.leaf_layout: Optional[DataLayout] = None
        self._inner_op: Optional[str] = None
        self._leaf_op: Optional[str] = None
        self.terminate: Optional[TerminateCondition] = None

    # -- DecodeR / DecodeI / DecodeL ------------------------------------------
    def decode_r(self, layout: Union[DataLayout, Sequence[int]]) -> None:
        self.ray_layout = self._coerce(layout, "ray")

    def decode_i(self, layout: Union[DataLayout, Sequence[int]]) -> None:
        self.inner_layout = self._coerce(layout, "inner_node")

    def decode_l(self, layout: Union[DataLayout, Sequence[int]]) -> None:
        self.leaf_layout = self._coerce(layout, "leaf_node")

    @staticmethod
    def _coerce(layout, name: str) -> DataLayout:
        if isinstance(layout, DataLayout):
            return layout
        return DataLayout.from_sizes(list(layout), name=name)

    # -- ConfigI / ConfigL -----------------------------------------------------
    def config_i(self, test: Union[str, UopProgram]) -> None:
        self._inner_op = self._coerce_test(test)

    def config_l(self, test: Union[str, UopProgram]) -> None:
        self._leaf_op = self._coerce_test(test)

    def _coerce_test(self, test: Union[str, UopProgram]) -> str:
        if self.flavor == "tta":
            if not isinstance(test, str) or test not in TTA_FIXED_OPS:
                raise ConfigurationError(
                    f"TTA intersection tests must be one of {TTA_FIXED_OPS}; "
                    f"got {test!r}. Use flavor='ttaplus' for custom programs."
                )
            return test
        if isinstance(test, UopProgram):
            if test.name not in PROGRAMS:
                register_program(test)
            return f"uop:{test.name}"
        if isinstance(test, str):
            name = test[4:] if test.startswith("uop:") else test
            if name not in PROGRAMS:
                raise ConfigurationError(
                    f"unknown µop program {name!r}; register it first"
                )
            return f"uop:{name}"
        raise ConfigurationError(f"bad intersection test {test!r}")

    # -- ConfigTerminate ---------------------------------------------------------
    def config_terminate(self, source: str, offset: int, dtype: str,
                         program: str, pc: int) -> None:
        if source not in ("ray", "inner", "leaf"):
            raise ConfigurationError(f"bad terminate source {source!r}")
        if program not in ("inner", "leaf"):
            raise ConfigurationError(f"bad terminate program {program!r}")
        layout = {"ray": self.ray_layout, "inner": self.inner_layout,
                  "leaf": self.leaf_layout}[source]
        if layout is None:
            raise ConfigurationError(
                f"configure the {source} layout before ConfigTerminate"
            )
        layout.field_at(offset)  # raises if no field starts there
        self.terminate = TerminateCondition(source, offset, dtype, program, pc)

    # -- validation & launch --------------------------------------------------------
    @property
    def inner_op(self) -> str:
        self.validate()
        return self._inner_op

    @property
    def leaf_op(self) -> str:
        self.validate()
        return self._leaf_op

    def validate(self) -> None:
        missing = [name for name, value in [
            ("DecodeR", self.ray_layout),
            ("DecodeI", self.inner_layout),
            ("DecodeL", self.leaf_layout),
            ("ConfigI", self._inner_op),
            ("ConfigL", self._leaf_op),
        ] if value is None]
        if missing:
            raise ConfigurationError(
                f"pipeline incomplete; missing {', '.join(missing)}"
            )

    def accelerator_factory(self, **knobs):
        """Build the GPU accelerator factory matching this pipeline."""
        self.validate()
        if self.flavor == "tta":
            from repro.rta.rta import make_rta_factory
            return make_rta_factory(tta=True, **knobs)
        from repro.core.ttaplus.ttaplus import make_ttaplus_factory
        return make_ttaplus_factory(**knobs)


def vk_create_tta_pipeline(pipeline: TTAPipeline) -> TTAPipeline:
    """Validate and return the pipeline (the vkCreateTTAPipeline analogue)."""
    pipeline.validate()
    return pipeline


def traverse_tree_tta(pipeline: TTAPipeline, kernel, n_threads: int,
                      args: Any = None,
                      config: GPUConfig = DEFAULT_CONFIG,
                      **factory_knobs) -> KernelStats:
    """Launch a tree traversal kernel (the vkCmdTraverseTree analogue)."""
    gpu = GPU(config,
              accelerator_factory=pipeline.accelerator_factory(**factory_knobs))
    return gpu.launch(kernel, n_threads, args=args)


class CommandBuffer:
    """A recorded sequence of traversal launches (Vulkan-style).

    Listing 1 records work into a GPU command buffer before submission;
    this is that object: ``cmd_traverse_tree`` records, ``TTADevice
    .submit`` executes in order and returns one :class:`KernelStats`
    per command.
    """

    def __init__(self) -> None:
        self._commands = []
        self._submitted = False

    def cmd_traverse_tree(self, pipeline: TTAPipeline, kernel,
                          n_threads: int, args: Any = None,
                          **factory_knobs) -> None:
        if self._submitted:
            raise ConfigurationError(
                "command buffer already submitted; record a new one"
            )
        pipeline.validate()
        self._commands.append((pipeline, kernel, n_threads, args,
                               factory_knobs))

    def __len__(self) -> int:
        return len(self._commands)


class TTADevice:
    """A simulated GPU device that executes recorded command buffers."""

    def __init__(self, config: GPUConfig = DEFAULT_CONFIG):
        self.config = config
        self.launches = 0

    def create_pipeline(self, flavor: str = "tta") -> TTAPipeline:
        return TTAPipeline(flavor=flavor)

    def submit(self, command_buffer: CommandBuffer) -> list:
        """Execute every recorded command in order; returns their stats."""
        if not len(command_buffer):
            raise ConfigurationError("empty command buffer")
        results = []
        for pipeline, kernel, n_threads, args, knobs in \
                command_buffer._commands:
            results.append(traverse_tree_tta(pipeline, kernel, n_threads,
                                             args=args, config=self.config,
                                             **knobs))
            self.launches += 1
        command_buffer._submitted = True
        return results
