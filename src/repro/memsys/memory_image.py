"""A flat global address space shared by trees, query and result buffers.

``AddressSpace`` is a simple bump allocator with alignment plus a
registry of :class:`~repro.trees.layout.TreeImage` regions so the
functional side of a simulation can resolve a node address back to the
node object that lives there.
"""

from typing import List, Optional

from repro.errors import LayoutError
from repro.trees.layout import TreeImage


class AddressSpace:
    """Bump allocator + region registry for one simulation's memory."""

    def __init__(self, base: int = 0x1000):
        self._cursor = base
        self._images: List[TreeImage] = []

    def alloc(self, size: int, align: int = 64) -> int:
        """Reserve ``size`` bytes aligned to ``align``; return the base."""
        if size <= 0:
            raise LayoutError("allocation size must be positive")
        if align <= 0 or (align & (align - 1)) != 0:
            raise LayoutError(f"alignment must be a power of two, got {align}")
        base = (self._cursor + align - 1) & ~(align - 1)
        self._cursor = base + size
        return base

    def place_tree(self, nodes, node_stride: int = 64) -> TreeImage:
        """Lay out a tree's nodes at the next free aligned region."""
        nodes = list(nodes)
        base = self.alloc(len(nodes) * node_stride, align=node_stride)
        image = TreeImage(nodes, base=base, node_stride=node_stride)
        self._images.append(image)
        return image

    def node_at(self, address: int) -> Optional[object]:
        for image in self._images:
            if image.contains(address):
                return image.node_at(address)
        return None

    @property
    def used_bytes(self) -> int:
        return self._cursor
