"""Per-platform batch launch backends for the serving layer.

A :class:`LaunchBackend` turns one closed batch of same-class queries
into one simulated kernel launch on its platform (baseline ``gpu``,
``tta``, ``ttaplus``, or — radius only — stock ``rta``), using the same
kernels, job lowering, and scaled GPU configuration as the one-shot
harness runners, so a query's functional result and the cycle model it
is timed under are *identical* to the batch-experiment path
(``tests/test_serve.py`` asserts byte-identical results).

**Failure semantics** (``repro.serve.resilience``): every launch runs
inside a small failure-handling stack, outside-in:

1. **Circuit breaker** — a backend whose launches keep failing opens
   its breaker; while open, batches are rejected (or degraded, see 4)
   immediately instead of burning device time.  After a cooldown one
   probe launch decides whether to close again.
2. **Bounded retry with backoff** — a transient launch failure
   (:class:`~repro.errors.BackendLaunchError`; in this behavioral model
   only the ``launch_fail`` fault injector produces one) retries up to
   ``max_retries`` times; the accumulated exponential backoff is
   reported in ``notes["backoff_s"]`` so the virtual-time loadtest
   charges it to the batch's service time.
3. **Result integrity** — every launch's results pass
   :func:`~repro.serve.resilience.check_batch_integrity` (one
   well-formed result per query, the guard conservation invariant at
   serving granularity).  A corrupt batch retries once; a repeat
   offender raises under the ``strict`` policy and degrades otherwise.
4. **Degradation to the legacy engine** — a launch that aborts with a
   :class:`~repro.errors.GuardError` (watchdog stall / invariant break
   on the fast engine) is retried once on the legacy reference engine
   (``REPRO_SIM_CORE=legacy``), exactly like exec-service quarantine;
   under the ``degrade``/``strict`` policies, exhausted retries and
   open breakers take the same exit.  The batch completes with
   ``engine="legacy"`` and ``notes["degraded_reason"]`` naming why
   (``guard`` | ``launch_failure`` | ``breaker_open`` |
   ``corrupt_result``); the service counts each reason under
   ``serve.degraded.*``.  One poisoned batch can therefore never wedge
   the serving loop.
"""

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (BackendLaunchError, ConfigurationError,
                          GuardError, InvariantViolation)
from repro.gpu import GPU
from repro.gpu.config import GPUConfig
from repro.guard.faults import ServeFaults
from repro.serve.index import ResidentIndex
from repro.serve.resilience import (CircuitBreaker, ResilienceConfig,
                                    check_batch_integrity, default_config)


@dataclass
class BatchLaunch:
    """One completed batch launch: timing plus per-slot results."""

    platform: str
    query_class: str
    n_queries: int
    cycles: float
    #: batch-local slot -> functional result (slot i is the i-th query
    #: of the batch, in submission order).
    results: Dict[int, Any]
    stats: Any
    engine: str = "fast"        # "fast" | "legacy" | "failed"
    error: Optional[str] = None
    notes: Dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.engine == "failed"

    @property
    def slow_factor(self) -> float:
        """Service-time inflation (``slow_backend`` fault; 1.0 healthy)."""
        return self.notes.get("slow_factor", 1.0)

    @property
    def backoff_s(self) -> float:
        """Virtual retry backoff the loadtest charges to this batch."""
        return self.notes.get("backoff_s", 0.0)


def _accelerator_factory(platform: str):
    from repro.core.ttaplus import make_ttaplus_factory
    from repro.rta.rta import make_rta_factory

    if platform == "gpu":
        return None
    if platform == "rta":
        return make_rta_factory(tta=False)
    if platform == "tta":
        return make_rta_factory(tta=True)
    if platform in ("ttaplus", "ttaplus_opt"):
        return make_ttaplus_factory()
    raise ConfigurationError(f"no serve backend for platform {platform!r}")


class LaunchBackend:
    """Launches batches for one platform over resident indexes."""

    def __init__(self, platform: str,
                 config: Optional[GPUConfig] = None,
                 guard=None, max_verify: int = 0,
                 resilience: Optional[ResilienceConfig] = None,
                 faults: Optional[ServeFaults] = None):
        self.platform = platform
        self.guard = guard
        #: Verify up to this many queries per batch against the golden
        #: reference (0 = trust the kernels' functional model, which the
        #: equivalence tests oracle).
        self.max_verify = max_verify
        self.resilience = resilience if resilience is not None \
            else default_config()
        #: Armed serve-path fault injectors ($REPRO_FAULTS by default);
        #: per-instance so trigger state never leaks across backends.
        self.faults = faults if faults is not None else ServeFaults.from_env()
        self.breaker = CircuitBreaker(self.resilience.breaker_threshold,
                                      self.resilience.breaker_cooldown_s)
        self._factory = _accelerator_factory(platform)
        self._explicit_config = config
        self._configs: Dict[Tuple[int, int], GPUConfig] = {}
        self.launches = 0
        self.degraded = 0
        self.degraded_reasons: Dict[str, int] = {}
        self.retries = 0
        self.failed_batches = 0
        self.corrupt_detected = 0

    # -- config ----------------------------------------------------------------
    def config_for(self, index: ResidentIndex) -> GPUConfig:
        """The same scaled-cache policy the one-shot runners default to,
        derived once per resident index *per mutation epoch* — a
        mutated index re-places its image, so the tree footprint (and
        with it the scaled cache size) can change under write load."""
        if self._explicit_config is not None:
            return self._explicit_config
        key = (id(index), getattr(index, "mutation_epoch", 0))
        config = self._configs.get(key)
        if config is None:
            from repro.harness.runner import scaled_config_for

            config = scaled_config_for(index.workload.image.size_bytes)
            self._configs[key] = config
        return config

    # -- launching ---------------------------------------------------------------
    def launch(self, index: ResidentIndex,
               qids: Sequence[int], now: float = 0.0) -> BatchLaunch:
        """Launch one batch of canonical query ids.

        ``now`` is the caller's clock (virtual loadtest time or
        ``time.monotonic()``), consulted only by the circuit breaker.
        """
        if self.platform not in index.spec.platforms:
            raise ConfigurationError(
                f"query class {index.query_class!r} cannot serve on "
                f"{self.platform!r} (valid: {index.spec.platforms})"
            )
        payloads = [index.payload(qid) for qid in qids]
        if self.platform == "gpu":
            jobs_builder = lambda: []                       # noqa: E731
            kernel = index.spec.baseline_kernel
        else:
            jobs_builder = lambda: index.batch_jobs(        # noqa: E731
                qids, self.platform)
            kernel = index.spec.accel_kernel
        launch = self._run(index, kernel, payloads, jobs_builder, now)
        if self.max_verify and not launch.failed:
            self._verify(index, qids, launch.results)
        return launch

    def launch_payloads(self, index: ResidentIndex,
                        payloads: Sequence[Any],
                        now: float = 0.0) -> BatchLaunch:
        """Launch one batch of raw (ad-hoc) query payloads."""
        if self.platform == "gpu":
            jobs_builder = lambda: []                       # noqa: E731
            kernel = index.spec.baseline_kernel
        else:
            jobs_builder = lambda: index.spec.build_jobs(   # noqa: E731
                index.workload, payloads, self.platform)
            kernel = index.spec.accel_kernel
        return self._run(index, kernel, payloads, jobs_builder, now)

    def _run(self, index: ResidentIndex, kernel, payloads,
             jobs_builder, now: float = 0.0) -> BatchLaunch:
        """One resilient launch; see the module docstring for the stack.

        ``jobs_builder`` is called per attempt: a kernel launch consumes
        nothing from the args, but a guard abort can leave a partially
        filled results dict, so every attempt gets pristine args.
        """
        if not payloads:
            raise ConfigurationError("cannot launch an empty batch")
        config = self.config_for(index)
        self.launches += 1
        notes: Dict[str, Any] = {}

        if not self.breaker.allow(now):
            if self.resilience.degrades:
                return self._degrade(index, kernel, payloads, jobs_builder,
                                     config, "breaker_open", notes=notes)
            return self._fail(index, payloads, "circuit breaker open",
                              notes)

        attempt = 0
        corrupt_retried = False
        while True:
            attempt += 1
            args = index.batch_args(payloads, jobs_builder())
            gpu = GPU(config, accelerator_factory=self._factory)
            try:
                self.faults.fail_launch()
                stats = gpu.launch(kernel, len(payloads), args=args,
                                   guard=self.guard)
            except GuardError as exc:
                # The fast engine tripped the watchdog or an invariant;
                # this is a model fault, not a backend fault — the
                # breaker does not count it.
                return self._degrade(
                    index, kernel, payloads, jobs_builder, config, "guard",
                    error=f"{type(exc).__name__}: {exc}", notes=notes)
            except BackendLaunchError as exc:
                self.breaker.record_failure(now)
                if attempt <= self.resilience.max_retries \
                        and self.breaker.opened_at is None:
                    self.retries += 1
                    notes["backoff_s"] = notes.get("backoff_s", 0.0) \
                        + self.resilience.backoff_s(attempt)
                    continue
                if self.resilience.degrades:
                    return self._degrade(
                        index, kernel, payloads, jobs_builder, config,
                        "launch_failure", error=str(exc), notes=notes)
                return self._fail(index, payloads, str(exc), notes)

            self.breaker.record_success(now)
            results = dict(args.results)
            self.faults.corrupt(results)
            violation = check_batch_integrity(results, len(payloads))
            if violation is None:
                if attempt > 1:
                    notes["retries"] = attempt - 1
                slow = self.faults.slow_factor()
                if slow != 1.0:
                    notes["slow_factor"] = slow
                return BatchLaunch(self.platform, index.query_class,
                                   len(payloads), stats.cycles, results,
                                   stats, engine="fast", notes=notes)

            # Corrupt batch: detected unconditionally, in every mode.
            self.corrupt_detected += 1
            notes["integrity"] = violation
            if not corrupt_retried:
                corrupt_retried = True
                self.retries += 1
                notes["backoff_s"] = notes.get("backoff_s", 0.0) \
                    + self.resilience.backoff_s(attempt)
                continue
            if self.resilience.strict:
                raise InvariantViolation(
                    f"batch integrity violated twice on "
                    f"{self.platform}/{index.query_class}: {violation}",
                    diagnostics={"reason": "corrupt_result",
                                 "violation": violation,
                                 "n_queries": len(payloads)})
            return self._degrade(index, kernel, payloads, jobs_builder,
                                 config, "corrupt_result",
                                 error=violation, notes=notes)

    def _degrade(self, index: ResidentIndex, kernel, payloads,
                 jobs_builder, config, reason: str,
                 error: Optional[str] = None,
                 notes: Optional[Dict[str, Any]] = None) -> BatchLaunch:
        """Second opinion from the reference engine, tagged with why."""
        self.degraded += 1
        self.degraded_reasons[reason] = \
            self.degraded_reasons.get(reason, 0) + 1
        notes = dict(notes or {})
        notes["degraded_reason"] = reason
        args = index.batch_args(payloads, jobs_builder())
        stats = self._legacy_retry(kernel, len(payloads), args, config)
        return BatchLaunch(self.platform, index.query_class, len(payloads),
                           stats.cycles, dict(args.results), stats,
                           engine="legacy", error=error, notes=notes)

    def _fail(self, index: ResidentIndex, payloads, error: str,
              notes: Dict[str, Any]) -> BatchLaunch:
        """Give up on the batch: no results, the caller accounts every
        query as failed (never silently dropped)."""
        self.failed_batches += 1
        return BatchLaunch(self.platform, index.query_class, len(payloads),
                           0.0, {}, None, engine="failed", error=error,
                           notes=dict(notes))

    def _legacy_retry(self, kernel, n_threads: int, args, config):
        """Second opinion from the reference engine (immune to the
        fast-path fault seams — see ``repro.guard.faults``)."""
        from repro.sim import CORE_ENV

        previous = os.environ.get(CORE_ENV)
        os.environ[CORE_ENV] = "legacy"
        try:
            gpu = GPU(config, accelerator_factory=self._factory)
            return gpu.launch(kernel, n_threads, args=args, guard=self.guard)
        finally:
            if previous is None:
                os.environ.pop(CORE_ENV, None)
            else:
                os.environ[CORE_ENV] = previous

    # -- verification -------------------------------------------------------------
    def _verify(self, index: ResidentIndex, qids: Sequence[int],
                results: Dict[int, Any]) -> None:
        """Spot-check batch results against the workload's golden
        reference (same checks as the one-shot runners, sampled)."""
        wl = index.workload
        step = max(1, len(qids) // self.max_verify)
        for slot in range(0, len(qids), step):
            qid = qids[slot]
            got = results[slot]
            if index.query_class == "point":
                assert got == wl.golden[qid], (
                    f"point query {qid}: got {got}, "
                    f"expected {wl.golden[qid]}")
            elif index.query_class == "range":
                assert tuple(sorted(got)) == wl.golden(wl.windows[qid]), (
                    f"range query {qid}: result mismatch")
            elif index.query_class == "radius":
                assert tuple(sorted(got)) == wl.golden(wl.queries[qid]), (
                    f"radius query {qid}: neighbour set mismatch")
            else:  # knn: distance multiset (ties may order differently)
                q = wl.queries[qid]
                pts = wl.tree.points
                got_d = sorted((pts[i] - q).length_squared() for i in got)
                exp_d = sorted((pts[i] - q).length_squared()
                               for i in wl.golden(q))
                assert all(abs(a - b) < 1e-9
                           for a, b in zip(got_d, exp_d)) \
                    and len(got_d) == len(exp_d), (
                        f"knn query {qid}: distance mismatch")
