"""R-Tree range-query kernels (the RTIndeX-style spatial-index extension).

An R-Tree range query tests the query window against every entry MBR of
each visited node — a pure box-overlap traversal.  On the baseline GPU
this is the usual divergent while-loop; on TTA each node visit is one
(modified) Ray-Box issue over up to 9 entries; on TTA+ it is the
Ray-Box µop program.
"""

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.geometry.aabb import AABB
from repro.gpu.isa import AccelCall, Compute
from repro.gpu.replay import launch_replayable, value_independent
from repro.kernels import common
from repro.kernels.common import epilogue, prologue, visit_header
from repro.rta.traversal import Step, TraversalJob
from repro.trees.layout import NODE_STRIDE
from repro.trees.rtree import RTree

#: scalarized rect-overlap test per entry (4 compares + combine)
_OVERLAP_ALU = 6
#: stack pushes for overlapping children
_PUSH_CONTROL = 3


@dataclass
class RTreeKernelArgs:
    tree: RTree
    windows: Sequence[AABB]
    query_buf: int
    result_buf: int
    jobs: List[TraversalJob] = field(default_factory=list)
    results: dict = field(default_factory=dict)
    #: workload-owned recording cache for gpu/replay.py
    stream_cache: dict = None


@launch_replayable
@value_independent
def rtree_baseline_kernel(tid: int, args: RTreeKernelArgs):
    """One thread = one range query on the SIMT cores."""
    trace = args.tree.range_query(args.windows[tid])
    yield from prologue(args.query_buf + tid * 16, setup_alu=5)
    for visit in trace.visits:
        yield from visit_header(visit.node.address, NODE_STRIDE)
        # One tagged op per entry tested: node occupancy varies, so the
        # scan serializes across the warp like the B-Tree key loop.
        base = common.TAG_LEAF if visit.kind == "leaf" else common.TAG_INNER
        for k in range(visit.tests):
            yield Compute(_OVERLAP_ALU, base + k, kind="alu")
        yield Compute(_PUSH_CONTROL,
                      common.TAG_LEAF_HIT if visit.kind == "leaf"
                      else common.TAG_INNER_NEXT, kind="control")
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = trace.ids


@launch_replayable
def rtree_accel_kernel(tid: int, args: RTreeKernelArgs):
    yield from prologue(args.query_buf + tid * 16, setup_alu=5)
    yield Compute(2, common.TAG_SETUP + 1, kind="alu")
    ids = yield AccelCall(args.jobs[tid], tag=common.TAG_SETUP + 2)
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = ids


def build_rtree_jobs(tree: RTree, windows: Sequence[AABB],
                     flavor: str = "tta") -> List[TraversalJob]:
    """Lower range queries into accelerator steps.

    Every visited node is one box-overlap instruction covering up to 9
    entries (TTA's width); wider nodes would iterate, as §III-B notes.
    """
    if flavor not in ("tta", "ttaplus"):
        raise ConfigurationError(
            f"R-Tree queries need box-test support (got {flavor!r})"
        )
    op = "box" if flavor == "tta" else "uop:raybox"
    jobs = []
    for qid, window in enumerate(windows):
        trace = tree.range_query(window)
        steps = [Step(v.node.address, NODE_STRIDE, op)
                 for v in trace.visits]
        jobs.append(TraversalJob(qid, steps, trace.ids))
    return jobs
