"""Metrics registry: counters, gauges, histograms, time series.

This is the layer Figs. 13/15/18 consume.  The raw model keeps its
cheap inline counters (``sim.stats``, accelerator snapshots); after a
launch :func:`build_metrics` folds them into one namespaced, flat
registry so harness code reads ``run.metric("memsys.dram.utilization")``
instead of string-parsing accelerator snapshot keys.

Naming scheme (dots separate namespace levels; the final level is the
metric):

==============================================  ===========================
``sim.cycles``                                  final cycle count
``sim.simt_efficiency``                         mean active-lane fraction
``sm.issue.utilization`` / ``sm.ldst.*``        SM port busy fractions
``memsys.dram.utilization|bytes|requests``      DRAM channel (Fig. 13)
``memsys.l2.hit_rate|accesses``                 shared L2
``memsys.l1.hit_rate``                          mean across per-SM L1s
``rta.unit.<op>.occupancy_avg|occupancy_peak``  intersection pools (Fig. 15)
``rta.unit.<op>.ops|busy_cycles|latency_mean``
``ttaplus.op_util.<unit>``                      TTA+ OP units (Fig. 18 top)
``ttaplus.test_latency.<test>``                 TTA+ tests (Fig. 18 bottom)
``accel.<key>``                                 any other accelerator scalar
``serve.batches|launches|queries_*``            serving-layer lifecycle
``serve.resilience.shed[.<reason>]``            load shedding (per reason)
``serve.resilience.failed|deadline_misses``     failure-semantics outcomes
``serve.resilience.hedges|retries``             recovery mechanisms
``serve.resilience.breaker_opens``              circuit-breaker transitions
``serve.resilience.corrupt_results``            integrity violations seen
``serve.resilience.goodput_qps``                in-deadline completions/s
==============================================  ===========================

Series and histograms are first-class values alongside the scalars:
``memsys.dram.bandwidth_series`` (bytes per cycle bucket, only recorded
while tracing is on) and per-category event-duration histograms derived
from the trace ring.
"""

from typing import Any, Dict, List, Optional, Tuple

#: TTA/RTA fixed-function pool ops whose snapshot keys get the
#: ``rta.unit.`` namespace (matches FixedFunctionBackend.TTA_OPS).
_POOL_OPS = ("box", "tri", "xform", "query_key", "point_dist")

#: Suffixes of per-pool scalar keys in FixedFunctionBackend.snapshot().
_POOL_FIELDS = ("ops", "busy_cycles", "occupancy_avg", "occupancy_peak",
                "latency_mean")


#: Default retention window, in buckets.  At the default 1024-cycle
#: bucket this covers ~67M cycles — far beyond any single launch, but a
#: hard ceiling so a series fed by a long-lived process (a
#: ``repro.serve`` loadtest spanning minutes of virtual time) stays
#: bounded: once full, the *oldest* buckets roll off, flight-recorder
#: style, and ``dropped_buckets`` records how many.
DEFAULT_MAX_BUCKETS = 65_536


class TimeSeries:
    """Values accumulated into fixed-width cycle buckets.

    Retention is windowed: at most ``max_buckets`` distinct buckets are
    held; adding to a bucket beyond that evicts the oldest ones.
    ``max_buckets=None`` disables the bound (callers that *know* their
    series is short-lived).
    """

    __slots__ = ("bucket", "values", "max_buckets", "dropped_buckets")

    def __init__(self, bucket: float = 1024.0,
                 values: Optional[Dict[int, float]] = None,
                 max_buckets: Optional[int] = DEFAULT_MAX_BUCKETS):
        if bucket <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket}")
        if max_buckets is not None and max_buckets < 1:
            raise ValueError(
                f"max_buckets must be >= 1 or None, got {max_buckets}")
        self.bucket = bucket
        self.values: Dict[int, float] = values if values is not None else {}
        self.max_buckets = max_buckets
        self.dropped_buckets = 0

    def add(self, t: float, amount: float) -> None:
        index = int(t // self.bucket)
        values = self.values
        if index in values:
            values[index] += amount
            return
        values[index] = amount
        if self.max_buckets is not None and len(values) > self.max_buckets:
            # Evict the oldest bucket (smallest index).  Time advances
            # monotonically in every producer, so eviction is rare —
            # O(n) only on the add that crosses the window edge.
            del values[min(values)]
            self.dropped_buckets += 1

    def __setstate__(self, state) -> None:
        """Restore pickles, defaulting fields older snapshots lack."""
        _, slots = state if isinstance(state, tuple) else (None, state)
        self.bucket = slots.get("bucket", 1024.0)
        self.values = slots.get("values", {})
        self.max_buckets = slots.get("max_buckets", DEFAULT_MAX_BUCKETS)
        self.dropped_buckets = slots.get("dropped_buckets", 0)

    def points(self) -> List[Tuple[float, float]]:
        """Sorted ``(bucket_start_cycle, total)`` pairs."""
        bucket = self.bucket
        return [(index * bucket, total)
                for index, total in sorted(self.values.items())]

    def rate_points(self) -> List[Tuple[float, float]]:
        """Sorted ``(bucket_start_cycle, amount_per_cycle)`` pairs."""
        bucket = self.bucket
        return [(index * bucket, total / bucket)
                for index, total in sorted(self.values.items())]

    def total(self) -> float:
        return sum(self.values.values())

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"bucket": self.bucket,
                               "points": self.points()}
        if self.dropped_buckets:
            out["dropped_buckets"] = self.dropped_buckets
        return out


class Histogram:
    """Power-of-two bucketed histogram of non-negative samples."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        self.counts: Dict[int, int] = {}  # bucket exponent -> count
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exponent = 0
        edge = 1.0
        while value > edge and exponent < 64:
            edge *= 2.0
            exponent += 1
        self.counts[exponent] = self.counts.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[float, int]]:
        """Sorted ``(upper_edge, count)`` pairs."""
        return [(float(2 ** exponent), n)
                for exponent, n in sorted(self.counts.items())]

    def as_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "mean": self.mean,
                "min": self.min if self.count else 0.0, "max": self.max,
                "buckets": self.buckets()}


class MetricsSnapshot:
    """Frozen, pickle-friendly view of one launch's metrics.

    Scalars, series, and histograms live in separate plain-dict planes;
    everything here is data (no references back into the simulator), so
    snapshots survive the exec cache's pickle round trip and worker
    process boundaries.
    """

    __slots__ = ("scalars", "series_data", "histograms")

    def __init__(self, scalars=None, series=None, histograms=None):
        self.scalars: Dict[str, float] = scalars or {}
        self.series_data: Dict[str, TimeSeries] = series or {}
        self.histograms: Dict[str, Histogram] = histograms or {}

    # -- lookups -----------------------------------------------------------
    def get(self, name: str, default: float = 0.0) -> float:
        return self.scalars.get(name, default)

    def series(self, name: str) -> Optional[TimeSeries]:
        return self.series_data.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def group(self, prefix: str) -> Dict[str, float]:
        """Scalar metrics directly under ``prefix.``, keyed by suffix.

        ``group("ttaplus.op_util")`` returns ``{"minmax": 0.4, ...}``.
        """
        dotted = prefix if prefix.endswith(".") else prefix + "."
        start = len(dotted)
        return {name[start:]: value for name, value in self.scalars.items()
                if name.startswith(dotted)}

    def names(self) -> List[str]:
        return sorted(self.scalars)

    def __len__(self) -> int:
        return (len(self.scalars) + len(self.series_data)
                + len(self.histograms))

    def __bool__(self) -> bool:
        return len(self) > 0

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-safe form (the exporter/sidecar format)."""
        out: Dict[str, Any] = {"scalars": dict(self.scalars)}
        if self.series_data:
            out["series"] = {name: s.as_dict()
                             for name, s in self.series_data.items()}
        if self.histograms:
            out["histograms"] = {name: h.as_dict()
                                 for name, h in self.histograms.items()}
        return out


#: Shared placeholder for results that predate (or ran without) the
#: registry; every lookup misses cleanly.
EMPTY_METRICS = MetricsSnapshot()


class MetricsRegistry:
    """Mutable builder for a :class:`MetricsSnapshot`."""

    def __init__(self):
        self._scalars: Dict[str, float] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._histograms: Dict[str, Histogram] = {}

    def set(self, name: str, value) -> None:
        """Record a gauge (latest value wins)."""
        self._scalars[name] = float(value)

    def add(self, name: str, delta: float = 1.0) -> None:
        """Bump a counter."""
        self._scalars[name] = self._scalars.get(name, 0.0) + delta

    def series(self, name: str, bucket: float = 1024.0) -> TimeSeries:
        existing = self._series.get(name)
        if existing is None:
            existing = self._series[name] = TimeSeries(bucket)
        return existing

    def attach_series(self, name: str, series: TimeSeries) -> None:
        self._series[name] = series

    def histogram(self, name: str) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            existing = self._histograms[name] = Histogram()
        return existing

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(dict(self._scalars), dict(self._series),
                               dict(self._histograms))


# -- building the launch snapshot ------------------------------------------------
#: MemoryHierarchy.stats() keys -> namespaced metric names.
_MEMORY_KEYS = {
    "dram_utilization": "memsys.dram.utilization",
    "dram_bytes": "memsys.dram.bytes",
    "dram_requests": "memsys.dram.requests",
    "l2_hit_rate": "memsys.l2.hit_rate",
    "l2_accesses": "memsys.l2.accesses",
    "sector_requests": "memsys.sector_requests",
    "mshr_merges": "memsys.mshr_merges",
}


def _map_accel_key(key: str) -> Optional[str]:
    """Namespace one merged accelerator-snapshot scalar key."""
    for op in _POOL_OPS:
        head = op + "_"
        if key.startswith(head) and key[len(head):] in _POOL_FIELDS:
            return f"rta.unit.{op}.{key[len(head):]}"
    if key.startswith("op_") and key.endswith("_util"):
        return f"ttaplus.op_util.{key[3:-5]}"
    if key.startswith("test_") and key.endswith("_latency_mean"):
        return f"ttaplus.test_latency.{key[5:-13]}"
    return f"accel.{key}"


def build_metrics(stats, sms, hierarchy, end, tracer=None) -> MetricsSnapshot:
    """Fold one finished launch into a :class:`MetricsSnapshot`.

    ``stats``/``sms``/``hierarchy`` are the launch's live model objects
    (read-only here); ``tracer`` adds the trace-derived artifacts —
    the DRAM bandwidth series and per-category duration histograms —
    when tracing was on.
    """
    reg = MetricsRegistry()
    reg.set("sim.cycles", stats.cycles)
    reg.set("sim.simt_efficiency", stats.simt_efficiency)
    reg.set("sim.warp_instructions", stats.total_warp_instructions)

    if sms:
        n = len(sms)
        reg.set("sm.issue.utilization",
                sum(sm.issue_port.utilization(end) for sm in sms) / n)
        reg.set("sm.ldst.utilization",
                sum(sm.ldst.utilization(end) for sm in sms) / n)
        reg.set("sm.warps_retired", sum(sm._done_count for sm in sms))

    for key, value in stats.memory.items():
        reg.set(_MEMORY_KEYS.get(key, f"memsys.{key}"), value)
    reg.set("memsys.l1.hit_rate", stats.l1_hit_rate)

    for key, value in stats.accel_stats.items():
        if isinstance(value, (int, float)):
            mapped = _map_accel_key(key)
            if mapped is not None:
                reg.set(mapped, value)

    if tracer is not None:
        dram_series = getattr(getattr(hierarchy, "dram", None), "series",
                              None)
        if dram_series is not None:
            reg.attach_series("memsys.dram.bandwidth_series", dram_series)
        for cat, _unit, _name, _ts, dur, _arg in tracer.events():
            if dur > 0:
                reg.histogram(f"{cat}.event_duration").observe(dur)
        reg.set("trace.events_seen", tracer.events_seen)
        reg.set("trace.events_kept", tracer.events_kept)
    return reg.snapshot()
