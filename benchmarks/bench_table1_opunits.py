"""Table I — TTA+ OP unit inventory and latencies."""

from repro.core.ttaplus import OP_UNIT_LATENCIES
from repro.core.ttaplus.uop import UNIT_TYPES
from repro.harness.results import Table

PAPER_TABLE1 = {
    "vec3_addsub": 4, "mul": 4, "rcp": 4, "cross": 5, "dot": 5,
    "vec3_cmp": 1, "minmax": 1, "maxmin": 1, "logical": 1, "sqrt": 11,
    "rxform": 4,
}


def test_table1_opunits(benchmark, save_table):
    def build():
        table = Table("Table I — OP units in TTA+",
                      ["unit", "latency(model)", "latency(paper)"])
        for unit in UNIT_TYPES:
            table.add_row(unit, OP_UNIT_LATENCIES[unit], PAPER_TABLE1[unit])
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("table1_opunits", table)
    for row in table.rows:
        assert row[1] == row[2], f"{row[0]}: latency mismatch"
