#!/usr/bin/env python3
"""Performance benchmark of the repro.sim fast core → ``BENCH_core.json``.

Three sections:

1. **Engine microbenchmark** — raw events/sec of the fast integer-cycle
   calendar-queue :class:`~repro.sim.engine.Simulator` against the seed
   heap engine (:class:`~repro.sim.engine_ref.HeapSimulator`) on a pure
   process workload (no timing models), isolating the scheduler itself.

2. **Geometry microbenchmark** — tests/sec of the vectorized batch
   kernels (:mod:`repro.geometry.batch`) against the scalar references
   they are bit-identical to, per kernel family (slab, point-distance,
   ray-sphere, ray-triangle).  ``--assert-geometry-speedup X`` exits
   nonzero when the geomean falls below ``X`` (CI smoke check).

3. **Fig. 12 workload points** — end-to-end wall clock of the paper's
   speedup-figure workload set under three regimes:

   * ``legacy_s`` — the seed configuration: heap engine
     (``REPRO_SIM_CORE=legacy``), per-job generator processes, live
     kernel generators, and a *fresh workload object per repetition* so
     every per-workload cache is cold.  This is the code path the seed
     repository executed for every run.
   * ``fast_cold_s`` — fast engine, fresh workload per repetition: the
     first-run cost including stream recording and job lowering.
   * ``fast_s`` — fast engine at steady state (persistent workload,
     warm replay/lowering caches): the parameter-sweep regime the
     ROADMAP's "interactive sweeps" north star is about.

   Regimes are interleaved within each repetition and the minimum over
   repetitions is reported, so slow machine drift cannot bias the
   comparison.  The headline ``speedup`` is ``legacy_s / fast_s``;
   ``speedup_cold`` tracks the first-run ratio.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --out BENCH_core.json --scale smoke --reps 3
"""

import argparse
import json
import math
import os
import pathlib
import platform
import random
import sys
import time

import numpy as np

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(_ROOT / "src"))

from repro import __version__  # noqa: E402
from repro.geometry import (  # noqa: E402
    AABB,
    Ray,
    Sphere,
    Triangle,
    Vec3,
    aabbs_soa,
    point_distance_below,
    point_distance_below_batch,
    points_soa,
    ray_aabb_intersect,
    ray_aabb_slab_batch,
    ray_sphere_batch,
    ray_sphere_intersect,
    ray_triangle_batch,
    ray_triangle_intersect,
    spheres_soa,
    triangles_soa,
)
from repro.sim import CORE_ENV, scheduler_fingerprint  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.engine_ref import HeapSimulator  # noqa: E402
from repro.harness.runner import run_btree, run_nbody, run_rtnn  # noqa: E402
from repro.workloads import (  # noqa: E402
    make_btree_workload,
    make_nbody_workload,
    make_rtnn_workload,
)

#: Workload sizes per --scale (Fig. 12's set: B-Tree, N-Body 3D, RTNN).
SCALES = {
    "smoke": {"btree": (2048, 2048), "nbody": 384, "rtnn": (2048, 384)},
    "small": {"btree": (8192, 8192), "nbody": 768, "rtnn": (8192, 1024)},
}


# -- section 1: engine microbenchmark -----------------------------------------
def _events_per_sec(sim_cls, n_procs: int, events_per_proc: int) -> float:
    sim = sim_cls()

    def proc():
        for _ in range(events_per_proc):
            yield 1

    for _ in range(n_procs):
        sim.spawn(proc())
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return n_procs * events_per_proc / elapsed


def engine_microbench(n_procs: int, events_per_proc: int, reps: int) -> dict:
    fast = max(_events_per_sec(Simulator, n_procs, events_per_proc)
               for _ in range(reps))
    heap = max(_events_per_sec(HeapSimulator, n_procs, events_per_proc)
               for _ in range(reps))
    return {
        "n_procs": n_procs,
        "events_per_proc": events_per_proc,
        "fast_events_per_sec": fast,
        "heap_events_per_sec": heap,
        "speedup": fast / heap,
    }


# -- section 2: geometry microbenchmark ---------------------------------------
def _geom_dataset(n: int, seed: int = 7):
    """Deterministic scalar objects + their SoA views for the microbench."""
    rng = random.Random(seed)

    def vec(scale=10.0):
        return Vec3(rng.uniform(-scale, scale), rng.uniform(-scale, scale),
                    rng.uniform(-scale, scale))

    ray = Ray(vec(2.0), vec(1.0), tmin=0.0, tmax=50.0)
    boxes = []
    for _ in range(n):
        a, b = vec(), vec()
        boxes.append(AABB(a.min_with(b), a.max_with(b)))
    points = [vec() for _ in range(n)]
    spheres = [Sphere(vec(), rng.uniform(0.1, 3.0), prim_id=i)
               for i in range(n)]
    triangles = [Triangle(vec(), vec(), vec(), prim_id=i) for i in range(n)]
    return ray, boxes, points, spheres, triangles


def geometry_microbench(n: int, reps: int) -> dict:
    """Scalar-vs-batch tests/sec for every kernel family, min over reps."""
    ray, boxes, points, spheres, triangles = _geom_dataset(n)
    query = Vec3(0.0, 0.0, 0.0)
    radius = 5.0
    lo, hi = aabbs_soa(boxes)
    pts = points_soa(points)
    centers, radii = spheres_soa(spheres)
    v0, v1, v2 = triangles_soa(triangles)
    origin = np.array((ray.origin.x, ray.origin.y, ray.origin.z))
    inv = np.array((ray.inv_direction.x, ray.inv_direction.y,
                    ray.inv_direction.z))
    direction = np.array((ray.direction.x, ray.direction.y, ray.direction.z))
    q = np.array((query.x, query.y, query.z))

    def scalar_slab():
        for box in boxes:
            ray_aabb_intersect(ray, box)

    def scalar_dist():
        for p in points:
            point_distance_below(query, p, radius)

    def scalar_sphere():
        for s in spheres:
            ray_sphere_intersect(ray, s)

    def scalar_triangle():
        for t in triangles:
            ray_triangle_intersect(ray, t)

    kernels = {
        "ray_aabb_slab": (scalar_slab, lambda: ray_aabb_slab_batch(
            origin, inv, ray.tmin, ray.tmax, lo, hi)),
        "point_distance": (scalar_dist, lambda: point_distance_below_batch(
            q, pts, radius)),
        "ray_sphere": (scalar_sphere, lambda: ray_sphere_batch(
            origin, direction, ray.tmin, ray.tmax, centers, radii)),
        "ray_triangle": (scalar_triangle, lambda: ray_triangle_batch(
            origin, direction, ray.tmin, ray.tmax, v0, v1, v2)),
    }
    out = {"n": n}
    speedups = []
    for name, (scalar, batch) in kernels.items():
        scalar_s = min(_timed(scalar) for _ in range(reps))
        batch_s = min(_timed(batch) for _ in range(reps))
        entry = {
            "scalar_s": scalar_s,
            "batch_s": batch_s,
            "scalar_ns_per_test": scalar_s / n * 1e9,
            "batch_ns_per_test": batch_s / n * 1e9,
            "batch_tests_per_sec": n / batch_s,
            "speedup": scalar_s / batch_s,
        }
        speedups.append(entry["speedup"])
        out[name] = entry
        print(f"geometry {name:16s} scalar {entry['scalar_ns_per_test']:8.1f}"
              f" ns/test  batch {entry['batch_ns_per_test']:6.1f} ns/test"
              f"  ({entry['speedup']:.1f}x)", file=sys.stderr)
    out["speedup_geomean"] = math.exp(
        sum(math.log(s) for s in speedups) / len(speedups))
    return out


# -- section 3: Fig. 12 workload points ---------------------------------------
def _points(params: dict):
    """(name, workload factory, runner) for every Fig. 12 point."""
    keys, queries = params["btree"]
    bodies = params["nbody"]
    pts, rtq = params["rtnn"]

    def btree():
        return make_btree_workload("btree", n_keys=keys, n_queries=queries,
                                   seed=1)

    def nbody():
        return make_nbody_workload(n_bodies=bodies, dims=3, seed=2,
                                   theta=0.6)

    def rtnn():
        return make_rtnn_workload(n_points=pts, n_queries=rtq, radius=1.0,
                                  seed=3)

    return [
        ("btree/gpu", btree, lambda w: run_btree(w, "gpu", verify=False)),
        ("btree/tta", btree, lambda w: run_btree(w, "tta", verify=False)),
        ("btree/ttaplus", btree,
         lambda w: run_btree(w, "ttaplus", verify=False)),
        ("nbody3d/gpu", nbody, lambda w: run_nbody(w, "gpu", verify=False)),
        ("nbody3d/tta", nbody, lambda w: run_nbody(w, "tta", verify=False)),
        ("rtnn/rta", rtnn, lambda w: run_rtnn(w, "rta", verify=False)),
        ("rtnn/tta", rtnn, lambda w: run_rtnn(w, "tta", verify=False)),
    ]


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_points(scale: str, reps: int) -> dict:
    out = {}
    for name, make, run in _points(SCALES[scale]):
        warm_wl = make()
        run(warm_wl)  # populate the replay/lowering caches
        legacy, cold, warm = [], [], []
        for _ in range(reps):
            fresh = make()  # construction is untimed; only the run counts
            os.environ[CORE_ENV] = "legacy"
            try:
                legacy.append(_timed(lambda: run(fresh)))
            finally:
                os.environ[CORE_ENV] = "fast"
            fresh = make()
            cold.append(_timed(lambda: run(fresh)))
            warm.append(_timed(lambda: run(warm_wl)))
        entry = {
            "legacy_s": min(legacy),
            "fast_cold_s": min(cold),
            "fast_s": min(warm),
            "legacy_reps": legacy,
            "fast_cold_reps": cold,
            "fast_reps": warm,
        }
        entry["speedup"] = entry["legacy_s"] / entry["fast_s"]
        entry["speedup_cold"] = entry["legacy_s"] / entry["fast_cold_s"]
        out[name] = entry
        print(f"{name:16s} legacy {entry['legacy_s']:.3f}s  "
              f"fast {entry['fast_s']:.3f}s  "
              f"({entry['speedup']:.2f}x, cold {entry['speedup_cold']:.2f}x)",
              file=sys.stderr)
    return out


def aggregate(points: dict) -> dict:
    legacy = sum(p["legacy_s"] for p in points.values())
    fast = sum(p["fast_s"] for p in points.values())
    cold = sum(p["fast_cold_s"] for p in points.values())
    n = len(points)
    return {
        "legacy_total_s": legacy,
        "fast_total_s": fast,
        "fast_cold_total_s": cold,
        "speedup_total": legacy / fast,
        "speedup_cold_total": legacy / cold,
        "speedup_geomean": math.exp(
            sum(math.log(p["speedup"]) for p in points.values()) / n),
        "speedup_cold_geomean": math.exp(
            sum(math.log(p["speedup_cold"]) for p in points.values()) / n),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(_ROOT / "BENCH_core.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per regime (min is reported)")
    parser.add_argument("--events", type=int, default=200_000,
                        help="microbenchmark event count per engine")
    parser.add_argument("--geom-n", type=int, default=16384,
                        help="geometry microbenchmark batch width")
    parser.add_argument("--assert-geometry-speedup", type=float, default=None,
                        metavar="X",
                        help="exit nonzero unless the geometry batch/scalar "
                             "speedup geomean is at least X")
    args = parser.parse_args(argv)

    os.environ[CORE_ENV] = "fast"
    micro = engine_microbench(n_procs=256,
                              events_per_proc=args.events // 256,
                              reps=args.reps)
    print(f"engine microbench: fast {micro['fast_events_per_sec']:,.0f} ev/s"
          f"  heap {micro['heap_events_per_sec']:,.0f} ev/s"
          f"  ({micro['speedup']:.2f}x)", file=sys.stderr)
    geom = geometry_microbench(args.geom_n, args.reps)
    print(f"geometry microbench: {geom['speedup_geomean']:.1f}x geomean "
          f"batch over scalar (n={args.geom_n})", file=sys.stderr)
    points = bench_points(args.scale, args.reps)
    agg = aggregate(points)
    report = {
        "schema": 1,
        "generated_unix": time.time(),
        "package_version": __version__,
        "scheduler_fingerprint": scheduler_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": args.scale,
        "reps": args.reps,
        "engine_microbench": micro,
        "geometry_microbench": geom,
        "fig12_points": points,
        "aggregate": agg,
    }
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"total: legacy {agg['legacy_total_s']:.3f}s  "
          f"fast {agg['fast_total_s']:.3f}s  "
          f"speedup {agg['speedup_total']:.2f}x total / "
          f"{agg['speedup_geomean']:.2f}x geomean "
          f"(cold {agg['speedup_cold_total']:.2f}x)", file=sys.stderr)
    print(f"wrote {args.out}", file=sys.stderr)
    if args.assert_geometry_speedup is not None and \
            geom["speedup_geomean"] < args.assert_geometry_speedup:
        print(f"FAIL: geometry speedup geomean {geom['speedup_geomean']:.1f}x"
              f" < required {args.assert_geometry_speedup:.1f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
