"""Tests for the B+Tree range-scan kernels (extension)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.gpu import GPU, GPUConfig
from repro.harness.runner import scaled_config_for
from repro.kernels.range_scan import (
    RangeScanKernelArgs,
    _scan_leaves,
    build_range_scan_jobs,
    range_scan_accel_kernel,
    range_scan_baseline_kernel,
)
from repro.memsys.memory_image import AddressSpace
from repro.rta.rta import make_rta_factory
from repro.trees import BPlusTree


def make_setup(n_keys=4096, n_ranges=256, width=200, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(n_keys * 4), n_keys))
    tree = BPlusTree.bulk_load(keys, seed=seed)
    space = AddressSpace()
    space.place_tree(tree.nodes())
    ranges = []
    for _ in range(n_ranges):
        lo = rng.randrange(n_keys * 4)
        ranges.append((lo, lo + width))
    args = RangeScanKernelArgs(
        tree=tree, ranges=ranges,
        query_buf=space.alloc(8 * n_ranges, align=128),
        result_buf=space.alloc(4 * n_ranges, align=128),
    )
    return tree, ranges, args, keys


class TestScanHelpers:
    def test_scan_leaves_cover_range(self):
        tree, ranges, args, keys = make_setup()
        for lo, hi in ranges[:20]:
            leaves = _scan_leaves(tree, lo, hi)
            covered = [k for leaf in leaves for k in leaf.keys]
            expected = [k for k in keys if lo <= k <= hi]
            assert set(expected) <= set(covered)

    def test_jobs_end_at_leaf(self):
        tree, ranges, args, keys = make_setup(n_ranges=16)
        jobs = build_range_scan_jobs(tree, ranges)
        for job in jobs:
            assert len(job.steps) == tree.height()

    def test_bad_flavor(self):
        tree, ranges, _args, _keys = make_setup(n_ranges=4)
        with pytest.raises(ConfigurationError):
            build_range_scan_jobs(tree, ranges, flavor="rta")


class TestKernels:
    def test_baseline_results_correct(self):
        tree, ranges, args, keys = make_setup(n_ranges=64)
        GPU(GPUConfig(n_sms=2)).launch(range_scan_baseline_kernel, 64,
                                       args=args)
        for tid, (lo, hi) in enumerate(ranges[:64]):
            assert args.results[tid] == [k for k in keys if lo <= k <= hi]

    def test_accel_matches_baseline(self):
        tree, ranges, args, keys = make_setup(n_ranges=64)
        args.jobs = build_range_scan_jobs(tree, ranges[:64])
        gpu = GPU(GPUConfig(n_sms=2),
                  accelerator_factory=make_rta_factory(tta=True))
        gpu.launch(range_scan_accel_kernel, 64, args=args)
        for tid, (lo, hi) in enumerate(ranges[:64]):
            assert args.results[tid] == [k for k in keys if lo <= k <= hi]

    def test_speedup_shrinks_with_range_width(self):
        """The offload only covers the descent: wider ranges dilute it."""
        speedups = {}
        for width in (10, 4000):
            tree, ranges, args, keys = make_setup(n_ranges=256, width=width,
                                                  seed=3)
            cfg = scaled_config_for(len(tree.nodes()) * 64)
            base_args = RangeScanKernelArgs(
                tree=tree, ranges=ranges, query_buf=args.query_buf,
                result_buf=args.result_buf)
            base = GPU(cfg).launch(range_scan_baseline_kernel, 256,
                                   args=base_args)
            accel_args = RangeScanKernelArgs(
                tree=tree, ranges=ranges, query_buf=args.query_buf,
                result_buf=args.result_buf,
                jobs=build_range_scan_jobs(tree, ranges))
            accel = GPU(cfg, accelerator_factory=make_rta_factory(
                tta=True)).launch(range_scan_accel_kernel, 256,
                                  args=accel_args)
            speedups[width] = base.cycles / accel.cycles
        assert speedups[10] > speedups[4000]
        assert speedups[10] > 1.0
