"""Seeded write-stream generation for mutable resident indexes.

Mirrors :mod:`repro.serve.loadgen`: a frozen profile plus one
``random.Random`` seeded from it yields a deterministic open-loop event
stream, so the same seed always produces the same interleaving of
writes with the read load — loadtest reports are replayable
byte-for-byte.  Write events ride the same virtual-time heap as query
arrivals; nothing here reads a wall clock.

The ``--write-mix`` syntax gives each op an absolute *rate* in writes
per second (``insert=120,delete=60,update=20``), not a relative weight:
churn intensity and composition are one knob, and the offered write
throughput is legible straight off the CLI.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.serve.loadgen import LoadProfile

#: The op vocabulary, canonical order.
WRITE_OPS = ("insert", "delete", "update")

#: Rate (writes/second) assumed for a bare op name in a mix string.
DEFAULT_OP_RATE = 50.0


@dataclass(frozen=True)
class WriteEvent:
    """One write in virtual time against one resident index."""

    t: float             # seconds on the service timeline
    query_class: str     # which resident index the write targets
    op: str              # insert | delete | update
    seq: int             # stream position, tie-breaker in event heaps
    measured: bool       # False during warmup


@dataclass(frozen=True)
class WriteProfile:
    """An open-loop write stream: per-op rates plus a seed.

    ``mix`` maps op name to writes/second; the total write rate is the
    sum.  The stream shares the read profile's duration/warmup so one
    virtual timeline covers both.
    """

    mix: Dict[str, float] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.mix:
            raise ConfigurationError("write profile needs at least one op")
        for op, rate in self.mix.items():
            if op not in WRITE_OPS:
                raise ConfigurationError(
                    f"unknown write op {op!r}; choose from {WRITE_OPS}")
            if rate < 0:
                raise ConfigurationError(
                    f"write rate for {op!r} cannot be negative, got {rate}")
        if self.wps <= 0:
            raise ConfigurationError("total write rate must be positive")

    @property
    def wps(self) -> float:
        """Total offered write throughput, writes/second."""
        return sum(self.mix.values())

    def ops(self) -> Tuple[str, ...]:
        """Ops with nonzero rate, canonical order."""
        return tuple(op for op in WRITE_OPS if self.mix.get(op, 0) > 0)


def parse_write_mix(text: str) -> Dict[str, float]:
    """Parse ``insert=120,delete=60`` into an op->rate dict.

    A bare op name gets :data:`DEFAULT_OP_RATE`.  Raises
    :class:`ConfigurationError` on unknown ops, bad numbers, or
    duplicates — the CLI surfaces these as exit-2 usage errors.
    """
    mix: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            op, _, rate_text = part.partition("=")
            op = op.strip()
            try:
                rate = float(rate_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad write rate {rate_text!r} for op {op!r}")
        else:
            op, rate = part, DEFAULT_OP_RATE
        if op not in WRITE_OPS:
            raise ConfigurationError(
                f"unknown write op {op!r}; choose from {WRITE_OPS}")
        if rate < 0:
            raise ConfigurationError(
                f"write rate for {op!r} cannot be negative, got {rate:g}")
        if op in mix:
            raise ConfigurationError(f"duplicate write op {op!r} in mix")
        mix[op] = rate
    if not mix:
        raise ConfigurationError("empty write mix")
    return mix


def generate_write_events(profile: LoadProfile, write: WriteProfile,
                          classes: Sequence[str]) -> List[WriteEvent]:
    """The full write stream for one loadtest, sorted by time.

    Arrivals are Poisson at the profile's total write rate over
    ``warmup + duration``; each event draws its op by rate weight and
    its target class uniformly from ``classes``.  One ``random.Random``
    seeded from the write profile makes the stream a pure function of
    ``(profile, write, classes)``.
    """
    if not classes:
        raise ConfigurationError("write stream needs at least one class")
    rng = random.Random(write.seed)
    total_s = profile.warmup_s + profile.duration_s
    ops = list(write.ops())
    weights = [write.mix[op] for op in ops]
    events: List[WriteEvent] = []
    t, seq = 0.0, 0
    wps = write.wps
    while True:
        t += rng.expovariate(wps)
        if t >= total_s:
            break
        op = rng.choices(ops, weights=weights)[0]
        cls = classes[rng.randrange(len(classes))]
        events.append(WriteEvent(t=t, query_class=cls, op=op, seq=seq,
                                 measured=t >= profile.warmup_s))
        seq += 1
    return events


def write_stream_signature(events: Sequence[WriteEvent]) -> Tuple:
    """Cheap fingerprint for determinism tests."""
    n = len(events)
    return (
        n,
        tuple(round(e.t, 9) for e in events[:8]),
        tuple((e.op, e.query_class) for e in events[:8]),
        round(sum(e.t for e in events), 6),
    )


def parse_churn(text: str) -> Tuple[Dict[str, float], int]:
    """Parse a campaign churn spec ``<mix>@<writes>``.

    Example: ``insert=2,delete=1@200`` — 200 pre-serving writes drawn
    with insert twice as likely as delete.  The mix side reuses the
    ``--write-mix`` grammar (rates become relative weights here; there
    is no time axis before serving starts).
    """
    mix_text, sep, count_text = text.partition("@")
    if not sep:
        raise ConfigurationError(
            f"churn spec needs '<mix>@<writes>', got {text!r}")
    try:
        n_writes = int(count_text)
    except ValueError:
        raise ConfigurationError(f"bad churn write count {count_text!r}")
    if n_writes < 1:
        raise ConfigurationError("churn write count must be >= 1")
    return parse_write_mix(mix_text), n_writes
