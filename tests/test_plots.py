"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.harness.plots import auto_plots, bar_chart
from repro.harness.results import Table


def sample_table():
    t = Table("Speedups", ["workload", "config", "tta", "ttaplus"])
    t.add_row("btree", "small", 2.5, 2.2)
    t.add_row("bplus", "small", 1.4, 1.3)
    t.add_row("rtnn", "small", float("nan"), 0.9)
    return t


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart(sample_table(), "tta")
        lines = chart.splitlines()
        btree_line = next(l for l in lines if l.startswith("btree"))
        bplus_line = next(l for l in lines if l.startswith("bplus"))
        assert btree_line.count("█") > bplus_line.count("█")

    def test_nan_rows_skipped(self):
        chart = bar_chart(sample_table(), "tta")
        assert "rtnn" not in chart

    def test_reference_marker_present(self):
        chart = bar_chart(sample_table(), "tta", reference=1.0)
        assert "|" in chart
        assert "'|' marks 1" in chart

    def test_values_printed(self):
        chart = bar_chart(sample_table(), "ttaplus")
        assert "2.2" in chart and "1.3" in chart

    def test_custom_title_and_labels(self):
        chart = bar_chart(sample_table(), "tta",
                          label_columns=["workload"], title="My Chart")
        assert chart.startswith("My Chart")
        assert "small" not in chart

    def test_empty_numeric_data(self):
        t = Table("t", ["name", "value"])
        t.add_row("a", float("nan"))
        assert "(no numeric data)" in bar_chart(t, "value")

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            bar_chart(sample_table(), "nope")


class TestAutoPlots:
    def test_fig12_produces_two_charts(self):
        t = Table("Fig. 12", ["workload", "config", "tta", "ttaplus",
                              "paper_range"])
        t.add_row("btree", "x", 2.0, 1.8, "(1,5)")
        charts = auto_plots("fig12", t)
        assert len(charts) == 2
        assert "TTA speedup" in charts[0]
        assert "TTA+" in charts[1]

    def test_fig13_chart_per_platform(self):
        t = Table("Fig. 13", ["workload", "gpu", "rta", "tta", "ttaplus"])
        t.add_row("btree", 0.2, float("nan"), 0.4, 0.38)
        charts = auto_plots("fig13", t)
        assert len(charts) == 3

    def test_fallback_for_unknown_experiment(self):
        charts = auto_plots("mystery", sample_table())
        assert len(charts) == 1

    def test_cli_plot_flag(self, capsys):
        from repro.__main__ import main
        from repro.harness import experiments
        experiments.clear_cache()
        assert main(["run", "fig13", "--scale", "smoke", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "█" in out
        experiments.clear_cache()
