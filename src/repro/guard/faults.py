"""Deterministic fault injection into the simulation's failure seams.

The watchdog and the conservation invariants are only worth their
overhead if they demonstrably fire, so this module can break a run in
precisely the ways ``repro.guard`` claims to catch.  Faults are
installed by wrapping methods on *one accelerator instance* (never a
class), so a faulted core sits next to healthy ones in the same GPU and
nothing leaks between launches.

Fault kinds (:data:`KINDS`):

``drop_wake``
    The victim job's next wake-up is parked in a wake bucket whose
    drain event is never scheduled — the exact bug class the batched
    driver's per-(core, cycle) buckets make possible.  The simulation
    goes quiet with the job in flight; the guard's quiescence check (or
    the parked-work scan, if other work keeps the clock moving past the
    bucket's cycle) reports it.
``stall``
    The victim job re-parks itself forever without advancing its
    traversal: an endless stream of drain events with a frozen progress
    token.  Caught by the watchdog's no-progress budget.
``dup_complete``
    The victim job's completion runs twice.  Caught immediately by the
    at-most-once check in ``RTACore._finish_job``.
``lost_fetch``
    One node fetch's response "never" arrives (completion pushed
    ~1e12 cycles out).  Caught by the ``max_cycles`` budget — set one
    when using this fault, otherwise the run terminates with an absurd
    cycle count instead of aborting.
``lost_response``
    The memory system records a sector request whose response vanishes.
    Caught by the end-of-run request/response balance invariant.

Faults on these seams only exist on the *batched fast path*, so the
legacy engine (``REPRO_SIM_CORE=legacy``) is naturally immune — which
is what makes ``repro.exec``'s quarantine-then-retry-on-legacy
degradation a genuine recovery, and what the exec-layer tests exploit.

Entry points: :func:`install_fault` (one core, one plan),
:func:`faulty_factory` (wrap an ``accelerator_factory``),
:func:`install_env_faults` (parse ``$REPRO_FAULTS``, applied by
``RTACore.__init__`` so faults reach worker processes through the
environment), and :func:`corrupt_cache_entry` (damage a stored result
so the exec cache's validate-on-read path can be exercised).

``$REPRO_FAULTS`` grammar: semicolon-separated plans, each
``kind[:query=<id>][:after=<n>][:sm=<id>|all]`` — e.g.
``stall:query=7:sm=0`` or ``drop_wake;lost_response:sm=all``.
"""

import os
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import FaultInjectionError

FAULTS_ENV = "REPRO_FAULTS"

KINDS = ("drop_wake", "stall", "dup_complete", "lost_fetch",
         "lost_response")

#: Cycles between re-parks of a ``stall``\ ed job (arbitrary; small
#: enough that the no-progress budget is reached quickly).
STALL_REPARK_CYCLES = 64

#: How far a ``lost_fetch`` pushes the response: far beyond any real
#: run, but finite so an unguarded simulation still terminates.
LOST_FETCH_DELAY = 10 ** 12


@dataclass
class FaultPlan:
    """One fault: what to break, which job, and when.

    ``query_id=None`` locks onto the first job to cross the seam;
    ``after`` skips that many matching crossings first.  ``sm`` selects
    which SM's accelerator the environment installer targets ("all"
    for every core).
    """

    kind: str
    query_id: Optional[int] = None
    after: int = 0
    sm: Union[int, str] = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.after < 0:
            raise FaultInjectionError(f"after={self.after} must be >= 0")

    def applies_to_sm(self, sm_id: int) -> bool:
        return self.sm == "all" or self.sm == sm_id


def parse_plan(text: str) -> FaultPlan:
    """Parse one ``kind[:key=value]...`` plan from ``$REPRO_FAULTS``."""
    parts = [p.strip() for p in text.strip().split(":") if p.strip()]
    if not parts:
        raise FaultInjectionError(f"empty fault plan in {text!r}")
    kind, kwargs = parts[0], {}
    for part in parts[1:]:
        if "=" not in part:
            raise FaultInjectionError(
                f"fault option {part!r} is not key=value (in {text!r})")
        name, _, value = part.partition("=")
        if name == "query":
            kwargs["query_id"] = int(value)
        elif name == "after":
            kwargs["after"] = int(value)
        elif name == "sm":
            kwargs["sm"] = "all" if value == "all" else int(value)
        else:
            raise FaultInjectionError(
                f"unknown fault option {name!r} (in {text!r})")
    return FaultPlan(kind, **kwargs)


def parse_plans(text: str):
    return [parse_plan(chunk) for chunk in text.split(";") if chunk.strip()]


# -- per-seam installers ----------------------------------------------------------
def _match_job(plan: FaultPlan, core, slot: int, state: dict) -> bool:
    """Does this seam crossing belong to the victim job?

    ``slot`` indexes the core's struct-of-arrays job table
    (``core._jobs``), where the batched driver keeps per-job state.
    Locks onto one query id on the first match so repeated-trigger
    faults (``stall``) keep hitting the same job.
    """
    query_id = core._jobs.job[slot].query_id
    locked = state.get("locked")
    if locked is not None:
        return query_id == locked
    if plan.query_id is not None and query_id != plan.query_id:
        return False
    if state["skip"] > 0:
        state["skip"] -= 1
        return False
    state["locked"] = query_id
    return True


def _install_drop_wake(core, plan: FaultPlan, state: dict) -> None:
    orig = core._wake_at

    def wake_at(time, slot):
        if state["armed"] and _match_job(plan, core, slot, state):
            state["armed"] = False
            core._jobs.at[slot] = time
            # Park in a bucket with no drain event scheduled: the
            # dropped wake.  An unoccupied cycle is chosen so that an
            # already-scheduled drain cannot rescue the job (a later
            # legitimate wake landing in this bucket is collateral —
            # also dropped — which only deepens the stall).
            cycle = int(time) + 1
            while cycle in core._wake:
                cycle += 1
            core._wake[cycle] = [slot]
            return
        orig(time, slot)

    core._wake_at = wake_at


def _install_stall(core, plan: FaultPlan, state: dict) -> None:
    orig = core._advance_job

    def advance(slot):
        if _match_job(plan, core, slot, state):
            # Livelock: keep re-parking without touching the traversal,
            # so events flow but the progress token never moves.
            core._wake_at(float(core._jobs.at[slot]) + STALL_REPARK_CYCLES,
                          slot)
            return
        orig(slot)

    core._advance_job = advance


def _install_dup_complete(core, plan: FaultPlan, state: dict) -> None:
    orig = core._finish_job

    def finish(slot):
        orig(slot)
        if state["armed"] and _match_job(plan, core, slot, state):
            state["armed"] = False
            orig(slot)  # the duplicated completion

    core._finish_job = finish


def _install_lost_fetch(core, plan: FaultPlan, state: dict) -> None:
    orig = core.mem.fetch

    def fetch(now, address, size):
        if state["armed"]:
            if state["skip"] > 0:
                state["skip"] -= 1
            else:
                state["armed"] = False
                return now + LOST_FETCH_DELAY
        return orig(now, address, size)

    core.mem.fetch = fetch


def _install_lost_response(core, plan: FaultPlan, state: dict) -> None:
    orig = core.mem.fetch

    def fetch(now, address, size):
        done = orig(now, address, size)
        if state["armed"]:
            if state["skip"] > 0:
                state["skip"] -= 1
            else:
                state["armed"] = False
                # A request went out whose response vanished: the
                # request/response balance invariant must notice.
                core.mem.hierarchy.sector_requests += 1
        return done

    core.mem.fetch = fetch


_INSTALLERS = {
    "drop_wake": _install_drop_wake,
    "stall": _install_stall,
    "dup_complete": _install_dup_complete,
    "lost_fetch": _install_lost_fetch,
    "lost_response": _install_lost_response,
}


# -- public entry points -----------------------------------------------------------
def install_fault(core, plan: FaultPlan) -> None:
    """Arm one fault on one accelerator core (instance-level wrap)."""
    if getattr(core, "_legacy", False):
        # The seams being broken do not exist on the legacy per-job
        # generator path; installing there would silently test nothing.
        return
    state = {"armed": True, "skip": plan.after, "locked": None}
    _INSTALLERS[plan.kind](core, plan, state)


def faulty_factory(base_factory, *plans: FaultPlan):
    """Wrap an ``accelerator_factory`` so matching SMs get faulted cores.

    Use with :class:`repro.gpu.GPU`::

        gpu = GPU(cfg, accelerator_factory=faulty_factory(
            make_rta_factory(), FaultPlan("stall", query_id=3)))
    """

    def factory(sm):
        core = base_factory(sm)
        for plan in plans:
            if plan.applies_to_sm(sm.sm_id):
                install_fault(core, plan)
        return core

    return factory


def install_env_faults(core) -> None:
    """Apply ``$REPRO_FAULTS`` plans to a freshly built core (called by
    ``RTACore.__init__`` so faults propagate into exec workers)."""
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return
    for plan in parse_plans(text):
        if plan.applies_to_sm(core.sm.sm_id):
            install_fault(core, plan)


def corrupt_cache_entry(cache, spec, payload: bytes = b"\x00corrupt") -> str:
    """Overwrite a stored result's pickle with garbage bytes.

    Returns the damaged path (as str).  The exec cache's validate-on-
    read must quarantine the entry and report a miss.
    """
    key = spec if isinstance(spec, str) else spec.key
    pkl, _meta = cache._paths(key)
    if not pkl.exists():
        raise FaultInjectionError(f"no cache entry to corrupt for {key}")
    with open(pkl, "wb") as fh:
        fh.write(payload)
    return str(pkl)
