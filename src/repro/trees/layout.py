"""Address assignment: serialize a tree into a flat memory image.

The timing models need real addresses — cache behaviour, coalescing and
DRAM traffic all depend on where nodes live.  ``TreeImage`` lays a
tree's nodes out in breadth-first order (the order real tree builders
emit, giving siblings contiguity, which the paper's child-offset
encoding relies on) at a fixed per-node stride, and maps addresses back
to node objects for the functional side of the simulation.

Addresses are pure arithmetic — ``base + index * stride`` — so the
forward map is a lazily-materialized numpy column (one array per tree,
feeding batched sector math) and the reverse map is division, not a
per-node hash table.
"""

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import LayoutError

NODE_STRIDE = 64  # bytes per node entry: 16 x 32-bit registers (Fig. 7)


class TreeImage:
    """A serialized tree: node list, addresses, and reverse lookup.

    ``base`` offsets the whole tree in the global address space so
    several structures (tree + query buffers + result buffers) can
    coexist in one memory image.
    """

    def __init__(self, nodes: Iterable, base: int = 0,
                 node_stride: int = NODE_STRIDE):
        if base % node_stride != 0:
            raise LayoutError(
                f"base {base} not aligned to node stride {node_stride}"
            )
        self.node_stride = node_stride
        self.base = base
        self.nodes: List = list(nodes)
        if not self.nodes:
            raise LayoutError("cannot lay out an empty tree")
        self._index_of: Dict[int, int] = {}
        for index, node in enumerate(self.nodes):
            node.address = base + index * node_stride
            self._index_of[id(node)] = index
        self._addresses: Optional[np.ndarray] = None

    @property
    def size_bytes(self) -> int:
        return len(self.nodes) * self.node_stride

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    @property
    def addresses(self) -> np.ndarray:
        """Per-node address column (int64, layout order), built once."""
        if self._addresses is None:
            self._addresses = (self.base + np.arange(len(self.nodes),
                                                     dtype=np.int64)
                               * self.node_stride)
        return self._addresses

    def sectors(self, sector_size: int) -> np.ndarray:
        """Per-node starting sector ids at the given sector granularity."""
        if sector_size <= 0 or (sector_size & (sector_size - 1)) != 0:
            raise LayoutError(
                f"sector size must be a power of two, got {sector_size}")
        return self.addresses // sector_size

    def address_of(self, node) -> int:
        try:
            index = self._index_of[id(node)]
        except KeyError:
            raise LayoutError(f"node {node!r} is not part of this image")
        return self.base + index * self.node_stride

    def node_at(self, address: int) -> object:
        offset = address - self.base
        if 0 <= offset < self.size_bytes and offset % self.node_stride == 0:
            return self.nodes[offset // self.node_stride]
        raise LayoutError(f"no node at address {address:#x}")

    def contains(self, address: int) -> bool:
        offset = address - self.base
        return 0 <= offset < self.size_bytes and offset % self.node_stride == 0

    def first_child_address(self, node) -> Optional[int]:
        """Address of the node's first child (the paper's child-offset base)."""
        children = getattr(node, "children", None) or []
        children = [c for c in children if c is not None]
        if not children:
            return None
        return self.address_of(children[0])

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"TreeImage(nodes={len(self.nodes)}, base={self.base:#x}, "
            f"stride={self.node_stride})"
        )
