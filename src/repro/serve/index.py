"""Resident indexes: warm trees serving query batches.

A :class:`ResidentIndex` wraps one built workload object — tree, memory
image, canonical query stream — and keeps it alive across an unbounded
number of query batches, the way a production index server holds its
B-Tree or R-Tree in memory between requests.  Each *query class* maps
onto one of the repo's workload families:

==========  =========  ==========================================
``point``   btree      key membership lookup (Algorithm 1)
``range``   rtree      rectangular window scan
``knn``     knn        k-nearest-neighbour search (k-d tree)
``radius``  rtnn       fixed-radius neighbour search (BVH)
==========  =========  ==========================================

Builds route through the exec layer's **build cache**
(:func:`repro.exec.build_key` + ``ResultCache.get_build``): a build is
keyed on construction parameters and the dataset fingerprint alone — no
platform, no GPU config — so one cached tree serves every platform the
loadtest sweeps.

The index also owns per-query *job lowering* memoization: lowering a
query's traversal into accelerator steps is pure per (tree, query,
flavor), so a query that appears in many batches lowers once and only
the per-batch :class:`~repro.rta.traversal.TraversalJob` wrapper (which
carries the batch-local thread id) is rebuilt.
"""

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rta.traversal import TraversalJob

#: Platforms every query class can serve.  ``radius`` additionally
#: accepts ``rta`` (stock ray accelerator with intersection shaders).
SERVE_PLATFORMS = ("gpu", "tta", "ttaplus")


@dataclass(frozen=True)
class QueryClassSpec:
    """How one query class builds, lowers, and launches."""

    name: str
    kind: str                       # workload family (exec KINDS member)
    platforms: Tuple[str, ...]
    make_workload: Callable[..., Any]
    baseline_kernel: Callable
    accel_kernel: Callable
    payloads: Callable[[Any], Sequence[Any]]      # canonical query stream
    build_jobs: Callable[[Any, Sequence[Any], str], List[TraversalJob]]
    make_args: Callable[[Any, Sequence[Any], List[TraversalJob]], Any]


def _specs() -> Dict[str, QueryClassSpec]:
    from repro.kernels.btree_search import (
        BTreeKernelArgs,
        btree_accel_kernel,
        btree_baseline_kernel,
        build_btree_jobs,
    )
    from repro.kernels.knn_search import (
        KNNKernelArgs,
        build_knn_jobs,
        knn_accel_kernel,
        knn_baseline_kernel,
    )
    from repro.kernels.radius_search import (
        RadiusKernelArgs,
        build_radius_jobs,
        radius_accel_kernel,
        radius_baseline_kernel,
    )
    from repro.kernels.rtree_query import (
        RTreeKernelArgs,
        build_rtree_jobs,
        rtree_accel_kernel,
        rtree_baseline_kernel,
    )
    from repro.workloads import (
        make_btree_workload,
        make_knn_workload,
        make_rtnn_workload,
        make_rtree_workload,
    )

    return {
        "point": QueryClassSpec(
            name="point", kind="btree", platforms=SERVE_PLATFORMS,
            make_workload=make_btree_workload,
            baseline_kernel=btree_baseline_kernel,
            accel_kernel=btree_accel_kernel,
            payloads=lambda wl: wl.queries,
            build_jobs=lambda wl, qs, flavor: build_btree_jobs(
                wl.tree, qs, flavor=flavor),
            make_args=lambda wl, qs, jobs: BTreeKernelArgs(
                tree=wl.tree, queries=qs, query_buf=wl.query_buf,
                result_buf=wl.result_buf, jobs=jobs),
        ),
        "range": QueryClassSpec(
            name="range", kind="rtree", platforms=SERVE_PLATFORMS,
            make_workload=make_rtree_workload,
            baseline_kernel=rtree_baseline_kernel,
            accel_kernel=rtree_accel_kernel,
            payloads=lambda wl: wl.windows,
            build_jobs=lambda wl, qs, flavor: build_rtree_jobs(
                wl.tree, qs, flavor=flavor),
            make_args=lambda wl, qs, jobs: RTreeKernelArgs(
                tree=wl.tree, windows=qs, query_buf=wl.query_buf,
                result_buf=wl.result_buf, jobs=jobs),
        ),
        "knn": QueryClassSpec(
            name="knn", kind="knn", platforms=SERVE_PLATFORMS,
            make_workload=make_knn_workload,
            baseline_kernel=knn_baseline_kernel,
            accel_kernel=knn_accel_kernel,
            payloads=lambda wl: wl.queries,
            build_jobs=lambda wl, qs, flavor: build_knn_jobs(
                wl.tree, qs, wl.k, flavor=flavor),
            make_args=lambda wl, qs, jobs: KNNKernelArgs(
                tree=wl.tree, queries=qs, k=wl.k, query_buf=wl.query_buf,
                result_buf=wl.result_buf, jobs=jobs),
        ),
        "radius": QueryClassSpec(
            name="radius", kind="rtnn",
            platforms=SERVE_PLATFORMS + ("rta",),
            make_workload=make_rtnn_workload,
            baseline_kernel=radius_baseline_kernel,
            accel_kernel=radius_accel_kernel,
            payloads=lambda wl: wl.queries,
            build_jobs=lambda wl, qs, flavor: build_radius_jobs(
                wl.bvh, qs, wl.radius, flavor=flavor),
            make_args=lambda wl, qs, jobs: RadiusKernelArgs(
                bvh=wl.bvh, queries=qs, radius=wl.radius,
                query_buf=wl.query_buf, result_buf=wl.result_buf,
                jobs=jobs),
        ),
    }


_SPEC_CACHE: Dict[str, QueryClassSpec] = {}


def query_class_spec(query_class: str) -> QueryClassSpec:
    if not _SPEC_CACHE:
        _SPEC_CACHE.update(_specs())
    spec = _SPEC_CACHE.get(query_class)
    if spec is None:
        raise ConfigurationError(
            f"unknown query class {query_class!r}; "
            f"known: {sorted(_SPEC_CACHE)}"
        )
    return spec


QUERY_CLASSES = ("point", "range", "knn", "radius")

#: Per-scale construction parameters for the CLI/loadtest presets.
#: ``n_queries`` doubles as the canonical stream length *and* the
#: query/result buffer capacity — the largest batch one launch can hold.
SERVE_SCALES: Dict[str, Dict[str, Dict[str, Any]]] = {
    "smoke": {
        "point": dict(n_keys=2048, n_queries=512),
        "range": dict(n_rects=2048, n_queries=256),
        "knn": dict(n_points=2048, n_queries=256, k=4),
        "radius": dict(n_points=2048, n_queries=256),
    },
    "small": {
        "point": dict(n_keys=16384, n_queries=2048),
        "range": dict(n_rects=8192, n_queries=1024),
        "knn": dict(n_points=8192, n_queries=1024, k=8),
        "radius": dict(n_points=8192, n_queries=1024),
    },
    "large": {
        "point": dict(n_keys=65536, n_queries=4096),
        "range": dict(n_rects=16384, n_queries=2048),
        "knn": dict(n_points=16384, n_queries=2048, k=8),
        "radius": dict(n_points=16384, n_queries=2048),
    },
}


class ResidentIndex:
    """One warm index: built once, serving batches until shutdown."""

    def __init__(self, query_class: str, workload: Any,
                 params: Optional[Dict[str, Any]] = None,
                 build_seconds: float = 0.0, from_cache: bool = False):
        self.spec = query_class_spec(query_class)
        self.query_class = query_class
        self.workload = workload
        self.params = dict(params or {})
        self.build_seconds = build_seconds
        self.from_cache = from_cache
        self._canonical: Sequence[Any] = self.spec.payloads(workload)
        # (flavor, canonical qid) -> (steps, functional result); the
        # TraversalJob wrapper is rebuilt per batch with the batch-local
        # thread id.
        self._lowered: Dict[Tuple[str, int], Tuple[list, Any]] = {}

    # -- canonical query stream ------------------------------------------------
    @property
    def capacity(self) -> int:
        """Largest batch one launch can hold (buffer sizing)."""
        return len(self._canonical)

    @property
    def n_canonical(self) -> int:
        return len(self._canonical)

    def payload(self, qid: int) -> Any:
        return self._canonical[qid]

    # -- batch assembly --------------------------------------------------------
    def batch_jobs(self, qids: Sequence[int], flavor: str
                   ) -> List[TraversalJob]:
        """Lower canonical queries ``qids`` for ``flavor``, memoized
        per query so repeat appearances across batches lower once."""
        missing = [qid for qid in qids
                   if (flavor, qid) not in self._lowered]
        if missing:
            fresh = self.spec.build_jobs(
                self.workload, [self._canonical[qid] for qid in missing],
                flavor)
            for qid, job in zip(missing, fresh):
                self._lowered[(flavor, qid)] = (job.steps, job.result)
        jobs = []
        for slot, qid in enumerate(qids):
            steps, result = self._lowered[(flavor, qid)]
            jobs.append(TraversalJob(slot, steps, result))
        return jobs

    def batch_args(self, payloads: Sequence[Any],
                   jobs: List[TraversalJob]) -> Any:
        if len(payloads) > self.capacity:
            raise ConfigurationError(
                f"batch of {len(payloads)} exceeds the {self.query_class} "
                f"index's buffer capacity ({self.capacity}); raise the "
                f"index's n_queries or lower the batching policy's "
                f"max_batch"
            )
        return self.spec.make_args(self.workload, payloads, jobs)

    def __repr__(self) -> str:
        return (f"ResidentIndex({self.query_class}/{self.spec.kind}, "
                f"capacity={self.capacity}, "
                f"{'cached' if self.from_cache else 'built'} in "
                f"{self.build_seconds:.2f}s)")


def build_resident_index(query_class: str,
                         params: Optional[Dict[str, Any]] = None,
                         cache=None) -> ResidentIndex:
    """Build (or load from the exec build cache) one resident index.

    ``cache`` is a :class:`repro.exec.ResultCache` (or None to always
    build in-process).  The cache key folds construction parameters and
    the dataset fingerprint only — see :func:`repro.exec.build_key` —
    so a build made for a GPU loadtest is reused verbatim for the TTA
    and TTA+ legs.
    """
    from repro.exec import build_key

    spec = query_class_spec(query_class)
    params = dict(params or {})
    key = build_key(spec.kind, params)
    started = time.monotonic()
    if cache is not None:
        workload = cache.get_build(key)
        if workload is not None:
            return ResidentIndex(query_class, workload, params,
                                 build_seconds=time.monotonic() - started,
                                 from_cache=True)
    workload = spec.make_workload(**params)
    seconds = time.monotonic() - started
    if cache is not None:
        cache.put_build(key, workload, kind=spec.kind, params=params,
                        seconds=seconds)
    return ResidentIndex(query_class, workload, params,
                         build_seconds=seconds)
