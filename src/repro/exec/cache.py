"""Content-addressed on-disk cache of completed runs.

Layout (one entry per :class:`~repro.exec.spec.RunSpec` key)::

    <root>/v1/<key[:2]>/<key>.pkl    pickled RunResult
    <root>/v1/<key[:2]>/<key>.json   spec + creation metadata (debuggable)

The pickle is the payload; the JSON sidecar exists so ``repro cache
stats`` and humans can see *what* an entry is without unpickling it.
Writes are atomic (tempfile + ``os.replace``) so a killed sweep never
leaves a truncated entry behind; unreadable entries are treated as
misses and deleted.

The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
Because the engine is deterministic, a cache hit is byte-identical to
re-running the simulation (``tests/test_exec.py`` asserts this), so
resuming an interrupted sweep only executes the missing points.
"""

import os
import pathlib
import pickle
import shutil
import time
from typing import Any, Dict, Optional, Tuple

from repro.exec.spec import RunSpec

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk format version: bump when the entry layout/serialization
#: changes.  Distinct from the spec schema, which governs *keys*.
FORMAT = "v1"


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


class ResultCache:
    """Filesystem-backed, content-addressed RunResult store."""

    def __init__(self, root: Optional[pathlib.Path] = None) -> None:
        self.base = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.root = self.base / FORMAT

    # -- paths ----------------------------------------------------------------
    def _paths(self, key: str) -> Tuple[pathlib.Path, pathlib.Path]:
        shard = self.root / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    # -- read -----------------------------------------------------------------
    def contains(self, spec: RunSpec) -> bool:
        return self._paths(spec.key)[0].exists()

    def get(self, spec: RunSpec) -> Optional[Any]:
        """Return the cached RunResult for ``spec``, or None on a miss.

        A corrupt or unreadable entry (interrupted write from an older,
        pre-atomic layout, disk fault, unpicklable class drift) is
        evicted and reported as a miss rather than poisoning the run.
        """
        pkl, meta = self._paths(spec.key)
        try:
            with open(pkl, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            for path in (pkl, meta):
                try:
                    path.unlink()
                except OSError:
                    pass
            return None

    # -- write ----------------------------------------------------------------
    def put(self, spec: RunSpec, result: Any,
            seconds: Optional[float] = None) -> None:
        pkl, meta = self._paths(spec.key)
        pkl.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(pkl, pickle.dumps(result, protocol=4))
        sidecar = {
            "spec": spec.canonical(),
            "label": spec.label,
            "created": time.time(),
        }
        if seconds is not None:
            sidecar["seconds"] = seconds
        import json
        self._atomic_write(meta, json.dumps(sidecar, indent=1).encode())

    @staticmethod
    def _atomic_write(path: pathlib.Path, payload: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)

    # -- maintenance -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        entries = 0
        size = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.pkl"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        return {"root": str(self.base), "format": FORMAT,
                "entries": entries, "bytes": size}

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = self.stats()["entries"]
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
        return removed
